"""Incremental adaptation — the plan-level short-circuit must pay off.

"The rebuilding and redirecting can be performed many times during the
image's lifetime" (§4.1).  PRs before this one made repeat rebuilds skip
node *execution*; the plan diff in :mod:`repro.perf.incremental` now
prunes unchanged command groups before they even reach the scheduler, so
a warm identical re-adaptation runs zero nodes in zero waves.  Four
claims, measured on LAMMPS (the largest app):

* warm identical re-adaptation is at least 5x faster than a cold one
  (median of interleaved cold/warm pairs, same drift both sides);
* a one-node change (``--lto --lto-scope=<node>``) re-executes only that
  node and its transitive dependents — siblings stay pruned;
* keeping the diff armed costs a cold rebuild less than 5% over
  ``--no-incremental`` (fingerprinting is the only added work);
* a repeat tenant on the adaptation service lands on the incremental
  fast path (``incremental_fast_path`` outcome flag).

Each test also drops a machine-readable ``.json`` next to the rendered
table in ``benchmarks/results/``.
"""

import json
import os
import time

from repro.apps import get_app
from repro.containers import ContainerEngine
from repro.core.cache.storage import decode_rebuild, extended_tag
from repro.core.frontend.build import IO_MOUNT
from repro.core.images import install_system_side_images, sysenv_ref
from repro.core.workflow import build_extended_image
from repro.oci.layout import OCILayout
from repro.perf import attach_perf
from repro.reporting import render_table
from repro.sysmodel import X86_CLUSTER

ROUNDS = 9
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def _fresh_copy(layout, dist_tag):
    fresh = OCILayout()
    for tag in (dist_tag, extended_tag(dist_tag)):
        resolved = layout.resolve(tag)
        fresh.add_manifest(resolved.manifest, resolved.config, resolved.layers,
                           tag=tag)
    return fresh


def _timed_rebuild(engine, layout, args):
    """One timed rebuild; returns (seconds, stdout)."""
    ctr = engine.from_image(sysenv_ref("x86"), name="inc-bench",
                            mounts={IO_MOUNT: layout})
    try:
        t0 = time.perf_counter()
        out = engine.run(ctr, ["coMtainer-rebuild"] + args).check().stdout
        return time.perf_counter() - t0, out
    finally:
        engine.remove_container("inc-bench")


def _emit_json(name, payload):
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.json"), "w",
              encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _setup():
    user = ContainerEngine(arch="amd64")
    layout, dist_tag = build_extended_image(user, get_app("lammps"))
    engine = ContainerEngine(arch="amd64")
    attach_perf(engine, X86_CLUSTER)
    install_system_side_images(engine, X86_CLUSTER)
    return engine, layout, dist_tag


def test_incremental_speedup(benchmark, emit):
    """Cold vs warm-identical vs one-node-changed."""
    engine, layout, dist_tag = _setup()

    # Interleaved cold/warm pairs: each round replays the cold rebuild on
    # a fresh layout, then the warm one on the now-populated layout, so
    # machine drift hits both sides of every ratio equally.
    ratios, cold_times, warm_times = [], [], []
    meta_cold = meta_warm = None
    warm_out = ""
    for _ in range(ROUNDS):
        fresh = _fresh_copy(layout, dist_tag)
        cold_s, _ = _timed_rebuild(engine, fresh, ["--adapter=vendor"])
        meta_cold = decode_rebuild(fresh, dist_tag)[0]
        warm_s, warm_out = _timed_rebuild(engine, fresh, ["--adapter=vendor"])
        meta_warm = decode_rebuild(fresh, dist_tag)[0]
        cold_times.append(cold_s)
        warm_times.append(warm_s)
        ratios.append(warm_s / cold_s)
    ratios.sort()
    speedup = 1.0 / ratios[len(ratios) // 2]
    cold_s = sum(cold_times) / len(cold_times)
    warm_s = sum(warm_times) / len(warm_times)

    # One node changed: LTO scoped to a single object re-executes that
    # node and its dependents only; everything else stays pruned.
    fresh = _fresh_copy(layout, dist_tag)
    _timed_rebuild(engine, fresh, ["--adapter=vendor"])
    base = decode_rebuild(fresh, dist_tag)[0]
    target = sorted(n for n in base["executed_nodes"] if n.endswith(".o"))[0]
    one_s, _ = _timed_rebuild(
        engine, fresh,
        ["--adapter=vendor", "--lto", f"--lto-scope={target}"])
    meta_one = decode_rebuild(fresh, dist_tag)[0]

    rows = [
        ("cold", f"{cold_s:.4f}", len(meta_cold["executed_nodes"]),
         len(meta_cold["pruned_nodes"])),
        ("warm (identical)", f"{warm_s:.4f}",
         len(meta_warm["executed_nodes"]), len(meta_warm["pruned_nodes"])),
        (f"one node changed ({target})", f"{one_s:.4f}",
         len(meta_one["executed_nodes"]), len(meta_one["pruned_nodes"])),
        ("warm speedup (median of 9)", f"{speedup:.1f}x", "-", "-"),
    ]
    emit("incremental_adaptation",
         render_table(["rebuild", "seconds (mean of 9)", "executed",
                       "pruned"], rows))
    _emit_json("incremental_adaptation", {
        "app": "lammps",
        "rounds": ROUNDS,
        "cold_seconds_mean": cold_s,
        "warm_seconds_mean": warm_s,
        "warm_speedup_median": speedup,
        "cold_executed": len(meta_cold["executed_nodes"]),
        "warm_executed": len(meta_warm["executed_nodes"]),
        "warm_pruned": len(meta_warm["pruned_nodes"]),
        "one_node_target": target,
        "one_node_executed": len(meta_one["executed_nodes"]),
        "one_node_pruned": len(meta_one["pruned_nodes"]),
    })

    # Cold runs everything; warm prunes everything and schedules nothing.
    assert meta_cold["pruned_nodes"] == []
    assert meta_warm["executed_nodes"] == []
    assert len(meta_warm["pruned_nodes"]) == len(meta_cold["executed_nodes"])
    assert "wavefronts=0" in warm_out
    assert "plan diff pruned" in warm_out
    # The changed node ran; its untouched siblings did not.
    assert target in meta_one["executed_nodes"]
    assert 0 < len(meta_one["executed_nodes"]) < len(base["executed_nodes"])
    assert len(meta_one["pruned_nodes"]) > 0
    # The headline claim: at least 5x on the warm identical path.
    assert speedup >= 5.0, (
        f"warm re-adaptation only {speedup:.1f}x faster than cold "
        f"(cold {cold_s:.4f}s vs warm {warm_s:.4f}s)"
    )

    benchmark.pedantic(
        _timed_rebuild,
        args=(engine, _fresh_copy(layout, dist_tag), ["--adapter=vendor"]),
        rounds=1, iterations=1,
    )


def test_incremental_cold_overhead(emit):
    """Fingerprinting on a cold rebuild must stay under the 5% bar."""
    engine, layout, dist_tag = _setup()

    ratios, off_times, on_times = [], [], []
    meta_off = meta_on = None
    for _ in range(ROUNDS):
        fresh = _fresh_copy(layout, dist_tag)
        off_s, _ = _timed_rebuild(
            engine, fresh, ["--adapter=vendor", "--no-incremental"])
        meta_off = decode_rebuild(fresh, dist_tag)[0]
        fresh = _fresh_copy(layout, dist_tag)
        on_s, _ = _timed_rebuild(engine, fresh, ["--adapter=vendor"])
        meta_on = decode_rebuild(fresh, dist_tag)[0]
        off_times.append(off_s)
        on_times.append(on_s)
        ratios.append(on_s / off_s)
    ratios.sort()
    overhead = ratios[len(ratios) // 2] - 1.0
    off_s = sum(off_times) / len(off_times)
    on_s = sum(on_times) / len(on_times)

    rows = [
        ("--no-incremental", f"{off_s:.4f}", "-",
         len(meta_off["executed_nodes"])),
        ("incremental (default)", f"{on_s:.4f}", f"{overhead:+.1%}",
         len(meta_on["executed_nodes"])),
    ]
    emit("incremental_cold_overhead",
         render_table(["cold rebuild", "seconds (mean of 9)", "overhead",
                       "executed"], rows))
    _emit_json("incremental_cold_overhead", {
        "app": "lammps",
        "rounds": ROUNDS,
        "no_incremental_seconds_mean": off_s,
        "incremental_seconds_mean": on_s,
        "overhead_median": overhead,
    })

    # Same cold work either way; only the fingerprint pass differs.
    assert meta_off["executed_nodes"] == meta_on["executed_nodes"]
    assert overhead < 0.05, (
        f"incremental fingerprinting costs {overhead:.1%} on a cold "
        f"rebuild (off {off_s:.4f}s vs on {on_s:.4f}s)"
    )


def test_service_repeat_tenant_fast_path(emit):
    """A repeat tenant's identical request rides the incremental path."""
    from repro.service import AdaptationService

    service = AdaptationService(workers=1, seed=0)
    service.add_tenant("t")
    service.submit("t", "lammps", at=0.0)
    service.submit("t", "lammps", at=1000.0)
    report = service.run()
    first, second = report.outcomes

    rows = [
        ("first request", f"{first.latency:.2f}", first.executed_nodes,
         first.reused_nodes, first.incremental_fast_path),
        ("repeat request", f"{second.latency:.2f}", second.executed_nodes,
         second.reused_nodes, second.incremental_fast_path),
    ]
    emit("service_repeat_tenant",
         render_table(["request", "latency (sim s)", "executed", "reused",
                       "fast path"], rows))
    _emit_json("service_repeat_tenant", {
        "app": "lammps",
        "first_latency": first.latency,
        "repeat_latency": second.latency,
        "first_executed": first.executed_nodes,
        "repeat_executed": second.executed_nodes,
        "repeat_fast_path": second.incremental_fast_path,
    })

    assert first.status == "completed" and second.status == "completed"
    assert not first.incremental_fast_path
    assert first.executed_nodes > 0
    assert second.incremental_fast_path
    assert second.executed_nodes == 0
    assert second.reused_nodes == first.executed_nodes
    assert second.latency < first.latency
