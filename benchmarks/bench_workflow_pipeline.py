"""Figures 4-8 — the coMtainer workflow itself, end to end.

Times each phase of the pipeline (user-side two-stage build + analysis,
system-side rebuild, redirect) and checks the structural artifacts the
paper's artifact description specifies: the ``+coM`` manifest after
coMtainer-build, the ``+coMre`` manifest after coMtainer-rebuild, and a
final redirected image that is filesystem-compatible with the original.
"""

import pytest

from repro.apps import get_app
from repro.containers import ContainerEngine
from repro.core.cache.storage import extended_tag, rebuilt_tag
from repro.core.workflow import build_extended_image, system_side_adapt
from repro.perf import attach_perf
from repro.reporting import render_table
from repro.sysmodel import X86_CLUSTER


def test_workflow_end_to_end(benchmark, emit):
    import time

    timings = {}

    def full_pipeline():
        user = ContainerEngine(arch="amd64")
        t0 = time.perf_counter()
        layout, dist_tag = build_extended_image(user, get_app("lulesh"))
        timings["user side (build + coMtainer-build)"] = time.perf_counter() - t0

        system_engine = ContainerEngine(arch="amd64")
        recorder = attach_perf(system_engine, X86_CLUSTER)
        t0 = time.perf_counter()
        ref = system_side_adapt(
            system_engine, layout, X86_CLUSTER, recorder=recorder,
            ref="lulesh:pipeline",
        )
        timings["system side (rebuild + redirect)"] = time.perf_counter() - t0
        return layout, dist_tag, system_engine, ref

    layout, dist_tag, system_engine, ref = benchmark.pedantic(
        full_pipeline, rounds=1, iterations=1
    )

    emit(
        "workflow_pipeline",
        render_table(["phase", "seconds"], sorted(timings.items())),
    )

    # Artifact checks (paper AD, B.2): +coM and +coMre manifests present.
    assert layout.has_tag(extended_tag(dist_tag))
    assert layout.has_tag(rebuilt_tag(dist_tag))

    # The redirected image has a filesystem layout compatible with the
    # original dist image: every original file path still resolves.
    original_fs = layout.resolve(dist_tag).filesystem()
    redirected_fs = system_engine.image_filesystem(ref)
    missing = [
        path for path, _ in original_fs.iter_files("/app")
        if not redirected_fs.exists(path)
    ]
    assert missing == []


def test_extended_image_oci_compliance(benchmark, emit):
    """The extended image stays a well-formed OCI artifact: it can be
    saved as an OCI layout directory and reloaded losslessly."""
    import tempfile

    user = ContainerEngine(arch="amd64")
    layout, dist_tag = build_extended_image(user, get_app("hpccg"))
    with tempfile.TemporaryDirectory() as tmp:
        benchmark.pedantic(layout.save, args=(tmp,), rounds=1, iterations=1)
        from repro.oci.layout import OCILayout

        loaded = OCILayout.load(tmp)
        assert set(loaded.tags()) == set(layout.tags())
        original = layout.resolve(extended_tag(dist_tag))
        reloaded = loaded.resolve(extended_tag(dist_tag))
        assert reloaded.manifest.digest == original.manifest.digest
