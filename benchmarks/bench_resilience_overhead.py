"""Resilience — happy-path overhead of journaling and retry wrapping.

The checkpoint journal and the per-node retry wrapper are only worth
having if they cost (almost) nothing when nothing goes wrong.  This bench
times a cold ``coMtainer-rebuild`` three ways — plain, with ``--journal``
checkpointing, and with checkpointing plus the permissive retry wrapper —
and asserts the fully-instrumented path stays within 5% of plain.
"""

import time

import pytest

from repro.apps import get_app
from repro.containers import ContainerEngine
from repro.core.cache.storage import decode_rebuild, extended_tag
from repro.core.frontend.build import IO_MOUNT
from repro.core.images import install_system_side_images, sysenv_ref
from repro.core.workflow import build_extended_image
from repro.oci.layout import OCILayout
from repro.perf import attach_perf
from repro.reporting import render_table
from repro.resilience import ResiliencePolicy, install_resilience, uninstall_resilience
from repro.sysmodel import X86_CLUSTER

ROUNDS = 5


def _fresh_copy(layout, dist_tag):
    fresh = OCILayout()
    for tag in (dist_tag, extended_tag(dist_tag)):
        resolved = layout.resolve(tag)
        fresh.add_manifest(resolved.manifest, resolved.config, resolved.layers,
                           tag=tag)
    return fresh


def _timed_cold_rebuild(engine, layout, dist_tag, args):
    """Best-of-ROUNDS cold rebuild; returns (seconds, meta)."""
    best = None
    meta = None
    for _ in range(ROUNDS):
        fresh = _fresh_copy(layout, dist_tag)
        ctr = engine.from_image(sysenv_ref("x86"), name="res-bench",
                                mounts={IO_MOUNT: fresh})
        try:
            t0 = time.perf_counter()
            engine.run(ctr, ["coMtainer-rebuild"] + args).check()
            elapsed = time.perf_counter() - t0
        finally:
            engine.remove_container("res-bench")
        if best is None or elapsed < best:
            best = elapsed
            meta = decode_rebuild(fresh, dist_tag)[0]
    return best, meta


def test_resilience_happy_path_overhead(benchmark, emit):
    user = ContainerEngine(arch="amd64")
    layout, dist_tag = build_extended_image(user, get_app("lammps"))
    engine = ContainerEngine(arch="amd64")
    attach_perf(engine, X86_CLUSTER)
    install_system_side_images(engine, X86_CLUSTER)

    plain, meta_plain = _timed_cold_rebuild(engine, layout, dist_tag, [])
    journal, meta_journal = _timed_cold_rebuild(engine, layout, dist_tag,
                                                ["--journal"])
    install_resilience(ResiliencePolicy.permissive(), engines=[engine])
    try:
        full, meta_full = _timed_cold_rebuild(engine, layout, dist_tag,
                                              ["--journal", "--fallback"])
    finally:
        uninstall_resilience(engines=[engine])

    overhead_journal = journal / plain - 1.0
    overhead_full = full / plain - 1.0
    rows = [
        ("plain", f"{plain:.4f}", "-", len(meta_plain["executed_nodes"])),
        ("journal", f"{journal:.4f}", f"{overhead_journal:+.1%}",
         len(meta_journal["executed_nodes"])),
        ("journal+retry+fallback", f"{full:.4f}", f"{overhead_full:+.1%}",
         len(meta_full["executed_nodes"])),
    ]
    emit("resilience_overhead",
         render_table(["rebuild", "seconds (best of 5)", "overhead",
                       "executed"], rows))

    # Same work was done in all three configurations...
    assert meta_plain["executed_nodes"] == meta_journal["executed_nodes"]
    assert meta_plain["executed_nodes"] == meta_full["executed_nodes"]
    assert meta_full["failed_nodes"] == []
    assert meta_full["journal_restored"] == []
    # ...and the instrumentation stays under the 5% budget.
    assert overhead_full < 0.05, (
        f"resilience instrumentation costs {overhead_full:.1%} on the happy "
        f"path (plain {plain:.4f}s vs instrumented {full:.4f}s)"
    )

    benchmark.pedantic(
        _timed_cold_rebuild,
        args=(engine, layout, dist_tag, ["--journal", "--fallback"]),
        rounds=1, iterations=1,
    )
