"""VFS hot paths — the structural-sharing wins behind the incremental PR.

Three microbenches with hard bars:

* ``VirtualFilesystem.clone`` is copy-on-write: cloning a wide tree is
  orders of magnitude cheaper than rebuilding it, and the first mutation
  pays only for the path it touches;
* ``Directory.sorted_items`` is cached between mutations, so repeated
  directory scans (diffing, layer encoding, tar walks) stop re-sorting;
* ``flatten_layers`` memoizes on the layer-digest tuple, so re-resolving
  the same image (every warm rebuild does) replays a cached snapshot.
"""

import time

from repro.oci.apply import flatten_layers, flatten_memo_clear
from repro.oci.layer import Layer, LayerEntry
from repro.reporting import render_table
from repro.vfs import InlineContent, VirtualFilesystem

FILES = 2000
DIRS = 50


def _build_tree():
    fs = VirtualFilesystem()
    for d in range(DIRS):
        for f in range(FILES // DIRS):
            fs.write_file(f"/data/d{d:02d}/f{f:03d}",
                          InlineContent(b"x" * 64), create_parents=True)
    return fs


def _best_of(fn, rounds=5):
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_clone_is_copy_on_write(emit):
    fs = _build_tree()

    rebuild_s = _best_of(_build_tree, rounds=3)
    clone_s = _best_of(lambda: fs.clone())

    # First mutation on a clone pays for one path, not the whole tree.
    def clone_and_touch():
        child = fs.clone()
        child.write_file("/data/d00/f000", InlineContent(b"y"))

    touch_s = _best_of(clone_and_touch)

    rows = [
        ("rebuild tree", f"{rebuild_s * 1e3:.3f}ms"),
        ("clone (CoW)", f"{clone_s * 1e6:.1f}us"),
        ("clone + 1 write", f"{touch_s * 1e6:.1f}us"),
    ]
    emit("vfs_hotpaths_clone",
         render_table([f"operation ({FILES} files)", "best time"], rows))

    # The clone really shares structure and unshares on write.
    child = fs.clone()
    child.write_file("/data/d00/f000", InlineContent(b"y"))
    assert child.read_file("/data/d00/f000") == b"y"
    assert fs.read_file("/data/d00/f000") == b"x" * 64
    assert clone_s * 50 < rebuild_s, (
        f"CoW clone ({clone_s * 1e6:.1f}us) should be >=50x cheaper than "
        f"rebuilding ({rebuild_s * 1e3:.3f}ms)"
    )
    assert touch_s * 10 < rebuild_s


def test_sorted_items_cached(emit):
    fs = _build_tree()
    root = fs.get_node("/data")

    cold = _best_of(lambda: [d.sorted_items() for d in root.children.values()],
                    rounds=1)
    warm = _best_of(lambda: [d.sorted_items() for d in root.children.values()])

    rows = [
        ("first scan (sorts)", f"{cold * 1e6:.1f}us"),
        ("repeat scan (cached)", f"{warm * 1e6:.1f}us"),
    ]
    emit("vfs_hotpaths_sorted",
         render_table([f"sorted_items over {DIRS} dirs", "best time"], rows))

    # Cache invalidates on mutation and repeat scans are not slower.
    d0 = fs.writable_dir("/data/d00")
    before = d0.sorted_items()
    d0.children["zzz"] = VirtualFilesystem().root
    after = d0.sorted_items()
    assert [n for n, _ in after] != [n for n, _ in before]
    assert after[-1][0] == "zzz"
    assert warm <= cold * 1.5


def test_flatten_layers_memoized(emit):
    layer = Layer(comment="bench")
    layer.add(LayerEntry.directory("/opt"))
    for i in range(500):
        layer.add(LayerEntry.file(f"/opt/f{i:03d}", InlineContent(b"z" * 32)))
    layers = [layer]

    flatten_memo_clear()
    miss = _best_of(
        lambda: (flatten_memo_clear(), flatten_layers(layers))[1])
    hit = _best_of(lambda: flatten_layers(layers))

    rows = [
        ("miss (applies entries)", f"{miss * 1e3:.3f}ms"),
        ("hit (clones snapshot)", f"{hit * 1e6:.1f}us"),
    ]
    emit("vfs_hotpaths_flatten",
         render_table(["flatten_layers, 500 entries", "best time"], rows))

    # The hit returns an independent filesystem, not the cached one.
    a = flatten_layers(layers)
    b = flatten_layers(layers)
    a.write_file("/opt/f000", InlineContent(b"mutated"))
    assert b.read_file("/opt/f000") == b"z" * 32
    assert hit * 10 < miss, (
        f"flatten memo hit ({hit * 1e6:.1f}us) should be >=10x cheaper "
        f"than a miss ({miss * 1e3:.3f}ms)"
    )
