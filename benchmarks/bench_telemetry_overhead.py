"""Telemetry — the recorder must cost (almost) nothing.

Two claims, both measured on a cold ``coMtainer-rebuild``:

* the default :data:`NULL_TELEMETRY` path is the baseline — every hot
  site guards on ``telemetry.enabled`` so an untraced run executes the
  original code;
* even a *fully traced* run (spans on every stage and compile node, byte
  counters on every blob) stays within 5% of that baseline.
"""

import time

import pytest

from repro.apps import get_app
from repro.containers import ContainerEngine
from repro.core.cache.storage import decode_rebuild, extended_tag
from repro.core.frontend.build import IO_MOUNT
from repro.core.images import install_system_side_images, sysenv_ref
from repro.core.workflow import build_extended_image
from repro.oci.layout import OCILayout
from repro.perf import attach_perf
from repro.reporting import render_table
from repro.sysmodel import X86_CLUSTER
from repro.telemetry import Telemetry, install_telemetry, uninstall_telemetry

ROUNDS = 5


def _fresh_copy(layout, dist_tag):
    fresh = OCILayout()
    for tag in (dist_tag, extended_tag(dist_tag)):
        resolved = layout.resolve(tag)
        fresh.add_manifest(resolved.manifest, resolved.config, resolved.layers,
                           tag=tag)
    return fresh


def _timed_cold_rebuild(engine, layout, dist_tag):
    """Best-of-ROUNDS cold rebuild; returns (seconds, meta)."""
    best = None
    meta = None
    for _ in range(ROUNDS):
        fresh = _fresh_copy(layout, dist_tag)
        ctr = engine.from_image(sysenv_ref("x86"), name="tele-bench",
                                mounts={IO_MOUNT: fresh})
        try:
            t0 = time.perf_counter()
            engine.run(ctr, ["coMtainer-rebuild"]).check()
            elapsed = time.perf_counter() - t0
        finally:
            engine.remove_container("tele-bench")
        if best is None or elapsed < best:
            best = elapsed
            meta = decode_rebuild(fresh, dist_tag)[0]
    return best, meta


def test_telemetry_happy_path_overhead(benchmark, emit):
    user = ContainerEngine(arch="amd64")
    layout, dist_tag = build_extended_image(user, get_app("lammps"))
    engine = ContainerEngine(arch="amd64")
    attach_perf(engine, X86_CLUSTER)
    install_system_side_images(engine, X86_CLUSTER)

    # Baseline: the shipped default (NullTelemetry on every substrate).
    null_s, meta_null = _timed_cold_rebuild(engine, layout, dist_tag)

    # Fully traced: a live recorder spanning every node and counter.
    tele = Telemetry()
    install_telemetry(tele, engines=[engine])
    try:
        traced_s, meta_traced = _timed_cold_rebuild(engine, layout, dist_tag)
    finally:
        uninstall_telemetry(engines=[engine])

    overhead = traced_s / null_s - 1.0
    rows = [
        ("null (default)", f"{null_s:.4f}", "-",
         len(meta_null["executed_nodes"])),
        ("traced", f"{traced_s:.4f}", f"{overhead:+.1%}",
         len(meta_traced["executed_nodes"])),
    ]
    emit("telemetry_overhead",
         render_table(["telemetry", "seconds (best of 5)", "overhead",
                       "executed"], rows))

    # Same work either way, and tracing really recorded the rebuild.
    assert meta_null["executed_nodes"] == meta_traced["executed_nodes"]
    assert tele.find_spans("rebuild.node")
    assert tele.metrics.value("rebuild_nodes_executed_total") > 0
    # The happy path stays within the 5% budget.
    assert overhead < 0.05, (
        f"telemetry costs {overhead:.1%} on the happy path "
        f"(null {null_s:.4f}s vs traced {traced_s:.4f}s)"
    )

    benchmark.pedantic(
        _timed_cold_rebuild,
        args=(engine, layout, dist_tag),
        rounds=1, iterations=1,
    )
