"""Telemetry — the recorder must cost (almost) nothing.

Three claims, all measured on a cold ``coMtainer-rebuild``:

* the default :data:`NULL_TELEMETRY` path is the baseline — every hot
  site guards on ``telemetry.enabled`` so an untraced run executes the
  original code;
* even a *fully traced* run (spans on every stage and compile node, byte
  counters on every blob) stays within 5% of that baseline;
* so does a traced run with the whole observability control plane live
  (time-series sampler + SLO rules evaluated on every sample + the
  span-boundary cost profiler) — ``make obs-bench``.
"""

import time

import pytest

from repro.apps import get_app
from repro.containers import ContainerEngine
from repro.core.cache.storage import decode_rebuild, extended_tag
from repro.core.frontend.build import IO_MOUNT
from repro.core.images import install_system_side_images, sysenv_ref
from repro.core.workflow import build_extended_image
from repro.oci.layout import OCILayout
from repro.perf import attach_perf
from repro.reporting import render_table
from repro.sysmodel import X86_CLUSTER
from repro.telemetry import Telemetry, install_telemetry, uninstall_telemetry

ROUNDS = 9


def _fresh_copy(layout, dist_tag):
    fresh = OCILayout()
    for tag in (dist_tag, extended_tag(dist_tag)):
        resolved = layout.resolve(tag)
        fresh.add_manifest(resolved.manifest, resolved.config, resolved.layers,
                           tag=tag)
    return fresh


def _one_cold_rebuild(engine, layout, dist_tag):
    """One timed cold rebuild; returns (seconds, meta)."""
    fresh = _fresh_copy(layout, dist_tag)
    ctr = engine.from_image(sysenv_ref("x86"), name="tele-bench",
                            mounts={IO_MOUNT: fresh})
    try:
        t0 = time.perf_counter()
        engine.run(ctr, ["coMtainer-rebuild"]).check()
        elapsed = time.perf_counter() - t0
    finally:
        engine.remove_container("tele-bench")
    return elapsed, decode_rebuild(fresh, dist_tag)[0]


def _ab_overhead(engine, layout, dist_tag, arm, disarm):
    """Interleaved A/B rounds; returns (null_s, armed_s, overhead, metas).

    The workload is ~60ms and the machine's round-to-round noise is a
    few percent either way — larger than the effect being measured, and
    it drifts.  Back-to-back null/armed pairs see the same drift, so the
    median of the per-pair ratios isolates the real overhead where a
    best-of-N or a plain mean mis-ranks it.
    """
    ratios = []
    null_times = []
    armed_times = []
    meta_null = meta_armed = None
    for _ in range(ROUNDS):
        null_s, meta_null = _one_cold_rebuild(engine, layout, dist_tag)
        arm()
        try:
            armed_s, meta_armed = _one_cold_rebuild(engine, layout, dist_tag)
        finally:
            disarm()
        null_times.append(null_s)
        armed_times.append(armed_s)
        ratios.append(armed_s / null_s)
    ratios.sort()
    overhead = ratios[len(ratios) // 2] - 1.0
    null_s = sum(null_times) / len(null_times)
    armed_s = sum(armed_times) / len(armed_times)
    return null_s, armed_s, overhead, (meta_null, meta_armed)


def test_telemetry_happy_path_overhead(benchmark, emit):
    user = ContainerEngine(arch="amd64")
    layout, dist_tag = build_extended_image(user, get_app("lammps"))
    engine = ContainerEngine(arch="amd64")
    attach_perf(engine, X86_CLUSTER)
    install_system_side_images(engine, X86_CLUSTER)

    # Null baseline (the shipped default) vs a live recorder spanning
    # every node and counter, interleaved round for round.
    tele = Telemetry()
    null_s, traced_s, overhead, (meta_null, meta_traced) = _ab_overhead(
        engine, layout, dist_tag,
        arm=lambda: install_telemetry(tele, engines=[engine]),
        disarm=lambda: uninstall_telemetry(engines=[engine]),
    )
    rows = [
        ("null (default)", f"{null_s:.4f}", "-",
         len(meta_null["executed_nodes"])),
        ("traced", f"{traced_s:.4f}", f"{overhead:+.1%}",
         len(meta_traced["executed_nodes"])),
    ]
    emit("telemetry_overhead",
         render_table(["telemetry", "seconds (mean of 9)", "overhead",
                       "executed"], rows))

    # Same work either way, and tracing really recorded the rebuild.
    assert meta_null["executed_nodes"] == meta_traced["executed_nodes"]
    assert tele.find_spans("rebuild.node")
    assert tele.metrics.value("rebuild_nodes_executed_total") > 0
    # The happy path stays within the 5% budget.
    assert overhead < 0.05, (
        f"telemetry costs {overhead:.1%} on the happy path "
        f"(null {null_s:.4f}s vs traced {traced_s:.4f}s)"
    )

    benchmark.pedantic(
        _one_cold_rebuild,
        args=(engine, layout, dist_tag),
        rounds=1, iterations=1,
    )


def test_controlplane_overhead(benchmark, emit):
    """Sampler + rules + profiler enabled end to end: still under 5%."""
    from repro.telemetry import ControlPlane

    user = ContainerEngine(arch="amd64")
    layout, dist_tag = build_extended_image(user, get_app("lammps"))
    engine = ContainerEngine(arch="amd64")
    attach_perf(engine, X86_CLUSTER)
    install_system_side_images(engine, X86_CLUSTER)

    tele = Telemetry()
    # An aggressive cadence so the sampler and rules genuinely run many
    # times during the rebuild (hundreds of samples, thousands of rule
    # evaluations), not once at finalize.
    controlplane = ControlPlane(tele, cadence=0.1)
    null_s, observed_s, overhead, (meta_null, meta_observed) = _ab_overhead(
        engine, layout, dist_tag,
        arm=lambda: install_telemetry(tele, engines=[engine]),
        disarm=lambda: uninstall_telemetry(engines=[engine]),
    )
    controlplane.finalize()

    rows = [
        ("null (default)", f"{null_s:.4f}", "-",
         len(meta_null["executed_nodes"])),
        ("control plane", f"{observed_s:.4f}", f"{overhead:+.1%}",
         len(meta_observed["executed_nodes"])),
        ("samples taken", controlplane.sampler.samples_taken, "-", "-"),
        ("rule evaluations",
         controlplane.rules.evaluations * len(controlplane.rules.rules),
         "-", "-"),
        ("profiled stacks", len(controlplane.profiler.hot_rows(10 ** 6)),
         "-", "-"),
    ]
    emit("controlplane_overhead",
         render_table(["control plane", "seconds (mean of 9)", "overhead",
                       "executed"], rows))

    assert meta_null["executed_nodes"] == meta_observed["executed_nodes"]
    # The control plane really ran: samples, rules and profiled cost.
    assert controlplane.sampler.samples_taken > 1
    assert controlplane.rules.evaluations == controlplane.sampler.samples_taken
    assert controlplane.profiler.total_ns() > 0
    assert controlplane.profiler.total_ns() == round(tele.clock.now * 1e9)
    assert overhead < 0.05, (
        f"control plane costs {overhead:.1%} "
        f"(null {null_s:.4f}s vs observed {observed_s:.4f}s)"
    )

    benchmark.pedantic(
        _one_cold_rebuild,
        args=(engine, layout, dist_tag),
        rounds=1, iterations=1,
    )
