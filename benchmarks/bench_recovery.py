"""Durable-recovery benchmarks — WAL replay, resume ratio, failover.

Three tables into ``benchmarks/results/`` (plus a machine-readable
``recovery.json`` twin):

* **WAL replay vs queue depth** — wall-clock cost of ``restart()``
  (salvage + replay) as the number of admitted-but-unfinished requests
  in the log grows.  Replay is linear in record count and milliseconds
  even for deep queues.
* **Restart vs cold re-execution** — a crash after the first dispatches
  resumes through per-request rebuild journals and ``+coMre``
  manifests: the restarted run re-executes a small fraction of the
  compile nodes a cold rerun would.
* **Failover promotion** — wall-clock latency of electing/promoting a
  mirror and the simulated cost of reconciling the demoted origin back
  in as a mirror.

Acceptance bar: durable mode (every admission/dispatch/terminal record
hashed and flushed to the WAL) costs < 5% wall-clock over the volatile
service on the same workload.
"""

import json
import os
import time

from repro.federation import FederatedRegistry
from repro.oci.blobs import Blob
from repro.oci.image import ImageConfig, Manifest
from repro.oci.layer import Layer, LayerEntry
from repro.reporting import render_table
from repro.service import AdaptationService, ServiceCrash
from repro.vfs import InlineContent

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

SEED = 23
APP_POOL = ("minimd", "hpccg", "comd", "lulesh")

#: Accumulated by each bench, flushed to ``recovery.json`` by the last.
_PAYLOAD = {}


def _emit_json(name, payload):
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.json"), "w",
              encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)


def _service(durable=False, crash_at=None, workers=8, queue_capacity=256):
    return AdaptationService(
        workers=workers, seed=SEED, queue_capacity=queue_capacity,
        durable=durable, crash_at=crash_at)


def _submit_burst(service, requests, window=None):
    service.add_tenant("acme", max_workers=8)
    for i in range(requests):
        at = (window * i / requests) if window else 0.01 * i
        service.submit("acme", APP_POOL[i % len(APP_POOL)], at=at)


def test_wal_replay_vs_queue_depth(emit):
    rows = []
    payload = []
    for depth in (4, 16, 64):
        service = _service(durable=True, crash_at=0.5)
        _submit_burst(service, depth)
        try:
            service.run()
        except ServiceCrash:
            pass
        records = len(service.wal.records)
        begin = time.perf_counter()
        restarted = service.restart()
        replay_ms = (time.perf_counter() - begin) * 1e3
        open_requests = restarted.wal.open_request_count()
        rows.append((depth, records, open_requests, f"{replay_ms:.2f}"))
        payload.append({
            "queue_depth": depth,
            "wal_records": records,
            "open_requests": open_requests,
            "replay_ms": round(replay_ms, 3),
        })
        report = restarted.run()
        assert len(report.outcomes) == depth
    emit("recovery_replay", render_table(
        ("queue depth", "WAL records", "open requests", "replay (ms)"),
        rows))
    _PAYLOAD["replay_vs_depth"] = payload


def test_restart_vs_cold_reexecution(emit):
    # Cold baseline: the same workload, no crash, no prior state.
    cold = _service()
    _submit_burst(cold, 12, window=60.0)
    cold_report = cold.run()
    cold_nodes = sum(o.executed_nodes for o in cold_report.outcomes)
    assert cold_nodes > 0

    # Crash mid-run, then restart: checkpointed work is never redone.
    crashed = _service(durable=True, crash_at=12.0)
    _submit_burst(crashed, 12, window=60.0)
    try:
        crashed.run()
    except ServiceCrash:
        pass
    restarted = crashed.restart()
    report = restarted.run()
    # Recovered outcomes carry their *pre-crash* node counts; only
    # non-recovered outcomes are work the restarted process did.
    restart_nodes = sum(o.executed_nodes for o in report.outcomes
                        if not o.recovered)
    recovered = sum(1 for o in report.outcomes if o.recovered)
    ratio = restart_nodes / cold_nodes
    table = render_table(("run", "executed nodes", "ratio vs cold"), [
        ("cold rerun", cold_nodes, "1.00"),
        ("crash+restart", restart_nodes, f"{ratio:.2f}"),
    ])
    emit("recovery_reexecution", table)
    assert ratio < 1.0, "restart re-executed at least as much as cold"
    _PAYLOAD["reexecution"] = {
        "cold_nodes": cold_nodes,
        "restart_nodes": restart_nodes,
        "ratio": round(ratio, 4),
        "recovered_outcomes": recovered,
    }


def _seeded_federation(mirrors=3):
    fed = FederatedRegistry()
    layer = Layer().add(LayerEntry.file(
        "/app/bin", InlineContent(b"payload-" * 2000), mode=0o755))
    config = ImageConfig(architecture="amd64", env=["PATH=/usr/bin"],
                         entrypoint=["/app/bin"])
    config.diff_ids.append(layer.digest)
    manifest = Manifest(config=config.descriptor(),
                        layers=[Blob.from_layer(layer).descriptor()])
    fed.push("app:dist", manifest, config, [layer])
    for i in range(mirrors):
        fed.add_mirror(f"edge-{i}")
        fed.sync_mirror(f"edge-{i}")
    return fed


def test_failover_promotion_latency(emit):
    rows = []
    payload = []
    for mirrors in (1, 3, 8):
        fed = _seeded_federation(mirrors=mirrors)
        begin = time.perf_counter()
        promotion = fed.fail_over()
        promote_ms = (time.perf_counter() - begin) * 1e3
        rejoin = fed.rejoin_demoted()
        rejoin_s = rejoin.simulated_seconds if rejoin is not None else 0.0
        rows.append((mirrors, promotion.elected, f"{promote_ms:.2f}",
                     f"{rejoin_s:.3f}"))
        payload.append({
            "mirrors": mirrors,
            "elected": promotion.elected,
            "promote_ms": round(promote_ms, 3),
            "rejoin_simulated_s": round(rejoin_s, 3),
        })
        assert fed.pull("app:dist") is not None
    emit("recovery_failover", render_table(
        ("mirrors", "elected", "promote (ms)", "rejoin sync (sim s)"),
        rows))
    _PAYLOAD["failover"] = payload


def test_durable_overhead_under_5pct(emit):
    """The WAL's whole-line digests + flushes on the admission/dispatch
    hot path must cost < 5% wall-clock (best-of-5 to damp scheduler
    noise; simulated seconds are identical by construction)."""

    def run_once(durable):
        service = _service(durable=durable)
        _submit_burst(service, 16, window=60.0)
        begin = time.process_time()   # CPU time: the sim never blocks
        report = service.run()
        return time.process_time() - begin, report

    # Warm-up (imports, first-touch caches), then interleaved best-of-7
    # so a background-load drift hits both modes alike.
    run_once(False)
    run_once(True)
    volatile_times, durable_times = [], []
    vol_report = dur_report = None
    for _ in range(7):
        elapsed, vol_report = run_once(False)
        volatile_times.append(elapsed)
        elapsed, dur_report = run_once(True)
        durable_times.append(elapsed)
    volatile, durable = min(volatile_times), min(durable_times)
    assert vol_report.simulated_seconds == dur_report.simulated_seconds
    overhead = durable / volatile - 1.0
    table = render_table(("mode", "best wall (s)", "overhead"), [
        ("volatile", f"{volatile:.3f}", "-"),
        ("durable", f"{durable:.3f}", f"{overhead:+.1%}"),
    ])
    emit("recovery_overhead", table)
    assert overhead < 0.05, f"durable WAL overhead {overhead:.1%} >= 5%"
    _PAYLOAD["durable_overhead"] = {
        "volatile_s": round(volatile, 4),
        "durable_s": round(durable, 4),
        "overhead": round(overhead, 4),
    }
    # Last bench in the module: flush the machine-readable twin.
    _emit_json("recovery", _PAYLOAD)
