"""Federation — bytes-on-wire of incremental mirror sync vs naive push.

The federated registry tier only earns its keep if keeping N edge
mirrors current costs a small fraction of naively re-pushing the whole
image to every mirror.  This bench fans an app's extended image out to
10 mirrors, then changes ONE layer (the common HPC case: a rebuilt
binary on an unchanged base) and measures what the manifest-first
incremental sync actually moves.

Asserted: the one-layer-changed incremental sync moves **< 20%** of the
bytes a naive full push to all 10 mirrors would move (ISSUE 6 acceptance
bar); in practice it is far below that.  Simulated sync time is charged
to the engine's :class:`SimulatedClock` at the configured bandwidth, so
the table also reports wall-clock-free sync times.
"""

import pytest

from repro.apps import get_app
from repro.containers import ContainerEngine
from repro.core.workflow import build_extended_image
from repro.federation import FederatedRegistry
from repro.oci.image import Manifest
from repro.oci.layer import Layer, LayerEntry
from repro.oci.blobs import Blob
from repro.reporting import render_table
from repro.vfs import InlineContent

MIRRORS = 10
APP = "hpccg"
ACCEPTANCE_FRACTION = 0.20


def _referenced_bytes(registry) -> int:
    """Serialized bytes of the referenced closure — what a naive full
    push would actually put on the wire (declared blob *sizes* model the
    padded multi-MB content and are not what transfers move)."""
    return sum(
        len(registry.blobs.try_get(d).as_bytes())
        for d in registry.referenced_digests()
        if registry.blobs.try_get(d) is not None
    )


def _one_layer_changed(fed, reference):
    """Repush *reference* with one small layer appended (a rebuilt
    artifact landing on an unchanged base image)."""
    resolved = fed.origin.pull(reference)
    patch = Layer().add(
        LayerEntry.file(
            "/opt/app/patched.o",
            InlineContent(b"rebuilt-object-code " * 40),
            mode=0o644,
        )
    )
    config = resolved.config.clone()
    config.diff_ids.append(patch.digest)
    manifest = Manifest(
        config=config.descriptor(),
        layers=list(resolved.manifest.layers)
        + [Blob.from_layer(patch).descriptor()],
    )
    fed.push(reference, manifest, config, resolved.layers + [patch])


@pytest.fixture(scope="module")
def federation():
    user = ContainerEngine(arch="amd64")
    layout, dist_tag = build_extended_image(user, get_app(APP))
    fed = FederatedRegistry(bandwidth=100e6)
    fed.push_layout(f"{APP}:dist", layout, tag=dist_tag)
    for i in range(MIRRORS):
        fed.add_mirror(f"edge-{i}")
    return fed


def test_incremental_sync_beats_naive_push(federation, emit):
    fed = federation
    reference = f"{APP}:dist"

    # Cold fan-out: every mirror needs the full image once.
    image_bytes = _referenced_bytes(fed.origin)
    naive_bytes = image_bytes * MIRRORS
    t0 = fed.clock.now
    cold = fed.sync_all()
    cold_bytes = sum(r.bytes_on_wire for r in cold.values())
    cold_seconds = fed.clock.now - t0
    assert all(fed.converged(m) for m in fed.mirrors.values())

    # One changed layer: the incremental sync should move only the new
    # layer + rewritten config/manifest, per mirror.
    _one_layer_changed(fed, reference)
    t0 = fed.clock.now
    warm = fed.sync_all()
    warm_bytes = sum(r.bytes_on_wire for r in warm.values())
    warm_seconds = fed.clock.now - t0
    assert all(fed.converged(m) for m in fed.mirrors.values())
    naive_after_change = _referenced_bytes(fed.origin) * MIRRORS

    fraction = warm_bytes / naive_after_change
    rows = [
        ("mirrors", MIRRORS),
        ("image bytes (origin)", image_bytes),
        ("cold fan-out bytes", cold_bytes),
        ("cold fan-out sim s", round(cold_seconds, 6)),
        ("naive full-push bytes (1 layer changed)", naive_after_change),
        ("incremental sync bytes (1 layer changed)", warm_bytes),
        ("incremental / naive", f"{fraction:.1%}"),
        ("incremental sync sim s", round(warm_seconds, 6)),
        ("chunks resumed", sum(r.chunks_resumed for r in warm.values())),
    ]
    emit("federation_sync", render_table(("federation sync", "value"), rows))

    # Cold fan-out is honest: it moves about one image per mirror.
    assert cold_bytes >= image_bytes * MIRRORS * 0.9
    # The acceptance bar: a one-layer change syncs for <20% of naive.
    assert fraction < ACCEPTANCE_FRACTION, (
        f"incremental sync moved {fraction:.1%} of naive "
        f"(bar: {ACCEPTANCE_FRACTION:.0%})"
    )


def test_up_to_date_sync_moves_nothing(federation):
    fed = federation
    reports = fed.sync_all()
    assert all(r.up_to_date for r in reports.values())
    assert sum(r.bytes_on_wire for r in reports.values()) == 0
