"""Ablation — LTO scope control.

DESIGN.md calls out the paper's claim that coMtainer "can flexibly
control [LTO's] scope since the whole build process is represented as an
explicit graph data" (§4.4).  This ablation sweeps the LTO scope over the
build graph of minimd (full / half of the objects / none) and checks that
execution time scales monotonically with LTO coverage, at rebuild costs
that grow with scope.
"""

import pytest

from repro.apps import get_app
from repro.containers import ContainerEngine
from repro.core.cache.storage import decode_cache
from repro.core.optimizations import lto_scope_excluding
from repro.core.workflow import (
    _run_rebuild,
    _run_redirect,
    build_extended_image,
    run_workload,
)
from repro.core.images import install_system_side_images
from repro.perf import attach_perf
from repro.reporting import render_table
from repro.sysmodel import X86_CLUSTER
from repro.toolchain.artifacts import read_artifact


@pytest.fixture(scope="module")
def setup():
    user = ContainerEngine(arch="amd64")
    layout, dist_tag = build_extended_image(user, get_app("minimd"))
    system_engine = ContainerEngine(arch="amd64")
    recorder = attach_perf(system_engine, X86_CLUSTER)
    install_system_side_images(system_engine, X86_CLUSTER, "vendor")
    return system_engine, layout, dist_tag, recorder


def _adapt_with_scope(setup, scope_arg, ref):
    engine, layout, dist_tag, recorder = setup
    args = ["--adapter=vendor"] + ([scope_arg] if scope_arg else [])
    _run_rebuild(engine, layout, X86_CLUSTER, "vendor", args)
    return _run_redirect(engine, layout, X86_CLUSTER, ref=ref)


def test_lto_scope_sweep(benchmark, setup, emit):
    engine, layout, dist_tag, recorder = setup
    models, _, _ = decode_cache(layout, dist_tag)
    # LTO scope is command-granular (multi-source compiles); exclude the
    # objects of one whole compile command.
    by_command = {}
    for node in models.graph.nodes("object"):
        key = (tuple(node.step.argv), node.step.cwd)
        by_command.setdefault(key, []).append(node.id)
    excluded = sorted(by_command.values(), key=len)[-1]
    half_scope = lto_scope_excluding(models.graph, excluded)

    results = []
    for label, scope_arg, ref in [
        ("none", None, "minimd:lto-none"),
        ("half", "--lto-scope=" + ",".join(half_scope), "minimd:lto-half"),
        ("full", "--lto", "minimd:lto-full"),
    ]:
        image_ref = _adapt_with_scope(setup, scope_arg, ref)
        exe = read_artifact(engine.image_filesystem(image_ref).read_file("/app/minimd"))
        report = run_workload(engine, image_ref, "minimd", recorder,
                              vendor_mpirun=True)
        results.append((label, exe.lto_coverage, report.seconds))

    emit(
        "ablation_lto_scope",
        render_table(["scope", "lto coverage", "time (s)"], results),
    )
    coverages = [c for _, c, _ in results]
    times = [t for _, _, t in results]
    assert coverages == sorted(coverages)
    assert coverages[0] == 0.0 and coverages[-1] == 1.0
    assert 0.0 < coverages[1] < 1.0
    # minimd has a positive LTO response: more coverage, faster.
    assert times == sorted(times, reverse=True)

    benchmark.pedantic(
        _adapt_with_scope, args=(setup, "--lto", "minimd:lto-bench"),
        rounds=1, iterations=1,
    )
