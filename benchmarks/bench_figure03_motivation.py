"""Figure 3 — the motivation experiment.

Single-node LULESH: the generic image versus incrementally optimized
native variants (library replacement, native toolchain, LTO, PGO) on both
testbed systems.  Paper shape: libo+cxxo recover up to 50% (x86-64) /
72% (AArch64) of the time; LTO then removes a further 17.5% and PGO 9.6%.

The model-level series uses idealized per-scheme provenance; the
pipeline-level series builds and runs actual images (original ->
library-only replacement -> coMtainer-adapted -> LTO+PGO-optimized).
"""

import pytest

from repro.reporting import (
    FIG3_PAPER,
    figure3_pipeline_rows,
    figure3_rows,
    render_table,
)
from repro.sysmodel import AARCH64_CLUSTER, X86_CLUSTER


def _series_table(system):
    rows = figure3_rows(system)
    return render_table(
        ["scheme", "time (s)", "reduction vs original"],
        [(s, t, r) for s, t, r in rows],
    ), rows


def test_figure3_model_series_x86(benchmark, emit):
    table, rows = benchmark(_series_table, X86_CLUSTER)
    emit("figure03_x86", table)
    by_scheme = {s: t for s, t, _ in rows}
    cxxo_reduction = 1 - by_scheme["cxxo"] / by_scheme["original"]
    assert cxxo_reduction == pytest.approx(
        FIG3_PAPER["x86"]["cxxo_vs_original"], abs=0.03
    )
    lto_step = 1 - by_scheme["lto"] / by_scheme["cxxo"]
    pgo_step = 1 - by_scheme["pgo"] / by_scheme["lto"]
    assert lto_step == pytest.approx(FIG3_PAPER["x86"]["lto_vs_prev"], abs=0.02)
    assert pgo_step == pytest.approx(FIG3_PAPER["x86"]["pgo_vs_prev"], abs=0.02)


def test_figure3_model_series_arm(benchmark, emit):
    table, rows = benchmark(_series_table, AARCH64_CLUSTER)
    emit("figure03_arm", table)
    by_scheme = {s: t for s, t, _ in rows}
    cxxo_reduction = 1 - by_scheme["cxxo"] / by_scheme["original"]
    assert cxxo_reduction == pytest.approx(
        FIG3_PAPER["arm"]["cxxo_vs_original"], abs=0.03
    )


def test_figure3_pipeline_x86(benchmark, x86_session, emit):
    rows = benchmark.pedantic(
        figure3_pipeline_rows, args=(x86_session,), rounds=1, iterations=1
    )
    emit(
        "figure03_pipeline_x86",
        render_table(["image", "time (s)"], rows),
    )
    times = dict(rows)
    assert times["optimized"] < times["adapted"] < times["original"]
    # Full recovery at single node is ~50% on x86 (adapted lacks the
    # hand-tuned flags of a native build, so slightly under).
    assert 1 - times["adapted"] / times["original"] == pytest.approx(0.48, abs=0.05)
