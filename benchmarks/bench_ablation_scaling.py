"""Ablation — strong scaling and the communication crossover.

The paper explains LULESH's small 16-node x86 improvement by
communication dominance at scale (§5.2) and its huge AArch64 improvement
by the MPI network plugin.  This ablation sweeps node counts through the
pipeline images and shows both effects: on x86-64 the adaptation gain
*shrinks* with scale; on AArch64 the original image's scaling degrades
so badly that adaptation gain *grows* with scale.
"""

import pytest

from repro.core.workflow import run_workload
from repro.reporting import render_table

NODE_COUNTS = (1, 2, 4, 8, 16)


def _sweep(session, emit, name):
    original = session.original_image("lulesh")
    adapted = session.adapted_image("lulesh")
    rows = []
    improvements = []
    for nodes in NODE_COUNTS:
        t_orig = run_workload(session.system_engine, original, "lulesh",
                              session.recorder, nodes=nodes).seconds
        t_adpt = run_workload(session.system_engine, adapted, "lulesh",
                              session.recorder, nodes=nodes,
                              vendor_mpirun=True).seconds
        improvement = t_orig / t_adpt - 1
        improvements.append(improvement)
        rows.append((nodes, t_orig, t_adpt, f"{improvement:+.1%}"))
    emit(name, render_table(
        ["nodes", "original (s)", "adapted (s)", "improvement"], rows
    ))
    return improvements


def test_scaling_x86(benchmark, x86_session, emit):
    improvements = benchmark.pedantic(
        _sweep, args=(x86_session, emit, "ablation_scaling_x86"),
        rounds=1, iterations=1,
    )
    # Gain shrinks with scale (comm dominates, x86 generic MPI is fine).
    assert improvements[0] > improvements[-1]
    assert improvements[0] == pytest.approx(0.92, abs=0.15)   # ~cxxo at 1 node
    assert improvements[-1] == pytest.approx(0.15, abs=0.05)  # paper's +15.6%


def test_scaling_arm(benchmark, arm_session, emit):
    improvements = benchmark.pedantic(
        _sweep, args=(arm_session, emit, "ablation_scaling_arm"),
        rounds=1, iterations=1,
    )
    # On AArch64 the total gain is large at every scale (Fig 3's 72%
    # single-node reduction ~ Fig 9's +231% at 16 nodes).
    assert improvements[-1] == pytest.approx(2.31, abs=0.2)   # paper's +231%
    assert min(improvements) > 2.0

    # The *library-only* (MPI plugin) share of the gain grows with scale:
    # it is zero at one node and carries the 16-node communication story.
    from repro.core.workflow import library_only_adapt, run_workload

    session = arm_session
    original = session.original_image("lulesh")
    libo = library_only_adapt(session.system_engine, original, session.system,
                              ref="lulesh:libo-sweep")
    libo_gains = []
    for nodes in (1, 4, 16):
        t_orig = run_workload(session.system_engine, original, "lulesh",
                              session.recorder, nodes=nodes).seconds
        t_libo = run_workload(session.system_engine, libo, "lulesh",
                              session.recorder, nodes=nodes,
                              vendor_mpirun=True).seconds
        libo_gains.append(t_orig / t_libo - 1)
    assert libo_gains == sorted(libo_gains)
    assert libo_gains[0] == pytest.approx(0.0, abs=0.02)
