"""Adaptation-service throughput — latency vs tenant count, dedup ratio.

Two tables into ``benchmarks/results/``:

* ``service_throughput`` — a seeded arrival mix swept over tenant
  counts: simulated requests/sec, p50/p99 latency, and how much rebuild
  node-work the shared cross-tenant cache absorbed.  More tenants over
  the same app pool means more identical work in flight, so throughput
  *rises* with tenant count while p99 stays bounded — the shared cache
  and single-flight dedup convert contention into reuse.
* ``service_dedup`` — warm vs cold shared cache on the same three-
  tenant workload: dedup ratio, executed compile nodes, simulated
  makespan.  The acceptance bar is >= 50% of node-work deduped when
  tenants share an app.

Simulated seconds, not wall-clock: the numbers are deterministic for a
seed, so the written tables are stable across runs and machines.
"""

import random

from repro.reporting import render_table
from repro.service import AdaptationService

APP_POOL = ("minimd", "hpccg", "comd")
REQUESTS_PER_TENANT = 4
WINDOW = 60.0
TENANT_SWEEP = (1, 2, 4)
SEED = 17


def _run_mix(tenants: int, seed: int = SEED):
    service = AdaptationService(workers=8, seed=seed, queue_capacity=64)
    rng = random.Random(f"bench-service:{seed}:{tenants}")
    for i in range(tenants):
        service.add_tenant(f"tenant-{i}", max_workers=4)
    for i in range(tenants):
        for _ in range(REQUESTS_PER_TENANT):
            service.submit(f"tenant-{i}", rng.choice(APP_POOL),
                           at=rng.uniform(0.0, WINDOW))
    return service.run()


def test_service_throughput_vs_tenants(emit):
    rows = []
    for tenants in TENANT_SWEEP:
        report = _run_mix(tenants)
        done = [o for o in report.outcomes
                if o.status in ("completed", "degraded")]
        assert len(done) == tenants * REQUESTS_PER_TENANT
        latencies = sorted(o.latency for o in done)
        span = max(report.simulated_seconds, 1e-9)
        rows.append((
            tenants,
            len(done),
            len(done) / span,
            latencies[len(latencies) // 2],
            latencies[-1 if len(latencies) < 100
                      else int(0.99 * len(latencies)) - 1],
            f"{report.dedup_ratio:.1%}",
            report.deduped_requests,
        ))
    table = render_table(
        ("tenants", "requests", "req/sim-s", "p50 (s)", "p99 (s)",
         "cache dedup", "in-flight dedup"),
        rows,
    )
    emit("service_throughput", table)
    # Dedup must not *fall* as tenants multiply identical work.
    first, last = rows[0], rows[-1]
    assert float(last[5].rstrip("%")) >= float(first[5].rstrip("%"))


def test_service_warm_cache_dedup(emit):
    app = "lammps"

    def run(shared_tenants):
        service = AdaptationService(workers=8, seed=SEED)
        for i in range(shared_tenants):
            service.add_tenant(f"t{i}", max_workers=4)
            service.submit(f"t{i}", app, at=0.0)
        return service.run()

    cold = run(1)
    warm = run(3)
    rows = [
        ("cold (1 tenant)",
         sum(o.executed_nodes for o in cold.outcomes),
         sum(o.cache_hit_nodes for o in cold.outcomes),
         f"{cold.dedup_ratio:.1%}",
         cold.simulated_seconds),
        ("warm (3 tenants)",
         sum(o.executed_nodes for o in warm.outcomes),
         sum(o.cache_hit_nodes for o in warm.outcomes),
         f"{warm.dedup_ratio:.1%}",
         warm.simulated_seconds),
    ]
    table = render_table(
        ("shared cache", "executed nodes", "cached nodes", "dedup",
         "sim makespan (s)"),
        rows,
    )
    emit("service_dedup", table)
    assert warm.dedup_ratio >= 0.5
    # 3x the tenants must not cost 3x the compile work.
    assert (sum(o.executed_nodes for o in warm.outcomes)
            < 2 * sum(o.executed_nodes for o in cold.outcomes))
