"""Integrity — happy-path overhead of verified reads.

Every ``BlobStore.get`` re-hashes content against its declared digest
(memoized per digest) so corruption can never flow silently into a
rebuild.  That guarantee is only affordable if it costs (almost) nothing
when every blob is intact: this bench times a cold ``coMtainer-rebuild``
with verification disabled and enabled and asserts the verified path
stays within 5% of the unverified baseline.  An fsck scan of the full
layout is timed alongside for reference.
"""

import time

from repro.apps import get_app
from repro.containers import ContainerEngine
from repro.core.cache.storage import decode_rebuild, extended_tag
from repro.core.frontend.build import IO_MOUNT
from repro.core.images import install_system_side_images, sysenv_ref
from repro.core.workflow import build_extended_image
from repro.integrity.fsck import fsck_layout
from repro.oci import blobs as blobs_mod
from repro.oci.layout import OCILayout
from repro.perf import attach_perf
from repro.reporting import render_table
from repro.sysmodel import X86_CLUSTER

ROUNDS = 5


def _fresh_copy(layout, dist_tag):
    fresh = OCILayout()
    for tag in (dist_tag, extended_tag(dist_tag)):
        resolved = layout.resolve(tag)
        fresh.add_manifest(resolved.manifest, resolved.config, resolved.layers,
                           tag=tag)
    return fresh


def _timed_cold_rebuild(engine, layout, dist_tag):
    """Best-of-ROUNDS cold rebuild; returns (seconds, meta)."""
    best = None
    meta = None
    for _ in range(ROUNDS):
        fresh = _fresh_copy(layout, dist_tag)
        ctr = engine.from_image(sysenv_ref("x86"), name="int-bench",
                                mounts={IO_MOUNT: fresh})
        try:
            t0 = time.perf_counter()
            engine.run(ctr, ["coMtainer-rebuild"]).check()
            elapsed = time.perf_counter() - t0
        finally:
            engine.remove_container("int-bench")
        if best is None or elapsed < best:
            best = elapsed
            meta = decode_rebuild(fresh, dist_tag)[0]
    return best, meta


def test_integrity_verified_read_overhead(benchmark, emit):
    user = ContainerEngine(arch="amd64")
    layout, dist_tag = build_extended_image(user, get_app("lammps"))
    engine = ContainerEngine(arch="amd64")
    attach_perf(engine, X86_CLUSTER)
    install_system_side_images(engine, X86_CLUSTER)

    # Unverified baseline: new blob stores skip the read-time re-hash.
    assert blobs_mod.VERIFY_READS_DEFAULT is True
    blobs_mod.VERIFY_READS_DEFAULT = False
    try:
        off, meta_off = _timed_cold_rebuild(engine, layout, dist_tag)
    finally:
        blobs_mod.VERIFY_READS_DEFAULT = True
    on, meta_on = _timed_cold_rebuild(engine, layout, dist_tag)

    t0 = time.perf_counter()
    report = fsck_layout(_fresh_copy(layout, dist_tag))
    fsck_seconds = time.perf_counter() - t0
    assert report.clean

    overhead = on / off - 1.0
    rows = [
        ("verified reads off", f"{off:.4f}", "-",
         len(meta_off["executed_nodes"])),
        ("verified reads on", f"{on:.4f}", f"{overhead:+.1%}",
         len(meta_on["executed_nodes"])),
        ("fsck scan (full layout)", f"{fsck_seconds:.4f}", "-",
         report.scanned),
    ]
    emit("integrity_overhead",
         render_table(["configuration", "seconds (best of 5)", "overhead",
                       "executed / scanned"], rows))

    # Identical work either way...
    assert meta_off["executed_nodes"] == meta_on["executed_nodes"]
    # ...and the verified-read guarantee stays under the 5% budget.
    assert overhead < 0.05, (
        f"verified reads cost {overhead:.1%} on the happy path "
        f"(unverified {off:.4f}s vs verified {on:.4f}s)"
    )

    benchmark.pedantic(
        _timed_cold_rebuild,
        args=(engine, layout, dist_tag),
        rounds=1, iterations=1,
    )
