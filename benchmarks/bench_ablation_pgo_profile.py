"""Ablation — PGO profile representativeness.

The paper motivates the system-side PGO loop with "the difficulty of
defining 'typical' input data for profiling" and PGO being "highly
sensitive to the target system's characteristics" (§4.4).  This ablation
rebuilds openmx with (a) a matched profile (gathered by the same
workload on the same system), (b) a cross-system profile, and (c) a
wrong-workload profile, and verifies the gain decays accordingly.
"""

import pytest

from repro.apps import get_app
from repro.containers import ContainerEngine
from repro.core.images import install_system_side_images
from repro.core.optimizations import profile_bytes_for
from repro.core.workflow import (
    _run_rebuild,
    _run_redirect,
    build_extended_image,
    run_workload,
)
from repro.perf import attach_perf
from repro.reporting import render_table
from repro.sysmodel import X86_CLUSTER

WORKLOAD = "openmx.pt13"


@pytest.fixture(scope="module")
def setup():
    user = ContainerEngine(arch="amd64")
    layout, dist_tag = build_extended_image(user, get_app("openmx"))
    engine = ContainerEngine(arch="amd64")
    recorder = attach_perf(engine, X86_CLUSTER)
    install_system_side_images(engine, X86_CLUSTER, "vendor")
    return engine, layout, recorder


def _adapt_with_profile(setup, profile_bytes, ref):
    engine, layout, recorder = setup
    _run_rebuild(engine, layout, X86_CLUSTER, "vendor",
                 ["--adapter=vendor"], profile_bytes=profile_bytes)
    return _run_redirect(engine, layout, X86_CLUSTER, ref=ref)


def test_pgo_profile_quality(benchmark, setup, emit):
    engine, layout, recorder = setup
    variants = [
        ("matched", profile_bytes_for(WORKLOAD, "x86")),
        ("cross-system", profile_bytes_for(WORKLOAD, "arm")),
        ("wrong-workload", profile_bytes_for("hpl", "x86")),
    ]
    rows = []
    baseline_ref = _adapt_with_profile(setup, None, "openmx:pgo-off")
    baseline = run_workload(engine, baseline_ref, WORKLOAD, recorder,
                            vendor_mpirun=True).seconds
    rows.append(("no PGO", baseline, 0.0))
    times = {}
    for label, profile in variants:
        ref = _adapt_with_profile(setup, profile, f"openmx:pgo-{label}")
        seconds = run_workload(engine, ref, WORKLOAD, recorder,
                               vendor_mpirun=True).seconds
        times[label] = seconds
        rows.append((label, seconds, 1 - seconds / baseline))

    emit("ablation_pgo_profile",
         render_table(["profile", "time (s)", "gain vs no-PGO"], rows))

    # Matched profile gives the full gain; representativeness decays it.
    assert times["matched"] < times["cross-system"] < times["wrong-workload"]
    assert times["wrong-workload"] < baseline  # residual generic benefit
    full_gain = 1 - times["matched"] / baseline
    stale_gain = 1 - times["cross-system"] / baseline
    assert stale_gain == pytest.approx(full_gain * 0.5, rel=0.15)

    benchmark.pedantic(
        _adapt_with_profile,
        args=(setup, profile_bytes_for(WORKLOAD, "x86"), "openmx:pgo-bench"),
        rounds=1, iterations=1,
    )
