"""Parallel rebuild — wavefront makespan scaling and artifact-cache reuse.

Three checks on the scheduler work:

* simulated makespan scales with ``--jobs``: the lammps rebuild at
  ``--jobs=8`` must finish in at most half the ``--jobs=1`` simulated
  time (the graph is wide: one wavefront holds every translation unit);
* a warm artifact cache turns the second cold rebuild of the same image
  into pure cache service — zero executed compile nodes;
* the machinery costs (almost) nothing when unused: a ``--jobs=1``
  rebuild with the cache enabled stays within 5% wall-clock of
  ``--no-cache``.
"""

import re
import time

import pytest

from repro.apps import get_app
from repro.containers import ContainerEngine
from repro.core.cache.artifacts import attach_artifact_cache, publish_artifact_cache
from repro.core.cache.storage import decode_rebuild, extended_tag
from repro.core.frontend.build import IO_MOUNT
from repro.core.images import install_system_side_images, sysenv_ref
from repro.core.workflow import build_extended_image
from repro.oci.layout import OCILayout
from repro.oci.registry import ImageRegistry
from repro.perf import attach_perf
from repro.reporting import render_table
from repro.sysmodel import X86_CLUSTER

ROUNDS = 5
JOBS_SWEEP = (1, 2, 4, 8)

_SCHEDULE = re.compile(
    r"schedule jobs=(?P<jobs>\d+) wavefronts=(?P<waves>\d+) "
    r"width=(?P<width>\d+) makespan=(?P<makespan>[\d.]+)s "
    r"serial=(?P<serial>[\d.]+)s speedup=(?P<speedup>[\d.]+)x"
)


def _fresh_copy(layout, dist_tag):
    fresh = OCILayout()
    for tag in (dist_tag, extended_tag(dist_tag)):
        resolved = layout.resolve(tag)
        fresh.add_manifest(resolved.manifest, resolved.config, resolved.layers,
                           tag=tag)
    return fresh


def _rebuild(engine, layout, args):
    ctr = engine.from_image(sysenv_ref("x86"), name="par-bench",
                            mounts={IO_MOUNT: layout})
    try:
        return engine.run(ctr, ["coMtainer-rebuild"] + args).check().stdout
    finally:
        engine.remove_container("par-bench")


def _schedule_stats(stdout):
    match = _SCHEDULE.search(stdout)
    assert match, f"no schedule line in: {stdout!r}"
    return {key: float(val) for key, val in match.groupdict().items()}


def _setup():
    user = ContainerEngine(arch="amd64")
    layout, dist_tag = build_extended_image(user, get_app("lammps"))
    engine = ContainerEngine(arch="amd64")
    attach_perf(engine, X86_CLUSTER)
    install_system_side_images(engine, X86_CLUSTER)
    return engine, layout, dist_tag


def test_makespan_scales_with_jobs(benchmark, emit):
    engine, layout, dist_tag = _setup()
    rows, stats = [], {}
    for jobs in JOBS_SWEEP:
        fresh = _fresh_copy(layout, dist_tag)
        out = _rebuild(engine, fresh,
                       ["--adapter=vendor", "--no-cache", f"--jobs={jobs}"])
        s = stats[jobs] = _schedule_stats(out)
        rows.append((jobs, int(s["waves"]), int(s["width"]),
                     f"{s['makespan']:.3f}", f"{s['serial']:.3f}",
                     f"{s['speedup']:.2f}x"))
    emit("parallel_rebuild_makespan",
         render_table(["jobs", "wavefronts", "max width", "makespan (s)",
                       "serial (s)", "speedup"], rows))

    # Serial work is jobs-independent; only its packing changes.
    serials = {s["serial"] for s in stats.values()}
    assert len(serials) == 1
    assert stats[1]["makespan"] == pytest.approx(stats[1]["serial"])
    # Acceptance: 8 workers at least halve the simulated rebuild time.
    assert stats[8]["makespan"] * 2 <= stats[1]["makespan"], (
        f"jobs=8 makespan {stats[8]['makespan']:.3f}s is not 2x better "
        f"than jobs=1 {stats[1]['makespan']:.3f}s"
    )

    benchmark.pedantic(
        _rebuild,
        args=(engine, _fresh_copy(layout, dist_tag),
              ["--adapter=vendor", "--no-cache", "--jobs=8"]),
        rounds=1, iterations=1,
    )


def test_warm_cache_skips_every_compile(emit):
    engine, layout, dist_tag = _setup()

    cold = _fresh_copy(layout, dist_tag)
    t0 = time.perf_counter()
    _rebuild(engine, cold, ["--adapter=vendor"])
    cold_s = time.perf_counter() - t0
    cold_meta = decode_rebuild(cold, dist_tag)[0]

    registry = ImageRegistry()
    assert publish_artifact_cache(registry, "repro/lammps", cold, dist_tag)
    warm = _fresh_copy(layout, dist_tag)
    assert attach_artifact_cache(warm, registry, "repro/lammps", dist_tag)
    t0 = time.perf_counter()
    _rebuild(engine, warm, ["--adapter=vendor"])
    warm_s = time.perf_counter() - t0
    warm_meta = decode_rebuild(warm, dist_tag)[0]

    rows = [
        ("cold", f"{cold_s:.4f}", len(cold_meta["executed_nodes"]),
         len(cold_meta["cache_hits"])),
        ("warm (shared cache)", f"{warm_s:.4f}",
         len(warm_meta["executed_nodes"]), len(warm_meta["cache_hits"])),
    ]
    emit("parallel_rebuild_cache",
         render_table(["rebuild", "seconds", "executed", "cache hits"], rows))

    assert warm_meta["executed_nodes"] == []
    assert len(warm_meta["cache_hits"]) == len(warm_meta["node_commands"])


def test_scheduler_and_cache_overhead(emit):
    engine, layout, dist_tag = _setup()

    def best_of(args):
        best, meta = None, None
        for _ in range(ROUNDS):
            fresh = _fresh_copy(layout, dist_tag)
            t0 = time.perf_counter()
            _rebuild(engine, fresh, args)
            elapsed = time.perf_counter() - t0
            if best is None or elapsed < best:
                best, meta = elapsed, decode_rebuild(fresh, dist_tag)[0]
        return best, meta

    plain, meta_plain = best_of(["--adapter=vendor", "--no-cache"])
    cached, meta_cached = best_of(["--adapter=vendor"])
    overhead = cached / plain - 1.0
    rows = [
        ("--no-cache", f"{plain:.4f}", "-"),
        ("cache enabled", f"{cached:.4f}", f"{overhead:+.1%}"),
    ]
    emit("parallel_rebuild_overhead",
         render_table(["jobs=1 rebuild", "seconds (best of 5)", "overhead"],
                      rows))

    assert meta_plain["executed_nodes"] == meta_cached["executed_nodes"]
    assert overhead < 0.05, (
        f"cache bookkeeping costs {overhead:.1%} on a cold jobs=1 rebuild "
        f"(plain {plain:.4f}s vs cached {cached:.4f}s)"
    )
