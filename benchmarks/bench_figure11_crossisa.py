"""Figure 11 — cross-ISA build-script line changes.

For every application that can cross ISAs (§5.5), compare the build
script modifications coMtainer needs (strip/retarget ISA-pinned flag
lines, audit guarded asm, retarget the base image) against a conventional
cross-compilation port.  Paper shape: ~5 lines with coMtainer vs ~47 with
cross-building — about 10% of the effort.
"""

import statistics

import pytest

from repro.containers import ContainerEngine
from repro.reporting import figure11_reports, figure11_rows, render_table

HEADERS = ["app", "coM +", "coM -", "xbuild +", "xbuild -"]


@pytest.fixture(scope="module")
def reports():
    return figure11_reports(ContainerEngine(arch="amd64"))


def test_figure11(benchmark, reports, emit):
    rows = figure11_rows(reports)
    emit("figure11", render_table(HEADERS, rows))

    assert all(report.can_cross for report in reports)
    comtainer_avg = statistics.mean(r.comtainer_total for r in reports)
    xbuild_avg = statistics.mean(r.xbuild_total for r in reports)
    assert comtainer_avg == pytest.approx(5, abs=2.5)
    assert xbuild_avg == pytest.approx(47, rel=0.2)
    assert comtainer_avg / xbuild_avg == pytest.approx(0.10, abs=0.05)

    # The benchmarked operation: one cross-ISA analysis.
    from repro.core.cache.storage import decode_cache
    from repro.core.crossisa import analyze_cross_isa
    from repro.core.workflow import build_extended_image
    from repro.apps import get_app

    engine = ContainerEngine(arch="amd64")
    layout, dist_tag = build_extended_image(engine, get_app("hpl"))
    models, sources, _ = decode_cache(layout, dist_tag)
    benchmark(analyze_cross_isa, models, sources, "aarch64", "hpl")


def test_large_apps_blocked(benchmark, emit):
    """lammps/openmx carry unguarded arch-specific kernels: they are the
    images that 'fail due to ISA-specific contents' in §5.5."""
    blocked = benchmark.pedantic(
        figure11_reports,
        args=(ContainerEngine(arch="amd64"),),
        kwargs={"apps": ("lammps", "openmx")},
        rounds=1, iterations=1,
    )
    for report in blocked:
        assert not report.can_cross, report.app
        assert any(issue.blocking for issue in report.issues)
