"""Table 2 — the evaluated workloads and their LoC.

The benchmark times synthetic source-tree generation for the whole
application set (the user-side "build context" cost).
"""

from repro.apps import APPS, build_context, get_app
from repro.perf.workloads import WORKLOADS
from repro.reporting import render_table, table2_rows


def test_table2(benchmark, emit):
    rows = table2_rows()
    emit("table02", render_table(["App", "Wkld", "LoC"], rows))

    assert len(rows) == 18
    loc = {(app, wkld): n for app, wkld, n in rows}
    # Table 2 anchors.
    assert loc[("hpl", "hpl")] == 37556
    assert loc[("hpcg", "hpcg")] == 5529
    assert loc[("lulesh", "lulesh")] == 5546
    assert loc[("comd", "comd")] == 4668
    assert loc[("hpccg", "hpccg")] == 1563
    assert loc[("miniaero", "miniaero")] == 42056
    assert loc[("miniamr", "miniamr")] == 9957
    assert loc[("minife", "minife")] == 28010
    assert loc[("minimd", "minimd")] == 4404
    assert loc[("lammps", "chain")] == 2273423
    assert loc[("openmx", "pt13")] == 287381

    def generate_all_contexts():
        for app in APPS:
            build_context(get_app(app), "amd64")

    benchmark(generate_all_contexts)
