"""Figure 9 — performance retention across all 18 workloads (both systems).

Every workload is built, distributed, adapted and executed through the
full pipeline under the four schemes of §5.1.3.  Shape assertions mirror
§5.2: native/adapted/optimized beat original everywhere except hpccg;
adapted lands within a few percent of native; the per-system averages and
headline outliers match the paper.

The benchmarked operation is one complete four-scheme measurement of a
fresh workload through the already-warm session.
"""

import statistics

import pytest

from repro.core.workflow import measure_schemes
from repro.reporting import figure9_rows, render_table

HEADERS = ["workload", "original", "native", "adapted", "optimized",
           "orig/native", "paper"]


def _check_shape(result):
    for workload, times in result.times.items():
        if workload == "hpccg":
            assert times["native"] > times["original"]
        else:
            assert times["native"] < times["original"], workload
        assert times["adapted"] == pytest.approx(times["native"], rel=0.12)


def test_figure9_x86(benchmark, x86_session, x86_figure9, emit):
    emit("figure09_x86", render_table(HEADERS, figure9_rows(x86_figure9)))
    _check_shape(x86_figure9)
    averages = x86_figure9.averages()
    # §5.2: native avg 21.35 s, adapted avg 22.0 s on the x86-64 system.
    assert averages["native"] == pytest.approx(21.35, rel=0.02)
    assert averages["adapted"] == pytest.approx(22.0, rel=0.04)
    improvements = [x86_figure9.improvement(w) for w in x86_figure9.times]
    assert statistics.mean(improvements) == pytest.approx(0.963, abs=0.12)
    # lammps shows the maximum improvement (+253%).
    best = max(x86_figure9.times, key=x86_figure9.improvement)
    assert best.startswith("lammps")
    assert x86_figure9.improvement(best) == pytest.approx(2.53, abs=0.1)
    # lulesh is communication-dominated at 16 nodes: only ~+15.6%.
    assert x86_figure9.improvement("lulesh") == pytest.approx(0.156, abs=0.03)

    benchmark.pedantic(
        measure_schemes, args=(x86_session, "comd"), rounds=1, iterations=1
    )


def test_figure9_arm(benchmark, arm_session, arm_figure9, emit):
    emit("figure09_arm", render_table(HEADERS, figure9_rows(arm_figure9)))
    _check_shape(arm_figure9)
    averages = arm_figure9.averages()
    # §5.2: native avg 67.0 s, adapted avg 69.7 s on the AArch64 system.
    assert averages["native"] == pytest.approx(67.0, rel=0.02)
    assert averages["adapted"] == pytest.approx(69.7, rel=0.04)
    improvements = [arm_figure9.improvement(w) for w in arm_figure9.times]
    assert statistics.mean(improvements) == pytest.approx(0.665, abs=0.12)
    # The MPI network plugin makes lulesh the AArch64 outlier (+231%).
    assert arm_figure9.improvement("lulesh") == pytest.approx(2.31, abs=0.1)

    benchmark.pedantic(
        measure_schemes, args=(arm_session, "comd"), rounds=1, iterations=1
    )
