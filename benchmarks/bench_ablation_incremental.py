"""Ablation — incremental re-rebuild cost.

"The rebuilding and redirecting can be performed many times during the
image's lifetime" (§4.1): repeated rebuilds with unchanged commands reuse
the previous node outputs.  This ablation times a cold rebuild of LAMMPS
(the largest app) against a warm identical rebuild and a warm rebuild
with changed options.
"""

import time

import pytest

from repro.apps import get_app
from repro.containers import ContainerEngine
from repro.core.cache.storage import decode_rebuild
from repro.core.frontend.build import IO_MOUNT
from repro.core.images import install_system_side_images, sysenv_ref
from repro.core.workflow import build_extended_image
from repro.perf import attach_perf
from repro.reporting import render_table
from repro.sysmodel import X86_CLUSTER


def _timed_rebuild(engine, layout, args):
    ctr = engine.from_image(sysenv_ref("x86"), name="inc-bench",
                            mounts={IO_MOUNT: layout})
    try:
        t0 = time.perf_counter()
        engine.run(ctr, ["coMtainer-rebuild"] + args).check()
        return time.perf_counter() - t0
    finally:
        engine.remove_container("inc-bench")


def test_incremental_rebuild_cost(benchmark, emit):
    user = ContainerEngine(arch="amd64")
    layout, dist_tag = build_extended_image(user, get_app("lammps"))
    engine = ContainerEngine(arch="amd64")
    attach_perf(engine, X86_CLUSTER)
    install_system_side_images(engine, X86_CLUSTER)

    cold = _timed_rebuild(engine, layout, ["--adapter=vendor"])
    meta_cold, _, _, _ = decode_rebuild(layout, dist_tag)
    warm = _timed_rebuild(engine, layout, ["--adapter=vendor"])
    meta_warm, _, _, _ = decode_rebuild(layout, dist_tag)
    changed = _timed_rebuild(engine, layout, ["--adapter=vendor", "--lto"])
    meta_changed, _, _, _ = decode_rebuild(layout, dist_tag)

    rows = [
        ("cold", cold, len(meta_cold["executed_nodes"]),
         len(meta_cold["reused_nodes"])),
        ("warm (identical)", warm, len(meta_warm["executed_nodes"]),
         len(meta_warm["reused_nodes"])),
        ("warm (+LTO)", changed, len(meta_changed["executed_nodes"]),
         len(meta_changed["reused_nodes"])),
    ]
    emit("ablation_incremental",
         render_table(["rebuild", "seconds", "executed", "reused"], rows))

    assert meta_cold["reused_nodes"] == []
    assert meta_warm["executed_nodes"] == []
    assert len(meta_warm["reused_nodes"]) == len(meta_cold["executed_nodes"])
    assert meta_changed["reused_nodes"] == []   # -flto invalidates everything
    assert warm < cold

    benchmark.pedantic(
        _timed_rebuild, args=(engine, layout, ["--adapter=vendor", "--lto"]),
        rounds=1, iterations=1,
    )
