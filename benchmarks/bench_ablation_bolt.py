"""Ablation — BOLT-style post-link layout optimization.

The paper's motivation notes binary-layout optimization as untapped
headroom beyond LTO/PGO (§3).  This ablation stacks the layout pass on
the adapted and on the fully optimized (LTO+PGO) images and measures the
incremental gain — larger on the non-PGO binary, still positive after
PGO.
"""

import pytest

from repro.core.optimizations import bolt_optimize_image
from repro.core.workflow import run_workload
from repro.reporting import render_table
from repro.sysmodel import X86_CLUSTER

WORKLOAD = "openmx.nitro"
BINARY = "/app/openmx"


def test_bolt_ablation(benchmark, x86_session, emit):
    session = x86_session
    engine = session.system_engine

    variants = {}
    adapted = session.adapted_image("openmx")
    optimized = session.optimized_image(WORKLOAD)
    variants["adapted"] = adapted
    variants["adapted+bolt"] = bolt_optimize_image(
        engine, adapted, WORKLOAD, X86_CLUSTER, BINARY, ref="openmx:a-bolt"
    )
    variants["optimized (LTO+PGO)"] = optimized
    variants["optimized+bolt"] = bolt_optimize_image(
        engine, optimized, WORKLOAD, X86_CLUSTER, BINARY, ref="openmx:o-bolt"
    )

    times = {}
    rows = []
    for label, ref in variants.items():
        seconds = run_workload(engine, ref, WORKLOAD, session.recorder,
                               vendor_mpirun=True).seconds
        times[label] = seconds
        rows.append((label, seconds))
    emit("ablation_bolt", render_table(["image", "time (s)"], rows))

    assert times["adapted+bolt"] < times["adapted"]
    assert times["optimized+bolt"] < times["optimized (LTO+PGO)"]
    gain_plain = 1 - times["adapted+bolt"] / times["adapted"]
    gain_post = 1 - times["optimized+bolt"] / times["optimized (LTO+PGO)"]
    # Layout gains shrink once PGO has already placed hot code.
    assert gain_post < gain_plain

    benchmark.pedantic(
        bolt_optimize_image,
        args=(engine, adapted, WORKLOAD, X86_CLUSTER, BINARY),
        kwargs={"ref": "openmx:bolt-bench"},
        rounds=1, iterations=1,
    )
