"""Shared fixtures for the evaluation benchmarks.

Sessions (user engine + registry + system engine per testbed cluster) are
built once per pytest run and shared across benchmark files; each bench
writes its regenerated table to ``benchmarks/results/`` and prints it.
"""

from __future__ import annotations

import os

import pytest

from repro.core.workflow import ComtainerSession
from repro.sysmodel import AARCH64_CLUSTER, X86_CLUSTER

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def x86_session() -> ComtainerSession:
    return ComtainerSession(system=X86_CLUSTER)


@pytest.fixture(scope="session")
def arm_session() -> ComtainerSession:
    return ComtainerSession(system=AARCH64_CLUSTER)


@pytest.fixture(scope="session")
def x86_figure9(x86_session):
    from repro.reporting import figure9_run

    return figure9_run(x86_session)


@pytest.fixture(scope="session")
def arm_figure9(arm_session):
    from repro.reporting import figure9_run

    return figure9_run(arm_session)


@pytest.fixture(scope="session")
def emit():
    """emit(name, text): print a regenerated table and persist it."""
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print(f"\n=== {name} ===\n{text}\n")
        with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w",
                  encoding="utf-8") as fh:
            fh.write(text + "\n")

    return _emit
