"""Ablation — front-end analysis cost versus application size.

coMtainer's user-side analysis (trace parsing, build-graph construction,
image classification, cache encoding) must stay cheap even for large
applications: LAMMPS is ~400x LULESH by LoC but its analysis should grow
far slower (the analysis is O(build commands + files), not O(LoC)).
"""

import time

import pytest

from repro.apps import get_app
from repro.containers import ContainerEngine
from repro.core.frontend.build import analyze_build_container
from repro.core.workflow import build_extended_image
from repro.core.images import env_ref, base_ref, install_user_side_images
from repro.apps import app_containerfile, build_context
from repro.oci.layout import OCILayout
from repro.reporting import render_table


def _prepared_build(engine, app):
    """Run the two-stage build; return (build_fs, layout, dist_tag)."""
    spec = get_app(app)
    install_user_side_images(engine)
    containerfile = app_containerfile(
        spec, build_base=env_ref(engine.arch), dist_base=base_ref(engine.arch)
    )
    refs = engine.build_stages(containerfile, context=build_context(spec, engine.arch))
    layout = OCILayout()
    dist_tag = f"{app}.dist"
    engine.push_to_layout(refs["dist"], layout, tag=dist_tag)
    return engine.image_filesystem(refs["build"]), layout, dist_tag


def test_frontend_cost_scaling(benchmark, emit):
    engine = ContainerEngine(arch="amd64")
    rows = []
    costs = {}
    for app in ("hpccg", "lulesh", "hpl", "openmx", "lammps"):
        build_fs, layout, dist_tag = _prepared_build(engine, app)
        t0 = time.perf_counter()
        models, sources = analyze_build_container(build_fs, layout, dist_tag)
        elapsed = time.perf_counter() - t0
        costs[app] = elapsed
        rows.append((
            app, get_app(app).loc, len(models.graph), len(sources), elapsed
        ))
    emit(
        "ablation_frontend_cost",
        render_table(["app", "LoC", "graph nodes", "sources", "analysis (s)"], rows),
    )

    # Analysis grows sublinearly in LoC: lammps is ~1455x hpccg by LoC but
    # must cost far less than 100x the analysis time.
    loc_ratio = get_app("lammps").loc / get_app("hpccg").loc
    cost_ratio = costs["lammps"] / max(costs["hpccg"], 1e-9)
    assert cost_ratio < loc_ratio / 10

    build_fs, layout, dist_tag = _prepared_build(engine, "lulesh")
    benchmark(analyze_build_container, build_fs, layout, dist_tag)
