"""Ablation — adapter flavor (vendor vs LLVM vs native GNU).

The paper's artifact ships LLVM-based Sysenv/Rebase images because the
vendor toolchains are proprietary, noting "the improvements can be
greatly diminished compared to vendor-specific toolchain[s]".  This
ablation adapts the same extended image with all three built-in adapter
flavors and compares the resulting execution times.
"""

import pytest

from repro.apps import get_app
from repro.containers import ContainerEngine
from repro.core.workflow import build_extended_image, run_workload, system_side_adapt
from repro.perf import attach_perf
from repro.reporting import render_table
from repro.sysmodel import X86_CLUSTER

WORKLOAD = "minife"


def test_adapter_flavors(benchmark, emit):
    user = ContainerEngine(arch="amd64")
    layout, dist_tag = build_extended_image(user, get_app(WORKLOAD))

    rows = []
    times = {}
    for flavor in ("vendor", "llvm", "gnu-native"):
        engine = ContainerEngine(arch="amd64")
        recorder = attach_perf(engine, X86_CLUSTER)
        ref = system_side_adapt(engine, layout, X86_CLUSTER, recorder=recorder,
                                flavor=flavor, ref=f"{WORKLOAD}:{flavor}")
        seconds = run_workload(engine, ref, WORKLOAD, recorder,
                               vendor_mpirun=True).seconds
        times[flavor] = seconds
        rows.append((flavor, seconds))

    emit("ablation_adapter_flavor", render_table(["adapter", "time (s)"], rows))

    # All flavors still benefit from library replacement and native march;
    # the vendor compiler is fastest, LLVM beats plain GNU slightly.
    assert times["vendor"] < times["llvm"] < times["gnu-native"]

    def one_adapt():
        engine = ContainerEngine(arch="amd64")
        recorder = attach_perf(engine, X86_CLUSTER)
        return system_side_adapt(engine, layout, X86_CLUSTER, recorder=recorder,
                                 flavor="llvm", ref="bench:llvm")

    benchmark.pedantic(one_adapt, rounds=1, iterations=1)
