"""Table 3 — original image sizes and cache layer sizes.

Builds every Table 3 application's original image on both architectures
and its extended image (cache layer) once, then compares against the
paper's reported MiB values.  The benchmarked operation is one original
image build (the dominant cost of the table).
"""

import pytest

from repro.apps import get_app
from repro.apps.specs import TABLE3_APPS
from repro.containers import ContainerEngine
from repro.core.workflow import build_original_image
from repro.reporting import render_table, table3_rows

HEADERS = ["App", "x86-64 MiB", "paper", "AArch64 MiB", "paper",
           "Cache MiB", "paper"]


@pytest.fixture(scope="module")
def engines():
    return {"amd64": ContainerEngine(arch="amd64"),
            "arm64": ContainerEngine(arch="arm64")}


def test_table3(benchmark, engines, emit):
    rows = table3_rows(engines=engines)
    emit("table03", render_table(HEADERS, rows))

    for app, x86_mib, x86_paper, arm_mib, arm_paper, cache_mib, cache_paper in rows:
        assert x86_mib == pytest.approx(x86_paper, rel=0.01), app
        assert arm_mib == pytest.approx(arm_paper, rel=0.01), app
        assert cache_mib == pytest.approx(cache_paper, rel=0.03), app
        # Cache layers are small relative to images: max 7.1% (x86) /
        # 11.3% (arm) in the paper.
        assert cache_mib / x86_mib < 0.08, app
        assert cache_mib / arm_mib < 0.12, app

    # "x86-64 original images are significantly larger than the AArch64
    # images, indicating that x86-64 has a more bloated software stack."
    for app, x86_mib, _, arm_mib, _, _, _ in rows:
        assert x86_mib > 1.2 * arm_mib, app

    benchmark.pedantic(
        build_original_image,
        args=(engines["amd64"], get_app("lulesh")),
        kwargs={"tag": "lulesh:bench"},
        rounds=1, iterations=1,
    )
