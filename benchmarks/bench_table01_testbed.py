"""Table 1 — the testbed systems.

Hardware facts are model data; the benchmark times the full system-model
-> calibration warm-up for all (workload, system) pairs.
"""

from repro.perf.calibration import calibrate
from repro.perf.workloads import WORKLOADS
from repro.reporting import render_table, table1_rows
from repro.sysmodel import AARCH64_CLUSTER, X86_CLUSTER


def test_table1(benchmark, emit):
    rows = table1_rows()
    emit("table01", render_table(["", "x86_64", "aarch64"], rows))
    facts = {row[0]: (row[1], row[2]) for row in rows}
    assert "8358P" in facts["CPU"][0]
    assert "FT-2000+" in facts["CPU"][1]
    assert facts["RAM"] == ("512GB", "128GB")
    assert facts["Nodes"] == ("16", "16")
    assert facts["OS"] == ("Ubuntu 22.04", "Kylin Linux Advanced Server V10")

    def calibrate_all():
        calibrate.cache_clear()
        for name in WORKLOADS:
            for system in (X86_CLUSTER, AARCH64_CLUSTER):
                calibrate(name, system.key)

    benchmark(calibrate_all)
