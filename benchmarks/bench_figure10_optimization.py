"""Figure 10 — relative execution time to native (LTO + PGO effects).

Reuses the Figure 9 pipeline measurements.  Paper shape (§5.3):
optimized is ~3.4% (x86) / ~3% (AArch64) better than native overall,
~8% / ~5.6% better than adapted; effects are strongly
workload-dependent, with openmx.pt13 (+30.4%) and lammps.chain (−12.1%)
the x86 extremes, lammps.lj (+17.7%) and hpcg (−14.9%) the AArch64 ones.
"""

import pytest

from repro.reporting import FIG10_PAPER_OUTLIERS, figure10_rows, render_table

HEADERS = ["workload", "adapted/native", "optimized/native"]


def _reduction(result, workload):
    t = result.times[workload]
    return 1.0 - t["optimized"] / t["native"]


def _overall(result, versus):
    total_ref = sum(t[versus] for t in result.times.values())
    total_opt = sum(t["optimized"] for t in result.times.values())
    return 1.0 - total_opt / total_ref


def test_figure10_x86(benchmark, x86_figure9, emit):
    rows = benchmark(figure10_rows, x86_figure9)
    emit("figure10_x86", render_table(HEADERS, rows))
    assert _reduction(x86_figure9, "openmx.pt13") == pytest.approx(
        FIG10_PAPER_OUTLIERS[("x86", "openmx.pt13")], abs=0.05
    )
    assert _reduction(x86_figure9, "lammps.chain") == pytest.approx(
        FIG10_PAPER_OUTLIERS[("x86", "lammps.chain")], abs=0.05
    )
    # The x86 extremes are exactly these two workloads.
    reductions = {w: _reduction(x86_figure9, w) for w in x86_figure9.times}
    assert max(reductions, key=reductions.get) == "openmx.pt13"
    assert min(reductions, key=reductions.get) == "lammps.chain"
    # Overall: ~3.4% over native, positive over adapted (§5.3).
    assert _overall(x86_figure9, "native") == pytest.approx(0.034, abs=0.03)
    assert _overall(x86_figure9, "adapted") > _overall(x86_figure9, "native")


def test_figure10_arm(benchmark, arm_figure9, emit):
    rows = benchmark(figure10_rows, arm_figure9)
    emit("figure10_arm", render_table(HEADERS, rows))
    assert _reduction(arm_figure9, "lammps.lj") == pytest.approx(
        FIG10_PAPER_OUTLIERS[("arm", "lammps.lj")], abs=0.05
    )
    assert _reduction(arm_figure9, "hpcg") == pytest.approx(
        FIG10_PAPER_OUTLIERS[("arm", "hpcg")], abs=0.05
    )
    reductions = {w: _reduction(arm_figure9, w) for w in arm_figure9.times}
    assert max(reductions, key=reductions.get) == "lammps.lj"
    assert min(reductions, key=reductions.get) == "hpcg"
    assert _overall(arm_figure9, "native") == pytest.approx(0.03, abs=0.03)
