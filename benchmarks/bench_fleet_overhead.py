"""Fleet — no-fault overhead of the fault-tolerant worker executor.

The heartbeat/lease/speculation machinery is only worth having if a
fault-free parallel rebuild costs (almost) nothing extra over the plain
slot-accounting scheduler it replaced.  This bench times a cold
``coMtainer-rebuild --jobs=8`` two ways — with the real
:class:`~repro.resilience.fleet.WorkerFleet` and with a minimal shim
that replays the old pure-``lpt_schedule`` accounting — and asserts the
fleet path stays within 5% of the shim.
"""

import statistics
import time

import pytest

import repro.core.backend.rebuild as rebuild_mod
from repro.apps import get_app
from repro.containers import ContainerEngine
from repro.core.backend.scheduler import lpt_schedule
from repro.core.cache.storage import decode_rebuild, extended_tag
from repro.core.frontend.build import IO_MOUNT
from repro.core.images import install_system_side_images, sysenv_ref
from repro.core.workflow import build_extended_image
from repro.oci.layout import OCILayout
from repro.perf import attach_perf
from repro.reporting import render_table
from repro.resilience.fleet import FleetStats, WaveOutcome
from repro.resilience.retry import SimulatedClock
from repro.sysmodel import X86_CLUSTER

ROUNDS = 9
REBUILDS_PER_SAMPLE = 3   # one timing sample = 3 back-to-back rebuilds
JOBS = 8


class _SlotFleet:
    """The pre-fleet executor: bare ``lpt_schedule`` slot accounting.

    Constructor-compatible with :class:`WorkerFleet` so it can be dropped
    straight into ``_run_rebuild`` via monkeypatching; every wave simply
    completes with the LPT makespan — no leases, no heartbeats, no
    injector consultations.
    """

    def __init__(self, jobs=1, injector=None, clock=None, telemetry=None,
                 speculate=True, max_worker_failures=3, **_kwargs):
        jobs = max(1, int(jobs))
        self.jobs = jobs
        self.clock = clock or SimulatedClock()
        self.stats = FleetStats(jobs=jobs, workers_alive=jobs)

    def run_wave(self, index, entries):
        outcome = WaveOutcome(index=index)
        makespan, _loads = lpt_schedule([cost for _, cost in entries],
                                        self.jobs)
        outcome.makespan = makespan
        for digest, cost in entries:
            outcome.completed[digest] = cost
            outcome.owners[digest] = "w0"
        self.clock.sleep(makespan)
        return outcome


def _fresh_copy(layout, dist_tag):
    fresh = OCILayout()
    for tag in (dist_tag, extended_tag(dist_tag)):
        resolved = layout.resolve(tag)
        fresh.add_manifest(resolved.manifest, resolved.config, resolved.layers,
                           tag=tag)
    return fresh


def _one_sample(engine, layout, dist_tag, args):
    """One timing sample: REBUILDS_PER_SAMPLE cold rebuilds, averaged.

    A single cold rebuild takes tens of milliseconds — the same order as
    OS scheduling jitter — so each sample aggregates several back-to-back
    rebuilds and the per-rebuild noise averages out.
    """
    elapsed = 0.0
    meta = None
    for _ in range(REBUILDS_PER_SAMPLE):
        fresh = _fresh_copy(layout, dist_tag)
        ctr = engine.from_image(sysenv_ref("x86"), name="fleet-bench",
                                mounts={IO_MOUNT: fresh})
        try:
            t0 = time.perf_counter()
            engine.run(ctr, ["coMtainer-rebuild"] + args).check()
            elapsed += time.perf_counter() - t0
        finally:
            engine.remove_container("fleet-bench")
        meta = decode_rebuild(fresh, dist_tag)[0]
    return elapsed / REBUILDS_PER_SAMPLE, meta


def test_fleet_no_fault_overhead(benchmark, emit, monkeypatch):
    user = ContainerEngine(arch="amd64")
    layout, dist_tag = build_extended_image(user, get_app("lammps"))
    engine = ContainerEngine(arch="amd64")
    attach_perf(engine, X86_CLUSTER)
    install_system_side_images(engine, X86_CLUSTER)
    args = ["--adapter=vendor", f"--jobs={JOBS}"]

    # The configurations differ by at most a few percent — inside the
    # drift of a busy machine across consecutive measurement loops.  So
    # every round times all three arms back to back (slot, fleet,
    # no-speculate) and the overhead is the **median of the per-round
    # ratios**: the pairing cancels slow drift (both arms of a ratio see
    # the same machine state) and the median discards outlier rounds.
    samples = {"slots": [], "fleet": [], "spec": []}
    metas = {}
    for _ in range(ROUNDS):
        with monkeypatch.context() as m:
            m.setattr(rebuild_mod, "WorkerFleet", _SlotFleet)
            e, metas["slots"] = _one_sample(engine, layout, dist_tag, args)
        samples["slots"].append(e)
        e, metas["fleet"] = _one_sample(engine, layout, dist_tag, args)
        samples["fleet"].append(e)
        e, metas["spec"] = _one_sample(engine, layout, dist_tag,
                                       args + ["--no-speculate"])
        samples["spec"].append(e)

    slots = statistics.median(samples["slots"])
    fleet = statistics.median(samples["fleet"])
    spec = statistics.median(samples["spec"])
    meta_slots, meta_fleet, meta_spec = (
        metas["slots"], metas["fleet"], metas["spec"]
    )
    overhead_fleet = statistics.median(
        f / s - 1.0 for f, s in zip(samples["fleet"], samples["slots"])
    )
    overhead_spec = statistics.median(
        f / s - 1.0 for f, s in zip(samples["spec"], samples["slots"])
    )
    rows = [
        ("slot scheduler (pre-fleet)", f"{slots:.4f}", "-",
         len(meta_slots["executed_nodes"])),
        ("worker fleet", f"{fleet:.4f}", f"{overhead_fleet:+.1%}",
         len(meta_fleet["executed_nodes"])),
        ("worker fleet --no-speculate", f"{spec:.4f}", f"{overhead_spec:+.1%}",
         len(meta_spec["executed_nodes"])),
    ]
    emit("fleet_overhead",
         render_table(["rebuild --jobs=8", "seconds (median)", "overhead",
                       "executed"], rows))

    # Same work, same bytes-relevant record, in all configurations...
    assert meta_slots["executed_nodes"] == meta_fleet["executed_nodes"]
    assert meta_slots["executed_nodes"] == meta_spec["executed_nodes"]
    assert meta_slots["node_commands"] == meta_fleet["node_commands"]
    assert meta_fleet["failed_nodes"] == []
    # ...and the lease/heartbeat machinery stays under the 5% budget.
    assert overhead_fleet < 0.05, (
        f"worker fleet costs {overhead_fleet:.1%} on the fault-free path "
        f"(slots median {slots:.4f}s vs fleet median {fleet:.4f}s)"
    )

    benchmark.pedantic(
        _one_sample,
        args=(engine, layout, dist_tag, args),
        rounds=1, iterations=1,
    )
