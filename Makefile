# Convenience targets for the coMtainer reproduction.
#
#   make test    - the tier-1 test suite (includes the chaos sweeps)
#   make chaos   - randomized fault-injection sweeps (minus federation/service)
#   make federation-chaos - federation-tier chaos sweeps only
#   make federation-test - all federated-registry tests
#   make service-test - all multi-tenant adaptation-service tests
#   make service-chaos - service-tier chaos sweeps only
#   make recovery-test - durable crash-restart + origin-failover sweeps
#   make recovery-bench - WAL replay/resume/failover benchmarks
#   make verify-all - tier-1 suite plus every marker-gated suite
#   make service-bench - service throughput/latency/dedup benchmark
#   make serve   - multi-tenant service demo: noisy tenant + seeded chaos
#   make bench   - regenerate the evaluation tables / benchmarks
#   make resilience-bench - just the resilience happy-path overhead check
#   make trace   - traced adaptation; Chrome trace JSON + span tree
#   make metrics - traced adaptation; Prometheus-style metrics dump
#   make telemetry-bench - the NullTelemetry happy-path overhead check
#   make obs-bench - control-plane (sampler+rules+profiler) overhead check
#   make health  - component health demo: chaos adaptation + stale mirror
#   make integrity-bench - the verified-reads happy-path overhead check
#   make perf-bench - incremental short-circuit speedup + VFS hot-path bars
#   make incremental-test - plan-diff + byte-identity incremental sweeps
#   make parallel-bench - wavefront makespan scaling + artifact-cache reuse
#   make fleet-bench - worker-fleet no-fault overhead vs the slot scheduler
#   make federation-bench - incremental mirror-sync bytes-on-wire vs naive push
#   make fsck-demo - save a layout, corrupt it on disk, detect and repair

PYTHON ?= python
PYTEST  = PYTHONPATH=src $(PYTHON) -m pytest
CLI     = PYTHONPATH=src $(PYTHON) -m repro.cli

TRACE_APP ?= lammps

.PHONY: test chaos federation-chaos federation-test service-test \
        service-chaos recovery-test recovery-bench verify-all \
        service-bench serve bench resilience-bench \
        trace metrics telemetry-bench obs-bench health integrity-bench \
        perf-bench incremental-test parallel-bench fleet-bench \
        federation-bench fsck-demo

test:
	$(PYTEST) -x -q

# The marker split bounds each chaos invocation's runtime: the original
# sweeps, the federation sweeps, the service sweeps, and the recovery
# sweeps can run (and time out) independently.
chaos:
	$(PYTEST) -m "chaos and not federation and not service and not recovery" -q

federation-chaos:
	$(PYTEST) -m "chaos and federation" -q

federation-test:
	$(PYTEST) -m federation -q

service-test:
	$(PYTEST) -m service -q

service-chaos:
	$(PYTEST) -m "chaos and service and not recovery" -q

recovery-test:
	$(PYTEST) -m recovery -q

recovery-bench:
	$(PYTEST) benchmarks/bench_recovery.py -q -s

# Everything: the tier-1 suite, then each marker-gated suite in turn.
verify-all: test chaos federation-chaos service-chaos recovery-test \
        federation-test service-test incremental-test

service-bench:
	$(PYTEST) benchmarks/bench_service_throughput.py -q -s

serve:
	$(CLI) serve --tenants 3 --requests 3 --noisy --fault-rate 0.05 \
	    --seed 5 --mirrors 1

bench:
	$(PYTEST) benchmarks -q -s

resilience-bench:
	$(PYTEST) benchmarks/bench_resilience_overhead.py -q -s

# Warm >=5x cold, <5% cold-path fingerprint overhead, VFS hot-path bars.
perf-bench:
	$(PYTEST) benchmarks/bench_incremental_adaptation.py \
	    benchmarks/bench_vfs_hotpaths.py -q -s

incremental-test:
	$(PYTEST) -m incremental -q

trace:
	mkdir -p benchmarks/results
	$(CLI) --trace trace $(TRACE_APP) --out benchmarks/results/trace.json

metrics:
	$(CLI) --metrics trace $(TRACE_APP)

telemetry-bench:
	$(PYTEST) benchmarks/bench_telemetry_overhead.py -q -s

obs-bench:
	$(PYTEST) benchmarks/bench_telemetry_overhead.py::test_controlplane_overhead -q -s

health:
	$(CLI) health $(TRACE_APP) --fault-rate 0.3 --seed 3 --stale-mirrors 1 || true

integrity-bench:
	$(PYTEST) benchmarks/bench_integrity_overhead.py -q -s

parallel-bench:
	$(PYTEST) benchmarks/bench_parallel_rebuild.py -q -s

fleet-bench:
	$(PYTEST) benchmarks/bench_fleet_overhead.py -q -s

federation-bench:
	$(PYTEST) benchmarks/bench_federation_sync.py -q -s

fsck-demo:
	PYTHONPATH=src $(PYTHON) examples/fsck_demo.py
