# Convenience targets for the coMtainer reproduction.
#
#   make test    - the tier-1 test suite (includes the chaos sweeps)
#   make chaos   - only the randomized fault-injection sweeps
#   make bench   - regenerate the evaluation tables / benchmarks
#   make resilience-bench - just the resilience happy-path overhead check

PYTHON ?= python
PYTEST  = PYTHONPATH=src $(PYTHON) -m pytest

.PHONY: test chaos bench resilience-bench

test:
	$(PYTEST) -x -q

chaos:
	$(PYTEST) -m chaos -q

bench:
	$(PYTEST) benchmarks -q -s

resilience-bench:
	$(PYTEST) benchmarks/bench_resilience_overhead.py -q -s
