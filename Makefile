# Convenience targets for the coMtainer reproduction.
#
#   make test    - the tier-1 test suite (includes the chaos sweeps)
#   make chaos   - only the randomized fault-injection sweeps
#   make bench   - regenerate the evaluation tables / benchmarks
#   make resilience-bench - just the resilience happy-path overhead check
#   make trace   - traced adaptation; Chrome trace JSON + span tree
#   make metrics - traced adaptation; Prometheus-style metrics dump
#   make telemetry-bench - the NullTelemetry happy-path overhead check
#   make integrity-bench - the verified-reads happy-path overhead check
#   make parallel-bench - wavefront makespan scaling + artifact-cache reuse
#   make fleet-bench - worker-fleet no-fault overhead vs the slot scheduler
#   make fsck-demo - save a layout, corrupt it on disk, detect and repair

PYTHON ?= python
PYTEST  = PYTHONPATH=src $(PYTHON) -m pytest
CLI     = PYTHONPATH=src $(PYTHON) -m repro.cli

TRACE_APP ?= lammps

.PHONY: test chaos bench resilience-bench trace metrics telemetry-bench \
        integrity-bench parallel-bench fleet-bench fsck-demo

test:
	$(PYTEST) -x -q

chaos:
	$(PYTEST) -m chaos -q

bench:
	$(PYTEST) benchmarks -q -s

resilience-bench:
	$(PYTEST) benchmarks/bench_resilience_overhead.py -q -s

trace:
	mkdir -p benchmarks/results
	$(CLI) --trace trace $(TRACE_APP) --out benchmarks/results/trace.json

metrics:
	$(CLI) --metrics trace $(TRACE_APP)

telemetry-bench:
	$(PYTEST) benchmarks/bench_telemetry_overhead.py -q -s

integrity-bench:
	$(PYTEST) benchmarks/bench_integrity_overhead.py -q -s

parallel-bench:
	$(PYTEST) benchmarks/bench_parallel_rebuild.py -q -s

fleet-bench:
	$(PYTEST) benchmarks/bench_fleet_overhead.py -q -s

fsck-demo:
	PYTHONPATH=src $(PYTHON) examples/fsck_demo.py
