"""Seeded chaos sweeps over the federated registry tier.

The acceptance bar (ISSUE 6): a 10-mirror fan-out under seeded
``mirror.sync``/``transfer.chunk`` fault patterns — transient crashes
mid-chunk, silent corruption of in-flight chunks, torn ledger flushes,
stale-mirror probes — must *always* converge every mirror to
digest-identical content with the origin, with resumed syncs
re-transferring only unfinished chunks; and a corrupted origin blob must
self-heal from any replica through the repair engine.

Runtime discipline: these sweeps use small chunked images (a few KiB)
and bounded retry loops; the whole module stays well under the chaos
budget so ``-m "chaos and federation"`` can run standalone.
"""

import pytest

from repro.federation import FederatedRegistry
from repro.integrity import IntegrityError
from repro.integrity.fsck import fsck_federation
from repro.oci import ImageConfig, Layer, LayerEntry, Manifest
from repro.oci.blobs import Blob, check_blob
from repro.oci.registry import RegistryError
from repro.resilience import FaultInjector, InjectedFault
from repro.vfs import InlineContent

pytestmark = [pytest.mark.chaos, pytest.mark.federation]

CHUNK = 512
FEDERATION_SITES = frozenset({"mirror.sync", "transfer.chunk"})
CHUNK_CORRUPTION = frozenset({"transfer.chunk"})
LEDGER_CORRUPTION = frozenset({"transfer.chunk", "journal.append"})

#: A retried-sync budget generous enough for the worst seeded pattern;
#: sweeps assert convergence strictly inside it.
MAX_SYNC_ROUNDS = 300


@pytest.fixture(scope="module")
def injector():
    return FaultInjector(
        sites=FEDERATION_SITES, corruption_sites=CHUNK_CORRUPTION
    )


def make_image(seed=0, layers=3, kib=2):
    """A small multi-layer image whose blobs span several chunks."""
    built = []
    config = ImageConfig(
        architecture="amd64", env=["PATH=/usr/bin"], entrypoint=["/app/run"]
    )
    for i in range(layers):
        payload = bytes([(seed * 31 + i * 7 + j) % 251 for j in range(kib * 1024)])
        layer = Layer().add(
            LayerEntry.file(f"/app/l{i}", InlineContent(payload), mode=0o644)
        )
        built.append(layer)
        config.diff_ids.append(layer.digest)
    manifest = Manifest(
        config=config.descriptor(),
        layers=[Blob.from_layer(l).descriptor() for l in built],
    )
    return manifest, config, built


def build_federation(injector, mirrors, seed=0, **kw):
    fed = FederatedRegistry(injector=injector, chunk_size=CHUNK, **kw)
    for i in range(mirrors):
        fed.add_mirror(f"edge-{i}")
    manifest, config, layers = make_image(seed=seed)
    fed.push("lab/app:1.0", manifest, config, layers)
    return fed, manifest


def drive_to_convergence(fed, crash_every=0):
    """Retry interrupted syncs until convergence; returns (rounds,
    aborted attempts).  With ``crash_every`` > 0, every that-many-th
    abort also simulates a process crash (ledger reloads from its last
    flushed — possibly corrupted — bytes)."""
    aborted = 0
    for rounds in range(1, MAX_SYNC_ROUNDS + 1):
        try:
            fed.sync_all()
        except (RegistryError, IntegrityError, InjectedFault):
            aborted += 1
            if crash_every and aborted % crash_every == 0:
                for mirror in fed.mirrors.values():
                    mirror.crash()
            continue
        if all(fed.converged(m) for m in fed.mirrors.values()):
            return rounds, aborted
    raise AssertionError(
        f"no convergence within {MAX_SYNC_ROUNDS} rounds: "
        f"{ {n: p for n, p in fed.audit().items() if p} }"
    )


class TestFanoutSweep:
    @pytest.mark.parametrize("seed", range(6))
    def test_ten_mirror_fanout_always_converges(self, injector, seed):
        fed, _ = build_federation(
            injector.reset(seed=seed, rate=0.12, corruption_rate=0.06),
            mirrors=10, seed=seed,
        )
        rounds, aborted = drive_to_convergence(fed)
        assert fed.audit() == {f"edge-{i}": [] for i in range(10)}
        # The faults actually bit (otherwise the sweep proves nothing).
        assert len(injector.log) > 0 or aborted == 0

    @pytest.mark.parametrize("seed", range(4))
    def test_crash_resume_retransfers_only_unfinished_chunks(
        self, injector, seed
    ):
        fed, _ = build_federation(
            injector.reset(seed=seed, rate=0.25), mirrors=3, seed=seed,
        )
        rounds, aborted = drive_to_convergence(fed, crash_every=2)
        assert all(fed.converged(m) for m in fed.mirrors.values())
        if aborted:
            # Work was conserved across aborts: total fetched chunks
            # stayed below re-transferring every chunk on every retry.
            total = sum(
                r.chunks_fetched for r in fed.sync_all().values()
            )
            assert total == 0    # converged: nothing left to fetch

    @pytest.mark.parametrize("seed", range(4))
    def test_in_flight_and_ledger_corruption_sweep(self, injector, seed):
        injector.reset(seed=seed, rate=0.1, corruption_rate=0.12)
        injector.corruption_sites = LEDGER_CORRUPTION
        try:
            fed, _ = build_federation(injector, mirrors=4, seed=seed)
            rounds, aborted = drive_to_convergence(fed, crash_every=3)
        finally:
            injector.corruption_sites = CHUNK_CORRUPTION
        assert all(fed.converged(m) for m in fed.mirrors.values())
        # Mirrors never served a torn state along the way: every tagged
        # manifest resolves through a full Merkle walk.
        for mirror in fed.mirrors.values():
            resolved = mirror.registry.pull("lab/app:1.0")
            assert len(resolved.layers) == 3

    def test_resumed_sync_counts_resumed_chunks(self, injector):
        from repro.resilience.faults import FaultSpec

        injector.reset(seed=1, rate=0.0)
        injector.specs = [
            FaultSpec(site="transfer.chunk", match="#5", times=1)
        ]
        fed, _ = build_federation(injector, mirrors=1)
        with pytest.raises((RegistryError, InjectedFault)):
            fed.sync_mirror("edge-0")
        report = fed.sync_mirror("edge-0")
        assert report.chunks_resumed > 0
        assert report.chunks_fetched < report.chunks_total
        assert fed.converged(fed.mirror("edge-0"))


class TestStaleFailoverSweep:
    @pytest.mark.parametrize("seed", range(4))
    def test_failover_ladder_under_stale_probes(self, injector, seed):
        from repro.resilience.faults import FaultSpec

        fed, manifest = build_federation(
            injector.reset(seed=seed), mirrors=5, seed=seed
        )
        drive_to_convergence(fed)
        # Origin down; a seeded fraction of mirrors probe stale.
        injector.reset(seed=seed, mirror_stale_rate=0.4)
        injector.specs = [
            FaultSpec(site="registry.pull", kind="persistent", times=-1)
        ]
        fed.origin.fault_injector = injector
        resolved = fed.pull("lab/app:1.0")
        assert resolved.manifest.digest == manifest.digest
        injector.reset(seed=seed)
        fed.origin.fault_injector = None


class TestReplicaRepairSweep:
    @pytest.mark.parametrize("seed", range(4))
    def test_corrupted_origin_blob_heals_from_any_replica(
        self, injector, seed
    ):
        fed, manifest = build_federation(
            injector.reset(seed=seed), mirrors=4, seed=seed
        )
        drive_to_convergence(fed)
        # Rot a seeded referenced blob at the origin.
        referenced = sorted(fed.origin.referenced_digests())
        digest = referenced[seed % len(referenced)]
        store = fed.origin.blobs
        good = store.try_get(digest)
        store._blobs[digest] = Blob(
            media_type=good.media_type, digest=digest,
            size=good.size, payload=b"\x00" * good.size,
        )
        store._verified.discard(digest)
        assert check_blob(store.try_get(digest)) is not None
        outcome = fed.repair_engine().repair_blob(store, digest)
        assert outcome.repaired and outcome.source.startswith("mirror:")
        assert check_blob(store.try_get(digest)) is None
        # And the federation-wide fsck agrees everything is whole again.
        assert fsck_federation(fed).clean
