"""Integration tests: engine, shell, programs, Containerfile builds."""

import pytest

from repro.containers import ContainerEngine, EngineError, parse_containerfile
from repro.containers.dockerfile import ContainerfileError, find_stage
from repro.images import install_ubuntu_base
from repro.oci.layout import OCILayout
from repro.oci.registry import ImageRegistry
from repro.pkg import catalog
from repro.toolchain.artifacts import ExecutableArtifact, read_artifact
from repro.vfs import VirtualFilesystem


@pytest.fixture(scope="module")
def engine():
    eng = ContainerEngine(arch="amd64")
    install_ubuntu_base(eng)
    return eng


@pytest.fixture
def ctr(engine):
    container = engine.from_image("ubuntu:24.04", name="t")
    yield container
    engine.remove_container("t")


class TestDockerfileParse:
    def test_multistage(self):
        stages = parse_containerfile(
            """
            FROM ubuntu:24.04 AS build
            RUN gcc -c main.c
            FROM ubuntu:24.04 AS dist
            COPY --from=build /app /app
            """
        )
        assert len(stages) == 2
        assert stages[0].name == "build"
        assert stages[1].instructions[0].flags == {"from": "build"}

    def test_find_stage(self):
        stages = parse_containerfile("FROM a AS x\nFROM b\n")
        assert find_stage(stages, "x").name == "x"
        assert find_stage(stages, None).base_ref == "b"
        assert find_stage(stages, "1").base_ref == "b"
        with pytest.raises(ContainerfileError):
            find_stage(stages, "nope")

    def test_continuations_and_comments(self):
        stages = parse_containerfile(
            "# build it\nFROM base\nRUN echo a \\\n  && echo b\n"
        )
        assert "echo b" in stages[0].instructions[0].value

    def test_exec_form(self):
        stages = parse_containerfile('FROM base\nENTRYPOINT ["/app/run", "-x"]\n')
        assert stages[0].instructions[0].exec_form() == ["/app/run", "-x"]

    def test_instruction_before_from_raises(self):
        with pytest.raises(ContainerfileError):
            parse_containerfile("RUN echo hi\n")

    def test_arg_substitution(self):
        stages = parse_containerfile("ARG BASE=ubuntu:24.04\nFROM ${BASE}\n")
        assert stages[0].base_ref == "ubuntu:24.04"


class TestExecution:
    def test_echo(self, engine, ctr):
        result = engine.run(ctr, ["echo", "hello", "world"])
        assert result.ok
        assert result.stdout == "hello world\n"

    def test_command_not_found(self, engine, ctr):
        result = engine.run(ctr, ["no-such-cmd"])
        assert result.exit_code == 127

    def test_path_lookup_through_symlink(self, engine, ctr):
        # /bin/sh is a program marker; gcc is a symlink to gcc-12 after install.
        result = engine.run(ctr, ["sh", "-c", "echo via-shell"])
        assert result.stdout == "via-shell\n"

    def test_shell_and_or(self, engine, ctr):
        result = engine.run(ctr, ["sh", "-c", "false-cmd || echo rescued"])
        assert "rescued" in result.stdout

    def test_shell_aborts_on_failure(self, engine, ctr):
        result = engine.run(ctr, ["sh", "-c", "no-such-cmd"])
        assert result.exit_code != 0

    def test_shell_sequential_statements(self, engine, ctr):
        result = engine.run(ctr, ["sh", "-c", "mkdir -p /work; echo x > /work/f; cat /work/f"])
        assert result.stdout.strip() == "x"

    def test_cd_and_pwd_state(self, engine, ctr):
        result = engine.run(ctr, ["sh", "-c", "mkdir -p /d && cd /d && touch f && cat /d/f"])
        assert result.ok

    def test_variable_assignment_and_use(self, engine, ctr):
        result = engine.run(ctr, ["sh", "-c", "X=abc; echo $X"])
        assert result.stdout == "abc\n"

    def test_export(self, engine, ctr):
        result = engine.run(ctr, ["sh", "-c", "export CC=gcc; echo $CC done"])
        assert result.stdout == "gcc done\n"

    def test_glob_expansion(self, engine, ctr):
        engine.run(ctr, ["sh", "-c", "mkdir -p /g; touch /g/a.o /g/b.o /g/c.txt"]).check()
        result = engine.run(ctr, ["sh", "-c", "cd /g && echo *.o"])
        assert result.stdout == "a.o b.o\n"

    def test_redirect_overwrite_and_append(self, engine, ctr):
        engine.run(ctr, ["sh", "-c", "echo one > /r.txt; echo two >> /r.txt"]).check()
        assert ctr.fs.read_text("/r.txt") == "one\ntwo\n"

    def test_cp_mv_rm(self, engine, ctr):
        script = (
            "mkdir -p /w/sub && echo data > /w/f "
            "&& cp /w/f /w/sub/ && mv /w/f /w/g && rm -r /w/sub"
        )
        engine.run(ctr, ["sh", "-c", script]).check()
        assert ctr.fs.read_text("/w/g") == "data\n"
        assert not ctr.fs.exists("/w/sub")

    def test_dpkg_list(self, engine, ctr):
        result = engine.run(ctr, ["dpkg", "-l"])
        assert "libc6" in result.stdout

    def test_dpkg_search(self, engine, ctr):
        result = engine.run(ctr, ["dpkg", "-S", "/bin/bash"])
        assert result.stdout.startswith("bash:")


class TestApt:
    def test_install_runtime_packages(self, engine):
        container = engine.from_image("ubuntu:24.04", name="apt-test")
        result = engine.run(
            container, ["apt-get", "install", "-y", "libopenblas0", "libopenmpi3"]
        )
        assert result.ok, result.stderr
        assert container.fs.exists("/usr/lib/x86_64-linux-gnu/libopenblas.so.0")
        assert container.fs.exists("/usr/bin/mpirun")
        engine.remove_container("apt-test")

    def test_install_unknown_fails(self, engine, ctr):
        result = engine.run(ctr, ["apt-get", "install", "-y", "no-such-pkg"])
        assert not result.ok


class TestCompileInContainer:
    def test_full_toolchain_flow(self, engine):
        container = engine.from_image("ubuntu:24.04", name="cc-test")
        engine.run(container, ["apt-get", "install", "-y"] + catalog.default_devel_install()).check()
        container.fs.write_file("/src/main.c", "int main(){}\n" * 30, create_parents=True)
        container.fs.write_file("/src/util.c", "int u;\n" * 50, create_parents=True)
        script = (
            "cd /src && gcc -O2 -c main.c && gcc -O2 -c util.c "
            "&& gcc main.o util.o -o app -lm"
        )
        engine.run(container, ["sh", "-c", script]).check()
        exe = read_artifact(container.fs.read_file("/src/app"))
        assert isinstance(exe, ExecutableArtifact)
        assert exe.toolchain == "gnu-12"
        engine.remove_container("cc-test")


class TestBuildAndCommit:
    CONTAINERFILE = """
FROM ubuntu:24.04 AS build
RUN mkdir -p /app && echo payload > /app/data.txt
ENV APP_MODE=fast
WORKDIR /app
FROM ubuntu:24.04 AS dist
COPY --from=build /app /app
ENTRYPOINT ["/bin/cat", "/app/data.txt"]
LABEL org.example.app=demo
"""

    def test_multistage_build(self, engine):
        ref = engine.build(self.CONTAINERFILE, target="dist", tag="demo:latest")
        assert ref == "demo:latest"
        fs = engine.image_filesystem("demo:latest")
        assert fs.read_text("/app/data.txt") == "payload\n"
        stored = engine.image("demo:latest")
        assert stored.config.entrypoint == ["/bin/cat", "/app/data.txt"]
        assert stored.config.labels["org.example.app"] == "demo"

    def test_build_stage_only(self, engine):
        ref = engine.build(self.CONTAINERFILE, target="build", tag="demo:build")
        stored = engine.image(ref)
        assert stored.config.working_dir == "/app"
        assert "APP_MODE=fast" in stored.config.env

    def test_failed_run_aborts_build(self, engine):
        with pytest.raises(EngineError, match="RUN"):
            engine.build("FROM ubuntu:24.04\nRUN definitely-not-a-command\n")

    def test_commit_captures_changes(self, engine):
        container = engine.from_image("ubuntu:24.04", name="commit-test")
        engine.run(container, ["sh", "-c", "echo new > /newfile"]).check()
        stored = engine.commit(container, ref="committed:1")
        base = engine.image("ubuntu:24.04")
        assert len(stored.layers) == len(base.layers) + 1
        assert engine.image_filesystem("committed:1").read_text("/newfile") == "new\n"
        engine.remove_container("commit-test")

    def test_commit_no_changes_adds_no_layer(self, engine):
        container = engine.from_image("ubuntu:24.04", name="noop-test")
        stored = engine.commit(container)
        assert len(stored.layers) == len(engine.image("ubuntu:24.04").layers)
        engine.remove_container("noop-test")

    def test_copy_from_context(self, engine):
        context = VirtualFilesystem()
        context.write_file("/hello.txt", "ctx", create_parents=True)
        engine.build(
            "FROM ubuntu:24.04\nCOPY /hello.txt /opt/hello.txt\n", context=context,
            tag="ctx:1",
        )
        assert engine.image_filesystem("ctx:1").read_text("/opt/hello.txt") == "ctx"


class TestTransport:
    def test_layout_roundtrip(self, engine):
        layout = OCILayout()
        engine.push_to_layout("ubuntu:24.04", layout, tag="base")
        other = ContainerEngine(arch="amd64")
        other.load_from_layout(layout, "base", ref="imported:1")
        assert other.image_filesystem("imported:1").exists("/bin/bash")

    def test_registry_roundtrip(self, engine):
        registry = ImageRegistry()
        engine.push_to_registry("ubuntu:24.04", registry, "lab/ubuntu:24.04")
        other = ContainerEngine(arch="amd64")
        other.load_from_registry(registry, "lab/ubuntu:24.04", ref="u:1")
        assert other.image_filesystem("u:1").exists("/etc/os-release")


class TestMounts:
    def test_mount_object_accessible(self, engine):
        layout = OCILayout()
        container = engine.from_image(
            "ubuntu:24.04", name="mnt", mounts={"/.coMtainer/io": layout}
        )
        assert container.mount_at("/.coMtainer/io") is layout
        assert container.mount_at("/elsewhere") is None
        engine.remove_container("mnt")
