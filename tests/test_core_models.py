"""Unit + property tests for the process models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.models import (
    BuildGraph,
    BuildNode,
    CompilationStep,
    FileOrigin,
    ImageModel,
    ProcessModels,
)
from repro.core.models.build_graph import GraphError, kind_for_path
from repro.core.models.image_model import FileRecord, classify_image
from repro.pkg import DpkgDatabase, Package, PackagedFile
from repro.vfs import VirtualFilesystem


def _step(argv, tool="compiler-driver", **meta):
    return CompilationStep(argv=argv, cwd="/src", tool=tool, meta=meta)


def _chain_graph():
    """src.c -> src.o -> app"""
    graph = BuildGraph()
    graph.ensure("/src/main.c")
    graph.add(BuildNode(id="/src/main.o", kind="object", path="/src/main.o",
                        deps=["/src/main.c"],
                        step=_step(["gcc", "-c", "main.c"])))
    graph.add(BuildNode(id="/app/demo", kind="executable", path="/app/demo",
                        deps=["/src/main.o"],
                        step=_step(["gcc", "main.o", "-o", "/app/demo"])))
    return graph


class TestCompilationStep:
    def test_invocation_parses(self):
        step = _step(["gcc", "-O2", "-c", "main.c"], toolchain="gnu-12", role="cc")
        inv = step.invocation()
        assert inv.opt_level == "2"
        assert step.toolchain == "gnu-12"
        assert step.role == "cc"

    def test_non_compiler_invocation_raises(self):
        step = _step(["ar", "rcs", "a.a"], tool="ar")
        assert step.is_archiver
        with pytest.raises(ValueError):
            step.invocation()

    def test_json_roundtrip(self):
        step = _step(["mpicc", "-c", "x.c"], mpi_wrapper=True)
        restored = CompilationStep.from_json(step.to_json())
        assert restored.argv == step.argv
        assert restored.mpi_wrapper

    def test_with_argv_preserves_context(self):
        step = _step(["gcc", "-c", "x.c"], toolchain="gnu-12")
        new = step.with_argv(["icx", "-c", "x.c"], toolchain="intel-2024")
        assert new.cwd == step.cwd
        assert new.toolchain == "intel-2024"
        assert step.toolchain == "gnu-12"  # original untouched


class TestKindForPath:
    def test_kinds(self):
        assert kind_for_path("/a/x.o", True) == "object"
        assert kind_for_path("/a/lib.a", True) == "archive"
        assert kind_for_path("/a/lib.so.3", True) == "shared"
        assert kind_for_path("/a/x.cc", False) == "source"
        assert kind_for_path("/a/app", True) == "executable"
        assert kind_for_path("/a/README", False) == "file"


class TestBuildGraph:
    def test_chain_structure(self):
        graph = _chain_graph()
        assert len(graph) == 3
        assert [n.id for n in graph.roots()] == ["/src/main.c"]
        assert [n.id for n in graph.sinks()] == ["/app/demo"]

    def test_topo_order(self):
        order = [n.id for n in _chain_graph().topo_order()]
        assert order.index("/src/main.c") < order.index("/src/main.o")
        assert order.index("/src/main.o") < order.index("/app/demo")

    def test_cycle_detected(self):
        graph = BuildGraph()
        graph.add(BuildNode(id="a", kind="object", path="a", deps=["b"]))
        graph.add(BuildNode(id="b", kind="object", path="b", deps=["a"]))
        with pytest.raises(GraphError, match="cycle"):
            graph.topo_order()

    def test_unknown_dep_fails_validation(self):
        graph = BuildGraph()
        graph.add(BuildNode(id="a", kind="object", path="a", deps=["ghost"]))
        with pytest.raises(GraphError, match="unknown"):
            graph.validate()

    def test_ancestors(self):
        graph = _chain_graph()
        assert graph.ancestors("/app/demo") == {"/src/main.o", "/src/main.c"}

    def test_dependents(self):
        graph = _chain_graph()
        assert [n.id for n in graph.dependents("/src/main.c")] == ["/src/main.o"]

    def test_ensure_idempotent(self):
        graph = BuildGraph()
        a = graph.ensure("/x.c")
        b = graph.ensure("/x.c")
        assert a is b

    def test_source_paths(self):
        assert _chain_graph().source_paths() == ["/src/main.c"]

    def test_json_roundtrip(self):
        graph = _chain_graph()
        restored = BuildGraph.from_json(graph.to_json())
        assert len(restored) == len(graph)
        assert restored.get("/app/demo").step.argv == ["gcc", "main.o", "-o", "/app/demo"]
        assert [n.id for n in restored.sinks()] == ["/app/demo"]

    def test_missing_node_raises(self):
        with pytest.raises(GraphError):
            BuildGraph().get("nope")


@st.composite
def _dags(draw):
    """Random DAGs: node i may only depend on nodes < i (acyclic)."""
    n = draw(st.integers(min_value=1, max_value=10))
    graph = BuildGraph()
    for i in range(n):
        deps = []
        if i:
            deps = draw(st.lists(
                st.integers(min_value=0, max_value=i - 1), max_size=3, unique=True
            ))
        graph.add(BuildNode(id=f"n{i}", kind="object", path=f"/n{i}",
                            deps=[f"n{d}" for d in deps]))
    return graph


class TestGraphProperties:
    @given(_dags())
    def test_topo_respects_all_edges(self, graph):
        order = [n.id for n in graph.topo_order()]
        position = {node_id: i for i, node_id in enumerate(order)}
        for node in graph:
            for dep in node.deps:
                assert position[dep] < position[node.id]

    @given(_dags())
    def test_roundtrip_preserves_structure(self, graph):
        restored = BuildGraph.from_json(graph.to_json())
        assert {n.id: sorted(n.deps) for n in restored} == {
            n.id: sorted(n.deps) for n in graph
        }

    @given(_dags())
    def test_roots_plus_produced_cover_graph(self, graph):
        roots = {n.id for n in graph.roots()}
        for node in graph:
            if node.id not in roots:
                assert node.deps


class TestImageModel:
    def _build_model(self):
        fs = VirtualFilesystem()
        fs.write_file("/bin/bash", b"base shell", create_parents=True)
        fs.write_file("/usr/lib/libopenblas.so.0", b"blas", create_parents=True)
        fs.write_file("/app/demo", b"the built binary", create_parents=True)
        fs.write_file("/app/share/input.dat", b"data", create_parents=True)
        fs.write_file("/mystery", b"???", create_parents=True)
        db = DpkgDatabase()
        db.add(Package(name="bash", version="1",
                       files=[PackagedFile(path="/bin/bash")]))
        db.add(Package(name="libopenblas0", version="1",
                       files=[PackagedFile(path="/usr/lib/libopenblas.so.0")]))
        db.write_to(fs)
        from repro.vfs import InlineContent

        digest = InlineContent(b"the built binary").digest
        return classify_image(
            fs,
            base_paths={"/bin/bash"},
            base_packages={"bash"},
            build_digest_index={digest: "/app/demo"},
            entrypoint=["/app/demo"],
            architecture="amd64",
        )

    def test_five_origins(self):
        model = self._build_model()
        assert model.files["/bin/bash"].origin == FileOrigin.BASE
        assert model.files["/usr/lib/libopenblas.so.0"].origin == FileOrigin.PACKAGE
        assert model.files["/usr/lib/libopenblas.so.0"].package == "libopenblas0"
        assert model.files["/app/demo"].origin == FileOrigin.BUILD
        assert model.files["/app/demo"].node_id == "/app/demo"
        assert model.files["/app/share/input.dat"].origin == FileOrigin.DATA
        assert model.files["/mystery"].origin == FileOrigin.UNKNOWN

    def test_packages_excludes_base(self):
        model = self._build_model()
        assert model.packages == ["libopenblas0"]
        assert model.base_packages == ["bash"]

    def test_build_outputs(self):
        model = self._build_model()
        assert model.build_outputs() == {"/app/demo": "/app/demo"}

    def test_histogram(self):
        hist = self._build_model().origin_histogram()
        assert hist[FileOrigin.BUILD] == 1
        assert sum(hist.values()) >= 5

    def test_json_roundtrip(self):
        model = self._build_model()
        restored = ImageModel.from_json(model.to_json())
        assert restored.to_json() == model.to_json()


class TestProcessModels:
    def test_clone_is_deep(self):
        models = ProcessModels(graph=_chain_graph())
        clone = models.clone()
        clone.graph.get("/app/demo").deps.append("extra")
        assert "extra" not in models.graph.get("/app/demo").deps

    def test_summary(self):
        models = ProcessModels(graph=_chain_graph())
        summary = models.summary()
        assert summary["nodes"] == 3
        assert summary["sinks"] == ["/app/demo"]

    def test_json_roundtrip(self):
        models = ProcessModels(graph=_chain_graph(), metadata={"app": "demo"})
        restored = ProcessModels.from_json(models.to_json())
        assert restored.metadata["app"] == "demo"
        assert len(restored.graph) == 3
