"""Test-suite configuration.

Hypothesis deadlines are disabled globally: property tests here exercise
whole substrates (filesystem trees, layer stacks) whose first-run import
and warm-up costs trip the default 200 ms deadline spuriously.
"""

import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture(scope="session")
def chaos_injector():
    """One :class:`FaultInjector` shared by an entire chaos sweep.

    Sweep iterations reconfigure it with
    ``injector.reset(seed=..., rate=...)`` instead of constructing a
    fresh injector per (seed, rate) point; ``disarm(site)`` silences one
    site mid-scenario without disturbing the seeded stream.
    """
    from repro.resilience import FaultInjector

    return FaultInjector()
