"""Test-suite configuration.

Hypothesis deadlines are disabled globally: property tests here exercise
whole substrates (filesystem trees, layer stacks) whose first-run import
and warm-up costs trip the default 200 ms deadline spuriously.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
