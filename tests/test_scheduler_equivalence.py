"""Scheduler equivalence and artifact-cache integration tests.

The wavefront scheduler must be a pure *accounting* change: for every
application and any ``--jobs`` value the rebuilt layer bytes are
identical, and the artifact cache may change which work *executes* but
never what comes out.
"""

import pytest

from repro.apps import APPS, get_app
from repro.containers import ContainerEngine
from repro.core.cache.artifacts import (
    attach_artifact_cache,
    has_artifact_cache,
    publish_artifact_cache,
)
from repro.core.cache.storage import (
    decode_cache,
    decode_rebuild,
    extended_tag,
    rebuilt_tag,
)
from repro.core.frontend.build import IO_MOUNT
from repro.core.images import install_system_side_images, sysenv_ref
from repro.core.workflow import ComtainerSession, build_extended_image
from repro.oci.layout import OCILayout
from repro.oci.registry import ImageRegistry
from repro.perf import attach_perf
from repro.resilience import FaultInjector, FaultSpec
from repro.sysmodel import X86_CLUSTER

ALL_APPS = sorted(APPS)
JOBS_SWEEP = (1, 2, 8)


@pytest.fixture(scope="module")
def system_engine():
    engine = ContainerEngine(arch="amd64")
    install_system_side_images(engine, X86_CLUSTER)
    attach_perf(engine, X86_CLUSTER)
    return engine


@pytest.fixture(scope="module")
def extended_images():
    user = ContainerEngine(arch="amd64")
    built = {}

    def get(app):
        if app not in built:
            built[app] = build_extended_image(user, get_app(app))
        return built[app]

    return get


def _fresh_copy(extended):
    """A pristine layout holding only the dist + extended manifests."""
    layout, dist_tag = extended
    fresh = OCILayout()
    for tag in (dist_tag, extended_tag(dist_tag)):
        resolved = layout.resolve(tag)
        fresh.add_manifest(resolved.manifest, resolved.config,
                           resolved.layers, tag=tag)
    return fresh, dist_tag


def _rebuild(engine, layout, args):
    ctr = engine.from_image(sysenv_ref("x86"), name="sched-rb",
                            mounts={IO_MOUNT: layout})
    try:
        return engine.run(ctr, ["coMtainer-rebuild"] + args).check().stdout
    finally:
        engine.remove_container("sched-rb")


def _rebuilt_layer_digest(layout, dist_tag):
    return layout.resolve(rebuilt_tag(dist_tag)).layers[-1].digest


class TestJobsEquivalence:
    @pytest.mark.parametrize("app", ALL_APPS)
    def test_rebuilt_bytes_identical_at_any_jobs(
        self, app, system_engine, extended_images
    ):
        digests, metas = {}, {}
        for jobs in JOBS_SWEEP:
            layout, dist_tag = _fresh_copy(extended_images(app))
            out = _rebuild(system_engine, layout,
                           ["--adapter=vendor", f"--jobs={jobs}"])
            assert f"schedule jobs={jobs} " in out
            digests[jobs] = _rebuilt_layer_digest(layout, dist_tag)
            metas[jobs] = decode_rebuild(layout, dist_tag)[0]
        assert len(set(digests.values())) == 1, digests
        baseline = metas[JOBS_SWEEP[0]]
        for jobs in JOBS_SWEEP[1:]:
            meta = metas[jobs]
            assert meta["executed_nodes"] == baseline["executed_nodes"]
            assert meta["node_commands"] == baseline["node_commands"]
            assert meta["reused_nodes"] == baseline["reused_nodes"]

    def test_schedule_speedup_reported(self, system_engine, extended_images):
        layout, _ = _fresh_copy(extended_images("lammps"))
        out = _rebuild(system_engine, layout, ["--adapter=vendor", "--jobs=8"])
        line = next(l for l in out.splitlines() if "schedule jobs=8" in l)
        speedup = float(line.rsplit("speedup=", 1)[1].rstrip("x"))
        assert speedup > 1.5

    def test_bad_jobs_value_rejected(self, system_engine, extended_images):
        layout, _ = _fresh_copy(extended_images("minife"))
        ctr = system_engine.from_image(sysenv_ref("x86"), name="sched-bad",
                                       mounts={IO_MOUNT: layout})
        try:
            result = system_engine.run(
                ctr, ["coMtainer-rebuild", "--adapter=vendor", "--jobs=0"]
            )
            assert result.exit_code != 0
            assert "bad --jobs value" in result.stderr
        finally:
            system_engine.remove_container("sched-bad")


class TestArtifactCacheIntegration:
    def test_warm_cache_executes_nothing(self, system_engine, extended_images):
        extended = extended_images("lammps")
        cold, dist_tag = _fresh_copy(extended)
        _rebuild(system_engine, cold, ["--adapter=vendor"])
        cold_meta = decode_rebuild(cold, dist_tag)[0]
        assert cold_meta["cache_hits"] == []
        assert has_artifact_cache(cold, dist_tag)

        registry = ImageRegistry()
        assert publish_artifact_cache(registry, "repro/lammps", cold, dist_tag)

        warm, _ = _fresh_copy(extended)
        assert attach_artifact_cache(warm, registry, "repro/lammps", dist_tag)
        out = _rebuild(system_engine, warm, ["--adapter=vendor"])
        warm_meta = decode_rebuild(warm, dist_tag)[0]
        assert warm_meta["executed_nodes"] == []
        assert set(warm_meta["cache_hits"]) == set(warm_meta["node_commands"])
        assert "served from the artifact cache" in out
        # meta.json differs (cache_hits vs executed), but every produced
        # artifact is byte-identical to the cold build's.
        cold_files = decode_rebuild(cold, dist_tag)[1]
        warm_files = decode_rebuild(warm, dist_tag)[1]
        assert {p: c.digest for p, c in warm_files.items()} == \
            {p: c.digest for p, c in cold_files.items()}
        assert warm.audit() == []
        assert registry.audit() == []

    def test_warm_cache_at_parallel_jobs_reports_unity_speedup(
        self, system_engine, extended_images
    ):
        """A fully warm cache executes zero groups: the schedule line must
        report speedup=1.00x, not a 0/0 artifact (regression guard for
        ScheduleReport.speedup/utilization on empty-executed plans)."""
        extended = extended_images("lulesh")
        cold, dist_tag = _fresh_copy(extended)
        _rebuild(system_engine, cold, ["--adapter=vendor"])
        registry = ImageRegistry()
        assert publish_artifact_cache(registry, "repro/lulesh", cold, dist_tag)

        warm, _ = _fresh_copy(extended)
        assert attach_artifact_cache(warm, registry, "repro/lulesh", dist_tag)
        out = _rebuild(system_engine, warm, ["--adapter=vendor", "--jobs=8"])
        meta = decode_rebuild(warm, dist_tag)[0]
        assert meta["executed_nodes"] == []
        line = next(l for l in out.splitlines() if "schedule jobs=8" in l)
        assert line.rstrip().endswith("speedup=1.00x")
        assert float(line.rsplit("speedup=", 1)[1].rstrip("x")) == 1.0

    def test_option_change_misses_cache(self, system_engine, extended_images):
        extended = extended_images("minife")
        cold, dist_tag = _fresh_copy(extended)
        _rebuild(system_engine, cold, ["--adapter=vendor"])
        registry = ImageRegistry()
        publish_artifact_cache(registry, "repro/minife", cold, dist_tag)

        warm, _ = _fresh_copy(extended)
        attach_artifact_cache(warm, registry, "repro/minife", dist_tag)
        _rebuild(system_engine, warm, ["--adapter=vendor", "--lto"])
        meta = decode_rebuild(warm, dist_tag)[0]
        # -flto changes every command digest: the plain-build cache is cold.
        assert meta["cache_hits"] == []
        assert len(meta["executed_nodes"]) == len(meta["node_commands"])

    def test_no_cache_flag_disables_everything(
        self, system_engine, extended_images
    ):
        layout, dist_tag = _fresh_copy(extended_images("minife"))
        _rebuild(system_engine, layout, ["--adapter=vendor", "--no-cache"])
        meta = decode_rebuild(layout, dist_tag)[0]
        assert meta["cache_hits"] == []
        assert not has_artifact_cache(layout, dist_tag)

    def test_failed_rebuild_never_flushes_cache(
        self, system_engine, extended_images
    ):
        layout, dist_tag = _fresh_copy(extended_images("minife"))
        models, _, _ = decode_cache(layout, dist_tag)
        victim = [n for n in models.graph.topo_order() if n.step][-1]
        system_engine.fault_injector = FaultInjector(
            specs=[FaultSpec(site="rebuild.node", kind="persistent",
                             match=victim.id)]
        )
        from repro.resilience import PersistentFault

        ctr = system_engine.from_image(sysenv_ref("x86"), name="cache-fail",
                                       mounts={IO_MOUNT: layout})
        try:
            with pytest.raises(PersistentFault):
                system_engine.run(
                    ctr, ["coMtainer-rebuild", "--adapter=vendor"]
                )
        finally:
            system_engine.fault_injector = None
            system_engine.remove_container("cache-fail")
        # Partial work must not poison future consumers of the cache.
        assert not has_artifact_cache(layout, dist_tag)

    def test_cross_session_sharing_skips_all_compiles(self):
        registry = ImageRegistry()
        first = ComtainerSession(registry=registry, share_cache=True)
        first.adapted_image("hpccg")
        layout_a, dist_tag = first.extended_layout("hpccg")
        assert registry.get_artifact_cache("repro/hpccg") is not None

        second = ComtainerSession(registry=registry, share_cache=True)
        second.adapted_image("hpccg")
        layout_b, _ = second.extended_layout("hpccg")
        meta = decode_rebuild(layout_b, dist_tag)[0]
        assert meta["executed_nodes"] == []
        assert set(meta["cache_hits"]) == set(meta["node_commands"])
        files_a = decode_rebuild(layout_a, dist_tag)[1]
        files_b = decode_rebuild(layout_b, dist_tag)[1]
        assert {p: c.digest for p, c in files_b.items()} == \
            {p: c.digest for p, c in files_a.items()}
        assert registry.audit() == []

    def test_sharing_off_by_default(self):
        registry = ImageRegistry()
        session = ComtainerSession(registry=registry)
        session.adapted_image("hpccg")
        assert registry.get_artifact_cache("repro/hpccg") is None


@pytest.mark.chaos
class TestMidWavefrontFaults:
    def test_fallback_poisons_dependents_not_peers(
        self, system_engine, extended_images
    ):
        extended = extended_images("hpl")
        layout, dist_tag = _fresh_copy(extended)
        models, _, _ = decode_cache(layout, dist_tag)
        step_nodes = [n for n in models.graph.topo_order() if n.step]
        compiles = [n for n in step_nodes if n.kind == "object"]
        assert len(compiles) >= 2, "need wavefront peers"
        victim = compiles[0]

        system_engine.fault_injector = FaultInjector(
            specs=[FaultSpec(site="rebuild.node", kind="persistent",
                             match=victim.id)]
        )
        ctr = system_engine.from_image(sysenv_ref("x86"), name="wave-fault",
                                       mounts={IO_MOUNT: layout})
        try:
            out = system_engine.run(
                ctr, ["coMtainer-rebuild", "--adapter=vendor", "--fallback",
                      "--jobs=4"]
            ).check().stdout
        finally:
            system_engine.fault_injector = None
            system_engine.remove_container("wave-fault")

        meta = decode_rebuild(layout, dist_tag)[0]
        failed = set(meta["failed_nodes"])
        executed = set(meta["executed_nodes"])
        assert victim.id in failed
        # Every dependent of the victim is poisoned without executing...
        downstream = {
            n.id for n in step_nodes if victim.id in models.graph.ancestors(n.id)
        }
        assert downstream <= failed
        assert not (downstream & executed)
        # ...while its wavefront peers complete normally.  Sibling outputs
        # of the victim's own (multi-source) command fail with it — they
        # are one command, not peers.
        vkey = (tuple(victim.step.argv), victim.step.cwd)
        siblings = {
            n.id for n in compiles
            if (tuple(n.step.argv), n.step.cwd) == vkey
        }
        assert siblings <= failed
        peers = {n.id for n in compiles} - siblings
        assert peers, "need at least one true wavefront peer"
        assert peers <= executed
        assert peers.isdisjoint(failed)
        assert meta["fallback_paths"]
        assert "fell back to generic" in out
        assert layout.audit() == []

    def test_journal_resume_with_parallel_schedule(
        self, system_engine, extended_images
    ):
        from repro.resilience import PersistentFault, RebuildJournal, has_journal

        extended = extended_images("hpccg")
        layout, dist_tag = _fresh_copy(extended)
        models, _, _ = decode_cache(layout, dist_tag)
        victim = [n for n in models.graph.topo_order() if n.step][-1]

        system_engine.fault_injector = FaultInjector(
            specs=[FaultSpec(site="rebuild.node", kind="persistent",
                             match=victim.id)]
        )
        ctr1 = system_engine.from_image(sysenv_ref("x86"), name="wave-res1",
                                        mounts={IO_MOUNT: layout})
        try:
            with pytest.raises(PersistentFault):
                system_engine.run(
                    ctr1, ["coMtainer-rebuild", "--adapter=vendor",
                           "--journal", "--jobs=4"]
                )
        finally:
            system_engine.fault_injector = None
            system_engine.remove_container("wave-res1")

        assert has_journal(layout, dist_tag)
        completed = set(RebuildJournal(layout, dist_tag).node_ids())
        assert completed and victim.id not in completed

        _rebuild(system_engine, layout,
                 ["--adapter=vendor", "--journal", "--jobs=4"])
        meta = decode_rebuild(layout, dist_tag)[0]
        assert set(meta["journal_restored"]) == completed
        assert victim.id in meta["executed_nodes"]
        assert not (set(meta["executed_nodes"]) & completed)
        assert not has_journal(layout, dist_tag)
        assert layout.audit() == []
