"""Incremental-vs-cold byte identity across every application spec.

The plan-level short-circuit (:mod:`repro.perf.incremental`) replays
previous outputs instead of executing — so for every app the rebuilt
*bytes* must be indistinguishable from a cold rebuild, for a warm
identical re-adaptation, for a one-node change, and with worker-fleet
chaos in the mix (fleet faults reshape simulated time, never bytes)."""

import pytest

from repro.apps import APPS
from repro.containers import ContainerEngine
from repro.core.cache.storage import (
    decode_rebuild,
    decode_rebuild_nodes,
    extended_tag,
)
from repro.core.frontend.build import IO_MOUNT
from repro.core.images import install_system_side_images, sysenv_ref
from repro.core.workflow import build_extended_image
from repro.oci.layout import OCILayout
from repro.perf import attach_perf
from repro.resilience import FaultInjector, FaultSpec
from repro.sysmodel import X86_CLUSTER

pytestmark = pytest.mark.incremental

ALL_APPS = sorted(APPS)
CHAOS_APPS = ALL_APPS[:3]


@pytest.fixture(scope="module")
def system_engine():
    engine = ContainerEngine(arch="amd64")
    install_system_side_images(engine, X86_CLUSTER)
    attach_perf(engine, X86_CLUSTER)
    return engine


@pytest.fixture(scope="module")
def extended_images():
    user = ContainerEngine(arch="amd64")
    built = {}

    def get(app):
        if app not in built:
            built[app] = build_extended_image(user, APPS[app])
        return built[app]

    return get


def _fresh_copy(extended):
    layout, dist_tag = extended
    fresh = OCILayout()
    for tag in (dist_tag, extended_tag(dist_tag)):
        resolved = layout.resolve(tag)
        fresh.add_manifest(resolved.manifest, resolved.config,
                           resolved.layers, tag=tag)
    return fresh, dist_tag


def _rebuild(engine, layout, args):
    ctr = engine.from_image(sysenv_ref("x86"), name="inc-id",
                            mounts={IO_MOUNT: layout})
    try:
        return engine.run(ctr, ["coMtainer-rebuild"] + args).check().stdout
    finally:
        engine.remove_container("inc-id")


def _digests(layout, dist_tag):
    """Per-path content digests of the rebuilt files + node outputs."""
    meta, files, _, _ = decode_rebuild(layout, dist_tag)
    _, node_files = decode_rebuild_nodes(layout, dist_tag)
    return (
        {p: c.digest for p, c in files.items()},
        {p: c.digest for p, c in node_files.items()},
        meta,
    )


def _scoped_target(meta):
    """A deterministic single-object LTO target for the app."""
    objects = sorted(n for n in meta["executed_nodes"] if n.endswith(".o"))
    return objects[0] if objects else sorted(meta["executed_nodes"])[0]


class TestWarmIdentity:
    @pytest.mark.parametrize("app", ALL_APPS)
    def test_warm_identical_bytes_match_cold(
        self, app, system_engine, extended_images
    ):
        cold, dist_tag = _fresh_copy(extended_images(app))
        _rebuild(system_engine, cold, ["--adapter=vendor"])
        cold_files, cold_nodes, cold_meta = _digests(cold, dist_tag)

        warm, _ = _fresh_copy(extended_images(app))
        _rebuild(system_engine, warm, ["--adapter=vendor"])
        out = _rebuild(system_engine, warm, ["--adapter=vendor"])
        warm_files, warm_nodes, warm_meta = _digests(warm, dist_tag)

        # Zero nodes executed, zero waves scheduled — and identical bytes.
        assert warm_meta["executed_nodes"] == []
        assert sorted(warm_meta["pruned_nodes"]) == sorted(
            cold_meta["executed_nodes"])
        assert "wavefronts=0" in out
        assert warm_files == cold_files
        assert warm_nodes == cold_nodes

    @pytest.mark.parametrize("app", ALL_APPS)
    def test_one_node_changed_bytes_match_cold(
        self, app, system_engine, extended_images
    ):
        base, dist_tag = _fresh_copy(extended_images(app))
        _rebuild(system_engine, base, ["--adapter=vendor"])
        target = _scoped_target(decode_rebuild(base, dist_tag)[0])
        change = ["--adapter=vendor", "--lto", f"--lto-scope={target}"]

        cold, _ = _fresh_copy(extended_images(app))
        _rebuild(system_engine, cold, change)
        cold_files, cold_nodes, cold_meta = _digests(cold, dist_tag)

        # The incremental path: plain rebuild, then the scoped change.
        out = _rebuild(system_engine, base, change)
        inc_files, inc_nodes, inc_meta = _digests(base, dist_tag)

        assert target in inc_meta["executed_nodes"]
        # Pruning is command-group granular: only apps with more than one
        # independent compile command keep siblings pruned.
        objects = [n for n in cold_meta["executed_nodes"] if n.endswith(".o")]
        groups = {cold_meta["node_commands"][n] for n in objects}
        if len(groups) > 1:
            assert len(inc_meta["executed_nodes"]) < len(
                cold_meta["executed_nodes"])
            assert inc_meta["pruned_nodes"]
        assert sorted(inc_meta["executed_nodes"] + inc_meta["pruned_nodes"]) \
            == sorted(cold_meta["executed_nodes"])
        assert inc_files == cold_files
        assert inc_nodes == cold_nodes


@pytest.mark.chaos
class TestChaosIdentity:
    """Worker-fleet faults reshape the simulated timeline, never bytes —
    so the pruned plans must stay digest-identical under fleet chaos."""

    @pytest.mark.parametrize("app", CHAOS_APPS)
    def test_chaotic_cold_then_clean_warm(
        self, app, system_engine, extended_images
    ):
        clean, dist_tag = _fresh_copy(extended_images(app))
        _rebuild(system_engine, clean, ["--adapter=vendor", "--jobs=4"])
        clean_files, clean_nodes, _ = _digests(clean, dist_tag)

        chaotic, _ = _fresh_copy(extended_images(app))
        system_engine.fault_injector = FaultInjector(
            specs=[FaultSpec(site="worker.crash", match="", times=1),
                   FaultSpec(site="worker.flaky", match="", times=1)]
        )
        try:
            _rebuild(system_engine, chaotic,
                     ["--adapter=vendor", "--jobs=4"])
        finally:
            system_engine.fault_injector = None
        out = _rebuild(system_engine, chaotic,
                       ["--adapter=vendor", "--jobs=4"])
        warm_files, warm_nodes, warm_meta = _digests(chaotic, dist_tag)

        # The chaotic cold run produced clean bytes, so the warm diff
        # prunes everything and replays those same bytes.
        assert warm_meta["executed_nodes"] == []
        assert "wavefronts=0" in out
        assert warm_files == clean_files
        assert warm_nodes == clean_nodes

    @pytest.mark.parametrize("app", CHAOS_APPS)
    def test_chaotic_incremental_change(
        self, app, system_engine, extended_images
    ):
        base, dist_tag = _fresh_copy(extended_images(app))
        _rebuild(system_engine, base, ["--adapter=vendor"])
        target = _scoped_target(decode_rebuild(base, dist_tag)[0])
        change = ["--adapter=vendor", "--jobs=4", "--lto",
                  f"--lto-scope={target}"]

        cold, _ = _fresh_copy(extended_images(app))
        _rebuild(system_engine, cold, change)
        cold_files, cold_nodes, _ = _digests(cold, dist_tag)

        system_engine.fault_injector = FaultInjector(
            specs=[FaultSpec(site="worker.crash", match="", times=1),
                   FaultSpec(site="worker.straggle", match="", times=2)]
        )
        try:
            _rebuild(system_engine, base, change)
        finally:
            system_engine.fault_injector = None
        inc_files, inc_nodes, inc_meta = _digests(base, dist_tag)

        assert target in inc_meta["executed_nodes"]
        assert inc_files == cold_files
        assert inc_nodes == cold_nodes
