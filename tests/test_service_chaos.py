"""Chaos and acceptance tests for the multi-tenant adaptation service.

The three headline claims (ISSUE 8 acceptance criteria), each on the
seeded simulated timeline:

* **Tenant isolation** — a noisy tenant at 10x fair load cannot push a
  quiet tenant's p99 latency past 2x its isolated baseline (WFQ +
  bulkheads).
* **Breaker lifecycle** — under scripted registry faults the circuit
  breaker opens, half-opens, and closes deterministically, and *no
  request is lost*: every admitted request ends completed, degraded, or
  typed-rejected.
* **Shared-cache dedup** — a warm cross-tenant cache absorbs >= 50% of
  rebuild node-work, with digest equality to cold-cache output.

Plus: single-flight runs identical concurrent work exactly once;
eviction under capacity pressure never breaks digest equality; and the
regression guard — the single-request service path is byte-identical to
a direct ``ComtainerSession.adapt`` for every app spec.
"""

import pytest

from repro.apps import APPS
from repro.core.workflow import ComtainerSession
from repro.resilience import FaultInjector, FaultSpec
from repro.service import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    STATUS_COMPLETED,
    STATUS_DEGRADED,
    STATUS_REJECTED,
    TERMINAL_STATUSES,
    AdaptationService,
    percentile,
)

pytestmark = [pytest.mark.chaos, pytest.mark.service]


def adapted_layer_key(service, tenant, app):
    """Layer digests of the tenant's adapted image — byte identity."""
    return service.tenants[tenant].engine.image(
        f"{tenant}/{app}:adapted").layer_key()


class TestNoisyTenantIsolation:
    """Acceptance (a): 10x-noisy tenant vs a quiet tenant's p99."""

    QUIET_APP = "minimd"
    NOISY_APP = "hpccg"

    def quiet_arrivals(self, service):
        # Spaced arrivals; deadline-free, full service.
        for i in range(5):
            service.submit("quiet", self.QUIET_APP, at=40.0 * i)

    def test_noisy_tenant_cannot_double_quiet_p99(self):
        # Isolated baseline: the quiet tenant alone.
        baseline = AdaptationService(workers=8, seed=42)
        baseline.add_tenant("quiet", max_workers=4)
        self.quiet_arrivals(baseline)
        isolated = baseline.run()
        isolated_p99 = isolated.tenants["quiet"]["p99"]
        assert isolated_p99 > 0

        # Shared run: a noisy tenant floods 10x the quiet tenant's load
        # into the same window (a different app, so the quiet tenant's
        # latency cannot be flattered by cross-tenant cache hits).
        shared = AdaptationService(workers=8, seed=42)
        shared.add_tenant("quiet", max_workers=4)
        shared.add_tenant("noisy", max_workers=4)
        self.quiet_arrivals(shared)
        for i in range(50):
            shared.submit("noisy", self.NOISY_APP, at=4.0 * i)
        report = shared.run()

        quiet_latencies = [o.latency for o in report.outcomes
                           if o.tenant == "quiet"
                           and o.status in (STATUS_COMPLETED, STATUS_DEGRADED)]
        assert len(quiet_latencies) == 5       # none rejected or expired
        shared_p99 = percentile(quiet_latencies, 0.99)
        assert shared_p99 <= 2.0 * isolated_p99, (
            f"quiet p99 {shared_p99:.2f}s vs isolated {isolated_p99:.2f}s"
        )
        # And the noisy tenant really was noisy: it paid with its own
        # virtual time, well ahead of the quiet tenant's (single-flight
        # dedup absorbs much of its repeat work, so the gap is bounded).
        assert (report.tenants["noisy"]["vtime"]
                > 2.0 * report.tenants["quiet"]["vtime"])
        assert report.tenants["noisy"]["submitted"] == 50


class TestBreakerLifecycle:
    """Acceptance (b): deterministic open/half-open/close, nothing lost."""

    def build(self):
        injector = FaultInjector(seed=3, specs=[
            # Each failed transfer burns exactly 4 faults (SERVICE_RETRY's
            # attempt cap on the first push): 2 failures trip the breaker
            # (8 spent), the t=5 arrival is fail-fast (0 spent), and the
            # t=400 half-open probe retries through the last 3 and
            # succeeds on its 4th attempt — closing the breaker.
            FaultSpec(site="registry.push", kind="transient", match="",
                      times=11),
        ], max_burst=64)
        service = AdaptationService(workers=8, seed=11, injector=injector,
                                    breaker_threshold=2, breaker_reset=60.0)
        service.add_tenant("alpha", max_workers=4)
        service.add_tenant("beta", max_workers=4)
        service.submit("alpha", "lammps", at=0.0)
        service.submit("beta", "hpcg", at=0.0)
        service.submit("alpha", "minimd", at=5.0)   # arrives to an open breaker
        service.submit("beta", "comd", at=400.0)    # half-open probe, succeeds
        return service

    def test_breaker_walks_full_lifecycle(self):
        report = self.build().run()
        hops = [(t["from"], t["to"])
                for t in report.breakers["registry"]["transitions"]]
        assert hops == [
            (STATE_CLOSED, STATE_OPEN),
            (STATE_OPEN, STATE_HALF_OPEN),
            (STATE_HALF_OPEN, STATE_CLOSED),
        ]
        assert report.breakers["registry"]["state"] == STATE_CLOSED
        # The open window served fail-fast (no queueing behind the sick
        # registry): the t=5 arrival was routed to a local replica.
        assert report.breakers["registry"]["rejections"] >= 1
        replica_served = [o for o in report.outcomes
                          if any("local replica" in r for r in o.reasons)]
        assert replica_served

    def test_no_admitted_request_is_lost(self):
        report = self.build().run()
        assert len(report.outcomes) == 4
        for outcome in report.outcomes:
            assert outcome.status in TERMINAL_STATUSES
        # Degraded-not-broken: full-rung bytes everywhere, demoted to
        # "degraded" only because the registry path was routed around.
        for outcome in report.outcomes:
            assert outcome.status in (STATUS_COMPLETED, STATUS_DEGRADED)
            assert outcome.ref is not None

    def test_lifecycle_is_deterministic(self):
        first = self.build().run()
        second = self.build().run()
        def fingerprint(report):
            return (
                [(o.request_id, o.status, o.rung, round(o.latency, 6))
                 for o in report.outcomes],
                [(round(t["t"], 6), t["from"], t["to"])
                 for t in report.breakers["registry"]["transitions"]],
            )
        assert fingerprint(first) == fingerprint(second)


class TestSharedCacheDedup:
    """Acceptance (c): warm cross-tenant dedup >= 50%, digests equal."""

    APP = "lammps"

    def test_warm_cache_dedups_majority_of_work(self):
        # Cold reference: one tenant alone, cold cache.
        cold = AdaptationService(workers=4, seed=9)
        cold.add_tenant("solo", max_workers=4)
        cold.submit("solo", self.APP, at=0.0)
        cold_report = cold.run()
        assert cold_report.outcomes[0].status == STATUS_COMPLETED
        cold_key = adapted_layer_key(cold, "solo", self.APP)

        # Three tenants, same app: the first rebuild warms the shared
        # pool, the other two ride it (single-flight parks them until
        # the leader lands, then they run against the warm cache).
        warm = AdaptationService(workers=8, seed=9)
        for name in ("t0", "t1", "t2"):
            warm.add_tenant(name, max_workers=4)
            warm.submit(name, self.APP, at=0.0)
        report = warm.run()

        assert all(o.status == STATUS_COMPLETED for o in report.outcomes)
        assert report.dedup_ratio >= 0.5, (
            f"dedup ratio {report.dedup_ratio:.1%}"
        )
        for name in ("t0", "t1", "t2"):
            assert adapted_layer_key(warm, name, self.APP) == cold_key

    def test_single_flight_executes_compile_work_exactly_once(self):
        service = AdaptationService(workers=8, seed=1)
        service.add_tenant("a", max_workers=4)
        service.add_tenant("b", max_workers=4)
        service.submit("a", self.APP, at=0.0)
        service.submit("b", self.APP, at=0.0)
        report = service.run()
        assert report.deduped_requests == 1
        leaders = [o for o in report.outcomes if not o.deduped]
        followers = [o for o in report.outcomes if o.deduped]
        assert len(leaders) == 1 and len(followers) == 1
        assert leaders[0].executed_nodes > 0
        # The follower recompiled nothing: all node-work came from the
        # leader-warmed shared pool.
        assert followers[0].executed_nodes == 0
        assert followers[0].cache_hit_nodes > 0
        assert (adapted_layer_key(service, "a", self.APP)
                == adapted_layer_key(service, "b", self.APP))
        # Time causality: the follower finished after the leader.
        assert followers[0].finished_at > leaders[0].finished_at

    def test_eviction_under_pressure_never_breaks_digests(self):
        apps = ("minimd", "hpccg", "comd")
        # Reference digests from isolated cold runs.
        reference = {}
        for app in apps:
            solo = AdaptationService(workers=4, seed=5)
            solo.add_tenant("solo", max_workers=4)
            solo.submit("solo", app, at=0.0)
            solo.run()
            reference[app] = adapted_layer_key(solo, "solo", app)

        # A pool far smaller than any one app's entry set: every absorb
        # evicts, every seed serves a partial (or empty) cache.
        squeezed = AdaptationService(workers=8, seed=5, cache_capacity=2)
        squeezed.add_tenant("x", max_workers=4)
        squeezed.add_tenant("y", max_workers=4)
        for i, app in enumerate(apps):
            squeezed.submit("x", app, at=60.0 * i)
            squeezed.submit("y", app, at=60.0 * i + 30.0)
        report = squeezed.run()
        assert report.cache["evictions"] > 0
        assert len(report.cache) and report.cache["entries"] <= 2
        assert all(o.status == STATUS_COMPLETED for o in report.outcomes)
        for tenant in ("x", "y"):
            for app in apps:
                assert (adapted_layer_key(squeezed, tenant, app)
                        == reference[app]), (tenant, app)


class TestServiceRegressionGuard:
    """Satellite 6: the service path's bytes == the direct session path."""

    @pytest.mark.parametrize("app", sorted(APPS))
    def test_single_request_matches_direct_adapt(self, app):
        service = AdaptationService(workers=2, seed=0)
        service.add_tenant("t", max_workers=2)
        service.submit("t", app, at=0.0, jobs=2)
        report = service.run()
        assert report.outcomes[0].status == STATUS_COMPLETED
        service_key = adapted_layer_key(service, "t", app)

        session = ComtainerSession()
        ref = session.adapt(app)
        direct_key = session.system_engine.image(ref).layer_key()
        assert service_key == direct_key
