"""Unit tests for the fault-tolerant rebuild worker fleet.

Covers the fleet timeline simulation (crash/lease/reassignment math,
speculation, blacklisting, exhaustion), the injector's worker fault
family and its sweep controls (``disarm``/``reset``), the journal's
lease lines, and the zero-executed-group guards on
:class:`ScheduleReport`.
"""

import pytest

from repro.core.backend.scheduler import ScheduleReport, WaveStats, lpt_schedule
from repro.oci.layout import OCILayout
from repro.resilience import (
    WORKER_SITES,
    FaultInjector,
    FaultSpec,
    FleetExhaustedError,
    FleetStats,
    HeartbeatMonitor,
    PersistentFault,
    RebuildJournal,
    WorkerFleet,
    find_fleet_exhausted,
)
from repro.resilience.retry import SimulatedClock


def _entries(costs):
    return [(f"g{i}", cost) for i, cost in enumerate(costs)]


class TestFaultFreeEquivalence:
    @pytest.mark.parametrize("jobs", [1, 2, 3, 8])
    def test_wave_matches_lpt_schedule_exactly(self, jobs):
        costs = [3.0, 1.0, 2.0, 5.0, 4.0, 0.5]
        fleet = WorkerFleet(jobs=jobs)
        outcome = fleet.run_wave(0, _entries(costs))
        expected, _ = lpt_schedule(costs, jobs)
        assert outcome.makespan == pytest.approx(expected)
        assert set(outcome.completed) == {f"g{i}" for i in range(len(costs))}
        assert not outcome.exhausted
        assert not fleet.stats.any_faults
        assert fleet.stats.workers_alive == jobs
        # The fleet clock advanced by exactly the wave makespan.
        assert fleet.clock.now == pytest.approx(expected)

    def test_empty_wave_is_free(self):
        fleet = WorkerFleet(jobs=4)
        outcome = fleet.run_wave(0, [])
        assert outcome.makespan == 0.0
        assert outcome.completed == {}
        assert fleet.clock.now == 0.0

    def test_inert_injector_consumes_no_randomness(self):
        """With no worker specs and zero worker rates, dispatching a wave
        must not touch the injector's seeded stream — pre-fleet chaos
        sweeps must replay identically with the fleet in place."""
        injector = FaultInjector(seed=7, rate=0.5)
        before = injector._rng.getstate()
        fleet = WorkerFleet(jobs=4, injector=injector)
        fleet.run_wave(0, _entries([1.0, 2.0, 3.0]))
        assert injector._rng.getstate() == before
        assert injector.log == []


class TestCrashRecovery:
    def test_crash_expires_lease_and_reassigns(self):
        injector = FaultInjector(
            specs=[FaultSpec(site="worker.crash", match="", times=1)]
        )
        fleet = WorkerFleet(jobs=2, injector=injector)
        outcome = fleet.run_wave(0, _entries([4.0]))
        # w0 dies at 0.5 * 4.0 = 2.0; the lease expires a full timeout
        # (5.0 * 3) later; w1 picks the group up at 17.0 and finishes at
        # 21.0 — crash recovery is charged to the makespan.
        assert outcome.makespan == pytest.approx(21.0)
        assert outcome.completed["g0"] == pytest.approx(21.0)
        assert outcome.owners["g0"] == "w0"
        assert not fleet.workers[0].alive
        assert fleet.workers[1].alive
        assert fleet.stats.crashes == 1
        assert fleet.stats.lease_expirations == 1
        assert fleet.stats.reassignments == 1
        assert fleet.stats.workers_alive == 1
        expired = fleet.monitor.expired
        assert len(expired) == 1 and expired[0].worker == "w0"

    def test_peers_unaffected_by_crash(self):
        injector = FaultInjector(
            specs=[FaultSpec(site="worker.crash", match="g0", times=1)]
        )
        fleet = WorkerFleet(jobs=2, injector=injector)
        outcome = fleet.run_wave(0, _entries([4.0, 2.0]))
        # The peer completes normally on w1 at 2.0; the crashed group is
        # reassigned to w1 once the lease expires (detect = 17.0).
        assert outcome.completed["g1"] == pytest.approx(2.0)
        assert outcome.completed["g0"] == pytest.approx(21.0)
        assert outcome.makespan == pytest.approx(21.0)

    def test_exhaustion_when_every_worker_dies(self):
        injector = FaultInjector(
            specs=[FaultSpec(site="worker.crash", match="", times=-1)]
        )
        fleet = WorkerFleet(jobs=2, injector=injector)
        outcome = fleet.run_wave(3, _entries([4.0, 2.0]))
        assert outcome.exhausted
        assert set(outcome.pending) == {"g0", "g1"}
        assert fleet.stats.exhausted_waves == 1
        assert fleet.stats.workers_alive == 0
        err = FleetExhaustedError(3, outcome.pending, fleet.stats)
        assert err.transient is False
        assert "wavefront 3" in str(err)
        assert err.pending == outcome.pending


class TestFlakyBlacklist:
    def test_flaky_attempt_burns_cost_and_strikes(self):
        injector = FaultInjector(
            specs=[FaultSpec(site="worker.flaky", match="", times=1)]
        )
        fleet = WorkerFleet(jobs=2, injector=injector)
        outcome = fleet.run_wave(0, _entries([2.0]))
        # w0 burns the full cost, fails, and the retry lands on w1 (the
        # failing worker is excluded) no earlier than the failure time.
        assert outcome.completed["g0"] == pytest.approx(4.0)
        assert outcome.makespan == pytest.approx(4.0)
        assert fleet.workers[0].strikes == 1
        assert fleet.workers[0].alive and not fleet.workers[0].blacklisted
        assert fleet.stats.flaky_failures == 1
        assert fleet.stats.reassignments == 1

    def test_repeatedly_flaky_worker_is_blacklisted(self):
        injector = FaultInjector(
            specs=[FaultSpec(site="worker.flaky", match="", times=1)]
        )
        fleet = WorkerFleet(jobs=2, injector=injector, max_worker_failures=1)
        fleet.run_wave(0, _entries([2.0]))
        assert fleet.workers[0].blacklisted
        assert not fleet.workers[0].active
        assert fleet.stats.blacklisted == ["w0"]
        assert fleet.stats.workers_alive == 1

    def test_blacklisting_everyone_exhausts_the_fleet(self):
        injector = FaultInjector(
            specs=[FaultSpec(site="worker.flaky", match="", times=-1)]
        )
        fleet = WorkerFleet(jobs=1, injector=injector, max_worker_failures=1)
        outcome = fleet.run_wave(0, _entries([2.0]))
        assert outcome.exhausted
        assert outcome.pending == ["g0"]
        assert fleet.stats.blacklisted == ["w0"]


class TestSpeculation:
    def test_speculative_duplicate_wins(self):
        injector = FaultInjector(
            specs=[FaultSpec(site="worker.straggle", match="", times=1)]
        )
        fleet = WorkerFleet(jobs=2, injector=injector)
        outcome = fleet.run_wave(0, _entries([4.0]))
        # Straggler detected at 2x cost (8.0); the duplicate starts on w1
        # at 8.0 and finishes at 12.0 — well before the straggler's 16.0.
        assert outcome.makespan == pytest.approx(12.0)
        assert outcome.completed["g0"] == pytest.approx(12.0)
        assert fleet.stats.straggles == 1
        assert fleet.stats.speculative_launches == 1
        assert fleet.stats.speculative_wins == 1

    def test_no_speculate_waits_out_the_straggler(self):
        injector = FaultInjector(
            specs=[FaultSpec(site="worker.straggle", match="", times=1)]
        )
        fleet = WorkerFleet(jobs=2, injector=injector, speculate=False)
        outcome = fleet.run_wave(0, _entries([4.0]))
        assert outcome.makespan == pytest.approx(16.0)
        assert fleet.stats.speculative_launches == 0

    def test_straggler_can_beat_a_late_duplicate(self):
        # The busy peer (13.0) means the duplicate would start at 13.0 and
        # finish at 17.0, after the straggler's own 16.0: the launch is
        # charged, but first-complete-wins goes to the original.
        injector = FaultInjector(
            specs=[FaultSpec(site="worker.straggle", match="g1", times=1)]
        )
        fleet = WorkerFleet(jobs=2, injector=injector)
        outcome = fleet.run_wave(0, _entries([13.0, 4.0]))
        assert outcome.completed["g1"] == pytest.approx(16.0)
        assert outcome.makespan == pytest.approx(16.0)
        assert fleet.stats.speculative_launches == 1
        assert fleet.stats.speculative_wins == 0

    def test_straggler_with_no_other_worker_runs_slow(self):
        injector = FaultInjector(
            specs=[FaultSpec(site="worker.straggle", match="", times=1)]
        )
        fleet = WorkerFleet(jobs=1, injector=injector)
        outcome = fleet.run_wave(0, _entries([4.0]))
        assert outcome.makespan == pytest.approx(16.0)
        assert fleet.stats.speculative_launches == 0


class TestHeartbeatMonitor:
    def test_lease_timeout_is_interval_times_misses(self):
        monitor = HeartbeatMonitor(heartbeat_interval=2.0, misses_allowed=4)
        assert monitor.lease_timeout == pytest.approx(8.0)

    def test_grant_expire_release(self):
        clock = SimulatedClock()
        monitor = HeartbeatMonitor(clock=clock)
        lease = monitor.grant("g0", "w1", now=3.0, wave=2)
        assert lease.deadline == pytest.approx(3.0 + monitor.lease_timeout)
        assert monitor.active["g0"] is lease
        assert monitor.expire("g0") is lease
        assert monitor.expired == [lease]
        assert "g0" not in monitor.active
        monitor.grant("g1", "w0", now=0.0, wave=0)
        monitor.release("g1")
        assert monitor.active == {}
        assert monitor.expire("g1") is None


class TestWorkerEvents:
    def test_non_worker_site_rejected(self):
        injector = FaultInjector()
        with pytest.raises(ValueError):
            injector.worker_event("rebuild.node", "w0/x")

    def test_scripted_spec_fires_and_decrements(self):
        injector = FaultInjector(
            specs=[FaultSpec(site="worker.crash", match="g0", times=1)]
        )
        assert injector.worker_event("worker.crash", "w0/g0")
        assert not injector.worker_event("worker.crash", "w0/g0")
        assert [r.kind for r in injector.log] == ["worker"]

    def test_negative_times_fires_forever(self):
        injector = FaultInjector(
            specs=[FaultSpec(site="worker.flaky", match="", times=-1)]
        )
        assert all(
            injector.worker_event("worker.flaky", f"w0/g{i}") for i in range(3)
        )

    def test_seeded_rate_fires_deterministically(self):
        keys = [f"w{i}/g{i}" for i in range(32)]
        first = FaultInjector(seed=11, worker_crash_rate=0.5)
        second = FaultInjector(seed=11, worker_crash_rate=0.5)
        outcomes = [first.worker_event("worker.crash", k) for k in keys]
        assert any(outcomes) and not all(outcomes)
        assert outcomes == [
            second.worker_event("worker.crash", k) for k in keys
        ]

    def test_worker_sites_are_complete(self):
        assert WORKER_SITES == {"worker.crash", "worker.straggle",
                                "worker.flaky"}


class TestDisarmReset:
    def test_disarm_silences_one_site(self):
        injector = FaultInjector(
            specs=[FaultSpec(site="rebuild.node", kind="persistent", match="")]
        )
        injector.disarm("rebuild.node")
        injector.arm("rebuild.node", "n1")   # must not raise
        injector.rearm("rebuild.node")
        with pytest.raises(PersistentFault):
            injector.arm("rebuild.node", "n1")

    def test_disarm_silences_worker_events(self):
        injector = FaultInjector(
            specs=[FaultSpec(site="worker.crash", match="", times=-1)]
        )
        injector.disarm("worker.crash")
        assert not injector.worker_event("worker.crash", "w0/g0")
        injector.rearm("worker.crash")
        assert injector.worker_event("worker.crash", "w0/g0")

    def test_reset_restores_consumed_spec_budget(self):
        injector = FaultInjector(
            specs=[FaultSpec(site="worker.flaky", match="", times=1)]
        )
        assert injector.worker_event("worker.flaky", "w0/g0")
        assert not injector.worker_event("worker.flaky", "w0/g0")
        assert injector.reset() is injector
        assert injector.worker_event("worker.flaky", "w0/g0")
        assert len(injector.log) == 1   # the log was cleared too

    def test_reset_replays_the_seeded_stream(self):
        injector = FaultInjector(seed=3, worker_straggle_rate=0.4)
        keys = [f"w0/g{i}" for i in range(20)]
        first = [injector.worker_event("worker.straggle", k) for k in keys]
        injector.reset()
        # reset() without arguments replays the identical fault pattern.
        assert [
            injector.worker_event("worker.straggle", k) for k in keys
        ] == first
        assert any(first)

    def test_reset_reconfigures_rates_and_clears_state(self):
        injector = FaultInjector(seed=1, rate=0.5)
        injector.disarm("worker.crash")
        injector.enabled = False
        injector.reset(seed=9, rate=0.0, worker_crash_rate=1.0)
        assert injector.enabled
        assert injector.seed == 9
        assert injector.rate == 0.0
        assert injector.worker_event("worker.crash", "w0/g0")

    def test_unset_rates_revert_to_constructed_values(self):
        # A shared sweep injector must not leak one iteration's rates
        # into the next: reset(seed=...) alone reverts everything else.
        injector = FaultInjector(seed=1, rate=0.1)
        injector.reset(seed=2, rate=0.9, worker_flaky_rate=1.0)
        injector.reset(seed=3)
        assert injector.rate == 0.1
        assert injector.worker_flaky_rate == 0.0
        assert not injector.worker_event("worker.flaky", "w0/g0")


class TestFleetStats:
    def test_merge_accumulates_across_rebuilds(self):
        a = FleetStats(jobs=2, workers_alive=1, crashes=1, straggles=2,
                       reassignments=3, speculative_launches=1,
                       speculative_wins=1, blacklisted=["w0"])
        b = FleetStats(jobs=1, workers_alive=1, crashes=0, flaky_failures=2,
                       reassignments=1, blacklisted=["w0", "w1"])
        merged = a.merge(b)
        assert merged.jobs == 2
        assert merged.workers_alive == 1   # latest fleet's survivors
        assert merged.crashes == 1
        assert merged.straggles == 2
        assert merged.flaky_failures == 2
        assert merged.reassignments == 4
        assert merged.blacklisted == ["w0", "w1"]
        assert merged.any_faults

    def test_summary_line_and_json(self):
        stats = FleetStats(jobs=4, workers_alive=3, crashes=1,
                           speculative_launches=2, speculative_wins=1)
        line = stats.summary_line()
        assert "fleet jobs=4" in line
        assert "crashes=1" in line
        assert "speculative-wins=1/2" in line
        assert stats.to_json()["blacklisted"] == []


class TestFindFleetExhausted:
    def test_walks_cause_chains(self):
        inner = FleetExhaustedError(1, ["g0"], FleetStats(jobs=2))
        middle = RuntimeError("rebuild failed")
        middle.__cause__ = inner
        outer = RuntimeError("adapt failed")
        outer.__context__ = middle
        assert find_fleet_exhausted(outer) is inner

    def test_returns_none_without_exhaustion(self):
        assert find_fleet_exhausted(RuntimeError("x")) is None

    def test_survives_cyclic_context(self):
        a = RuntimeError("a")
        b = RuntimeError("b")
        a.__context__ = b
        b.__context__ = a
        assert find_fleet_exhausted(a) is None


class TestScheduleReportGuards:
    def test_zero_executed_plan_reports_vacuous_ratios(self):
        # A fully-cached (warm artifact cache) or empty rebuild executes
        # nothing: speedup and utilization must not divide by zero.
        report = ScheduleReport(jobs=8, groups_total=5, groups_executed=0)
        report.waves.append(
            WaveStats(index=0, width=5, executed=0, makespan=0.0, busy=0.0)
        )
        assert report.speedup == 1.0
        assert report.utilization == 1.0
        assert report.to_json()["speedup"] == 1.0
        assert "speedup=1.00x" in report.summary_line()

    def test_executed_plan_keeps_real_ratios(self):
        report = ScheduleReport(jobs=2, groups_total=2, groups_executed=2,
                                makespan_seconds=5.0, serial_seconds=10.0)
        report.waves.append(
            WaveStats(index=0, width=2, executed=2, makespan=5.0, busy=10.0)
        )
        assert report.speedup == pytest.approx(2.0)
        assert report.utilization == pytest.approx(1.0)

    def test_fleet_stats_serialized_in_report(self):
        report = ScheduleReport(jobs=2)
        assert report.to_json()["fleet"] is None
        report.fleet = FleetStats(jobs=2, workers_alive=2)
        assert report.to_json()["fleet"]["jobs"] == 2


class TestJournalLeases:
    def test_lease_lines_round_trip(self):
        layout = OCILayout()
        journal = RebuildJournal(layout, "app.dist")
        journal.record_lease("abc123", "w1", 2, nodes=["o1", "o2"],
                             expires=41.5)
        journal.flush()
        reloaded = RebuildJournal(layout, "app.dist")
        assert reloaded.torn_entries_dropped == 0
        leases = reloaded.leases()
        assert leases["abc123"]["worker"] == "w1"
        assert leases["abc123"]["wave"] == 2
        assert leases["abc123"]["nodes"] == ["o1", "o2"]

    def test_cleared_lease_does_not_persist(self):
        layout = OCILayout()
        journal = RebuildJournal(layout, "app.dist")
        journal.record_lease("abc", "w0", 0)
        journal.record_lease("def", "w1", 0)
        journal.clear_lease("abc")
        journal.flush()
        assert set(RebuildJournal(layout, "app.dist").leases()) == {"def"}
        journal.clear_leases()
        journal.flush()
        assert RebuildJournal(layout, "app.dist").leases() == {}

    def test_invalid_lease_line_counts_as_dropped(self):
        layout = OCILayout()
        journal = RebuildJournal(layout, "app.dist")
        journal._leases["bad"] = {"lease": "bad", "wave": 1}   # no worker
        journal.record_lease("good", "w0", 0)
        journal.flush()
        reloaded = RebuildJournal(layout, "app.dist")
        assert set(reloaded.leases()) == {"good"}
        assert reloaded.torn_entries_dropped == 1
