"""Tests for cache-layer source obfuscation (§4.6)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.apps import get_app
from repro.containers import ContainerEngine
from repro.core.cache.obfuscate import (
    deobfuscate_bytes,
    obfuscate_bytes,
    obfuscate_content,
    obfuscate_sources,
)
from repro.core.cache.storage import decode_cache
from repro.core.crossisa import analyze_cross_isa
from repro.core.workflow import build_extended_image, system_side_adapt
from repro.perf import attach_perf
from repro.sysmodel import X86_CLUSTER
from repro.toolchain.artifacts import read_artifact
from repro.vfs import InlineContent, SyntheticContent


class TestObfuscationPrimitives:
    def test_roundtrip(self):
        data = b"int main() { return 0; }\n"
        assert deobfuscate_bytes(obfuscate_bytes(data)) == data

    def test_size_preserved(self):
        data = b"x" * 12345
        assert len(obfuscate_bytes(data)) == len(data)

    def test_scrambles_text(self):
        data = b"__asm__ volatile(...)" * 10
        scrambled = obfuscate_bytes(data)
        assert scrambled != data
        assert b"__asm__" not in scrambled

    def test_key_dependent(self):
        data = b"secret source"
        assert obfuscate_bytes(data, "k1") != obfuscate_bytes(data, "k2")

    def test_synthetic_content_passthrough(self):
        content = SyntheticContent("s", 1000)
        assert obfuscate_content(content) is content

    def test_inline_content_scrambled_same_size(self):
        content = InlineContent(b"void kernel();\n" * 8)
        out = obfuscate_content(content)
        assert out.size == content.size
        assert out.read() != content.read()

    @given(st.binary(max_size=512), st.text(min_size=1, max_size=16))
    def test_xor_involution_property(self, data, key):
        assert obfuscate_bytes(obfuscate_bytes(data, key), key) == data


@pytest.fixture(scope="module")
def obfuscated_layout():
    engine = ContainerEngine(arch="amd64")
    layout, dist_tag = build_extended_image(
        engine, get_app("hpl"), obfuscate=True
    )
    return layout, dist_tag


class TestObfuscatedCache:
    def test_sources_not_readable(self, obfuscated_layout):
        layout, dist_tag = obfuscated_layout
        models, sources, _ = decode_cache(layout, dist_tag)
        assert models.metadata["sources_obfuscated"]
        main = sources["/src/main.c"].read()
        assert b"int main" not in main

    def test_sizes_preserved(self, obfuscated_layout):
        layout, dist_tag = obfuscated_layout
        _, sources, _ = decode_cache(layout, dist_tag)
        clear_engine = ContainerEngine(arch="amd64")
        clear_layout, clear_tag = build_extended_image(
            clear_engine, get_app("hpl"), obfuscate=False
        )
        _, clear_sources, _ = decode_cache(clear_layout, clear_tag)
        assert {p: c.size for p, c in sources.items()} == {
            p: c.size for p, c in clear_sources.items()
        }

    def test_isa_scan_survives_obfuscation(self, obfuscated_layout):
        """Cross-ISA analysis works on obfuscated caches via the recorded
        scan — the bytes themselves are unreadable."""
        layout, dist_tag = obfuscated_layout
        models, sources, _ = decode_cache(layout, dist_tag)
        report = analyze_cross_isa(models, sources, "aarch64", app="hpl")
        assert report.asm_guarded == 2       # same as the clear cache
        assert report.asm_unguarded == 0
        assert report.can_cross

    def test_adaptation_still_works(self, obfuscated_layout):
        """§4.6: obfuscation 'still enables all the system-side adaptation
        and optimizations'."""
        layout, dist_tag = obfuscated_layout
        engine = ContainerEngine(arch="amd64")
        recorder = attach_perf(engine, X86_CLUSTER)
        ref = system_side_adapt(engine, layout, X86_CLUSTER,
                                recorder=recorder, ref="hpl:obf-adapted")
        exe = read_artifact(engine.image_filesystem(ref).read_file("/app/hpl"))
        assert exe.toolchain == "intel-2024"
        assert exe.march == "native"

    def test_adapted_binary_size_identical_to_clear(self, obfuscated_layout):
        """Size-preserving obfuscation yields identical rebuild results."""
        layout, dist_tag = obfuscated_layout
        engine = ContainerEngine(arch="amd64")
        recorder = attach_perf(engine, X86_CLUSTER)
        ref = system_side_adapt(engine, layout, X86_CLUSTER,
                                recorder=recorder, ref="hpl:obf")
        obf_size = engine.image_filesystem(ref).file_size("/app/hpl")

        clear_engine = ContainerEngine(arch="amd64")
        clear_layout, _ = build_extended_image(
            ContainerEngine(arch="amd64"), get_app("hpl")
        )
        recorder2 = attach_perf(clear_engine, X86_CLUSTER)
        clear_ref = system_side_adapt(clear_engine, clear_layout, X86_CLUSTER,
                                      recorder=recorder2, ref="hpl:clear")
        clear_size = clear_engine.image_filesystem(clear_ref).file_size("/app/hpl")
        assert obf_size == clear_size


class TestClearCacheScanRecorded:
    def test_isa_scan_always_recorded(self):
        engine = ContainerEngine(arch="amd64")
        layout, dist_tag = build_extended_image(engine, get_app("comd"))
        models, _, _ = decode_cache(layout, dist_tag)
        scan = models.metadata["isa_scan"]
        assert any(entry["guarded"] for entry in scan.values())
