"""Tests for RPM database support (§4.6's "equally applicable to RPM")."""

import pytest

from repro.pkg import Package, PackagedFile, Repository, RepositoryPool, parse_depends
from repro.pkg.apt import AptFacade
from repro.pkg.database import DpkgDatabase
from repro.pkg.rpm import (
    RPM_DB_PATH,
    RpmDatabase,
    database_for_format,
    detect_database_format,
    read_package_database,
)
from repro.vfs import VirtualFilesystem


def _pkg(name="libx", **kw):
    defaults = dict(
        version="2.0-1",
        architecture="amd64",
        depends=parse_depends("libc6 (>= 2.34)"),
        provides=["libx.so.2"],
        equivalent_of="liboldx",
        quality=1.4,
        tags=("blas",),
        files=[PackagedFile(path="/usr/lib/libx.so.2", size=128, kind="library")],
    )
    defaults.update(kw)
    return Package(name=name, **defaults)


class TestRpmDatabase:
    def test_fs_roundtrip(self):
        db = RpmDatabase()
        db.add(_pkg())
        fs = VirtualFilesystem()
        db.write_to(fs)
        assert fs.exists(RPM_DB_PATH)
        restored = RpmDatabase.read_from(fs)
        pkg = restored.get("libx")
        assert pkg.version == "2.0-1"
        assert pkg.architecture == "amd64"       # mapped back from x86_64
        assert pkg.equivalent_of == "liboldx"
        assert pkg.quality == 1.4
        assert pkg.tags == ("blas",)
        assert restored.file_list("libx") == ["/usr/lib/libx.so.2"]

    def test_arch_mapping(self):
        db = RpmDatabase()
        db.add(_pkg(architecture="arm64"))
        fs = VirtualFilesystem()
        db.write_to(fs)
        assert '"aarch64"' in fs.read_text(RPM_DB_PATH)
        assert RpmDatabase.read_from(fs).get("libx").architecture == "arm64"

    def test_empty_fs(self):
        assert RpmDatabase.read_from(VirtualFilesystem()).names() == []

    def test_inherits_query_interface(self):
        db = RpmDatabase()
        db.add(_pkg())
        assert db.owner_of("/usr/lib/libx.so.2") == "libx"
        assert db.provides_index()["libx.so.2"] == "libx"


class TestDetection:
    def test_detect_dpkg(self):
        fs = VirtualFilesystem()
        DpkgDatabase().write_to(fs)
        assert detect_database_format(fs) == "dpkg"
        assert isinstance(read_package_database(fs), DpkgDatabase)

    def test_detect_rpm(self):
        fs = VirtualFilesystem()
        RpmDatabase().write_to(fs)
        assert detect_database_format(fs) == "rpm"
        assert isinstance(read_package_database(fs), RpmDatabase)

    def test_detect_none_defaults_to_dpkg(self):
        fs = VirtualFilesystem()
        assert detect_database_format(fs) is None
        db = read_package_database(fs)
        assert isinstance(db, DpkgDatabase)
        assert db.names() == []

    def test_database_for_format(self):
        assert isinstance(database_for_format("rpm"), RpmDatabase)
        assert isinstance(database_for_format("dpkg"), DpkgDatabase)
        with pytest.raises(ValueError):
            database_for_format("pacman")


class TestAptFacadeOnRpmImage:
    """The facade persists in whatever format the image already uses."""

    def _rpm_image_facade(self):
        fs = VirtualFilesystem()
        RpmDatabase().write_to(fs)   # an RPM-based image (e.g. Kylin)
        repo = Repository("kylin", "amd64")
        repo.add(_pkg(depends=[]))
        return AptFacade(fs, RepositoryPool([repo]))

    def test_install_persists_as_rpm(self):
        apt = self._rpm_image_facade()
        apt.install(["libx"])
        assert apt.fs.exists(RPM_DB_PATH)
        assert not apt.fs.exists("/var/lib/dpkg/status")
        db = read_package_database(apt.fs)
        assert isinstance(db, RpmDatabase)
        assert "libx" in db

    def test_remove_on_rpm_image(self):
        apt = self._rpm_image_facade()
        apt.install(["libx"])
        apt.remove("libx")
        assert "libx" not in read_package_database(apt.fs)


class TestComtainerOnRpmImage:
    def test_classify_image_reads_rpm(self):
        from repro.core.models.image_model import FileOrigin, classify_image

        fs = VirtualFilesystem()
        db = RpmDatabase()
        db.add(_pkg())
        db.write_to(fs)
        fs.write_file("/usr/lib/libx.so.2", b"lib", create_parents=True)
        model = classify_image(
            fs, base_paths=set(), base_packages=set(),
            build_digest_index={}, entrypoint=[], architecture="amd64",
        )
        assert model.files["/usr/lib/libx.so.2"].origin == FileOrigin.PACKAGE
        assert model.files["/usr/lib/libx.so.2"].package == "libx"
        assert "libx" in model.packages
