"""Tests: app generation, original-image builds, Table 3 size calibration,
and end-to-end execution timing through the perf runtime."""

import pytest

from repro.apps import APPS, app_containerfile, build_context, get_app
from repro.apps.generate import (
    build_script,
    estimate_executable_size,
    generate_sources,
    source_file_plan,
)
from repro.apps.specs import CROSSISA_APPS, MIB, TABLE3_APPS
from repro.containers import ContainerEngine
from repro.images import install_ubuntu_base
from repro.perf import attach_perf, predict_time, scheme_traits
from repro.perf.workloads import WORKLOADS
from repro.sysmodel import X86_CLUSTER
from repro.toolchain.artifacts import ExecutableArtifact, read_artifact


@pytest.fixture(scope="module")
def engine():
    eng = ContainerEngine(arch="amd64")
    install_ubuntu_base(eng)
    return eng


def _build_original(engine, app_name, tag=None):
    spec = get_app(app_name)
    context = build_context(spec, engine.arch)
    return engine.build(
        app_containerfile(spec), context=context, target="dist",
        tag=tag or f"{app_name}:orig",
    )


class TestSpecs:
    def test_all_eleven_apps(self):
        assert len(APPS) == 11

    def test_loc_matches_table2(self):
        assert get_app("hpl").loc == 37556
        assert get_app("lammps").loc == 2273423
        assert get_app("openmx").loc == 287381

    def test_workload_names_cover_perf_registry(self):
        names = {w for spec in APPS.values() for w in spec.workload_names()}
        assert names == set(WORKLOADS)

    def test_unknown_app_raises(self):
        with pytest.raises(KeyError):
            get_app("gromacs")


class TestSourceGeneration:
    @pytest.mark.parametrize("app", sorted(APPS))
    def test_plan_sizes_sum(self, app):
        spec = get_app(app)
        plan = source_file_plan(spec)
        assert len(plan) >= spec.n_sources - 1
        total = sum(size for _, size, _ in plan)
        assert total >= spec.source_bytes * 0.95

    def test_guarded_asm_has_fallback(self):
        sources = generate_sources(get_app("hpl"), "x86-64")
        asm = [v for k, v in sources.items() if k.startswith("arch_")]
        assert asm
        text = asm[0].read().decode()
        assert "__asm__" in text and "#else" in text

    def test_unguarded_asm_has_no_fallback(self):
        sources = generate_sources(get_app("lammps"), "x86-64")
        asm_text = sources["arch_00.cc"].read().decode()
        assert "__asm__" in asm_text and "#else" not in asm_text

    def test_sources_deterministic(self):
        a = generate_sources(get_app("lulesh"), "x86-64")
        b = generate_sources(get_app("lulesh"), "x86-64")
        assert {k: v.digest for k, v in a.items()} == {k: v.digest for k, v in b.items()}


class TestBuildScript:
    def test_x86_script_has_isa_flags(self):
        script = build_script(get_app("hpl"), "x86-64")
        assert "-mavx2" in script
        assert "mpicc" in script

    def test_arm_script_differs(self):
        x86 = build_script(get_app("hpl"), "x86-64")
        arm = build_script(get_app("hpl"), "aarch64")
        assert x86 != arm
        assert "-mavx2" not in arm

    def test_static_lib_step(self):
        script = build_script(get_app("hpl"), "x86-64")
        assert "ar rcs libhpl.a" in script

    def test_cxx_app_uses_mpicxx(self):
        script = build_script(get_app("lulesh"), "x86-64")
        assert "mpicxx" in script
        assert "-DUSE_MPI=1" in script


class TestOriginalImageBuild:
    @pytest.mark.parametrize("app", ["lulesh", "hpl"])
    def test_build_succeeds_and_binary_present(self, engine, app):
        ref = _build_original(engine, app)
        fs = engine.image_filesystem(ref)
        spec = get_app(app)
        exe = read_artifact(fs.read_file(f"/app/{spec.binary_name}"))
        assert isinstance(exe, ExecutableArtifact)
        assert exe.toolchain == "gnu-12"
        assert exe.isa == "x86-64"
        assert not exe.lto_applied and not exe.pgo_applied

    def test_executable_size_estimate_matches(self, engine):
        ref = _build_original(engine, "lulesh")
        fs = engine.image_filesystem(ref)
        actual = fs.file_size("/app/lulesh")
        assert actual == estimate_executable_size(get_app("lulesh"))

    def test_dist_image_has_no_sources_or_toolchain(self, engine):
        ref = _build_original(engine, "lulesh")
        fs = engine.image_filesystem(ref)
        assert not fs.exists("/src")
        assert not fs.exists("/usr/bin/gcc")

    def test_runtime_libs_installed(self, engine):
        ref = _build_original(engine, "lulesh")
        fs = engine.image_filesystem(ref)
        assert fs.exists("/usr/lib/x86_64-linux-gnu/libmpi.so.40")

    @pytest.mark.parametrize("app", ["lulesh", "hpl", "lammps", "openmx"])
    def test_table3_image_size(self, engine, app):
        spec = get_app(app)
        ref = _build_original(engine, app)
        total = engine.image_filesystem(ref).total_size()
        target = spec.image_size["amd64"] * MIB
        assert total == pytest.approx(target, rel=0.01), app


class TestExecution:
    def test_run_original_lulesh_matches_model(self, engine):
        ref = _build_original(engine, "lulesh")
        recorder = attach_perf(engine, X86_CLUSTER)
        container = engine.from_image(ref, name="run-lulesh")
        result = engine.run(
            container, ["mpirun", "-np", "16", "/app/lulesh"],
            env={"SIM_WORKLOAD": "lulesh"},
        )
        assert result.ok, result.stderr
        assert "Elapsed time" in result.stdout
        report = recorder.last
        assert report.workload == "lulesh"
        assert report.nodes == 16
        expected = predict_time(
            "lulesh", X86_CLUSTER, scheme_traits("lulesh", X86_CLUSTER, "original")
        )
        assert report.seconds == pytest.approx(expected, rel=0.01)
        engine.remove_container("run-lulesh")

    def test_lammps_workload_from_input_file(self, engine):
        ref = _build_original(engine, "lammps")
        recorder = attach_perf(engine, X86_CLUSTER)
        container = engine.from_image(ref, name="run-lmp")
        result = engine.run(
            container,
            ["mpirun", "-np", "16", "/app/lmp", "-in", "/app/share/in.eam"],
        )
        assert result.ok, result.stderr
        assert recorder.last.workload == "lammps.eam"
        engine.remove_container("run-lmp")


class TestCrossIsaMarkers:
    def test_crossisa_apps_have_portable_asm(self):
        for app in CROSSISA_APPS:
            assert get_app(app).asm_guarded, app

    def test_large_apps_blocked(self):
        assert not get_app("lammps").asm_guarded
        assert not get_app("openmx").asm_guarded

    def test_table3_apps_have_calibration(self):
        for app in TABLE3_APPS:
            spec = get_app(app)
            assert "amd64" in spec.image_size and "arm64" in spec.image_size
