"""Chaos suite: seeded fault sweeps through the full coMtainer pipeline.

Every seed drives user-side build -> registry transfer -> system-side
rebuild/redirect with a deterministic :class:`FaultInjector` armed on
transfers, container entry, and individual compile nodes.  The
invariants, regardless of seed:

* the run terminates at a documented ladder rung with a runnable image —
  no seed may end in an unhandled exception;
* neither the registry nor the transferred layout is ever left with
  orphaned or truncated blobs;
* an interrupted ``coMtainer-rebuild --journal`` resumes without
  re-executing any completed compile node (checked against the engine's
  command log).
"""

import pytest

from repro.apps import get_app
from repro.containers import ContainerEngine
from repro.core.cache.storage import decode_cache, decode_rebuild, extended_tag
from repro.core.frontend.build import IO_MOUNT
from repro.core.images import install_system_side_images, sysenv_ref
from repro.core.workflow import build_extended_image, run_workload
from repro.oci.layout import OCILayout
from repro.oci.registry import ImageRegistry
from repro.perf.runtime import attach_perf
from repro.resilience import (
    RUNG_ORDER,
    FaultInjector,
    FaultSpec,
    PersistentFault,
    RebuildJournal,
    ResiliencePolicy,
    adapt_with_resilience,
    has_journal,
    install_resilience,
    resilient_transfer,
    uninstall_resilience,
)
from repro.sysmodel import X86_CLUSTER

pytestmark = pytest.mark.chaos

SWEEP_SEEDS = list(range(50))
HEAVY_SEEDS = list(range(10))
PGO_SEEDS = list(range(5))


@pytest.fixture(scope="module")
def extended():
    engine = ContainerEngine(arch="amd64")
    return build_extended_image(engine, get_app("hpccg"))


@pytest.fixture(scope="module")
def system_engine():
    engine = ContainerEngine(arch="amd64")
    install_system_side_images(engine, X86_CLUSTER)
    recorder = attach_perf(engine, X86_CLUSTER)
    return engine, recorder


def _chaos_run(extended, system_engine, injector, seed, rate, persistent_rate,
               lto=False, pgo_workload=None, ref=None):
    """One full pipeline run under fault injection; returns the report.

    *injector* is the sweep-shared :class:`FaultInjector` (the session
    ``chaos_injector`` fixture): each iteration reconfigures it with
    ``reset`` instead of constructing a fresh one.
    """
    layout, dist_tag = extended
    engine, recorder = system_engine
    registry = ImageRegistry()
    injector = injector.reset(seed=seed, rate=rate,
                              persistent_rate=persistent_rate)
    # The default permissive retry policy is provisioned for composite
    # transfers (many blobs, each with a bounded transient burst), so no
    # custom policy is needed even under heavy fault rates.
    policy = ResiliencePolicy.permissive(seed=seed, injector=injector)
    ctx = install_resilience(policy, registry=registry, engines=[engine])
    try:
        remote = resilient_transfer(
            registry, layout, "repro/hpccg",
            (dist_tag, extended_tag(dist_tag)), ctx,
        )
        report = adapt_with_resilience(
            engine, remote, X86_CLUSTER, ctx, recorder=recorder,
            lto=lto, pgo_workload=pgo_workload, ref=ref,
        )
        # Whatever happened, the stores must be consistent...
        assert registry.audit() == []
        assert remote.audit() == []
        # ...the rung documented...
        assert report.rung in RUNG_ORDER
        assert report.ref is not None
        # ...and the resulting image runnable (faults off for the check).
        injector.enabled = False
        result = run_workload(engine, report.ref, "hpccg", recorder,
                              vendor_mpirun=True)
        assert result.seconds > 0
        return report
    finally:
        uninstall_resilience(registry=registry, engines=[engine])


class TestChaosSweep:
    @pytest.mark.parametrize("seed", SWEEP_SEEDS)
    def test_every_seed_lands_on_a_rung(self, extended, system_engine,
                                        chaos_injector, seed):
        _chaos_run(extended, system_engine, chaos_injector, seed,
                   rate=0.15, persistent_rate=0.25,
                   ref=f"chaos{seed}:adapted")

    @pytest.mark.parametrize("seed", HEAVY_SEEDS)
    def test_heavy_faults_still_terminate(self, extended, system_engine,
                                          chaos_injector, seed):
        """High fault pressure pushes runs down the ladder, never off it."""
        _chaos_run(extended, system_engine, chaos_injector, seed,
                   rate=0.5, persistent_rate=0.6, lto=True,
                   ref=f"heavy{seed}:adapted")

    @pytest.mark.parametrize("seed", PGO_SEEDS)
    def test_pgo_loop_under_faults(self, extended, system_engine,
                                   chaos_injector, seed):
        """The multi-stage PGO feedback loop degrades gracefully too."""
        _chaos_run(extended, system_engine, chaos_injector, seed,
                   rate=0.3, persistent_rate=0.5,
                   lto=True, pgo_workload="hpccg",
                   ref=f"pgo{seed}:adapted")

    def test_sweep_actually_exercises_faults(self, extended, system_engine,
                                             chaos_injector):
        """Guard against a silently disarmed injector: across a small
        sweep, faults must fire and retries must be recorded."""
        fired = 0
        retried = 0
        for seed in range(8):
            report = _chaos_run(extended, system_engine, chaos_injector, seed,
                                rate=0.4, persistent_rate=0.3,
                                ref=f"sanity{seed}:adapted")
            fired += sum(report.faults_seen.values())
            retried += sum(report.retries.values())
        assert fired > 0
        assert retried > 0


class TestJournalResume:
    def _fresh_layout(self, extended):
        layout, dist_tag = extended
        fresh = OCILayout()
        for tag in (dist_tag, extended_tag(dist_tag)):
            resolved = layout.resolve(tag)
            fresh.add_manifest(resolved.manifest, resolved.config,
                               resolved.layers, tag=tag)
        return fresh, dist_tag

    def test_interrupted_rebuild_resumes_without_recompiling(
        self, extended, system_engine
    ):
        engine, _recorder = system_engine
        layout, dist_tag = self._fresh_layout(extended)
        models, _sources, _resolved = decode_cache(layout, dist_tag)
        step_nodes = [n for n in models.graph.topo_order() if n.step is not None]
        victim = step_nodes[-1]   # the final link: every compile completes

        # Run 1: a persistently-failing node kills the rebuild mid-graph.
        engine.fault_injector = FaultInjector(
            specs=[FaultSpec(site="rebuild.node", kind="persistent",
                             match=victim.id)]
        )
        ctr1 = engine.from_image(sysenv_ref("x86"), name="resume-run1",
                                 mounts={IO_MOUNT: layout})
        try:
            with pytest.raises(PersistentFault):
                engine.run(ctr1, ["coMtainer-rebuild", "--journal"])
        finally:
            engine.fault_injector = None
            engine.remove_container("resume-run1")

        # The checkpoints survived in the layout; the arm fired *before*
        # the victim executed, so its command never reached the log.
        assert has_journal(layout, dist_tag)
        journal = RebuildJournal(layout, dist_tag)
        completed = set(journal.node_ids())
        assert completed, "run 1 should have checkpointed completed nodes"
        assert victim.id not in completed
        run1_cmds = {
            argv for name, argv in engine.exec_log
            if name == "resume-run1" and argv[0] != "coMtainer-rebuild"
        }
        assert run1_cmds, "run 1 should have executed compile commands"

        # Run 2: same rebuild, faults gone — resumes from the journal.
        # The bounded exec_log starts a fresh observation window here.
        engine.reset_exec_log()
        ctr2 = engine.from_image(sysenv_ref("x86"), name="resume-run2",
                                 mounts={IO_MOUNT: layout})
        try:
            engine.run(ctr2, ["coMtainer-rebuild", "--journal"]).check()
        finally:
            engine.remove_container("resume-run2")

        run2_cmds = {
            argv for name, argv in engine.exec_log
            if name == "resume-run2" and argv[0] != "coMtainer-rebuild"
        }
        # Zero completed compile nodes re-executed: the command log of the
        # resumed run shares nothing with the interrupted run's.
        assert run2_cmds
        assert run1_cmds.isdisjoint(run2_cmds)

        meta = decode_rebuild(layout, dist_tag)[0]
        assert set(meta["journal_restored"]) == completed
        assert victim.id in meta["executed_nodes"]
        assert not (set(meta["executed_nodes"]) & completed)
        # A clean finish clears the journal; the layout stays consistent.
        assert not has_journal(layout, dist_tag)
        assert layout.audit() == []

    def test_journal_ignored_when_options_change(self, extended, system_engine):
        """Checkpoints from a plain rebuild must not leak into an LTO one."""
        engine, _recorder = system_engine
        layout, dist_tag = self._fresh_layout(extended)
        models, _sources, _resolved = decode_cache(layout, dist_tag)
        step_nodes = [n for n in models.graph.topo_order() if n.step is not None]
        victim = step_nodes[-1]

        engine.fault_injector = FaultInjector(
            specs=[FaultSpec(site="rebuild.node", kind="persistent",
                             match=victim.id)]
        )
        ctr1 = engine.from_image(sysenv_ref("x86"), name="optchange-run1",
                                 mounts={IO_MOUNT: layout})
        try:
            with pytest.raises(PersistentFault):
                engine.run(ctr1, ["coMtainer-rebuild", "--journal"])
        finally:
            engine.fault_injector = None
            engine.remove_container("optchange-run1")
        assert has_journal(layout, dist_tag)

        # Resume with --lto: transformed command digests change, so the
        # journaled outputs are stale and everything recompiles.
        ctr2 = engine.from_image(sysenv_ref("x86"), name="optchange-run2",
                                 mounts={IO_MOUNT: layout})
        try:
            engine.run(ctr2, ["coMtainer-rebuild", "--journal", "--lto"]).check()
        finally:
            engine.remove_container("optchange-run2")
        meta = decode_rebuild(layout, dist_tag)[0]
        assert meta["journal_restored"] == []
        assert meta["executed_nodes"]
