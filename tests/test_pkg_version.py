"""Unit + property tests for Debian version comparison."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pkg.version import compare_versions, satisfies, split_version, version_key


class TestSplit:
    def test_plain(self):
        assert split_version("1.2.3") == (0, "1.2.3", "")

    def test_revision(self):
        assert split_version("1.2.3-4ubuntu1") == (0, "1.2.3", "4ubuntu1")

    def test_epoch(self):
        assert split_version("2:1.0-1") == (2, "1.0", "1")

    def test_multiple_hyphens(self):
        # Only the last hyphen starts the revision.
        assert split_version("1.0-rc1-2") == (0, "1.0-rc1", "2")

    def test_colon_in_upstream_without_numeric_epoch(self):
        assert split_version("a:b")[0] == 0


class TestCompare:
    @pytest.mark.parametrize(
        "smaller,larger",
        [
            ("1.0", "1.1"),
            ("1.9", "1.10"),          # numeric, not lexicographic
            ("1.0", "1.0-1"),
            ("1.0-1", "1.0-2"),
            ("1.0~rc1", "1.0"),       # tilde sorts before release
            ("1.0~~", "1.0~"),
            ("0:2.0", "1:1.0"),       # epoch dominates
            ("1.0a", "1.0b"),
            ("1.0", "1.0a"),          # letters after digits extend
            ("09", "10"),             # leading zeros ignored
            ("1.2.3", "1.2.4"),
            ("2.38-1ubuntu1", "2.38-1ubuntu2"),
            ("1.0+ds", "1.0+ds1"),
        ],
    )
    def test_ordered_pairs(self, smaller, larger):
        assert compare_versions(smaller, larger) == -1
        assert compare_versions(larger, smaller) == 1

    def test_equal(self):
        assert compare_versions("1.2.3-4", "1.2.3-4") == 0

    def test_letters_before_special(self):
        # 'a' < '+' in dpkg ordering (letters sort before non-letters).
        assert compare_versions("1.0a", "1.0+") == -1

    def test_version_key_sorting(self):
        versions = ["1.10", "1.2", "1.0~rc1", "2:0.1", "1.0"]
        ordered = sorted(versions, key=version_key)
        assert ordered == ["1.0~rc1", "1.0", "1.2", "1.10", "2:0.1"]


class TestSatisfies:
    def test_all_relations(self):
        assert satisfies("1.0", "<<", "2.0")
        assert satisfies("1.0", "<=", "1.0")
        assert satisfies("1.0", "=", "1.0")
        assert satisfies("2.0", ">=", "1.0")
        assert satisfies("2.0", ">>", "1.0")
        assert not satisfies("1.0", ">>", "1.0")

    def test_unknown_relation_raises(self):
        with pytest.raises(ValueError):
            satisfies("1", "~=", "1")


_version_chars = st.text(alphabet="0123456789abc.+~", min_size=1, max_size=10).filter(
    lambda s: s[0].isdigit()
)


class TestCompareProperties:
    @given(_version_chars)
    def test_reflexive(self, v):
        assert compare_versions(v, v) == 0

    @given(_version_chars, _version_chars)
    def test_antisymmetric(self, a, b):
        assert compare_versions(a, b) == -compare_versions(b, a)

    @given(_version_chars, _version_chars, _version_chars)
    def test_transitive(self, a, b, c):
        ordered = sorted([a, b, c], key=version_key)
        assert compare_versions(ordered[0], ordered[1]) <= 0
        assert compare_versions(ordered[1], ordered[2]) <= 0
        assert compare_versions(ordered[0], ordered[2]) <= 0

    @given(_version_chars)
    def test_tilde_sorts_lower(self, v):
        assert compare_versions(v + "~x", v) == -1
