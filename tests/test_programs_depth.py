"""Coverage for remaining simulated userland programs and option-table
self-consistency."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.containers import ContainerEngine
from repro.images import install_ubuntu_base
from repro.toolchain.options import FLAG, OPTION_TABLE, classify_option


@pytest.fixture(scope="module")
def engine():
    eng = ContainerEngine(arch="amd64")
    install_ubuntu_base(eng)
    return eng


@pytest.fixture
def ctr(engine):
    container = engine.from_image("ubuntu:24.04", name="prog")
    yield container
    engine.remove_container("prog")


class TestCoreutilsDepth:
    def test_install_d(self, engine, ctr):
        engine.run(ctr, ["install", "-d", "/opt/a", "/opt/b"]).check()
        assert ctr.fs.is_dir("/opt/a") and ctr.fs.is_dir("/opt/b")

    def test_install_with_mode(self, engine, ctr):
        ctr.fs.write_file("/src.bin", b"x", create_parents=True)
        engine.run(ctr, ["install", "-m", "755", "/src.bin", "/usr/local/bin/x"]
                   ).check()
        assert ctr.fs.get_node("/usr/local/bin/x").mode == 0o755

    def test_chmod_octal(self, engine, ctr):
        ctr.fs.write_file("/f", b"")
        engine.run(ctr, ["chmod", "700", "/f"]).check()
        assert ctr.fs.get_node("/f").mode == 0o700

    def test_chmod_missing_file(self, engine, ctr):
        assert not engine.run(ctr, ["chmod", "755", "/ghost"]).ok

    def test_ln_requires_symbolic(self, engine, ctr):
        ctr.fs.write_file("/t", b"")
        assert not engine.run(ctr, ["ln", "/t", "/hard"]).ok

    def test_ln_sf_replaces(self, engine, ctr):
        ctr.fs.write_file("/t1", b"1")
        ctr.fs.write_file("/t2", b"2")
        engine.run(ctr, ["ln", "-s", "/t1", "/l"]).check()
        engine.run(ctr, ["ln", "-sf", "/t2", "/l"]).check()
        assert ctr.fs.readlink("/l") == "/t2"

    def test_ln_into_directory(self, engine, ctr):
        ctr.fs.write_file("/target", b"")
        ctr.fs.makedirs("/links")
        engine.run(ctr, ["ln", "-s", "/target", "/links"]).check()
        assert ctr.fs.readlink("/links/target") == "/target"

    def test_echo_n(self, engine, ctr):
        assert engine.run(ctr, ["echo", "-n", "x"]).stdout == "x"

    def test_env_lists_sorted(self, engine, ctr):
        out = engine.run(ctr, ["env"], env={"ZZZ": "1", "AAA": "2"}).stdout
        assert out.index("AAA=2") < out.index("ZZZ=1")

    def test_cp_multiple_to_file_fails(self, engine, ctr):
        ctr.fs.write_file("/a", b"")
        ctr.fs.write_file("/b", b"")
        ctr.fs.write_file("/c", b"")
        assert not engine.run(ctr, ["cp", "/a", "/b", "/c"]).ok

    def test_rm_dir_without_r_fails(self, engine, ctr):
        ctr.fs.makedirs("/d/sub")
        assert not engine.run(ctr, ["rm", "/d"]).ok

    def test_mkdir_without_p_fails_on_missing_parent(self, engine, ctr):
        assert not engine.run(ctr, ["mkdir", "/x/y/z"]).ok


class TestDpkgDepth:
    def test_listfiles(self, engine, ctr):
        out = engine.run(ctr, ["dpkg", "-L", "bash"]).stdout
        assert "/bin/bash" in out

    def test_listfiles_unknown(self, engine, ctr):
        assert not engine.run(ctr, ["dpkg", "-L", "ghost"]).ok

    def test_search_unknown_path(self, engine, ctr):
        assert not engine.run(ctr, ["dpkg", "-S", "/nope"]).ok

    def test_no_action_fails(self, engine, ctr):
        assert not engine.run(ctr, ["dpkg"]).ok


class TestMpirunDepth:
    def test_no_executable_fails(self, engine, ctr):
        assert not engine.run(ctr, ["sh", "-c",
                                    "apt-get install -y libopenmpi3 && mpirun -np 4"]).ok

    def test_hostfile_skipped(self, engine, ctr):
        engine.run(ctr, ["apt-get", "install", "-y", "libopenmpi3"]).check()
        result = engine.run(
            ctr, ["mpirun", "-np", "2", "--hostfile", "/etc/hosts", "echo", "hi"]
        )
        assert result.ok
        assert result.stdout == "hi\n"


class TestOptionTableConsistency:
    def test_every_named_option_classifies_to_itself(self):
        for name, spec in OPTION_TABLE.items():
            found = classify_option(name)
            assert found is not None, name
            # Family prefixes may swallow longer names, but the resolved
            # spec must at least share the family semantics.
            assert found.name == name or name.startswith(found.name), name

    @given(st.sampled_from(sorted(OPTION_TABLE)))
    def test_joined_value_forms_resolve(self, name):
        spec = OPTION_TABLE[name]
        if spec.style == FLAG:
            return
        found = classify_option(f"{name}=value")
        assert found is not None

    def test_no_option_is_both_isa_tagged_and_warning(self):
        for name, spec in OPTION_TABLE.items():
            if name.startswith("-W") and not name.startswith("-Wl"):
                assert spec.isa is None, name


class TestMpirunRobustness:
    def test_garbage_np_rejected(self, engine, ctr):
        engine.run(ctr, ["apt-get", "install", "-y", "libopenmpi3"]).check()
        result = engine.run(ctr, ["mpirun", "-np", "lots", "echo", "x"])
        assert not result.ok
        assert "invalid process count" in result.stderr

    def test_np_without_value_rejected(self, engine, ctr):
        engine.run(ctr, ["apt-get", "install", "-y", "libopenmpi3"]).check()
        result = engine.run(ctr, ["mpirun", "-np"])
        assert not result.ok
