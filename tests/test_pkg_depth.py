"""Deeper package-substrate coverage: resolver properties, facade edges,
catalog breadth."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pkg import (
    AptFacade,
    DependencyError,
    Package,
    PackagedFile,
    Repository,
    RepositoryPool,
    parse_depends,
    resolve_install,
)
from repro.pkg import catalog
from repro.vfs import VirtualFilesystem


class TestResolverProperties:
    @given(st.data())
    def test_random_dependency_forests_resolve(self, data):
        """Any acyclic dependency forest resolves in dependency order."""
        n = data.draw(st.integers(min_value=1, max_value=12))
        repo = Repository("r", "amd64")
        for i in range(n):
            dep_ids = data.draw(st.lists(
                st.integers(min_value=0, max_value=max(0, i - 1)),
                max_size=3, unique=True,
            )) if i else []
            depends = parse_depends(", ".join(f"p{d}" for d in dep_ids))
            repo.add(Package(name=f"p{i}", version="1", architecture="amd64",
                             depends=depends))
        pool = RepositoryPool([repo])
        targets = data.draw(st.lists(
            st.integers(min_value=0, max_value=n - 1), min_size=1, max_size=4,
            unique=True,
        ))
        plan = resolve_install([f"p{t}" for t in targets], pool)
        position = {p.name: i for i, p in enumerate(plan)}
        # Every dependency of every planned package precedes it.
        for pkg in plan:
            for clause in pkg.depends:
                dep_names = [d.name for d in clause]
                assert any(
                    name in position and position[name] < position[pkg.name]
                    for name in dep_names
                ), (pkg.name, dep_names)

    @given(st.integers(min_value=1, max_value=8))
    def test_no_duplicates_in_plan(self, n):
        repo = Repository("r", "amd64")
        for i in range(n):
            depends = parse_depends("p0") if i else []
            repo.add(Package(name=f"p{i}", version="1", architecture="amd64",
                             depends=depends))
        plan = resolve_install([f"p{i}" for i in range(n)],
                               RepositoryPool([repo]))
        names = [p.name for p in plan]
        assert len(names) == len(set(names))


class TestFacadeEdges:
    def _facade(self):
        repo = Repository("r", "amd64")
        repo.add(Package(name="a", version="1", architecture="amd64",
                         files=[PackagedFile(path="/usr/lib/a.so", size=10,
                                             kind="library")]))
        return AptFacade(VirtualFilesystem(), RepositoryPool([repo]))

    def test_remove_unknown_is_noop(self):
        apt = self._facade()
        apt.remove("ghost")   # must not raise

    def test_reinstall_after_remove(self):
        apt = self._facade()
        apt.install(["a"])
        apt.remove("a")
        added = apt.install(["a"])
        assert [p.name for p in added] == ["a"]
        assert apt.fs.exists("/usr/lib/a.so")

    def test_symlink_file_materialization(self):
        repo = Repository("r", "amd64")
        repo.add(Package(
            name="links", version="1", architecture="amd64",
            files=[
                PackagedFile(path="/usr/lib/libz.so.1", size=100, kind="library"),
                PackagedFile(path="/usr/lib/libz.so", symlink_to="libz.so.1"),
            ],
        ))
        apt = AptFacade(VirtualFilesystem(), RepositoryPool([repo]))
        apt.install(["links"])
        assert apt.fs.readlink("/usr/lib/libz.so") == "libz.so.1"
        assert apt.fs.resolve_path("/usr/lib/libz.so") == "/usr/lib/libz.so.1"

    def test_unsatisfiable_install_raises(self):
        apt = self._facade()
        with pytest.raises(DependencyError):
            from repro.pkg.resolver import resolve_install as r

            r(["ghost"], apt.pool)


class TestCatalogBreadth:
    @pytest.mark.parametrize("arch", ["amd64", "arm64"])
    def test_every_repo_package_has_valid_files(self, arch):
        for builder in (catalog.build_generic_repository,
                        catalog.build_vendor_repository,
                        catalog.build_llvm_repository):
            repo = builder(arch)
            for name in repo.names():
                pkg = repo.latest(name)
                for pfile in pkg.files:
                    assert pfile.path.startswith("/"), (name, pfile.path)
                    if pfile.program is None and pfile.symlink_to is None:
                        assert pfile.size >= 0

    @pytest.mark.parametrize("arch", ["amd64", "arm64"])
    def test_vendor_toolchain_programs_exist(self, arch):
        repo = catalog.build_vendor_repository(arch)
        programs = [
            f.program
            for name in repo.names()
            for f in repo.latest(name).files
            if f.program
        ]
        assert "compiler-driver" in programs
        assert "mpirun" in programs

    def test_vendor_qualities_match_system_models(self):
        """The package qualities ARE the system models' lib qualities —
        one calibration source of truth."""
        from repro.sysmodel import AARCH64_CLUSTER, X86_CLUSTER

        intel = catalog.build_vendor_repository("amd64")
        assert intel.optimized_equivalents("libopenblas0")[0].quality == \
            X86_CLUSTER.native_lib_quality
        assert intel.optimized_equivalents("libfftw3-3")[0].quality == \
            X86_CLUSTER.native_fft_quality
        assert intel.optimized_equivalents("libopenmpi3")[0].quality == \
            X86_CLUSTER.native_mpi_quality

        ft = catalog.build_vendor_repository("arm64")
        assert ft.optimized_equivalents("libopenblas0")[0].quality == \
            AARCH64_CLUSTER.native_lib_quality
        assert ft.optimized_equivalents("libfftw3-3")[0].quality == \
            AARCH64_CLUSTER.native_fft_quality
        assert ft.optimized_equivalents("libopenmpi3")[0].quality == \
            AARCH64_CLUSTER.native_mpi_quality

    def test_hsn_plugins_only_in_vendor_mpi(self):
        generic = catalog.build_generic_repository("amd64")
        assert not generic.latest("libopenmpi3").has_tag("hsn-plugin")
        vendor = catalog.build_vendor_repository("amd64")
        assert vendor.latest("intel-mpi").has_tag("hsn-plugin")
