"""Tests for compiler driver execution, archiver, artifacts."""

import pytest

from repro.toolchain.archiver import ArchiverError, run_ar
from repro.toolchain.artifacts import (
    ArchiveArtifact,
    ExecutableArtifact,
    ObjectArtifact,
    PaddedContent,
    SharedObjectArtifact,
    artifact_content,
    read_artifact,
    try_read_artifact,
)
from repro.toolchain.drivers import CompilerDriver, CompilerError
from repro.vfs import VirtualFilesystem


@pytest.fixture
def fs():
    filesystem = VirtualFilesystem()
    filesystem.makedirs("/src")
    filesystem.write_file("/src/main.c", "int main(){return 0;}\n" * 50)
    filesystem.write_file("/src/util.c", "int util(){return 1;}\n" * 80)
    filesystem.write_file("/src/solver.cc", "double solve();\n" * 200)
    return filesystem


@pytest.fixture
def gcc():
    return CompilerDriver(toolchain_id="gnu-12", role="cc", isa="x86-64")


class TestArtifacts:
    def test_padded_content_size_and_digest(self):
        content = PaddedContent(payload=b"{}", pad=1000)
        assert content.size == 1002
        assert content.read() == b"{}" + b" " * 1000
        assert content.digest != PaddedContent(payload=b"{}", pad=999).digest

    def test_object_roundtrip(self):
        obj = ObjectArtifact(sources=["/src/a.c"], opt_level="2", lto_ir=True,
                             code_size=512)
        restored = read_artifact(artifact_content(obj).read())
        assert isinstance(restored, ObjectArtifact)
        assert restored.sources == ["/src/a.c"]
        assert restored.lto_ir

    def test_padding_is_valid_json_whitespace(self):
        obj = ObjectArtifact(code_size=4096)
        data = artifact_content(obj).read()
        assert len(data) >= 4096
        assert isinstance(read_artifact(data), ObjectArtifact)

    def test_try_read_non_artifact(self):
        assert try_read_artifact(b"not an artifact") is None


class TestCompile:
    def test_compile_produces_object(self, fs, gcc):
        result = gcc.execute(["gcc", "-c", "main.c", "-o", "main.o"], fs, cwd="/src")
        assert result.outputs == ["main.o"]
        obj = read_artifact(fs.read_file("/src/main.o"))
        assert isinstance(obj, ObjectArtifact)
        assert obj.sources == ["/src/main.c"]
        assert obj.toolchain == "gnu-12"
        assert obj.isa == "x86-64"

    def test_default_output_name(self, fs, gcc):
        gcc.execute(["gcc", "-c", "main.c"], fs, cwd="/src")
        assert fs.exists("/src/main.o")

    def test_provenance_captures_flags(self, fs, gcc):
        gcc.execute(
            ["gcc", "-O3", "-march=native", "-funroll-loops", "-DNDEBUG",
             "-c", "main.c"], fs, cwd="/src",
        )
        obj = read_artifact(fs.read_file("/src/main.o"))
        assert obj.opt_level == "3"
        assert obj.march == "native"
        assert obj.fflags["unroll-loops"] is True
        assert obj.defines == ["NDEBUG"]

    def test_lto_flag_marks_ir(self, fs, gcc):
        gcc.execute(["gcc", "-O2", "-flto", "-c", "main.c"], fs, cwd="/src")
        assert read_artifact(fs.read_file("/src/main.o")).lto_ir

    def test_missing_source_raises(self, fs, gcc):
        with pytest.raises(CompilerError, match="No such file"):
            gcc.execute(["gcc", "-c", "ghost.c"], fs, cwd="/src")

    def test_no_inputs_raises(self, fs, gcc):
        with pytest.raises(CompilerError, match="no input files"):
            gcc.execute(["gcc", "-c"], fs, cwd="/src")

    def test_multiple_sources_with_output_raises(self, fs, gcc):
        with pytest.raises(CompilerError):
            gcc.execute(["gcc", "-c", "main.c", "util.c", "-o", "x.o"], fs, cwd="/src")

    def test_code_size_scales_with_source(self, fs, gcc):
        gcc.execute(["gcc", "-O2", "-c", "main.c"], fs, cwd="/src")
        gcc.execute(["gcc", "-O2", "-c", "solver.cc"], fs, cwd="/src")
        small = read_artifact(fs.read_file("/src/main.o")).code_size
        large = read_artifact(fs.read_file("/src/solver.o")).code_size
        assert large > small

    def test_version(self, fs, gcc):
        result = gcc.execute(["gcc", "--version"], fs)
        assert "gnu-12" in result.stdout

    def test_preprocess_to_stdout(self, fs, gcc):
        result = gcc.execute(["gcc", "-E", "main.c"], fs, cwd="/src")
        assert '"main.c"' in result.stdout


class TestIsaRejection:
    def test_wrong_isa_mflag_rejected(self, fs):
        arm = CompilerDriver(toolchain_id="gnu-12", isa="aarch64")
        with pytest.raises(CompilerError, match="unrecognized command-line option"):
            arm.execute(["gcc", "-mavx2", "-c", "main.c"], fs, cwd="/src")

    def test_wrong_isa_march_rejected(self, fs):
        arm = CompilerDriver(toolchain_id="gnu-12", isa="aarch64")
        with pytest.raises(CompilerError):
            arm.execute(["gcc", "-march=skylake", "-c", "main.c"], fs, cwd="/src")

    def test_native_march_accepted_everywhere(self, fs):
        arm = CompilerDriver(toolchain_id="gnu-12", isa="aarch64")
        arm.execute(["gcc", "-march=native", "-c", "main.c"], fs, cwd="/src")
        assert read_artifact(fs.read_file("/src/main.o")).isa == "aarch64"


class TestLink:
    def _objects(self, fs, gcc, lto=False):
        flags = ["-O2"] + (["-flto"] if lto else [])
        gcc.execute(["gcc", *flags, "-c", "main.c"], fs, cwd="/src")
        gcc.execute(["gcc", *flags, "-c", "util.c"], fs, cwd="/src")

    def test_link_executable(self, fs, gcc):
        self._objects(fs, gcc)
        result = gcc.execute(["gcc", "main.o", "util.o", "-o", "app", "-lm"],
                             fs, cwd="/src")
        assert result.outputs == ["app"]
        exe = read_artifact(fs.read_file("/src/app"))
        assert isinstance(exe, ExecutableArtifact)
        assert len(exe.objects) == 2
        assert "m" in exe.libs
        assert fs.get_node("/src/app").mode == 0o755

    def test_link_direct_from_sources(self, fs, gcc):
        gcc.execute(["gcc", "-O2", "main.c", "util.c", "-o", "app"], fs, cwd="/src")
        exe = read_artifact(fs.read_file("/src/app"))
        assert len(exe.objects) == 2

    def test_link_shared(self, fs, gcc):
        self._objects(fs, gcc)
        gcc.execute(["gcc", "-shared", "util.o", "-o", "libutil.so",
                     "-Wl,-soname,libutil.so.1"], fs, cwd="/src")
        so = read_artifact(fs.read_file("/src/libutil.so"))
        assert isinstance(so, SharedObjectArtifact)
        assert so.soname == "libutil.so.1"

    def test_lto_applied_with_full_coverage(self, fs, gcc):
        self._objects(fs, gcc, lto=True)
        gcc.execute(["gcc", "-flto", "main.o", "util.o", "-o", "app"], fs, cwd="/src")
        exe = read_artifact(fs.read_file("/src/app"))
        assert exe.lto_applied
        assert exe.lto_coverage == 1.0

    def test_lto_not_applied_without_link_flag(self, fs, gcc):
        self._objects(fs, gcc, lto=True)
        gcc.execute(["gcc", "main.o", "util.o", "-o", "app"], fs, cwd="/src")
        exe = read_artifact(fs.read_file("/src/app"))
        assert not exe.lto_applied

    def test_partial_lto_coverage(self, fs, gcc):
        gcc.execute(["gcc", "-flto", "-c", "main.c"], fs, cwd="/src")
        gcc.execute(["gcc", "-c", "util.c"], fs, cwd="/src")
        gcc.execute(["gcc", "-flto", "main.o", "util.o", "-o", "app"], fs, cwd="/src")
        exe = read_artifact(fs.read_file("/src/app"))
        assert exe.lto_applied
        assert exe.lto_coverage == pytest.approx(0.5)

    def test_missing_library_raises(self, fs, gcc):
        self._objects(fs, gcc)
        with pytest.raises(CompilerError, match="cannot find -lnotreal"):
            gcc.execute(["gcc", "main.o", "-lnotreal", "-o", "app"], fs, cwd="/src")

    def test_library_resolved_from_libdir(self, fs, gcc):
        self._objects(fs, gcc)
        fs.makedirs("/usr/lib/x86_64-linux-gnu")
        fs.write_file("/usr/lib/x86_64-linux-gnu/libopenblas.so.0", b"synthetic lib")
        gcc.execute(["gcc", "main.o", "-lopenblas", "-o", "app"], fs, cwd="/src")
        exe = read_artifact(fs.read_file("/src/app"))
        assert exe.lib_paths["openblas"] == "/usr/lib/x86_64-linux-gnu/libopenblas.so.0"

    def test_library_resolved_from_L_flag(self, fs, gcc):
        self._objects(fs, gcc)
        fs.makedirs("/opt/mylibs")
        fs.write_file("/opt/mylibs/libcustom.so", b"x")
        gcc.execute(["gcc", "main.o", "-L/opt/mylibs", "-lcustom", "-o", "app"],
                    fs, cwd="/src")
        exe = read_artifact(fs.read_file("/src/app"))
        assert "custom" in exe.lib_paths

    def test_static_archive_members_inlined(self, fs, gcc):
        self._objects(fs, gcc)
        run_ar(["ar", "rcs", "libu.a", "util.o"], fs, cwd="/src")
        gcc.execute(["gcc", "main.o", "libu.a", "-o", "app"], fs, cwd="/src")
        exe = read_artifact(fs.read_file("/src/app"))
        assert len(exe.objects) == 2

    def test_mixed_isa_link_rejected(self, fs, gcc):
        gcc.execute(["gcc", "-c", "main.c"], fs, cwd="/src")
        arm = CompilerDriver(toolchain_id="gnu-12", isa="aarch64")
        arm.execute(["gcc", "-c", "util.c", "-o", "util_arm.o"], fs, cwd="/src")
        with pytest.raises(CompilerError, match="incompatible|cannot link"):
            gcc.execute(["gcc", "main.o", "util_arm.o", "-o", "app"], fs, cwd="/src")

    def test_garbage_object_rejected(self, fs, gcc):
        fs.write_file("/src/junk.o", b"garbage")
        with pytest.raises(CompilerError, match="file format not recognized"):
            gcc.execute(["gcc", "junk.o", "-o", "app"], fs, cwd="/src")

    def test_mpi_wrapper_adds_mpi(self, fs):
        mpicc = CompilerDriver(toolchain_id="gnu-12", isa="x86-64", mpi_wrapper=True)
        fs.makedirs("/usr/lib/x86_64-linux-gnu")
        fs.write_file("/usr/lib/x86_64-linux-gnu/libmpi.so.40", b"mpi")
        mpicc.execute(["mpicc", "-O2", "main.c", "-o", "app"], fs, cwd="/src")
        exe = read_artifact(fs.read_file("/src/app"))
        assert "mpi" in exe.libs
        assert exe.lib_paths["mpi"].endswith("libmpi.so.40")


class TestPgo:
    def test_profile_generate_marks_instrumented(self, fs, gcc):
        gcc.execute(["gcc", "-fprofile-generate", "main.c", "-o", "app"],
                    fs, cwd="/src")
        exe = read_artifact(fs.read_file("/src/app"))
        assert exe.pgo_instrumented and not exe.pgo_applied

    def test_profile_use_without_data_raises(self, fs, gcc):
        with pytest.raises(CompilerError, match="could not find profile data"):
            gcc.execute(["gcc", "-fprofile-use", "main.c", "-o", "app"],
                        fs, cwd="/src")

    def test_profile_use_with_data(self, fs, gcc):
        fs.write_file("/src/app.gcda", b'{"profile": "run-42", "quality": 1.0}')
        gcc.execute(["gcc", "-O2", "-fprofile-use", "main.c", "-o", "app"],
                    fs, cwd="/src")
        exe = read_artifact(fs.read_file("/src/app"))
        assert exe.pgo_applied
        assert exe.pgo_profile == "run-42"

    def test_profile_use_explicit_path(self, fs, gcc):
        fs.write_file("/profiles/run.gcda", b'{"profile": "p9"}', create_parents=True)
        gcc.execute(["gcc", "-fprofile-use=/profiles/run.gcda", "main.c", "-o", "app"],
                    fs, cwd="/src")
        assert read_artifact(fs.read_file("/src/app")).pgo_profile == "p9"


class TestArchiver:
    def test_create_and_list(self, fs, gcc):
        gcc.execute(["gcc", "-c", "main.c"], fs, cwd="/src")
        gcc.execute(["gcc", "-c", "util.c"], fs, cwd="/src")
        run_ar(["ar", "rcs", "liball.a", "main.o", "util.o"], fs, cwd="/src")
        listing = run_ar(["ar", "t", "liball.a"], fs, cwd="/src")
        assert listing.splitlines() == ["main.o", "util.o"]

    def test_replace_member(self, fs, gcc):
        gcc.execute(["gcc", "-c", "main.c"], fs, cwd="/src")
        run_ar(["ar", "rcs", "lib.a", "main.o"], fs, cwd="/src")
        gcc.execute(["gcc", "-O3", "-c", "main.c"], fs, cwd="/src")
        run_ar(["ar", "r", "lib.a", "main.o"], fs, cwd="/src")
        archive = read_artifact(fs.read_file("/src/lib.a"))
        assert len(archive.members) == 1
        assert archive.member_objects()[0].opt_level == "3"

    def test_extract(self, fs, gcc):
        gcc.execute(["gcc", "-c", "main.c"], fs, cwd="/src")
        run_ar(["ar", "rcs", "lib.a", "main.o"], fs, cwd="/src")
        fs.remove("/src/main.o")
        run_ar(["ar", "x", "lib.a"], fs, cwd="/src")
        assert fs.exists("/src/main.o")

    def test_missing_member_raises(self, fs):
        with pytest.raises(ArchiverError):
            run_ar(["ar", "rcs", "lib.a", "ghost.o"], fs, cwd="/src")
