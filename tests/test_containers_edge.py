"""Edge cases of the container engine and simulated userland."""

import pytest

from repro.containers import ContainerEngine
from repro.images import install_ubuntu_base
from repro.oci.image import ImageConfig
from repro.oci.layer import Layer, LayerEntry
from repro.vfs import InlineContent, VfsError, VirtualFilesystem


@pytest.fixture(scope="module")
def engine():
    eng = ContainerEngine(arch="amd64")
    install_ubuntu_base(eng)
    return eng


@pytest.fixture
def ctr(engine):
    container = engine.from_image("ubuntu:24.04", name="edge")
    yield container
    engine.remove_container("edge")


class TestScriptExecution:
    def test_shebang_script_file(self, engine, ctr):
        ctr.fs.write_file(
            "/usr/local/bin/hello",
            b"#!/bin/sh\necho from-script\n",
            mode=0o755,
            create_parents=True,
        )
        result = engine.run(ctr, ["/usr/local/bin/hello"])
        assert result.ok
        assert result.stdout == "from-script\n"

    def test_sh_script_by_path(self, engine, ctr):
        ctr.fs.write_file("/s.sh", "echo one\necho two\n")
        result = engine.run(ctr, ["sh", "/s.sh"])
        assert result.stdout == "one\ntwo\n"

    def test_sh_missing_script(self, engine, ctr):
        result = engine.run(ctr, ["sh", "/nope.sh"])
        assert not result.ok

    def test_cannot_execute_random_bytes(self, engine, ctr):
        ctr.fs.write_file("/junk", b"\x00\x01\x02", mode=0o755)
        result = engine.run(ctr, ["/junk"])
        assert result.exit_code == 126


class TestScratchAndConfig:
    def test_build_from_scratch(self, engine):
        context = VirtualFilesystem()
        context.write_file("/payload", b"p", create_parents=True)
        engine.build("FROM scratch\nCOPY /payload /payload\n",
                     context=context, tag="mini:1")
        fs = engine.image_filesystem("mini:1")
        assert fs.read_file("/payload") == b"p"
        assert not fs.exists("/bin")

    def test_env_visible_in_run(self, engine):
        engine.build(
            "FROM ubuntu:24.04\nENV GREETING=hi\nRUN echo $GREETING > /g\n",
            tag="envtest:1",
        )
        assert engine.image_filesystem("envtest:1").read_text("/g") == "hi\n"

    def test_workdir_affects_run(self, engine):
        engine.build(
            "FROM ubuntu:24.04\nWORKDIR /w/deep\nRUN touch here\n",
            tag="wdtest:1",
        )
        assert engine.image_filesystem("wdtest:1").exists("/w/deep/here")

    def test_env_replacement_not_duplication(self, engine):
        engine.build(
            "FROM ubuntu:24.04\nENV X=1\nENV X=2\n", tag="envdup:1"
        )
        env = engine.image("envdup:1").config.env
        assert env.count("X=2") == 1
        assert not any(e == "X=1" for e in env)

    def test_copy_missing_source_fails(self, engine):
        from repro.containers import EngineError

        with pytest.raises(EngineError, match="COPY source not found"):
            engine.build("FROM ubuntu:24.04\nCOPY /ghost /g\n",
                         context=VirtualFilesystem())


class TestImageStore:
    def test_image_filesystem_isolated(self, engine):
        fs1 = engine.image_filesystem("ubuntu:24.04")
        fs1.write_file("/tainted", b"x")
        fs2 = engine.image_filesystem("ubuntu:24.04")
        assert not fs2.exists("/tainted")

    def test_unknown_image_raises(self, engine):
        from repro.containers import EngineError

        with pytest.raises(EngineError, match="image not found"):
            engine.image("ghost:1")

    def test_tag_aliases(self, engine):
        engine.tag("ubuntu:24.04", "ubuntu:latest")
        assert engine.has_image("ubuntu:latest")

    def test_default_binary_runner(self, engine, ctr):
        """Without perf attached, executables 'run' with a stub message."""
        from repro.toolchain.drivers import CompilerDriver

        assert engine.binary_runner is None
        ctr.fs.write_file("/x.c", "int main(){}\n")
        CompilerDriver("gnu-12", isa="x86-64").execute(
            ["gcc", "/x.c", "-o", "/bin/thing"], ctr.fs
        )
        result = engine.run(ctr, ["/bin/thing"])
        assert result.ok
        assert "simulated execution" in result.stdout


class TestTarProgram:
    def test_create_list_extract(self, engine, ctr):
        script = (
            "mkdir -p /work/data && echo abc > /work/data/f.txt "
            "&& cd /work && tar -cf data.tar data"
        )
        engine.run(ctr, ["sh", "-c", script]).check()
        listing = engine.run(ctr, ["sh", "-c", "cd /work && tar -tf data.tar"])
        assert "data/f.txt" in listing.stdout
        engine.run(ctr, ["sh", "-c",
                         "mkdir -p /out && tar -xf /work/data.tar -C /out"]).check()
        assert ctr.fs.read_text("/out/data/f.txt") == "abc\n"

    def test_extract_missing_archive(self, engine, ctr):
        result = engine.run(ctr, ["tar", "-xf", "/no.tar"])
        assert not result.ok

    def test_create_missing_member(self, engine, ctr):
        result = engine.run(ctr, ["tar", "-cf", "/a.tar", "ghost"])
        assert not result.ok


class TestVfsRenameCycleGuard:
    def test_rename_into_self_rejected(self):
        fs = VirtualFilesystem()
        fs.makedirs("/a/b")
        with pytest.raises(VfsError, match="into itself"):
            fs.rename("/a", "/a/b/c")

    def test_rename_to_same_path_rejected(self):
        fs = VirtualFilesystem()
        fs.makedirs("/a")
        with pytest.raises(VfsError):
            fs.rename("/a", "/a")

    def test_sibling_rename_still_works(self):
        fs = VirtualFilesystem()
        fs.makedirs("/a/b")
        fs.rename("/a", "/c")
        assert fs.is_dir("/c/b")


class TestRepositoryPoolSelection:
    def test_sources_list_ordering(self, engine):
        container = engine.from_image("ubuntu:24.04", name="pool-test")
        container.fs.write_file(
            "/etc/apt/sources.list", "repo ubuntu-generic\n", create_parents=True
        )
        pool = engine.repository_pool_for(container)
        assert [r.name for r in pool.repositories] == ["ubuntu-generic"]
        engine.remove_container("pool-test")

    def test_unknown_repo_names_skipped(self, engine):
        container = engine.from_image("ubuntu:24.04", name="pool-test2")
        container.fs.write_file(
            "/etc/apt/sources.list",
            "repo not-registered\nrepo ubuntu-generic\n",
            create_parents=True,
        )
        pool = engine.repository_pool_for(container)
        assert [r.name for r in pool.repositories] == ["ubuntu-generic"]
        engine.remove_container("pool-test2")

    def test_no_sources_list_falls_back_to_arch_repos(self, engine):
        config = ImageConfig(architecture="amd64")
        layer = Layer().add(LayerEntry.file("/hello", InlineContent(b"x")))
        config.diff_ids.append(layer.digest)
        engine.add_image("bare:1", config, [layer])
        container = engine.from_image("bare:1", name="pool-test3")
        pool = engine.repository_pool_for(container)
        assert any(r.name == "ubuntu-generic" for r in pool.repositories)
        engine.remove_container("pool-test3")
