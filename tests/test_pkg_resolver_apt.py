"""Tests for dependency resolution and the apt facade + catalog sanity."""

import pytest

from repro import simbin
from repro.pkg import (
    AptFacade,
    DependencyError,
    Package,
    PackagedFile,
    Repository,
    RepositoryPool,
    parse_depends,
    resolve_install,
)
from repro.pkg import catalog
from repro.pkg.database import DpkgDatabase
from repro.vfs import VirtualFilesystem


def _repo(*packages):
    repo = Repository("test", "amd64")
    for pkg in packages:
        repo.add(pkg)
    return RepositoryPool([repo])


class TestResolver:
    def test_single_package(self):
        pool = _repo(Package(name="a", version="1", architecture="amd64"))
        assert [p.name for p in resolve_install(["a"], pool)] == ["a"]

    def test_dependency_ordered(self):
        pool = _repo(
            Package(name="app", version="1", architecture="amd64",
                    depends=parse_depends("libdep")),
            Package(name="libdep", version="1", architecture="amd64"),
        )
        assert [p.name for p in resolve_install(["app"], pool)] == ["libdep", "app"]

    def test_transitive_chain(self):
        pool = _repo(
            Package(name="a", version="1", architecture="amd64", depends=parse_depends("b")),
            Package(name="b", version="1", architecture="amd64", depends=parse_depends("c")),
            Package(name="c", version="1", architecture="amd64"),
        )
        assert [p.name for p in resolve_install(["a"], pool)] == ["c", "b", "a"]

    def test_version_constraint_selects_matching(self):
        pool = _repo(
            Package(name="lib", version="1.0", architecture="amd64"),
            Package(name="lib", version="2.0", architecture="amd64"),
            Package(name="app", version="1", architecture="amd64",
                    depends=parse_depends("lib (<< 2.0)")),
        )
        plan = resolve_install(["app"], pool)
        assert ("lib", "1.0") in [(p.name, p.version) for p in plan]

    def test_picks_newest(self):
        pool = _repo(
            Package(name="lib", version="1.0", architecture="amd64"),
            Package(name="lib", version="2.0", architecture="amd64"),
        )
        assert resolve_install(["lib"], pool)[0].version == "2.0"

    def test_missing_raises(self):
        with pytest.raises(DependencyError):
            resolve_install(["ghost"], _repo())

    def test_unsatisfiable_version_raises(self):
        pool = _repo(
            Package(name="lib", version="1.0", architecture="amd64"),
            Package(name="app", version="1", architecture="amd64",
                    depends=parse_depends("lib (>= 9.0)")),
        )
        with pytest.raises(DependencyError):
            resolve_install(["app"], pool)

    def test_virtual_package_via_provides(self):
        pool = _repo(
            Package(name="mkl", version="1", architecture="amd64",
                    provides=["blas-provider"]),
            Package(name="app", version="1", architecture="amd64",
                    depends=parse_depends("blas-provider")),
        )
        assert [p.name for p in resolve_install(["app"], pool)] == ["mkl", "app"]

    def test_alternatives_first_satisfiable(self):
        pool = _repo(
            Package(name="b", version="1", architecture="amd64"),
            Package(name="app", version="1", architecture="amd64",
                    depends=parse_depends("a | b")),
        )
        assert [p.name for p in resolve_install(["app"], pool)] == ["b", "app"]

    def test_alternatives_prefer_installed(self):
        pool = _repo(
            Package(name="a", version="1", architecture="amd64"),
            Package(name="b", version="1", architecture="amd64"),
            Package(name="app", version="1", architecture="amd64",
                    depends=parse_depends("a | b")),
        )
        installed = {"b": Package(name="b", version="1", architecture="amd64")}
        plan = resolve_install(["app"], pool, installed=installed)
        assert [p.name for p in plan] == ["app"]

    def test_already_installed_skipped(self):
        pkg = Package(name="a", version="1", architecture="amd64")
        pool = _repo(pkg)
        assert resolve_install(["a"], pool, installed={"a": pkg}) == []

    def test_cycle_terminates(self):
        pool = _repo(
            Package(name="a", version="1", architecture="amd64", depends=parse_depends("b")),
            Package(name="b", version="1", architecture="amd64", depends=parse_depends("a")),
        )
        plan = resolve_install(["a"], pool)
        assert {p.name for p in plan} == {"a", "b"}


class TestAptFacade:
    def _facade(self):
        fs = VirtualFilesystem()
        pool = _repo(
            Package(name="liba", version="1", architecture="amd64",
                    files=[PackagedFile(path="/usr/lib/liba.so.1", size=1000, kind="library")]),
            Package(name="tool", version="1", architecture="amd64",
                    depends=parse_depends("liba"),
                    files=[PackagedFile(path="/usr/bin/tool", program="tool")]),
        )
        return AptFacade(fs, pool)

    def test_install_materializes_files(self):
        apt = self._facade()
        apt.install(["tool"])
        assert apt.fs.exists("/usr/lib/liba.so.1")
        marker = simbin.read_program_marker(apt.fs.read_file("/usr/bin/tool"))
        assert marker["program"] == "tool"
        assert marker["package"] == "tool"

    def test_install_updates_status_db(self):
        apt = self._facade()
        apt.install(["tool"])
        db = DpkgDatabase.read_from(apt.fs)
        assert set(db.names()) == {"liba", "tool"}
        assert db.owner_of("/usr/bin/tool") == "tool"

    def test_install_idempotent(self):
        apt = self._facade()
        apt.install(["tool"])
        assert apt.install(["tool"]) == []

    def test_remove(self):
        apt = self._facade()
        apt.install(["liba"])
        apt.remove("liba")
        assert not apt.fs.exists("/usr/lib/liba.so.1")
        assert not apt.is_installed("liba")

    def test_replace_creates_compat_symlink(self):
        apt = self._facade()
        apt.install(["liba"])
        optimized = Package(
            name="liba-turbo", version="1", architecture="amd64",
            equivalent_of="liba", quality=1.5,
            files=[PackagedFile(path="/opt/vendor/lib/liba.so.1", size=5000, kind="library")],
        )
        apt.replace("liba", optimized)
        assert apt.is_installed("liba-turbo")
        assert not apt.is_installed("liba")
        # Old path still resolves via compat symlink.
        assert apt.fs.readlink("/usr/lib/liba.so.1") == "/opt/vendor/lib/liba.so.1"


class TestCatalog:
    @pytest.mark.parametrize("arch", ["amd64", "arm64"])
    def test_generic_repo_builds(self, arch):
        repo = catalog.build_generic_repository(arch)
        for name in catalog.default_base_install(arch):
            assert repo.latest(name) is not None, name
        for name in catalog.default_devel_install():
            assert repo.latest(name) is not None, name

    @pytest.mark.parametrize("arch", ["amd64", "arm64"])
    def test_base_runtime_calibration(self, arch):
        """Base + generic runtime must hit the Table 3 calibration target."""
        repo = catalog.build_generic_repository(arch)
        names = catalog.default_base_install(arch) + catalog.default_runtime_install()
        total = sum(repo.latest(n).installed_size for n in names)
        assert total == pytest.approx(catalog.BASE_PLUS_RUNTIME_TARGET[arch], rel=0.001)

    @pytest.mark.parametrize("arch", ["amd64", "arm64"])
    def test_base_install_resolves(self, arch):
        pool = RepositoryPool([catalog.build_generic_repository(arch)])
        plan = resolve_install(catalog.default_base_install(arch), pool)
        assert {p.name for p in plan} >= set(catalog.default_base_install(arch))

    @pytest.mark.parametrize("arch", ["amd64", "arm64"])
    def test_devel_install_resolves(self, arch):
        pool = RepositoryPool([catalog.build_generic_repository(arch)])
        base = {p.name: p for p in resolve_install(catalog.default_base_install(arch), pool)}
        plan = resolve_install(catalog.default_devel_install(), pool, installed=base)
        assert any(p.name == "gcc-12" for p in plan)

    @pytest.mark.parametrize("arch", ["amd64", "arm64"])
    def test_vendor_repo_has_equivalents(self, arch):
        vendor = catalog.build_vendor_repository(arch)
        blas = vendor.optimized_equivalents("libopenblas0")
        mpi = vendor.optimized_equivalents("libopenmpi3")
        assert blas and blas[0].quality > 1.0
        assert mpi and any(p.has_tag("hsn-plugin") for p in mpi)

    def test_x86_more_bloated_than_arm(self):
        """Paper: 'x86-64 has a more bloated software stack'."""
        assert (
            catalog.BASE_PLUS_RUNTIME_TARGET["amd64"]
            > 1.5 * catalog.BASE_PLUS_RUNTIME_TARGET["arm64"]
        )

    def test_llvm_repo(self):
        repo = catalog.build_llvm_repository("amd64")
        assert repo.latest("clang-17") is not None

    def test_unknown_vendor_arch_raises(self):
        with pytest.raises(ValueError):
            catalog.build_vendor_repository("riscv64")
