"""Tests for the perf runtime hook (binary runner, PGO profile drops)."""

import json

import pytest

from repro.containers import ContainerEngine
from repro.images import install_ubuntu_base
from repro.perf import attach_perf
from repro.perf.runtime import _binary_aliases
from repro.pkg import catalog
from repro.sysmodel import AARCH64_CLUSTER, X86_CLUSTER
from repro.toolchain.drivers import CompilerDriver
from repro.toolchain.artifacts import read_artifact


@pytest.fixture()
def engine():
    eng = ContainerEngine(arch="amd64")
    install_ubuntu_base(eng)
    return eng


def _make_app_container(engine, name, *cc_flags, binary="/app/lulesh"):
    container = engine.from_image("ubuntu:24.04", name=name)
    container.fs.write_file("/src/main.cc", "int main(){}\n" * 40,
                            create_parents=True)
    gcc = CompilerDriver(toolchain_id="gnu-12", isa="x86-64")
    gcc.execute(["g++", "-O3", *cc_flags, "/src/main.cc", "-o", binary],
                container.fs, cwd="/src")
    return container


class TestBinaryRunner:
    def test_run_produces_timing(self, engine):
        recorder = attach_perf(engine, X86_CLUSTER)
        container = _make_app_container(engine, "r1")
        result = engine.run(container, ["/app/lulesh"],
                            env={"SIM_NPROCS": "16"})
        assert result.ok
        assert "Elapsed time" in result.stdout
        assert recorder.last.workload == "lulesh"
        assert recorder.last.nodes == 16

    def test_workload_from_binary_name(self, engine):
        recorder = attach_perf(engine, X86_CLUSTER)
        container = _make_app_container(engine, "r2", binary="/app/hpccg")
        engine.run(container, ["/app/hpccg"]).check()
        assert recorder.last.workload == "hpccg"

    def test_env_workload_overrides(self, engine):
        recorder = attach_perf(engine, X86_CLUSTER)
        container = _make_app_container(engine, "r3")
        engine.run(container, ["/app/lulesh"],
                   env={"SIM_WORKLOAD": "comd"}).check()
        assert recorder.last.workload == "comd"

    def test_unknown_binary_runs_without_report(self, engine):
        recorder = attach_perf(engine, X86_CLUSTER)
        container = _make_app_container(engine, "r4", binary="/app/unrelated")
        result = engine.run(container, ["/app/unrelated"])
        assert result.ok
        assert recorder.last is None

    def test_binary_aliases(self):
        aliases = _binary_aliases()
        assert aliases["lmp"] == "lammps"
        assert aliases["openmx"] == "openmx"

    def test_wrong_isa_binary_fails(self, engine):
        recorder = attach_perf(engine, AARCH64_CLUSTER)
        container = _make_app_container(engine, "r5")
        result = engine.run(container, ["/app/lulesh"])
        assert result.exit_code == 126
        assert "exec format" in result.stderr

    def test_default_nodes_is_one(self, engine):
        recorder = attach_perf(engine, X86_CLUSTER)
        container = _make_app_container(engine, "r6")
        engine.run(container, ["/app/lulesh"]).check()
        assert recorder.last.nodes == 1

    def test_jitter_env(self, engine):
        recorder = attach_perf(engine, X86_CLUSTER)
        container = _make_app_container(engine, "r7")
        engine.run(container, ["/app/lulesh"], env={"SIM_JITTER": "a"}).check()
        t_a = recorder.last.seconds
        engine.run(container, ["/app/lulesh"], env={"SIM_JITTER": "b"}).check()
        t_b = recorder.last.seconds
        assert t_a != t_b
        assert abs(t_a - t_b) / t_a < 0.03


class TestPgoProfileDrop:
    def test_instrumented_binary_writes_profile(self, engine):
        recorder = attach_perf(engine, X86_CLUSTER)
        container = _make_app_container(engine, "p1", "-fprofile-generate")
        exe = read_artifact(container.fs.read_file("/app/lulesh"))
        assert exe.pgo_instrumented
        engine.run(container, ["/app/lulesh"]).check()
        profile = json.loads(container.fs.read_text("/default.gcda"))
        assert profile["profile"] == "lulesh|x86"
        assert recorder.last.instrumented

    def test_plain_binary_writes_no_profile(self, engine):
        attach_perf(engine, X86_CLUSTER)
        container = _make_app_container(engine, "p2")
        engine.run(container, ["/app/lulesh"]).check()
        assert not container.fs.exists("/default.gcda")


class TestMpirunIntegration:
    def test_generic_mpirun_env(self, engine):
        recorder = attach_perf(engine, X86_CLUSTER)
        container = _make_app_container(engine, "m1")
        # Install the generic MPI runtime so mpirun exists.
        from repro.pkg.apt import AptFacade
        from repro.pkg.repository import RepositoryPool

        apt = AptFacade(container.fs, RepositoryPool(
            [engine.repos["ubuntu-generic"]]))
        apt.install(["libopenmpi3"])
        engine.run(container, ["mpirun", "-np", "8", "/app/lulesh"]).check()
        assert recorder.last.nodes == 8
        # Generic stack, no HSN plugin, comm penalty applies at scale.
        assert not recorder.last.traits.mpi_hsn


class TestRobustness:
    def test_garbage_nprocs_rejected(self, engine):
        recorder = attach_perf(engine, X86_CLUSTER)
        container = _make_app_container(engine, "rb1")
        result = engine.run(container, ["/app/lulesh"],
                            env={"SIM_NPROCS": "garbage"})
        assert result.exit_code == 1
        assert "invalid process count" in result.stderr

    def test_zero_nprocs_clamped(self, engine):
        recorder = attach_perf(engine, X86_CLUSTER)
        container = _make_app_container(engine, "rb2")
        engine.run(container, ["/app/lulesh"], env={"SIM_NPROCS": "0"}).check()
        assert recorder.last.nodes == 1
