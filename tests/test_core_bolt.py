"""Tests for the BOLT-style post-link layout optimization extension."""

import pytest

from repro.core.optimizations import bolt_binary, bolt_optimize_image
from repro.core.optimizations.bolt import BoltError
from repro.core.workflow import ComtainerSession, run_workload
from repro.perf import predict_time, scheme_traits
from repro.perf.provenance import BinaryTraits, profile_id
from repro.sysmodel import X86_CLUSTER
from repro.toolchain.artifacts import ExecutableArtifact, SharedObjectArtifact, read_artifact


class TestBoltBinary:
    def _exe(self):
        return ExecutableArtifact(
            objects=[], libs=["m"], toolchain="intel-2024",
            isa="x86-64", code_size=10_000,
        )

    def test_marks_layout_optimized(self):
        out = bolt_binary(self._exe(), "lulesh|x86")
        assert out.layout_optimized
        assert out.layout_profile == "lulesh|x86"
        assert not self._exe().layout_optimized   # input untouched

    def test_preserves_provenance(self):
        exe = self._exe()
        out = bolt_binary(exe, "p")
        assert out.toolchain == exe.toolchain
        assert out.libs == exe.libs

    def test_code_grows_slightly(self):
        exe = self._exe()
        out = bolt_binary(exe, "p")
        assert exe.code_size < out.code_size < exe.code_size * 1.05

    def test_rejects_shared_objects(self):
        with pytest.raises(BoltError):
            bolt_binary(SharedObjectArtifact(), "p")


class TestBoltModel:
    def test_layout_gain_without_pgo(self):
        base = scheme_traits("minife", X86_CLUSTER, "adapted")
        bolted = BinaryTraits(**{
            **base.__dict__,
            "layout_optimized": True,
            "layout_profile": profile_id("minife", "x86"),
        })
        assert predict_time("minife", X86_CLUSTER, bolted) < predict_time(
            "minife", X86_CLUSTER, base
        )

    def test_layout_gain_smaller_after_pgo(self):
        pgo = scheme_traits("minife", X86_CLUSTER, "optimized")
        adapted = scheme_traits("minife", X86_CLUSTER, "adapted")

        def with_layout(traits):
            return BinaryTraits(**{
                **traits.__dict__,
                "layout_optimized": True,
                "layout_profile": profile_id("minife", "x86"),
            })

        gain_plain = 1 - predict_time(
            "minife", X86_CLUSTER, with_layout(adapted)
        ) / predict_time("minife", X86_CLUSTER, adapted)
        gain_post_pgo = 1 - predict_time(
            "minife", X86_CLUSTER, with_layout(pgo)
        ) / predict_time("minife", X86_CLUSTER, pgo)
        assert gain_post_pgo < gain_plain
        assert gain_post_pgo > 0

    def test_no_negative_layout_effect(self):
        """Unlike PGO, a layout pass never regresses (response clamped >= 0)."""
        base = scheme_traits("lammps.chain", X86_CLUSTER, "adapted")
        bolted = BinaryTraits(**{
            **base.__dict__,
            "layout_optimized": True,
            "layout_profile": profile_id("lammps.chain", "x86"),
        })
        # lammps.chain has a *negative* PGO response on x86; the layout
        # pass simply yields no gain rather than a regression.
        assert predict_time("lammps.chain", X86_CLUSTER, bolted) == pytest.approx(
            predict_time("lammps.chain", X86_CLUSTER, base)
        )


class TestBoltPipeline:
    @pytest.fixture(scope="class")
    def session(self):
        return ComtainerSession(system=X86_CLUSTER)

    def test_bolt_on_adapted_image(self, session):
        adapted_ref = session.adapted_image("minife")
        bolted_ref = bolt_optimize_image(
            session.system_engine, adapted_ref, "minife", X86_CLUSTER,
            binary_path="/app/minife", ref="minife:bolt",
        )
        exe = read_artifact(
            session.system_engine.image_filesystem(bolted_ref).read_file("/app/minife")
        )
        assert exe.layout_optimized
        t_adapted = run_workload(
            session.system_engine, adapted_ref, "minife", session.recorder,
            vendor_mpirun=True,
        ).seconds
        t_bolted = run_workload(
            session.system_engine, bolted_ref, "minife", session.recorder,
            vendor_mpirun=True,
        ).seconds
        assert t_bolted < t_adapted

    def test_bolt_stacks_on_optimized(self, session):
        optimized_ref = session.optimized_image("minife")
        bolted_ref = bolt_optimize_image(
            session.system_engine, optimized_ref, "minife", X86_CLUSTER,
            binary_path="/app/minife", ref="minife:opt-bolt",
        )
        t_optimized = run_workload(
            session.system_engine, optimized_ref, "minife", session.recorder,
            vendor_mpirun=True,
        ).seconds
        t_bolted = run_workload(
            session.system_engine, bolted_ref, "minife", session.recorder,
            vendor_mpirun=True,
        ).seconds
        assert t_bolted < t_optimized
