"""Unit tests for the multi-tenant adaptation service tier.

Admission control (queue, shedding, displacement, token buckets),
circuit breakers on simulated time, WFQ ordering, bulkhead eligibility,
deadline expiry in the queue, and the service report's accounting
invariant: every admitted request ends in exactly one typed terminal
status.
"""

import pytest

from repro.resilience import SimulatedClock
from repro.service import (
    MODE_FULL,
    MODE_GENERIC,
    MODE_REDIRECT_ONLY,
    PRIORITY_BATCH,
    PRIORITY_HIGH,
    PRIORITY_NORMAL,
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    STATUS_COMPLETED,
    STATUS_DEADLINE_EXCEEDED,
    STATUS_REJECTED,
    TERMINAL_STATUSES,
    AdaptationRequest,
    AdaptationService,
    AdmissionQueue,
    CircuitBreaker,
    CircuitOpenError,
    ServiceError,
    ServiceOverloadError,
    TokenBucket,
    percentile,
    priority_rank,
)

pytestmark = pytest.mark.service


def req(tenant="t", app="minimd", priority=PRIORITY_NORMAL, seq=0, **kw):
    return AdaptationRequest(tenant=tenant, app=app, priority=priority,
                             seq=seq, request_id=f"{tenant}/r{seq}", **kw)


class TestTokenBucket:
    def test_burst_then_deny(self):
        bucket = TokenBucket(rate=1.0, burst=2)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)

    def test_refill_on_simulated_time(self):
        bucket = TokenBucket(rate=2.0, burst=2)
        bucket.try_take(0.0)
        bucket.try_take(0.0)
        assert not bucket.try_take(0.1)
        assert bucket.try_take(1.0)    # 2/s refill

    def test_retry_after_quotes_deficit(self):
        bucket = TokenBucket(rate=0.5, burst=1)
        assert bucket.try_take(0.0)
        assert bucket.retry_after(0.0) == pytest.approx(2.0)
        assert bucket.retry_after(1.0) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0)


class TestPriorities:
    def test_rank_order(self):
        assert (priority_rank(PRIORITY_HIGH)
                < priority_rank(PRIORITY_NORMAL)
                < priority_rank(PRIORITY_BATCH))

    def test_unknown_priority_sorts_as_batch(self):
        assert priority_rank("??") == priority_rank(PRIORITY_BATCH)


class TestAdmissionQueue:
    def test_admits_below_watermark_at_full_service(self):
        queue = AdmissionQueue(capacity=10)
        request = req(seq=1)
        assert queue.admit(request) is None
        assert request.mode == MODE_FULL and not request.shed

    def test_sheds_batch_past_watermark(self):
        queue = AdmissionQueue(capacity=4, shed_watermark=0.5,
                               full_watermark=0.75)
        queue.admit(req(seq=1))
        queue.admit(req(seq=2))
        shed = req(priority=PRIORITY_BATCH, seq=3)
        queue.admit(shed)
        assert shed.mode == MODE_REDIRECT_ONLY and shed.shed

    def test_sheds_normal_only_past_full_watermark(self):
        queue = AdmissionQueue(capacity=4, shed_watermark=0.25,
                               full_watermark=0.75)
        queue.admit(req(seq=1))
        mid = req(seq=2)
        queue.admit(mid)
        assert mid.mode == MODE_FULL        # normal rides out the first band
        queue.admit(req(seq=3))
        deep_normal = req(seq=4)
        deep_batch = req(priority=PRIORITY_BATCH, seq=5)
        queue.admit(deep_normal)            # occupancy 0.75
        assert deep_normal.mode == MODE_REDIRECT_ONLY
        # capacity reached: batch arrival displaces nothing (all >= rank)
        with pytest.raises(ServiceOverloadError):
            queue.admit(deep_batch)

    def test_high_priority_never_shed(self):
        queue = AdmissionQueue(capacity=2, shed_watermark=0.5,
                               full_watermark=0.5)
        queue.admit(req(seq=1))
        vip = req(priority=PRIORITY_HIGH, seq=2)
        queue.admit(vip)
        assert vip.mode == MODE_FULL

    def test_queue_full_raises_typed_with_retry_after(self):
        queue = AdmissionQueue(capacity=1)
        queue.admit(req(seq=1))
        with pytest.raises(ServiceOverloadError) as info:
            queue.admit(req(seq=2), retry_after=12.5)
        assert info.value.reason == "queue-full"
        assert info.value.retry_after == pytest.approx(12.5)
        assert queue.rejected == 1

    def test_displacement_evicts_worst_lower_priority(self):
        queue = AdmissionQueue(capacity=2)
        old_batch = req(priority=PRIORITY_BATCH, seq=1)
        new_batch = req(priority=PRIORITY_BATCH, seq=2)
        queue.admit(old_batch)
        queue.admit(new_batch)
        vip = req(priority=PRIORITY_HIGH, seq=3)
        displaced = queue.admit(vip)
        assert displaced is new_batch       # newest of the worst class
        assert queue.displaced == 1
        assert len(queue) == 2

    def test_equal_priority_cannot_displace(self):
        queue = AdmissionQueue(capacity=1)
        queue.admit(req(seq=1))
        with pytest.raises(ServiceOverloadError):
            queue.admit(req(seq=2))

    def test_restore_bypasses_capacity_and_shedding(self):
        queue = AdmissionQueue(capacity=1)
        queue.admit(req(seq=1))
        follower = req(seq=2)
        queue.restore(follower)
        assert len(queue) == 2
        assert follower.mode == MODE_FULL

    def test_pop_next_orders_by_key_and_respects_eligibility(self):
        queue = AdmissionQueue(capacity=8)
        a, b, c = req(seq=1), req(seq=2), req(seq=3)
        for item in (a, b, c):
            queue.admit(item)
        popped = queue.pop_next(lambda r: r.seq, lambda r: r is not a)
        assert popped is b
        assert len(queue) == 2

    def test_expire_removes_matching(self):
        queue = AdmissionQueue(capacity=8)
        a, b = req(seq=1), req(seq=2)
        queue.admit(a)
        queue.admit(b)
        gone = queue.expire(lambda r: r.seq == 1)
        assert gone == [a] and len(queue) == 1

    def test_watermark_validation(self):
        with pytest.raises(ValueError):
            AdmissionQueue(capacity=0)
        with pytest.raises(ValueError):
            AdmissionQueue(capacity=4, shed_watermark=0.9, full_watermark=0.5)


class TestCircuitBreaker:
    def make(self, **kw):
        clock = SimulatedClock()
        kw.setdefault("failure_threshold", 3)
        kw.setdefault("reset_timeout", 60.0)
        return clock, CircuitBreaker("dep", clock=clock, **kw)

    def test_opens_after_consecutive_failures(self):
        _, breaker = self.make()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == STATE_CLOSED
        breaker.record_failure()
        assert breaker.state == STATE_OPEN

    def test_success_resets_consecutive_count(self):
        _, breaker = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED

    def test_open_fails_fast_with_typed_error(self):
        clock, breaker = self.make(failure_threshold=1)
        breaker.record_failure()
        with pytest.raises(CircuitOpenError) as info:
            breaker.call(lambda: "never")
        assert info.value.dependency == "dep"
        assert info.value.retry_after == pytest.approx(60.0)
        clock.sleep(25.0)
        assert breaker.retry_after() == pytest.approx(35.0)

    def test_half_open_after_reset_then_close_on_probe(self):
        clock, breaker = self.make(failure_threshold=1)
        breaker.record_failure()
        assert not breaker.allow()
        clock.sleep(60.0)
        assert breaker.allow()
        assert breaker.state == STATE_HALF_OPEN
        breaker.record_success()
        assert breaker.state == STATE_CLOSED

    def test_failed_probe_reopens_and_restarts_timer(self):
        clock, breaker = self.make(failure_threshold=1)
        breaker.record_failure()
        clock.sleep(60.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert breaker.retry_after() == pytest.approx(60.0)

    def test_call_counts_and_transitions(self):
        clock, breaker = self.make(failure_threshold=2)
        def boom():
            raise RuntimeError("x")
        for _ in range(2):
            with pytest.raises(RuntimeError):
                breaker.call(boom)
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: 1)
        clock.sleep(60.0)
        assert breaker.call(lambda: 41 + 1) == 42
        hops = [(a, b) for _, a, b in breaker.transitions]
        assert hops == [(STATE_CLOSED, STATE_OPEN),
                        (STATE_OPEN, STATE_HALF_OPEN),
                        (STATE_HALF_OPEN, STATE_CLOSED)]
        assert breaker.rejections == 1


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.99) == 0.0

    def test_nearest_rank(self):
        values = [4.0, 1.0, 3.0, 2.0]
        assert percentile(values, 0.50) == 2.0
        assert percentile(values, 0.99) == 4.0
        assert percentile([7.0], 0.99) == 7.0


class TestServiceAdmission:
    """Service-level behaviours that don't need a real rebuild."""

    def test_unknown_tenant_and_app_are_typed(self):
        service = AdaptationService(workers=2)
        with pytest.raises(ServiceError):
            service.submit("ghost", "minimd")
        service.add_tenant("t")
        with pytest.raises(KeyError):
            service.submit("t", "not-an-app")
        with pytest.raises(ServiceError):
            service.add_tenant("t")

    def test_rate_limited_rejection_is_typed(self):
        service = AdaptationService(workers=2, seed=0)
        service.add_tenant("t", rate=0.001, burst=1)
        service.submit("t", "minimd", at=0.0)
        service.submit("t", "minimd", at=0.0)
        report = service.run()
        statuses = sorted(o.status for o in report.outcomes)
        assert statuses.count(STATUS_REJECTED) == 1
        rejected = next(o for o in report.outcomes
                        if o.status == STATUS_REJECTED)
        assert "rate-limited" in rejected.reasons
        assert rejected.retry_after > 0

    def test_queued_deadline_expires_before_start(self):
        service = AdaptationService(workers=1, seed=0)
        service.add_tenant("t", max_workers=1)
        service.submit("t", "minimd", at=0.0)
        # Queued behind the first; its budget is far smaller than the
        # leader's makespan, so it must expire without ever starting.
        service.submit("t", "hpccg", at=0.0, deadline=0.01)
        report = service.run()
        expired = [o for o in report.outcomes
                   if o.status == STATUS_DEADLINE_EXCEEDED]
        assert len(expired) == 1
        assert expired[0].started_at is None
        assert expired[0].app == "hpccg"

    def test_every_admitted_request_gets_typed_terminal(self):
        service = AdaptationService(workers=2, seed=3, queue_capacity=3)
        service.add_tenant("a", max_workers=2)
        service.add_tenant("b", max_workers=2)
        for i in range(4):
            service.submit("a", "minimd", at=0.0)
            service.submit("b", "hpccg", at=0.0)
        report = service.run()
        assert len(report.outcomes) == 8
        assert all(o.status in TERMINAL_STATUSES for o in report.outcomes)
        counts = report.by_status()
        assert sum(counts.values()) == 8

    def test_bulkhead_caps_concurrent_tenant_workers(self):
        service = AdaptationService(workers=4, seed=0)
        service.add_tenant("hog", max_workers=1)
        observed = []
        original = service._dispatch
        def spy(request):
            result = original(request)
            observed.append(service.tenants["hog"].workers_in_use)
            return result
        service._dispatch = spy
        for _ in range(3):
            service.submit("hog", "minimd", at=0.0, jobs=4)
        service.run()
        assert observed and max(observed) <= 1

    def test_report_json_round_trips(self):
        import json
        service = AdaptationService(workers=2, seed=1)
        service.add_tenant("t")
        service.submit("t", "minimd", at=0.0)
        report = service.run()
        blob = json.loads(json.dumps(report.to_json()))
        assert blob["by_status"][STATUS_COMPLETED] == 1
        assert blob["tenants"]["t"]["completed"] == 1
        assert set(blob["breakers"]) == {"registry", "fleet", "mirrors"}
        assert report.summary()

    def test_single_request_completes_full(self):
        service = AdaptationService(workers=2, seed=0)
        service.add_tenant("t")
        service.submit("t", "minimd", at=0.0)
        report = service.run()
        outcome = report.outcomes[0]
        assert outcome.status == STATUS_COMPLETED
        assert outcome.rung == "full"
        assert outcome.ref == "t/minimd:adapted"
        assert outcome.latency > 0
        assert service.tenants["t"].engine.has_image(outcome.ref)


class TestServiceControlPlane:
    def test_overload_surfaces_service_alerts_and_health(self):
        from repro.telemetry import Telemetry
        from repro.telemetry.controlplane import ControlPlane

        telemetry = Telemetry()
        controlplane = ControlPlane(telemetry)
        service = AdaptationService(workers=2, seed=1, telemetry=telemetry,
                                    queue_capacity=2)
        service.add_tenant("t")
        for i in range(8):
            service.submit("t", "minimd", at=float(i) * 0.01)
        report = service.run()
        controlplane.finalize()
        assert report.by_status()[STATUS_REJECTED] > 0
        fired = {alert.rule for alert in controlplane.rules.history}
        assert "service-rejections" in fired
        health = controlplane.health()
        by_name = {c.name: c for c in health.components}
        assert by_name["service"].status != "healthy"
