"""Tests for post-redirect verification (artifact-analysis semantics)."""

import pytest

from repro.apps import get_app
from repro.containers import ContainerEngine
from repro.core.backend.verify import verify_redirected_image
from repro.core.workflow import build_extended_image, system_side_adapt
from repro.perf import attach_perf
from repro.sysmodel import X86_CLUSTER


@pytest.fixture(scope="module")
def adapted():
    user = ContainerEngine(arch="amd64")
    layout, dist_tag = build_extended_image(user, get_app("hpl"))
    engine = ContainerEngine(arch="amd64")
    recorder = attach_perf(engine, X86_CLUSTER)
    ref = system_side_adapt(engine, layout, X86_CLUSTER, recorder=recorder,
                            ref="hpl:verify")
    return engine, layout, dist_tag, ref


class TestVerification:
    def test_clean_adaptation_verifies(self, adapted):
        engine, layout, dist_tag, ref = adapted
        report = verify_redirected_image(
            layout, dist_tag,
            engine.image_filesystem(ref),
            engine.image(ref).config.entrypoint,
        )
        assert report.ok, report.notes
        assert report.missing_paths == []
        assert report.entrypoint_matches
        assert report.wrong_toolchain == []
        assert report.unresolved_links == []

    def test_missing_binary_detected(self, adapted):
        engine, layout, dist_tag, ref = adapted
        fs = engine.image_filesystem(ref)
        fs.remove("/app/hpl")
        report = verify_redirected_image(
            layout, dist_tag, fs, engine.image(ref).config.entrypoint
        )
        assert not report.ok
        assert "/app/hpl" in report.missing_paths

    def test_missing_data_detected(self, adapted):
        engine, layout, dist_tag, ref = adapted
        fs = engine.image_filesystem(ref)
        fs.remove("/app/share/tables.bin")
        report = verify_redirected_image(
            layout, dist_tag, fs, engine.image(ref).config.entrypoint
        )
        assert not report.ok

    def test_entrypoint_drift_detected(self, adapted):
        engine, layout, dist_tag, ref = adapted
        report = verify_redirected_image(
            layout, dist_tag,
            engine.image_filesystem(ref),
            ["/bin/sh"],
        )
        assert not report.ok
        assert not report.entrypoint_matches

    def test_unrebuilt_binary_detected(self, adapted):
        engine, layout, dist_tag, ref = adapted
        fs = engine.image_filesystem(ref)
        # Sneak the *original* (gnu-built) binary back in.
        original_fs = layout.resolve(dist_tag).filesystem()
        node = original_fs.get_node("/app/hpl")
        fs.write_file("/app/hpl", node.content, mode=0o755)
        report = verify_redirected_image(
            layout, dist_tag, fs, engine.image(ref).config.entrypoint
        )
        assert not report.ok
        assert "/app/hpl" in report.wrong_toolchain

    def test_broken_compat_link_detected(self, adapted):
        engine, layout, dist_tag, ref = adapted
        fs = engine.image_filesystem(ref)
        fs.remove("/usr/lib/x86_64-linux-gnu/libopenblas.so.0")
        report = verify_redirected_image(
            layout, dist_tag, fs, engine.image(ref).config.entrypoint
        )
        assert not report.ok
        assert report.unresolved_links
