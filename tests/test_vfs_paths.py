"""Unit and property tests for pure path manipulation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.vfs import paths as vpath


class TestNormalize:
    def test_root(self):
        assert vpath.normalize("/") == "/"

    def test_empty_is_root(self):
        assert vpath.normalize("") == "/"

    def test_collapses_doubled_slashes(self):
        assert vpath.normalize("//usr///bin/") == "/usr/bin"

    def test_removes_single_dots(self):
        assert vpath.normalize("/usr/./bin/.") == "/usr/bin"

    def test_resolves_dotdot(self):
        assert vpath.normalize("/usr/lib/../bin") == "/usr/bin"

    def test_dotdot_above_root_clamps(self):
        assert vpath.normalize("/../../etc") == "/etc"

    def test_relative_treated_as_rooted(self):
        assert vpath.normalize("usr/bin") == "/usr/bin"


class TestJoin:
    def test_simple(self):
        assert vpath.join("/usr", "bin", "gcc") == "/usr/bin/gcc"

    def test_absolute_fragment_resets(self):
        assert vpath.join("/usr", "/etc", "passwd") == "/etc/passwd"

    def test_dotdot_in_fragment(self):
        assert vpath.join("/usr/bin", "../lib") == "/usr/lib"


class TestSplit:
    def test_components_of_root(self):
        assert vpath.split_components("/") == []

    def test_components(self):
        assert vpath.split_components("/a/b/c") == ["a", "b", "c"]

    def test_dirname_basename(self):
        assert vpath.dirname("/a/b/c") == "/a/b"
        assert vpath.basename("/a/b/c") == "c"

    def test_dirname_of_top_level(self):
        assert vpath.dirname("/a") == "/"


class TestContainment:
    def test_is_within_self(self):
        assert vpath.is_within("/a/b", "/a/b")

    def test_is_within_child(self):
        assert vpath.is_within("/a/b/c", "/a/b")

    def test_not_within_sibling_prefix(self):
        # /a/bc is NOT within /a/b even though it shares a string prefix.
        assert not vpath.is_within("/a/bc", "/a/b")

    def test_everything_within_root(self):
        assert vpath.is_within("/anything", "/")

    def test_relative_to(self):
        assert vpath.relative_to("/a/b/c", "/a") == "b/c"
        assert vpath.relative_to("/a", "/a") == "."
        assert vpath.relative_to("/a/b", "/") == "a/b"

    def test_relative_to_outside_raises(self):
        with pytest.raises(ValueError):
            vpath.relative_to("/x", "/a")


# Path components never containing separators or dot tokens.
_component = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126, blacklist_characters="/"),
    min_size=1,
    max_size=8,
).filter(lambda s: s not in (".", ".."))


class TestPathProperties:
    @given(st.lists(_component, max_size=6))
    def test_normalize_idempotent(self, comps):
        p = "/" + "/".join(comps)
        assert vpath.normalize(vpath.normalize(p)) == vpath.normalize(p)

    @given(st.lists(_component, min_size=1, max_size=6))
    def test_split_components_roundtrip(self, comps):
        p = "/" + "/".join(comps)
        assert vpath.split_components(p) == comps

    @given(st.lists(_component, min_size=1, max_size=6))
    def test_dirname_basename_rejoin(self, comps):
        p = "/" + "/".join(comps)
        assert vpath.join(vpath.dirname(p), vpath.basename(p)) == p

    @given(st.lists(_component, max_size=4), st.lists(_component, min_size=1, max_size=4))
    def test_join_result_within_base(self, base_comps, rel_comps):
        base = "/" + "/".join(base_comps)
        joined = vpath.join(base, "/".join(rel_comps))
        assert vpath.is_within(joined, base)
