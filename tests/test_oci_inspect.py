"""Tests for image inspection, diffing, and squashing."""

import pytest

from repro.apps import get_app
from repro.containers import ContainerEngine
from repro.core.cache.storage import extended_tag
from repro.core.workflow import build_extended_image
from repro.oci.inspect import diff_images, inspect_image, squash
from repro.oci.layout import OCILayout


@pytest.fixture(scope="module")
def layout_and_tag():
    engine = ContainerEngine(arch="amd64")
    return build_extended_image(engine, get_app("hpccg"))


class TestInspect:
    def test_summary_structure(self, layout_and_tag):
        layout, dist_tag = layout_and_tag
        summary = inspect_image(layout.resolve(dist_tag))
        assert summary.architecture == "amd64"
        assert summary.entrypoint == ["/app/hpccg"]
        assert len(summary.layers) == 3   # base + Base marker + dist stage
        assert summary.total_payload > 100 * 1024 * 1024

    def test_extended_has_one_more_layer(self, layout_and_tag):
        layout, dist_tag = layout_and_tag
        plain = inspect_image(layout.resolve(dist_tag))
        extended = inspect_image(layout.resolve(extended_tag(dist_tag)))
        assert len(extended.layers) == len(plain.layers) + 1
        assert "cache layer" in extended.layers[-1].comment

    def test_render_readable(self, layout_and_tag):
        layout, dist_tag = layout_and_tag
        text = inspect_image(layout.resolve(dist_tag)).render()
        assert "architecture : amd64" in text
        assert "MiB" in text


class TestDiffImages:
    def test_extended_vs_plain(self, layout_and_tag):
        layout, dist_tag = layout_and_tag
        added, removed, changed = diff_images(
            layout.resolve(dist_tag), layout.resolve(extended_tag(dist_tag))
        )
        assert removed == [] and changed == []
        assert any(path.startswith("/.coMtainer/cache") for path in added)

    def test_self_diff_empty(self, layout_and_tag):
        layout, dist_tag = layout_and_tag
        resolved = layout.resolve(dist_tag)
        assert diff_images(resolved, resolved) == ([], [], [])


class TestSquash:
    def test_squash_preserves_filesystem(self, layout_and_tag):
        layout, dist_tag = layout_and_tag
        resolved = layout.resolve(dist_tag)
        config, layer = squash(resolved)
        fresh = OCILayout()
        from repro.oci.blobs import Blob
        from repro.oci.image import Manifest

        manifest = Manifest(config=config.descriptor(),
                            layers=[Blob.from_layer(layer).descriptor()])
        fresh.add_manifest(manifest, config, [layer], tag="squashed")
        squashed_fs = fresh.resolve("squashed").filesystem()
        original_fs = resolved.filesystem()
        assert {p: n.content.digest for p, n in squashed_fs.iter_files()} == \
            {p: n.content.digest for p, n in original_fs.iter_files()}

    def test_squash_single_diff_id(self, layout_and_tag):
        layout, dist_tag = layout_and_tag
        config, layer = squash(layout.resolve(dist_tag))
        assert config.diff_ids == [layer.digest]
        assert len(config.history) == 1


class TestCliInspect:
    def test_inspect_command(self, capsys):
        from repro import cli

        assert cli.main(["inspect", "hpccg", "--extended"]) == 0
        out = capsys.readouterr().out
        assert "hpccg.dist+coM" in out
        assert "cache layer" in out
