"""Tests for GCC-style command-line parsing and rendering."""

from hypothesis import given
from hypothesis import strategies as st

from repro.toolchain.cli import (
    CompilerInvocation,
    MODE_COMPILE,
    MODE_INFO,
    MODE_LINK,
    MODE_PREPROCESS,
    classify_source,
    input_kind,
    parse_command_line,
)


class TestInputClassification:
    def test_c_sources(self):
        assert classify_source("main.c") == "c"
        assert classify_source("a/b/x.i") == "c"

    def test_cxx_sources(self):
        assert classify_source("lulesh.cc") == "c++"
        assert classify_source("x.cpp") == "c++"

    def test_fortran_sources(self):
        assert classify_source("solve.f90") == "fortran"
        assert classify_source("legacy.F") == "fortran"

    def test_non_source(self):
        assert classify_source("x.o") is None

    def test_input_kinds(self):
        assert input_kind("a.o") == "object"
        assert input_kind("liba.a") == "archive"
        assert input_kind("libx.so") == "shared"
        assert input_kind("libx.so.3.2") == "shared"
        assert input_kind("main.c") == "source"
        assert input_kind("README") == "other"


class TestParse:
    def test_simple_compile(self):
        inv = parse_command_line(["gcc", "-c", "main.c", "-o", "main.o"])
        assert inv.mode == MODE_COMPILE
        assert inv.sources == ["main.c"]
        assert inv.output == "main.o"

    def test_simple_link(self):
        inv = parse_command_line(["g++", "a.o", "b.o", "-o", "app", "-lm"])
        assert inv.mode == MODE_LINK
        assert inv.objects == ["a.o", "b.o"]
        assert inv.libs == ["m"]
        assert inv.output == "app"

    def test_optimization_levels(self):
        assert parse_command_line(["gcc", "-O3", "-c", "x.c"]).opt_level == "3"
        assert parse_command_line(["gcc", "-Ofast", "-c", "x.c"]).opt_level == "fast"
        assert parse_command_line(["gcc", "-O", "-c", "x.c"]).opt_level == "1"

    def test_joined_output(self):
        inv = parse_command_line(["gcc", "-c", "x.c", "-ox.o"])
        assert inv.output == "x.o"

    def test_defines_and_includes(self):
        inv = parse_command_line(
            ["gcc", "-DNDEBUG", "-D", "USE_MPI=1", "-Iinclude", "-I", "/opt/inc",
             "-isystem", "/usr/local/include", "-c", "x.c"]
        )
        assert inv.defines == ["NDEBUG", "USE_MPI=1"]
        assert inv.include_dirs == ["include", "/opt/inc"]
        assert inv.isystem_dirs == ["/usr/local/include"]

    def test_fflags(self):
        inv = parse_command_line(
            ["gcc", "-funroll-loops", "-fno-strict-aliasing",
             "-fvisibility=hidden", "-c", "x.c"]
        )
        assert inv.fflags["unroll-loops"] is True
        assert inv.fflags["strict-aliasing"] is False
        assert inv.fflags["visibility"] == "hidden"

    def test_mflags_and_march(self):
        inv = parse_command_line(
            ["gcc", "-march=native", "-mtune=skylake", "-mavx2", "-mno-fma", "-c", "x.c"]
        )
        assert inv.march == "native"
        assert inv.mtune == "skylake"
        assert inv.mflags["avx2"] is True
        assert inv.mflags["fma"] is False

    def test_lto_pgo_properties(self):
        inv = parse_command_line(["gcc", "-flto", "-fprofile-generate", "-c", "x.c"])
        assert inv.lto and inv.profile_generate and not inv.profile_use
        inv = parse_command_line(["gcc", "-fprofile-use=prof.gcda", "x.o", "-o", "app"])
        assert inv.profile_use
        assert inv.fflags["profile-use"] == "prof.gcda"

    def test_warnings_collected(self):
        inv = parse_command_line(["gcc", "-Wall", "-Wextra", "-Wno-unused", "-c", "x.c"])
        assert inv.warnings == ["-Wall", "-Wextra", "-Wno-unused"]

    def test_linker_passthrough(self):
        inv = parse_command_line(
            ["gcc", "x.o", "-Wl,-rpath,/opt/lib", "-Xlinker", "--as-needed", "-o", "a"]
        )
        assert inv.linker_args == ["-rpath", "/opt/lib", "--as-needed"]

    def test_shared_static_pthread(self):
        inv = parse_command_line(["gcc", "-shared", "-pthread", "x.o", "-o", "libx.so"])
        assert inv.shared and inv.pthread and not inv.static

    def test_std(self):
        inv = parse_command_line(["g++", "-std=c++17", "-c", "x.cc"])
        assert inv.std == "c++17"

    def test_language_detected(self):
        assert parse_command_line(["g++", "-c", "x.cc"]).language == "c++"
        assert parse_command_line(["gfortran", "-c", "x.f90"]).language == "fortran"

    def test_language_override(self):
        inv = parse_command_line(["gcc", "-x", "c++", "-c", "weird.txt"])
        assert inv.language == "c++"

    def test_mode_preprocess(self):
        assert parse_command_line(["gcc", "-E", "x.c"]).mode == MODE_PREPROCESS

    def test_mode_info(self):
        assert parse_command_line(["gcc", "--version"]).mode == MODE_INFO
        assert parse_command_line(["gcc"]).mode == MODE_INFO

    def test_effective_output_defaults(self):
        inv = parse_command_line(["gcc", "-c", "src/main.c"])
        assert inv.effective_output() == "main.o"
        inv = parse_command_line(["gcc", "main.o"])
        assert inv.effective_output() == "a.out"

    def test_response_file(self):
        files = {"flags.rsp": "-O2 -funroll-loops"}
        inv = parse_command_line(
            ["gcc", "@flags.rsp", "-c", "x.c"], read_file=lambda p: files[p]
        )
        assert inv.opt_level == "2"
        assert inv.fflags["unroll-loops"] is True

    def test_isa_specific_args(self):
        inv = parse_command_line(["gcc", "-mavx2", "-march=skylake", "-O2", "-c", "x.c"])
        args = set(inv.isa_specific_args())
        assert "-mavx2" in args
        assert "-march=skylake" in args

    def test_debug_flag(self):
        assert parse_command_line(["gcc", "-g", "-c", "x.c"]).debug == "-g"
        assert parse_command_line(["gcc", "-ggdb", "-c", "x.c"]).debug == "-ggdb"


class TestRenderRoundtrip:
    CASES = [
        ["gcc", "-c", "main.c", "-o", "main.o"],
        ["g++", "-std=c++14", "-O3", "-march=native", "-funroll-loops",
         "-DUSE_MPI", "-Iinclude", "-c", "lulesh.cc", "-o", "lulesh.o"],
        ["gcc", "-O2", "-flto", "a.o", "b.o", "-L/opt/lib", "-lblas", "-lm",
         "-o", "app"],
        ["gfortran", "-O3", "-fdefault-real-8", "-c", "solve.f90"],
        ["gcc", "-shared", "-fPIC", "x.o", "-Wl,-soname,libx.so.1", "-o", "libx.so.1"],
        ["gcc", "-E", "x.c"],
        ["mpicc", "-O2", "-fopenmp", "-c", "comm.c"],
    ]

    def test_semantic_roundtrip(self):
        for argv in self.CASES:
            inv = parse_command_line(argv)
            again = parse_command_line(inv.render())
            assert again.mode == inv.mode, argv
            assert again.sources == inv.sources
            assert again.objects == inv.objects
            assert again.output == inv.output
            assert again.opt_level == inv.opt_level
            assert again.fflags == inv.fflags
            assert again.mflags == inv.mflags
            assert again.libs == inv.libs
            assert again.defines == inv.defines
            assert again.linker_args == inv.linker_args
            assert again.shared == inv.shared

    def test_render_is_fixpoint(self):
        for argv in self.CASES:
            inv = parse_command_line(argv)
            rendered = inv.render()
            assert parse_command_line(rendered).render() == rendered

    def test_json_roundtrip(self):
        inv = parse_command_line(self.CASES[1])
        restored = CompilerInvocation.from_json(inv.to_json())
        assert restored.render() == inv.render()


_flag_names = st.sampled_from(
    ["unroll-loops", "strict-aliasing", "fast-math", "lto", "tree-vectorize",
     "inline-functions", "omit-frame-pointer", "openmp"]
)


class TestParseProperties:
    @given(
        st.lists(_flag_names, max_size=5, unique=True),
        st.sampled_from(["0", "1", "2", "3", "fast"]),
        st.booleans(),
    )
    def test_random_flag_sets_roundtrip(self, flags, opt, negate_first):
        argv = ["gcc", f"-O{opt}"]
        for i, name in enumerate(flags):
            argv.append(f"-fno-{name}" if (negate_first and i == 0) else f"-f{name}")
        argv += ["-c", "x.c"]
        inv = parse_command_line(argv)
        again = parse_command_line(inv.render())
        assert again.fflags == inv.fflags
        assert again.opt_level == opt
