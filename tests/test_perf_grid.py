"""Exhaustive sanity grid over the perf model: every workload x system x
scheme x node count must be well-behaved."""

import math

import pytest

from repro.perf import WORKLOADS, predict_time, scheme_traits
from repro.perf.schemes import MOTIVATION_SCHEMES, SCHEMES
from repro.sysmodel import SYSTEMS


@pytest.mark.parametrize("system_key", sorted(SYSTEMS))
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_grid_sanity(workload, system_key):
    system = SYSTEMS[system_key]
    times = {}
    for scheme in set(SCHEMES) | set(MOTIVATION_SCHEMES):
        for nodes in (1, 4, 16):
            t = predict_time(
                workload, system, scheme_traits(workload, system, scheme),
                nodes=nodes,
            )
            assert math.isfinite(t) and t > 0, (workload, system_key, scheme, nodes)
            times[(scheme, nodes)] = t

    # Strong scaling: every scheme gets faster with more nodes.
    for scheme in SCHEMES:
        assert times[(scheme, 1)] > times[(scheme, 16)], (workload, scheme)

    # Scheme ordering at the evaluation scale (hpccg is the paper's
    # counterexample where native degrades).
    if workload != "hpccg":
        assert times[("native", 16)] < times[("original", 16)]
    # Adapted is never dramatically off native (the retention claim).
    assert times[("adapted", 16)] == pytest.approx(times[("native", 16)], rel=0.15)

    # The incremental motivation sequence stays within sane bounds: each
    # step changes time by at most the size of the remaining gap (strict
    # monotonicity does NOT hold universally — negative LTO/PGO responses
    # and over-aggressive vendor compilers are part of the model).
    seq = [times[(s, 1)] for s in MOTIVATION_SCHEMES]
    for value in seq[1:]:
        assert value < seq[0] * 1.35, (workload, system_key)


@pytest.mark.parametrize("system_key", sorted(SYSTEMS))
def test_grid_totals_match_paper_averages(system_key):
    system = SYSTEMS[system_key]
    native_avg = sum(
        predict_time(w, system, scheme_traits(w, system, "native"))
        for w in WORKLOADS
    ) / len(WORKLOADS)
    expected = {"x86": 21.35, "arm": 67.0}[system_key]
    assert native_avg == pytest.approx(expected, rel=0.02)
