"""Unit tests for the integrity layer: corruption faults, verified reads,
quarantine + repair, crash-consistent persistence, and fsck."""

import dataclasses
import json
import os
import random

import pytest

from repro.integrity import (
    KIND_CHECKSUM_MISMATCH,
    KIND_DIGEST_MISMATCH,
    IntegrityError,
    IntegrityFinding,
    find_integrity_error,
)
from repro.integrity.fsck import fsck_directory, fsck_layout
from repro.integrity.repair import RepairEngine
from repro.oci import (
    ImageConfig,
    ImageRegistry,
    Layer,
    LayerEntry,
    Manifest,
    OCILayout,
    mediatypes,
)
from repro.oci.blobs import Blob, BlobStore, check_blob
from repro.oci.layout import CHECKSUM_MANIFEST
from repro.oci.registry import ImageNotFound
from repro.resilience import (
    CORRUPTION_MODES,
    CorruptionSpec,
    FaultInjector,
    RebuildJournal,
    corrupt_payload,
)
from repro.toolchain.artifacts import PaddedContent
from repro.vfs import InlineContent


def _make_image(tag_data=b"payload"):
    layer = Layer().add(LayerEntry.file("/app/bin", InlineContent(tag_data), mode=0o755))
    config = ImageConfig(architecture="amd64", env=["PATH=/usr/bin"], entrypoint=["/app/bin"])
    config.diff_ids.append(layer.digest)
    manifest = Manifest(config=config.descriptor(), layers=[Blob.from_layer(layer).descriptor()])
    return manifest, config, layer


def _make_layout(tag="app:latest", tag_data=b"payload"):
    layout = OCILayout()
    manifest, config, layer = _make_image(tag_data)
    layout.add_manifest(manifest, config, [layer], tag=tag)
    return layout, manifest, config, layer


class TestCorruptPayload:
    def test_deterministic_per_seed(self):
        data = bytes(range(256)) * 4
        for mode in CORRUPTION_MODES:
            a = corrupt_payload(data, mode, random.Random(7))
            b = corrupt_payload(data, mode, random.Random(7))
            assert a == b
            assert a != data

    def test_bitflip_changes_exactly_one_bit(self):
        data = b"\x00" * 64
        mutated = corrupt_payload(data, "bitflip", random.Random(1))
        assert len(mutated) == len(data)
        diff = [a ^ b for a, b in zip(data, mutated) if a != b]
        assert len(diff) == 1
        assert bin(diff[0]).count("1") == 1

    def test_truncate_is_strictly_shorter(self):
        data = b"x" * 100
        for seed in range(20):
            mutated = corrupt_payload(data, "truncate", random.Random(seed))
            assert len(mutated) < len(data)

    def test_torn_keeps_length_but_not_content(self):
        data = bytes(range(1, 101))
        for seed in range(20):
            mutated = corrupt_payload(data, "torn", random.Random(seed))
            assert len(mutated) == len(data)
            assert mutated != data

    def test_torn_differs_even_on_zero_tail(self):
        data = b"ab" + b"\x00" * 50
        mutated = corrupt_payload(data, "torn", random.Random(0))
        assert mutated != data

    def test_empty_payload_untouched(self):
        assert corrupt_payload(b"", "bitflip", random.Random(0)) == b""

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            corrupt_payload(b"x", "gamma-ray", random.Random(0))


class TestVerifiedReads:
    def test_corrupted_put_detected_on_get(self):
        store = BlobStore()
        store.fault_injector = FaultInjector(
            corruptions=[CorruptionSpec(site="blob.store", mode="bitflip")]
        )
        desc = store.put_bytes(b'{"k": "v"}', mediatypes.IMAGE_CONFIG)
        with pytest.raises(IntegrityError) as exc_info:
            store.get(desc.digest)
        err = exc_info.value
        assert err.site == "blob.read"
        assert err.digest == desc.digest
        assert err.finding.kind == KIND_DIGEST_MISMATCH
        assert not err.transient

    def test_truncation_detected(self):
        store = BlobStore()
        store.fault_injector = FaultInjector(
            corruptions=[CorruptionSpec(site="blob.store", mode="truncate")]
        )
        desc = store.put_bytes(b"payload-bytes", mediatypes.IMAGE_CONFIG)
        with pytest.raises(IntegrityError):
            store.get(desc.digest)

    def test_verify_false_returns_corrupt_bytes(self):
        """Opting out of verification reads whatever landed — the escape
        hatch the repair/forensics paths rely on."""
        store = BlobStore()
        store.fault_injector = FaultInjector(
            corruptions=[CorruptionSpec(site="blob.store", mode="bitflip")]
        )
        desc = store.put_bytes(b"payload-bytes", mediatypes.IMAGE_CONFIG)
        blob = store.get(desc.digest, verify=False)
        assert blob.as_bytes() != b"payload-bytes"

    def test_verification_memoized_until_rewrite(self):
        store = BlobStore()
        desc = store.put_bytes(b"clean", mediatypes.IMAGE_CONFIG)
        store.get(desc.digest)
        assert desc.digest in store._verified
        store.put_bytes(b"clean", mediatypes.IMAGE_CONFIG)
        assert desc.digest not in store._verified

    def test_layer_blob_verification(self):
        store = BlobStore()
        _, _, layer = _make_image()
        desc = store.put_layer(layer)
        store.get(desc.digest)   # clean layer verifies
        bogus = dataclasses.replace(Blob.from_layer(layer), digest="sha256:" + "0" * 64)
        assert check_blob(bogus).kind == KIND_DIGEST_MISMATCH

    def test_missing_blob_still_keyerror(self):
        with pytest.raises(KeyError):
            BlobStore().get("sha256:" + "0" * 64)

    def test_verify_integrity_typed_findings(self):
        store = BlobStore()
        store.fault_injector = FaultInjector(
            corruptions=[CorruptionSpec(site="blob.store", mode="bitflip")]
        )
        bad = store.put_bytes(b"will-corrupt", mediatypes.IMAGE_CONFIG)
        store.fault_injector = None
        good = store.put_bytes(b"stays-clean", mediatypes.IMAGE_CONFIG)
        findings = store.verify_integrity()
        assert [f.digest for f in findings] == [bad.digest]
        assert findings[0].kind == KIND_DIGEST_MISMATCH
        assert good.digest not in {f.digest for f in findings}
        assert str(findings[0]).startswith(f"blob {bad.digest} digest-mismatch")


class TestQuarantine:
    def _corrupt_store(self):
        store = BlobStore()
        store.fault_injector = FaultInjector(
            corruptions=[CorruptionSpec(site="blob.store", mode="bitflip")]
        )
        desc = store.put_bytes(b"doomed-payload", mediatypes.IMAGE_CONFIG)
        store.fault_injector = None
        return store, desc.digest

    def test_quarantined_blob_unreadable_but_inspectable(self):
        store, digest = self._corrupt_store()
        finding = store.verify_integrity()[0]
        assert store.quarantine(digest, finding)
        with pytest.raises(IntegrityError) as exc_info:
            store.get(digest)
        assert "quarantined" in str(exc_info.value)
        # ...but forensics can still see the corrupt payload.
        assert store.quarantined_blob(digest) is not None
        assert [f.digest for f in store.quarantined()] == [digest]
        # The sweep no longer reports it (it already carries a finding).
        assert store.verify_integrity() == []

    def test_release_after_repair(self):
        store, digest = self._corrupt_store()
        store.quarantine(digest)
        store.put_bytes(b"doomed-payload", mediatypes.IMAGE_CONFIG)
        assert store.release_quarantine(digest)
        assert store.get(digest).as_bytes() == b"doomed-payload"

    def test_quarantine_missing_blob_is_false(self):
        assert not BlobStore().quarantine("sha256:" + "0" * 64)


class TestResolvedImageVerify:
    def test_clean_image_verifies(self):
        layout, *_ = _make_layout()
        resolved = layout.resolve("app:latest")
        assert resolved.verify() == []
        assert resolved.check("test") is resolved

    def test_tampered_config_detected(self):
        layout, manifest, config, layer = _make_layout()
        resolved = layout.resolve("app:latest")
        resolved.config.env.append("EVIL=1")
        findings = resolved.verify()
        assert findings and findings[0].kind == KIND_DIGEST_MISMATCH
        with pytest.raises(IntegrityError) as exc_info:
            resolved.check("unit-test")
        assert exc_info.value.site == "unit-test"

    def test_tampered_layer_detected(self):
        layout, *_ = _make_layout()
        resolved = layout.resolve("app:latest")
        resolved.layers[0].add(LayerEntry.file("/evil", InlineContent(b"x")))
        assert any(f.kind == KIND_DIGEST_MISMATCH for f in resolved.verify())


class TestRegistryIntegrity:
    def test_transfer_corruption_caught_on_pull(self):
        layout, *_ = _make_layout()
        registry = ImageRegistry()
        registry.fault_injector = registry.blobs.fault_injector = FaultInjector(
            corruptions=[CorruptionSpec(site="registry.transfer", mode="bitflip",
                                        times=-1)]
        )
        registry.push_layout("repro/app:latest", layout, tag="app:latest")
        with pytest.raises(IntegrityError) as exc_info:
            registry.pull("repro/app:latest")
        assert find_integrity_error(exc_info.value) is exc_info.value

    def test_nearest_tag_suggested(self):
        layout, *_ = _make_layout()
        registry = ImageRegistry()
        registry.push_layout("repro/app:v1.2.3", layout, tag="app:latest")
        with pytest.raises(ImageNotFound) as exc_info:
            registry.pull("repro/app:v1.2.4")
        assert exc_info.value.suggestion == "repro/app:v1.2.3"
        assert "did you mean" in str(exc_info.value)

    def test_unknown_repo_has_no_suggestion(self):
        with pytest.raises(ImageNotFound) as exc_info:
            ImageRegistry().pull("ghost/app:latest")
        assert exc_info.value.suggestion is None


class TestFindIntegrityError:
    def test_direct_and_chained(self):
        err = IntegrityError(site="s", digest="sha256:" + "a" * 64, detail="d")
        assert find_integrity_error(err) is err
        try:
            try:
                raise err
            except IntegrityError as inner:
                raise RuntimeError("wrapped") from inner
        except RuntimeError as outer:
            assert find_integrity_error(outer) is err

    def test_unrelated_returns_none(self):
        assert find_integrity_error(ValueError("nope")) is None


class TestAtomicSave:
    def test_save_writes_checksum_manifest(self, tmp_path):
        layout, *_ = _make_layout()
        target = str(tmp_path / "img.oci")
        layout.save(target)
        with open(os.path.join(target, CHECKSUM_MANIFEST), encoding="utf-8") as fh:
            manifest = json.load(fh)
        assert manifest["version"] == 1
        assert "index.json" in manifest["files"]
        assert any(rel.startswith("blobs/sha256/") for rel in manifest["files"])
        # No staging/backup residue after a clean save.
        assert not os.path.exists(target + ".saving")
        assert not os.path.exists(target + ".replaced")

    def test_save_over_existing_replaces_atomically(self, tmp_path):
        target = str(tmp_path / "img.oci")
        old, *_ = _make_layout(tag_data=b"v1")
        old.save(target)
        new, *_ = _make_layout(tag_data=b"v2")
        new.save(target)
        reloaded = OCILayout.load(target)
        fs = reloaded.resolve("app:latest").filesystem()
        assert fs.read_file("/app/bin") == b"v2"
        assert not os.path.exists(target + ".replaced")

    def test_on_disk_corruption_detected_at_load(self, tmp_path):
        layout, *_ = _make_layout()
        target = str(tmp_path / "img.oci")
        layout.save(target)
        blob_dir = os.path.join(target, "blobs", "sha256")
        victim = os.path.join(blob_dir, sorted(os.listdir(blob_dir))[0])
        with open(victim, "rb") as fh:
            data = bytearray(fh.read())
        data[0] ^= 0x01
        with open(victim, "wb") as fh:
            fh.write(bytes(data))
        with pytest.raises(IntegrityError) as exc_info:
            OCILayout.load(target)
        assert exc_info.value.finding.kind == KIND_CHECKSUM_MISMATCH
        # Best-effort load still works for repair tooling.
        OCILayout.load(target, verify=False)

    def test_injected_save_corruption_detected(self, tmp_path):
        layout, *_ = _make_layout()
        layout.blobs.fault_injector = FaultInjector(
            corruptions=[CorruptionSpec(site="layout.save", mode="torn",
                                        match="blobs/")]
        )
        target = str(tmp_path / "img.oci")
        layout.save(target)
        layout.blobs.fault_injector = None
        with pytest.raises(IntegrityError):
            OCILayout.load(target)


class TestJournalSalvage:
    def _journal_with_nodes(self, count=6):
        layout = OCILayout()
        journal = RebuildJournal(layout, "app.dist")
        for i in range(count):
            content = PaddedContent(json.dumps({"obj": i}).encode(), pad=64)
            journal.record(f"node-{i}", f"sha256:{i:064x}", f"/src/{i}.o",
                           content, 0o644)
        return layout, journal

    def test_clean_roundtrip_keeps_every_node(self):
        layout, journal = self._journal_with_nodes()
        journal.flush()
        reloaded = RebuildJournal(layout, "app.dist")
        assert reloaded.node_ids() == journal.node_ids()
        assert reloaded.torn_entries_dropped == 0
        content, mode = reloaded.output_for("node-0")
        assert content.digest == journal.output_for("node-0")[0].digest

    def test_torn_tail_salvages_prefix(self):
        layout, journal = self._journal_with_nodes()
        layout.blobs.fault_injector = FaultInjector(
            corruptions=[CorruptionSpec(site="journal.append", mode="torn")]
        )
        journal.flush()
        layout.blobs.fault_injector = None
        reloaded = RebuildJournal(layout, "app.dist")
        # Torn write: whatever lines survived parse; the rest are counted
        # as dropped and will recompile — never a crash, never bad data.
        assert len(reloaded) < 6
        assert reloaded.torn_entries_dropped >= 1
        assert set(reloaded.node_ids()) <= set(journal.node_ids())
        assert layout.audit() == []

    def test_bitflip_drops_at_most_one_line(self):
        layout, journal = self._journal_with_nodes()
        layout.blobs.fault_injector = FaultInjector(
            corruptions=[CorruptionSpec(site="journal.append", mode="bitflip")]
        )
        journal.flush()
        layout.blobs.fault_injector = None
        reloaded = RebuildJournal(layout, "app.dist")
        # One flipped bit damages at most one JSONL line (it may still
        # parse if the flip lands in a string payload).
        assert len(reloaded) >= 5
        assert reloaded.torn_entries_dropped <= 2
        assert layout.audit() == []

    def test_truncated_journal_never_crashes(self):
        layout, journal = self._journal_with_nodes()
        layout.blobs.fault_injector = FaultInjector(
            corruptions=[CorruptionSpec(site="journal.append", mode="truncate")]
        )
        journal.flush()
        layout.blobs.fault_injector = None
        reloaded = RebuildJournal(layout, "app.dist")
        assert set(reloaded.node_ids()) <= set(journal.node_ids())


class TestRepairEngine:
    def _corrupt_layout(self):
        layout, manifest, config, layer = _make_layout()
        replica, *_ = _make_layout()
        config_digest = config.digest
        blob = layout.blobs.try_get(config_digest)
        layout.blobs.put(dataclasses.replace(
            blob, payload=blob.as_bytes() + b" "))
        return layout, replica, config_digest

    def test_repair_from_layout_replica(self):
        layout, replica, digest = self._corrupt_layout()
        engine = RepairEngine().add_layout(replica, label="replica")
        outcome = engine.repair_blob(layout.blobs, digest)
        assert outcome.repaired and outcome.source == "replica"
        assert layout.blobs.get(digest)       # verified read passes again
        assert layout.blobs.quarantined() == []

    def test_repair_from_registry_replica(self):
        layout, replica, digest = self._corrupt_layout()
        registry = ImageRegistry()
        registry.push_layout("repro/app:latest", replica, tag="app:latest")
        engine = RepairEngine().add_registry(registry)
        outcome = engine.repair_blob(layout.blobs, digest)
        assert outcome.repaired and outcome.source == "registry"

    def test_repair_by_regeneration(self):
        layout, _replica, digest = self._corrupt_layout()
        engine = RepairEngine().add_regenerator(
            lambda: _make_layout()[0], label="regenerate")
        outcome = engine.repair_blob(layout.blobs, digest)
        assert outcome.repaired and outcome.source == "regenerate"

    def test_failed_repair_leaves_quarantine(self):
        layout, _replica, digest = self._corrupt_layout()
        engine = RepairEngine()       # no sources at all
        outcome = engine.repair_blob(layout.blobs, digest)
        assert not outcome.repaired
        assert "no source" in outcome.detail
        # The corrupt copy is preserved in quarantine, not deleted...
        assert layout.blobs.quarantined_blob(digest) is not None
        # ...and normal reads keep failing loudly.
        with pytest.raises(IntegrityError):
            layout.blobs.get(digest)

    def test_corrupt_source_skipped(self):
        layout, replica, digest = self._corrupt_layout()
        bad_blob = replica.blobs.try_get(digest)
        replica.blobs.put(dataclasses.replace(
            bad_blob, payload=bad_blob.as_bytes() + b"!"))
        good, *_ = _make_layout()
        engine = RepairEngine().add_layout(replica, label="bad").add_layout(
            good, label="good")
        outcome = engine.repair_blob(layout.blobs, digest)
        assert outcome.repaired and outcome.source == "good"

    def test_repair_layout_fixes_missing_referenced(self):
        layout, replica, _digest = self._corrupt_layout()
        victim = next(iter(layout.referenced_digests()))
        layout.blobs.remove(victim)
        outcomes = RepairEngine().add_layout(replica).repair_layout(layout)
        assert any(o.digest == victim and o.repaired for o in outcomes)
        assert layout.audit() == []

    def test_healthy_blob_is_noop(self):
        layout, *_ = _make_layout()
        digest = next(iter(layout.referenced_digests()))
        outcome = RepairEngine().repair_blob(layout.blobs, digest)
        assert outcome.repaired and outcome.detail == "already intact"


class TestFsck:
    def test_clean_layout_exit_zero(self):
        layout, *_ = _make_layout()
        report = fsck_layout(layout)
        assert report.clean and report.exit_code == 0
        assert report.scanned == len(layout.blobs)
        assert report.to_json()["clean"] is True

    def test_scan_only_reports_without_mutating(self, tmp_path):
        layout, *_ = _make_layout()
        target = str(tmp_path / "img.oci")
        layout.save(target)
        blob_dir = os.path.join(target, "blobs", "sha256")
        victim = os.path.join(blob_dir, sorted(os.listdir(blob_dir))[0])
        with open(victim, "rb") as fh:
            corrupt = bytearray(fh.read())
        corrupt[0] ^= 0x10
        with open(victim, "wb") as fh:
            fh.write(bytes(corrupt))

        report = fsck_directory(target)
        assert report.exit_code == 1
        assert report.findings
        with open(victim, "rb") as fh:
            assert fh.read() == bytes(corrupt)   # scan never mutates

    def test_repair_restores_saved_directory(self, tmp_path):
        layout, *_ = _make_layout()
        target = str(tmp_path / "img.oci")
        replica_dir = str(tmp_path / "replica.oci")
        layout.save(target)
        layout.save(replica_dir)
        blob_dir = os.path.join(target, "blobs", "sha256")
        victim = os.path.join(blob_dir, sorted(os.listdir(blob_dir))[0])
        with open(victim, "rb") as fh:
            data = bytearray(fh.read())
        data[len(data) // 2] ^= 0x20
        with open(victim, "wb") as fh:
            fh.write(bytes(data))

        repair = RepairEngine().add_layout(
            OCILayout.load(replica_dir, verify=False), label=replica_dir)
        report = fsck_directory(target, repair=repair)
        assert report.exit_code == 0
        assert report.repaired and not report.failed
        # The acceptance bar: the directory is back to a loadable,
        # fully-verified state.
        restored = OCILayout.load(target, verify=True)
        assert restored.resolve("app:latest").verify() == []

    def test_repair_without_source_stays_dirty(self, tmp_path):
        layout, *_ = _make_layout()
        target = str(tmp_path / "img.oci")
        layout.save(target)
        blob_dir = os.path.join(target, "blobs", "sha256")
        victim = os.path.join(blob_dir, sorted(os.listdir(blob_dir))[0])
        with open(victim, "rb") as fh:
            data = bytearray(fh.read())
        data[0] ^= 0x01
        with open(victim, "wb") as fh:
            fh.write(bytes(data))
        report = fsck_directory(target, repair=RepairEngine())
        assert report.exit_code == 1
        assert report.failed or report.missing

    def test_unparseable_index_reported_not_crashed(self, tmp_path):
        layout, *_ = _make_layout()
        target = str(tmp_path / "img.oci")
        layout.save(target)
        with open(os.path.join(target, "index.json"), "wb") as fh:
            fh.write(b"\x00not json\xff")
        report = fsck_directory(target)
        assert report.exit_code == 1
        assert report.findings

    def test_cli_fsck_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        layout, *_ = _make_layout()
        target = str(tmp_path / "img.oci")
        replica_dir = str(tmp_path / "replica.oci")
        layout.save(target)
        layout.save(replica_dir)
        assert main(["fsck", target]) == 0

        blob_dir = os.path.join(target, "blobs", "sha256")
        victim = os.path.join(blob_dir, sorted(os.listdir(blob_dir))[0])
        with open(victim, "rb") as fh:
            data = bytearray(fh.read())
        data[0] ^= 0x08
        with open(victim, "wb") as fh:
            fh.write(bytes(data))
        assert main(["fsck", target]) == 1
        assert main(["fsck", target, "--repair", "--source", replica_dir]) == 0
        assert main(["fsck", target]) == 0
        out = capsys.readouterr().out
        assert "CORRUPT" in out and "clean" in out


class TestFindingTypes:
    def test_finding_str_and_json(self):
        finding = IntegrityFinding(
            digest="sha256:" + "a" * 64, kind=KIND_DIGEST_MISMATCH, detail="boom")
        assert str(finding) == f"blob sha256:{'a' * 64} digest-mismatch: boom"
        assert finding.to_json()["kind"] == KIND_DIGEST_MISMATCH

    def test_error_carries_site_and_digest(self):
        finding = IntegrityFinding(
            digest="sha256:" + "b" * 64, kind=KIND_DIGEST_MISMATCH, detail="d")
        err = IntegrityError(site="blob.read", finding=finding)
        assert err.site == "blob.read"
        assert err.digest == finding.digest
        assert finding.digest in str(err) and "blob.read" in str(err)


class TestMerkleMemoization:
    """Repeat pulls skip the Merkle re-walk while every member blob is
    still verified; any blob-store churn on a member invalidates it."""

    def _pushed_registry(self):
        layout, manifest, config, layer = _make_layout()
        registry = ImageRegistry()
        registry.push_layout("repro/app:latest", layout, tag="app:latest")
        return registry, layer

    def test_double_pull_rehashes_each_blob_at_most_once(self, monkeypatch):
        from collections import Counter

        from repro.oci import blobs as blobs_mod
        from repro.oci.layout import ResolvedImage

        registry, _ = self._pushed_registry()
        walks = []
        orig_verify = ResolvedImage.verify
        monkeypatch.setattr(
            ResolvedImage, "verify",
            lambda self: (walks.append(1), orig_verify(self))[1])
        hashed = []
        orig_check = blobs_mod.check_blob
        monkeypatch.setattr(
            blobs_mod, "check_blob",
            lambda blob: (hashed.append(blob.digest), orig_check(blob))[1])

        first = registry.pull("repro/app:latest")
        assert len(walks) == 1
        walked_after_first = len(walks)
        second = registry.pull("repro/app:latest")
        # The repeat pull neither re-walks the tree nor re-hashes blobs.
        assert len(walks) == walked_after_first
        assert all(count <= 1 for count in Counter(hashed).values())
        assert second.manifest.digest == first.manifest.digest

    def test_member_churn_forces_rehash(self, monkeypatch):
        from repro.oci import blobs as blobs_mod

        registry, layer = self._pushed_registry()
        hashed = []
        orig_check = blobs_mod.check_blob
        monkeypatch.setattr(
            blobs_mod, "check_blob",
            lambda blob: (hashed.append(blob.digest), orig_check(blob))[1])

        digest = layer.digest
        registry.pull("repro/app:latest")
        registry.pull("repro/app:latest")
        assert hashed.count(digest) == 1   # verified once, then memoized
        # Quarantine + restore the member: the verified set forgets it,
        # so the next pull must re-hash that blob before trusting it.
        assert registry.blobs.quarantine(digest)
        blob = registry.blobs.quarantined_blob(digest)
        assert registry.blobs.release_quarantine(digest)
        registry.blobs.put(blob)
        before = hashed.count(digest)
        registry.pull("repro/app:latest")
        assert hashed.count(digest) == before + 1
        # Re-verified: the memo holds again on the following pull.
        registry.pull("repro/app:latest")
        assert hashed.count(digest) == before + 1

    def test_memo_counters(self):
        from repro.telemetry import Telemetry, install_telemetry

        registry, _ = self._pushed_registry()
        tele = Telemetry()
        install_telemetry(tele, registry=registry)
        registry.pull("repro/app:latest")
        registry.pull("repro/app:latest")
        registry.pull("repro/app:latest")
        m = tele.metrics
        assert m.value("registry_merkle_walks_total") == 1
        assert m.value("registry_merkle_memo_hits_total") == 2
