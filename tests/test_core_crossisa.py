"""Cross-ISA study tests (§5.5 / Figure 11)."""

import statistics

import pytest

from repro.apps import get_app
from repro.apps.specs import CROSSISA_APPS
from repro.containers import ContainerEngine
from repro.core.cache.storage import decode_cache
from repro.core.crossisa import analyze_cross_isa
from repro.core.workflow import build_extended_image, system_side_adapt
from repro.perf import attach_perf
from repro.sysmodel import AARCH64_CLUSTER
from repro.toolchain.artifacts import read_artifact


@pytest.fixture(scope="module")
def x86_engine():
    return ContainerEngine(arch="amd64")


def _report(engine, app, target_isa="aarch64"):
    layout, dist_tag = build_extended_image(engine, get_app(app))
    models, sources, _ = decode_cache(layout, dist_tag)
    return layout, analyze_cross_isa(models, sources, target_isa, app=app)


class TestAnalysis:
    def test_hpl_flags_detected(self, x86_engine):
        _, report = _report(x86_engine, "hpl")
        assert report.flag_lines >= 4          # every compile + link line
        assert report.asm_guarded == 2
        assert report.asm_unguarded == 0
        assert report.can_cross

    def test_lulesh_is_clean(self, x86_engine):
        _, report = _report(x86_engine, "lulesh")
        assert report.flag_lines == 0
        assert report.can_cross
        added, deleted = report.comtainer_changes
        assert (added, deleted) == (1, 0)      # only the base-image retarget

    def test_lammps_blocked_by_unguarded_asm(self, x86_engine):
        _, report = _report(x86_engine, "lammps")
        assert report.asm_unguarded > 0
        assert not report.can_cross
        blocking = [i for i in report.issues if i.blocking]
        assert all(i.kind == "inline-asm" for i in blocking)

    def test_openmx_blocked(self, x86_engine):
        _, report = _report(x86_engine, "openmx")
        assert not report.can_cross

    def test_issue_details(self, x86_engine):
        _, report = _report(x86_engine, "hpl")
        flag_issues = [i for i in report.issues if i.kind == "flag"]
        assert any("-mavx2" in i.detail for i in flag_issues)
        assert all(not i.blocking for i in flag_issues)


class TestFigure11Shape:
    def test_comtainer_much_cheaper_than_xbuild(self, x86_engine):
        """Paper: ~5 lines with coMtainer vs ~47 with cross-compilation
        (about 10% of the effort)."""
        comtainer_totals, xbuild_totals = [], []
        for app in CROSSISA_APPS:
            _, report = _report(x86_engine, app)
            assert report.can_cross, app
            comtainer_totals.append(report.comtainer_total)
            xbuild_totals.append(report.xbuild_total)
        comtainer_avg = statistics.mean(comtainer_totals)
        xbuild_avg = statistics.mean(xbuild_totals)
        assert comtainer_avg == pytest.approx(5, abs=2.5)
        assert xbuild_avg == pytest.approx(47, rel=0.2)
        assert comtainer_avg / xbuild_avg == pytest.approx(0.10, abs=0.05)

    def test_changes_split_add_delete(self, x86_engine):
        _, report = _report(x86_engine, "comd")
        added, deleted = report.comtainer_changes
        assert added == deleted + 1            # edits + one retarget line
        x_added, x_deleted = report.xbuild_changes
        assert x_added > x_deleted


class TestCrossIsaRebuild:
    """Actually rebuild an x86 extended image on the AArch64 system."""

    def test_rebuild_fails_without_relaxation(self, x86_engine):
        layout, dist_tag = build_extended_image(x86_engine, get_app("hpl"))
        arm_engine = ContainerEngine(arch="arm64")
        recorder = attach_perf(arm_engine, AARCH64_CLUSTER)
        with pytest.raises(Exception, match="unrecognized command-line option"):
            system_side_adapt(arm_engine, layout, AARCH64_CLUSTER,
                              recorder=recorder, ref="hpl:cross")

    def test_rebuild_succeeds_with_relaxation(self, x86_engine):
        from repro.core.workflow import _run_rebuild, _run_redirect
        from repro.core.images import install_system_side_images

        layout, dist_tag = build_extended_image(x86_engine, get_app("hpl"))
        arm_engine = ContainerEngine(arch="arm64")
        attach_perf(arm_engine, AARCH64_CLUSTER)
        install_system_side_images(arm_engine, AARCH64_CLUSTER, "vendor")
        _run_rebuild(arm_engine, layout, AARCH64_CLUSTER, "vendor",
                     ["--adapter=vendor", "--relax-isa"])
        ref = _run_redirect(arm_engine, layout, AARCH64_CLUSTER, ref="hpl:crossed")
        exe = read_artifact(arm_engine.image_filesystem(ref).read_file("/app/hpl"))
        assert exe.isa == "aarch64"
        assert exe.toolchain == "phytium-kit-3"

    def test_clean_app_crosses_without_relaxation(self, x86_engine):
        """lulesh has no ISA-specific content: it crosses as-is."""
        layout, dist_tag = build_extended_image(x86_engine, get_app("lulesh"))
        arm_engine = ContainerEngine(arch="arm64")
        recorder = attach_perf(arm_engine, AARCH64_CLUSTER)
        ref = system_side_adapt(arm_engine, layout, AARCH64_CLUSTER,
                                recorder=recorder, ref="lulesh:crossed")
        exe = read_artifact(arm_engine.image_filesystem(ref).read_file("/app/lulesh"))
        assert exe.isa == "aarch64"
