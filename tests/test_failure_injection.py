"""Failure injection: the framework must fail loudly and precisely.

Corrupted caches, missing traces, foreign mounts, unbuildable graphs —
each failure mode should surface as the right error at the right stage,
never as silent misbehaviour.
"""

import json

import pytest

from repro.apps import get_app
from repro.containers import ContainerEngine, ProgramError
from repro.core.adapters import RebuildOptions, VendorAdapter
from repro.core.backend.rebuild import RebuildError, rebuild_in_container
from repro.core.cache.storage import (
    CACHE_ROOT,
    CacheError,
    decode_cache,
    decode_rebuild,
    extended_tag,
    find_dist_tag,
)
from repro.core.frontend.build import IO_MOUNT
from repro.core.images import (
    install_system_side_images,
    install_user_side_images,
    rebase_ref,
    sysenv_ref,
)
from repro.core.models.process import ProcessModels
from repro.core.workflow import build_extended_image, run_workload
from repro.oci.layout import OCILayout
from repro.perf.runtime import attach_perf
from repro.resilience import (
    RUNG_GENERIC,
    RUNG_REDIRECT_ONLY,
    ResiliencePolicy,
    adapt_with_resilience,
    install_resilience,
    uninstall_resilience,
)
from repro.sysmodel import X86_CLUSTER
from repro.vfs import InlineContent


@pytest.fixture(scope="module")
def user_engine():
    engine = ContainerEngine(arch="amd64")
    install_user_side_images(engine)
    return engine


@pytest.fixture(scope="module")
def system_engine():
    engine = ContainerEngine(arch="amd64")
    install_system_side_images(engine, X86_CLUSTER)
    return engine


@pytest.fixture()
def extended(user_engine):
    return build_extended_image(user_engine, get_app("hpccg"))


def _corrupt_cache_layout(layout, dist_tag):
    """Copy of *layout* whose +coM image has an unparseable models.json."""
    from repro.core.cache.storage import add_cache_manifest
    from repro.oci.layer import Layer, LayerEntry

    resolved = layout.resolve(extended_tag(dist_tag))
    bad_cache = Layer(comment="corrupt")
    for entry in resolved.layers[-1].entries:
        if entry.path == f"{CACHE_ROOT}/models.json":
            bad_cache.add(LayerEntry.file(entry.path, InlineContent(b"{not json")))
        else:
            bad_cache.add(entry)
    fresh = OCILayout()
    original = layout.resolve(dist_tag)
    fresh.add_manifest(original.manifest, original.config, original.layers,
                       tag=dist_tag)
    # add_cache_manifest stacks the corrupt layer as the +coM image.
    add_cache_manifest(fresh, dist_tag, bad_cache)
    return fresh, dist_tag


def _dist_only_layout(layout, dist_tag):
    """Copy of *layout* holding only the dist image — no +coM cache at all."""
    fresh = OCILayout()
    resolved = layout.resolve(dist_tag)
    fresh.add_manifest(resolved.manifest, resolved.config, resolved.layers,
                       tag=dist_tag)
    return fresh, dist_tag


class TestFrontendFailures:
    def test_build_without_mount(self, user_engine):
        from repro.core.images import env_ref

        ctr = user_engine.from_image(env_ref("amd64"), name="no-mount")
        result = user_engine.run(ctr, ["coMtainer-build"])
        assert not result.ok
        assert "no OCI layout mounted" in result.stderr
        user_engine.remove_container("no-mount")

    def test_build_with_empty_layout(self, user_engine):
        from repro.core.images import env_ref

        ctr = user_engine.from_image(
            env_ref("amd64"), name="empty-layout", mounts={IO_MOUNT: OCILayout()}
        )
        result = user_engine.run(ctr, ["coMtainer-build"])
        assert not result.ok
        assert "no application image tag" in result.stderr
        user_engine.remove_container("empty-layout")

    def test_unparseable_trace_line_fails(self):
        from repro.core.frontend.parser import FrontendError, graph_from_trace

        records = [{"argv": [], "cwd": "/", "program": "compiler-driver",
                    "meta": {}}]
        with pytest.raises(FrontendError):
            graph_from_trace(records)


class TestCacheFailures:
    def test_decode_cache_before_build(self, user_engine, extended):
        layout, dist_tag = extended
        fresh = OCILayout()
        resolved = layout.resolve(dist_tag)
        fresh.add_manifest(resolved.manifest, resolved.config, resolved.layers,
                           tag=dist_tag)
        with pytest.raises(CacheError, match="run coMtainer-build first"):
            decode_cache(fresh, dist_tag)

    def test_decode_rebuild_before_rebuild(self, extended):
        layout, dist_tag = extended
        with pytest.raises(CacheError, match="run coMtainer-rebuild first"):
            decode_rebuild(layout, dist_tag)

    def test_corrupted_models_json(self, user_engine, extended):
        fresh, dist_tag = _corrupt_cache_layout(*extended)
        with pytest.raises(json.JSONDecodeError):
            decode_cache(fresh, dist_tag)

    def test_find_dist_tag_ignores_comtainer_tags(self, extended):
        layout, dist_tag = extended
        assert find_dist_tag(layout) == dist_tag


class TestRebuildFailures:
    def test_missing_source_fails_rebuild(self, system_engine, extended):
        layout, dist_tag = extended
        models, sources, _ = decode_cache(layout, dist_tag)
        sources = dict(sources)
        sources.pop("/src/main.cc", None)   # drop a cached source
        ctr = system_engine.from_image(sysenv_ref("x86"), name="rb-fail")
        try:
            with pytest.raises(RebuildError, match="No such file|rebuild of"):
                rebuild_in_container(
                    system_engine, ctr, models, sources,
                    VendorAdapter(X86_CLUSTER), RebuildOptions(),
                )
        finally:
            system_engine.remove_container("rb-fail")

    def test_rebuild_bad_option(self, system_engine, extended):
        layout, dist_tag = extended
        ctr = system_engine.from_image(
            sysenv_ref("x86"), name="rb-opt", mounts={IO_MOUNT: layout}
        )
        result = system_engine.run(ctr, ["coMtainer-rebuild", "--frobnicate"])
        assert not result.ok
        assert "unknown option" in result.stderr
        system_engine.remove_container("rb-opt")

    def test_rebuild_bad_pgo_value(self, system_engine, extended):
        layout, dist_tag = extended
        ctr = system_engine.from_image(
            sysenv_ref("x86"), name="rb-pgo", mounts={IO_MOUNT: layout}
        )
        result = system_engine.run(ctr, ["coMtainer-rebuild", "--pgo=maybe"])
        assert not result.ok
        assert "bad --pgo value" in result.stderr
        system_engine.remove_container("rb-pgo")

    def test_pgo_use_without_profile_fails(self, system_engine, extended):
        layout, dist_tag = extended
        ctr = system_engine.from_image(
            sysenv_ref("x86"), name="rb-noprof", mounts={IO_MOUNT: layout}
        )
        result = system_engine.run(ctr, ["coMtainer-rebuild", "--pgo=use"])
        assert not result.ok
        assert "could not find profile data" in result.stderr
        system_engine.remove_container("rb-noprof")

    def test_missing_graph_output_detected(self, system_engine, extended):
        """A graph claiming an output the build never produced is caught."""
        layout, dist_tag = extended
        models, sources, _ = decode_cache(layout, dist_tag)
        # Point a BUILD file at a node whose path the build won't create.
        tampered = ProcessModels.from_json(models.to_json())
        for record in tampered.image.files.values():
            if record.node_id:
                tampered.graph.get(record.node_id).path = "/nonexistent/out"
                tampered.graph.get(record.node_id).step = None
        ctr = system_engine.from_image(sysenv_ref("x86"), name="rb-ghost")
        try:
            with pytest.raises(RebuildError, match="rebuilt artifact missing"):
                rebuild_in_container(
                    system_engine, ctr, tampered, sources,
                    VendorAdapter(X86_CLUSTER), RebuildOptions(),
                )
        finally:
            system_engine.remove_container("rb-ghost")


class TestRedirectFailures:
    def test_redirect_without_rebuild(self, system_engine, extended):
        layout, dist_tag = extended
        fresh = OCILayout()
        for tag in (dist_tag, extended_tag(dist_tag)):
            resolved = layout.resolve(tag)
            fresh.add_manifest(resolved.manifest, resolved.config,
                               resolved.layers, tag=tag)
        ctr = system_engine.from_image(
            rebase_ref("x86"), name="rd-early", mounts={IO_MOUNT: fresh}
        )
        result = system_engine.run(ctr, ["coMtainer-redirect"])
        assert not result.ok
        assert "coMtainer-rebuild first" in result.stderr
        system_engine.remove_container("rd-early")

    def test_redirect_without_mount(self, system_engine):
        ctr = system_engine.from_image(rebase_ref("x86"), name="rd-nomount")
        result = system_engine.run(ctr, ["coMtainer-redirect"])
        assert not result.ok
        assert "no OCI layout mounted" in result.stderr
        system_engine.remove_container("rd-nomount")


class TestPermissiveDegradation:
    """The same corruptions, under a permissive policy: instead of raising,
    adaptation must land on a low ladder rung with a runnable image.  The
    strict default keeps today's loud-failure behaviour bit for bit."""

    @pytest.fixture(scope="class")
    def perf_engine(self):
        engine = ContainerEngine(arch="amd64")
        install_system_side_images(engine, X86_CLUSTER)
        recorder = attach_perf(engine, X86_CLUSTER)
        return engine, recorder

    def _permissive_adapt(self, engine, recorder, layout, ref):
        policy = ResiliencePolicy.permissive()
        ctx = install_resilience(policy, engines=[engine])
        try:
            return adapt_with_resilience(
                engine, layout, X86_CLUSTER, ctx, recorder=recorder, ref=ref
            )
        finally:
            uninstall_resilience(engines=[engine])

    def test_corrupt_cache_lands_on_redirect_rung(self, perf_engine, extended):
        engine, recorder = perf_engine
        fresh, _dist_tag = _corrupt_cache_layout(*extended)
        report = self._permissive_adapt(engine, recorder, fresh,
                                        "corrupt-cache:adapted")
        assert report.rung in (RUNG_REDIRECT_ONLY, RUNG_GENERIC)
        assert any("rebuild" in reason for reason in report.reasons)
        result = run_workload(engine, report.ref, "hpccg", recorder,
                              vendor_mpirun=True)
        assert result.seconds > 0

    def test_dist_only_image_lands_on_redirect_rung(self, perf_engine, extended):
        """A plain image without any +coM cache still gets the package
        redirects — the ladder's whole point."""
        engine, recorder = perf_engine
        fresh, _dist_tag = _dist_only_layout(*extended)
        report = self._permissive_adapt(engine, recorder, fresh,
                                        "dist-only:adapted")
        assert report.rung in (RUNG_REDIRECT_ONLY, RUNG_GENERIC)
        result = run_workload(engine, report.ref, "hpccg", recorder,
                              vendor_mpirun=True)
        assert result.seconds > 0

    def test_corrupt_cache_strict_still_raises(self, perf_engine, extended):
        """Without opting into a permissive policy, nothing degrades: the
        corrupted cache surfaces as the same ProgramError as before."""
        engine, recorder = perf_engine
        fresh, _dist_tag = _corrupt_cache_layout(*extended)
        with pytest.raises(ProgramError, match="coMtainer-rebuild"):
            adapt_with_resilience(engine, fresh, X86_CLUSTER, None,
                                  recorder=recorder, ref="strict:adapted")
