"""Durable-recovery chaos suite (ISSUE 10 acceptance criteria).

Crash/restart sweeps over the service write-ahead log plus the
generation-fenced origin-failover tier:

* **Exactly-once terminal statuses** — for every WAL record boundary
  (torn and clean), a crash there followed by a restart leaves every
  admitted request with exactly one typed terminal status, and the
  status multiset matches the crash-free baseline.
* **Zero checkpointed re-execution** — a request whose dispatch record
  survived the crash resumes through its ``+coMre`` manifest and
  re-executes no rebuild node; its adapted image is byte-identical to
  the crash-free run's.
* **Multi-crash chains** — the invariant survives repeated crashes,
  including crashes during the recovered run.
* **Origin failover** — a persistent origin outage opens the registry
  breaker, promotes the freshest converged mirror behind a fence epoch,
  rejects every stale-fence write, and serves digest-identical pulls
  through the promoted origin; the demoted origin rejoins as a mirror
  and converges.

Everything runs on the seeded simulated timeline: crashes reshape
*when* records hit the log, never what the recovered service computes.
A crash can land during workload *setup* (a tenant or submit append);
the sweep models the clients' side of that contract by re-submitting
exactly the workload tail whose submit records never reached the log.
"""

import pytest

from repro.federation import FederatedRegistry, FencedWriteError
from repro.resilience import FaultInjector, FaultSpec
from repro.service import (
    STATE_CLOSED,
    STATE_OPEN,
    STATUS_COMPLETED,
    STATUS_DEGRADED,
    TERMINAL_STATUSES,
    AdaptationService,
    ServiceCrash,
)

pytestmark = [pytest.mark.recovery, pytest.mark.service]


APPS_UNDER_TEST = ("hpccg", "minimd", "lulesh")

TENANTS = ("acme", "beta")


def workload_entries(apps=APPS_UNDER_TEST):
    """Two tenants, a mixed-app arrival pattern with a late repeat."""
    return [
        ("acme", apps[0], 0.0),
        ("beta", apps[1], 1.0),
        ("acme", apps[2], 2.0),
        ("acme", apps[0], 30.0),
    ]


def standard_workload(service, apps=APPS_UNDER_TEST):
    for name in TENANTS:
        service.add_tenant(name, max_workers=4)
    for tenant, app, at in workload_entries(apps):
        service.submit(tenant, app, at=at)


def recover_and_finish(service, apps=APPS_UNDER_TEST, **restart_kw):
    """Restart a crashed service and replay the client side: tenants
    and submits whose records died with the crash are re-issued (the
    salvaged ``seq`` counter keeps the request ids identical)."""
    restarted = service.restart(**restart_kw)
    for name in TENANTS:
        if name not in restarted.tenants:
            restarted.add_tenant(name, max_workers=4)
    done = sum(1 for r in restarted.wal.records if r["rec"] == "submit")
    for tenant, app, at in workload_entries(apps)[done:]:
        restarted.submit(tenant, app, at=at)
    return restarted


def run_baseline(seed=11, apps=APPS_UNDER_TEST):
    """Crash-free reference run: statuses + adapted layer digests."""
    service = AdaptationService(workers=4, seed=seed)
    standard_workload(service, apps)
    report = service.run()
    keys = {}
    for outcome in report.outcomes:
        if outcome.status in (STATUS_COMPLETED, STATUS_DEGRADED):
            image = service.tenants[outcome.tenant].engine.image(
                f"{outcome.tenant}/{outcome.app}:adapted")
            keys[(outcome.tenant, outcome.app)] = image.layer_key()
    return report, keys


def status_multiset(report):
    return sorted((o.request_id, o.status) for o in report.outcomes)


def assert_exactly_once(service, report, baseline_report):
    """The core invariant: one terminal per admitted request, matching
    the crash-free run."""
    counts = service.wal.terminal_counts()
    assert counts, "no terminal records survived"
    assert set(counts.values()) == {1}, f"duplicated terminals: {counts}"
    assert status_multiset(report) == status_multiset(baseline_report)
    for outcome in report.outcomes:
        assert outcome.status in TERMINAL_STATUSES


def assert_byte_identity(service, report, baseline_keys):
    """Every rebuild the restarted process ran is byte-identical to the
    crash-free run (recovered outcomes never re-ran, so they have no
    post-restart image to compare)."""
    for outcome in report.outcomes:
        if outcome.recovered:
            continue
        if outcome.status not in (STATUS_COMPLETED, STATUS_DEGRADED):
            continue
        image = service.tenants[outcome.tenant].engine.image(
            f"{outcome.tenant}/{outcome.app}:adapted")
        assert image.layer_key() == baseline_keys[
            (outcome.tenant, outcome.app)], outcome.request_id


class TestCrashAtEveryRecordBoundary:
    """Sweep a crash over every WAL append, torn and clean."""

    def reference_records(self, seed=11):
        service = AdaptationService(workers=4, seed=seed, durable=True)
        standard_workload(service)
        service.run()
        return service.wal.records

    @pytest.mark.parametrize("torn", [True, False])
    def test_exactly_once_at_every_boundary(self, torn):
        records = self.reference_records()
        assert len(records) >= 10
        baseline_report, baseline_keys = run_baseline()
        for crash_after in range(1, len(records) + 1):
            service = AdaptationService(
                workers=4, seed=11, durable=True,
                crash_after_records=crash_after, crash_torn=torn)
            with pytest.raises(ServiceCrash):
                standard_workload(service)
                service.run()
            assert service.crashed or service.wal is not None
            restarted = recover_and_finish(service)
            report = restarted.run()
            assert_exactly_once(restarted, report, baseline_report)
            assert_byte_identity(restarted, report, baseline_keys)

    def test_crash_points_cover_all_phases(self):
        """The sweep really crosses mid-queue, mid-dispatch and
        mid-terminal appends (the scenario floor in the acceptance
        criteria), not just one record kind."""
        kinds = {record["rec"] for record in self.reference_records()}
        assert {"submit", "admit", "dispatch", "terminal"} <= kinds


class TestCrashAcrossApps:
    """Timepoint crashes across >= 3 app specs."""

    @pytest.mark.parametrize("apps", [
        ("hpccg", "minimd", "lulesh"),
        ("minimd", "comd", "hpccg"),
        ("lulesh", "hpccg", "minife"),
    ])
    @pytest.mark.parametrize("crash_at", [0.5, 1.5, 2.5])
    def test_timepoint_crash_restart(self, apps, crash_at):
        baseline_report, baseline_keys = run_baseline(apps=apps)
        service = AdaptationService(
            workers=4, seed=11, durable=True, crash_at=crash_at)
        standard_workload(service, apps)
        with pytest.raises(ServiceCrash):
            service.run()
        restarted = recover_and_finish(service, apps=apps)
        report = restarted.run()
        assert_exactly_once(restarted, report, baseline_report)
        assert_byte_identity(restarted, report, baseline_keys)


class TestZeroReExecution:
    """A surviving dispatch record means the resumed request re-executes
    nothing: its rebuild comes entirely from the checkpointed state."""

    def test_resumed_request_executes_zero_nodes(self):
        reference = AdaptationService(workers=4, seed=11, durable=True)
        standard_workload(reference)
        reference.run()
        dispatch_indices = [
            i for i, record in enumerate(reference.wal.records)
            if record["rec"] == "dispatch"
        ]
        assert dispatch_indices
        resumed_seen = 0
        for index in dispatch_indices:
            # Crash on the append *after* the dispatch record flushed.
            service = AdaptationService(
                workers=4, seed=11, durable=True,
                crash_after_records=index + 2, crash_torn=True)
            with pytest.raises(ServiceCrash):
                standard_workload(service)
                service.run()
            dispatched_open = {
                record["request_id"]
                for record in service.wal.records
                if record["rec"] == "dispatch"
            } - set(service.wal.terminal_counts())
            restarted = recover_and_finish(service)
            report = restarted.run()
            assert restarted.wal.terminal_counts()
            for outcome in report.outcomes:
                if outcome.request_id in dispatched_open:
                    resumed_seen += 1
                    assert outcome.executed_nodes == 0, outcome.request_id
                    assert outcome.reused_nodes > 0
        assert resumed_seen > 0

    def test_restart_never_exceeds_baseline_work(self):
        baseline_report, _ = run_baseline()
        baseline_nodes = sum(
            o.executed_nodes for o in baseline_report.outcomes)
        service = AdaptationService(
            workers=4, seed=11, durable=True, crash_at=2.5)
        standard_workload(service)
        with pytest.raises(ServiceCrash):
            service.run()
        restarted = recover_and_finish(service)
        report = restarted.run()
        restarted_nodes = sum(o.executed_nodes for o in report.outcomes)
        assert restarted_nodes <= baseline_nodes


class TestMultiCrashChains:
    """Exactly-once across chains of crashes, including crashes during
    the recovered run."""

    def test_two_crashes_then_clean_run(self):
        baseline_report, baseline_keys = run_baseline()
        service = AdaptationService(
            workers=4, seed=11, durable=True,
            crash_after_records=6, crash_torn=True)
        with pytest.raises(ServiceCrash):
            standard_workload(service)
            service.run()
        second = recover_and_finish(service, crash_at=2.5)
        with pytest.raises(ServiceCrash):
            second.run()
        third = recover_and_finish(second)
        report = third.run()
        assert third.wal.restarts == 2
        assert_exactly_once(third, report, baseline_report)
        assert_byte_identity(third, report, baseline_keys)

    def test_crash_chain_sweep(self):
        """Seeded chain sweep: crash at record k, then at record k+5 of
        the continued log, then finish clean."""
        baseline_report, _ = run_baseline()
        for first in (4, 8, 12):
            service = AdaptationService(
                workers=4, seed=11, durable=True,
                crash_after_records=first, crash_torn=(first % 2 == 0))
            with pytest.raises(ServiceCrash):
                standard_workload(service)
                service.run()
            second = recover_and_finish(
                service, crash_after_records=first + 5)
            try:
                report = second.run()
                final = second
            except ServiceCrash:
                final = recover_and_finish(second)
                report = final.run()
            assert_exactly_once(final, report, baseline_report)


class TestTornTerminalWrite:
    """A terminal record torn mid-write is the hard case: the request
    finished, but its commit point is gone — it must re-run and end
    with exactly one valid terminal."""

    def test_torn_terminal_reruns_exactly_once(self):
        reference = AdaptationService(workers=4, seed=11, durable=True)
        standard_workload(reference)
        reference.run()
        terminal_indices = [
            i for i, record in enumerate(reference.wal.records)
            if record["rec"] == "terminal"
        ]
        assert terminal_indices
        baseline_report, baseline_keys = run_baseline()
        for index in terminal_indices:
            service = AdaptationService(
                workers=4, seed=11, durable=True,
                crash_after_records=index + 1, crash_torn=True)
            with pytest.raises(ServiceCrash):
                standard_workload(service)
                service.run()
            restarted = recover_and_finish(service)
            # The torn terminal line was dropped by salvage.
            assert restarted.wal.torn_records_dropped >= 1
            report = restarted.run()
            assert_exactly_once(restarted, report, baseline_report)
            assert_byte_identity(restarted, report, baseline_keys)


def make_image(seed=b"payload-", reps=600, path="/app/bin"):
    from repro.oci.blobs import Blob
    from repro.oci.image import ImageConfig, Manifest
    from repro.oci.layer import Layer, LayerEntry
    from repro.vfs import InlineContent

    layer = Layer().add(
        LayerEntry.file(path, InlineContent(seed * reps), mode=0o755)
    )
    config = ImageConfig(
        architecture="amd64", env=["PATH=/usr/bin"], entrypoint=[path]
    )
    config.diff_ids.append(layer.digest)
    manifest = Manifest(
        config=config.descriptor(),
        layers=[Blob.from_layer(layer).descriptor()],
    )
    return manifest, config, layer


def seeded_federation(apps=("hpccg",), mirrors=("edge-a", "edge-b")):
    """Origin + converged mirrors holding one image per app."""
    fed = FederatedRegistry()
    for app in apps:
        manifest, config, layer = make_image(seed=app.encode() + b"-")
        fed.push(f"{app}:dist", manifest, config, [layer])
    for name in mirrors:
        fed.add_mirror(name)
        fed.sync_mirror(name)
    return fed


class TestOriginFailover:
    """Acceptance: digest-identical pulls through the promoted origin,
    zero accepted stale-fence writes."""

    def test_failover_sweep(self):
        for apps in (("hpccg",), ("minimd", "hpccg"), ("lulesh",)):
            fed = seeded_federation(apps=apps)
            before = {
                app: fed.origin.manifest_digest(f"{app}:dist")
                for app in apps
            }
            stale = fed.fenced_writer()
            promotion = fed.fail_over()
            assert promotion.elected == "edge-a"   # deterministic election
            assert promotion.fence_token == 1
            # Zero accepted stale-fence writes: the demoted writer is
            # rejected, counted, and changes nothing.
            generation = fed.generation
            with pytest.raises(FencedWriteError):
                stale.tag_manifest(f"{apps[0]}:stale", before[apps[0]])
            assert fed.fenced_rejections == 1
            assert fed.generation == generation
            for app in apps:
                assert f"{app}:stale" not in fed.origin.manifest_map()
                # Promoted-origin pulls digest-identical to pre-failure.
                assert fed.origin.manifest_digest(
                    f"{app}:dist") == before[app]
                assert fed.pull(f"{app}:dist") is not None
            report = fed.rejoin_demoted()
            assert report is not None
            assert not fed.audit().get("demoted-origin-0")

    def test_fresh_writer_outlives_fence(self):
        fed = seeded_federation()
        fed.fail_over()
        writer = fed.fenced_writer()
        generation = fed.generation
        digest = fed.origin.manifest_digest("hpccg:dist")
        writer.tag_manifest("hpccg:blessed", digest)
        assert fed.generation == generation + 1
        assert not writer.stale


class TestServiceAutoFailover:
    """The registry breaker's open transition triggers mirror promotion;
    half-open probes route through the promoted origin."""

    def build(self, injector=None):
        fed = seeded_federation(apps=("hpccg",))
        if injector is not None:
            fed.origin.fault_injector = injector
        service = AdaptationService(
            workers=4, seed=11, durable=True,
            federation=fed, auto_failover=True,
            breaker_threshold=2, injector=injector)
        service.add_tenant("acme", max_workers=4)
        return service, fed

    def test_breaker_open_promotes_mirror(self):
        injector = FaultInjector(seed=3, specs=[
            FaultSpec(site="registry.push", kind="persistent", match="")])
        service, fed = self.build(injector)
        for i in range(4):
            service.submit("acme", "hpccg", at=5.0 * i)
        # Past the 180s reset so the breaker half-opens and probes
        # through the promoted origin.
        service.submit("acme", "hpccg", at=250.0)
        report = service.run()
        assert fed.failovers == 1
        assert report.failovers == 1
        assert service.registry is fed.origin
        assert service.registry.fault_injector is None
        transitions = service.breakers["registry"].transitions
        assert any(to == STATE_OPEN for _, _, to in transitions)
        assert service.breakers["registry"].state == STATE_CLOSED
        # The late request completed through the promoted origin.
        late = [o for o in report.outcomes if o.submitted_at >= 250.0]
        assert late and late[0].status == STATUS_COMPLETED
        # And the failover is itself a durable WAL record.
        assert b'"failover"' in service.wal.flushed_bytes
