"""Unit tests for the resilience subsystem building blocks.

Deterministic retry backoff, bounded fault bursts, the typed registry
error hierarchy, CacheError diagnostics, and journal persistence
(including layout save/load round trips and audit cleanliness).
"""

import random

import pytest

from repro.core.cache.storage import CacheError, decode_cache, find_dist_tag
from repro.oci.layout import OCILayout
from repro.oci.registry import (
    ImageNotFound,
    ImageRegistry,
    RegistryError,
    TransientTransferError,
)
from repro.resilience import (
    FaultInjector,
    FaultSpec,
    PersistentFault,
    RebuildJournal,
    RetryPolicy,
    RetryStats,
    SimulatedClock,
    TransientFault,
    has_journal,
    is_transient,
    retry_call,
)
from repro.vfs import InlineContent


class TestRetry:
    def test_transient_retried_then_succeeds(self):
        clock = SimulatedClock()
        stats = RetryStats()
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientFault("blob.read", "sha256:x")
            return "ok"

        result = retry_call(
            flaky, policy=RetryPolicy(), clock=clock, stats=stats, site="t"
        )
        assert result == "ok"
        assert len(attempts) == 3
        assert stats.retries == {"t": 2}
        assert clock.now > 0.0           # backoff charged to simulated time
        assert len(clock.sleeps) == 2

    def test_fatal_error_not_retried(self):
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("real bug")

        with pytest.raises(ValueError):
            retry_call(broken, policy=RetryPolicy(), clock=SimulatedClock())
        assert len(calls) == 1

    def test_attempt_exhaustion_raises_last_transient(self):
        stats = RetryStats()

        def always():
            raise TransientFault("registry.pull", "r")

        with pytest.raises(TransientFault):
            retry_call(
                always, policy=RetryPolicy(max_attempts=3),
                clock=SimulatedClock(), stats=stats, site="x",
            )
        assert stats.exhausted == ["x"]
        assert stats.retries == {"x": 2}

    def test_budget_exhaustion_stops_early(self):
        clock = SimulatedClock()

        def always():
            raise TransientFault("registry.pull", "r")

        with pytest.raises(TransientFault):
            retry_call(
                always,
                policy=RetryPolicy(max_attempts=50, base_delay=10.0,
                                   max_delay=10.0, jitter=0.0,
                                   budget_seconds=25.0),
                clock=clock,
            )
        assert clock.now <= 25.0

    def test_backoff_deterministic_for_same_rng_seed(self):
        delays_a = [
            RetryPolicy().delay_for(i, random.Random("s")) for i in range(4)
        ]
        delays_b = [
            RetryPolicy().delay_for(i, random.Random("s")) for i in range(4)
        ]
        assert delays_a == delays_b
        # Exponential shape survives jitter (jitter is +/-25%).
        assert delays_a[2] > delays_a[0]

    def test_is_transient_is_typed_not_string_matched(self):
        assert is_transient(TransientFault("s", "k"))
        assert is_transient(TransientTransferError("transient push hiccup"))
        assert not is_transient(PersistentFault("s", "k"))
        assert not is_transient(RuntimeError("transient"))  # word means nothing


class TestFaultInjector:
    def test_deterministic_replay(self):
        def sweep(seed):
            inj = FaultInjector(seed=seed, rate=0.5)
            outcomes = []
            for i in range(50):
                try:
                    inj.arm("blob.read", f"sha256:{i % 7}")
                    outcomes.append("ok")
                except TransientFault:
                    outcomes.append("fault")
            return outcomes

        assert sweep(3) == sweep(3)
        assert sweep(3) != sweep(4)

    def test_transient_bursts_are_bounded(self):
        inj = FaultInjector(seed=1, rate=1.0, sites={"blob.read"}, max_burst=2)
        consecutive = 0
        for _ in range(10):
            try:
                inj.arm("blob.read", "sha256:abc")
                break
            except TransientFault:
                consecutive += 1
        assert 1 <= consecutive <= 2
        inj.arm("blob.read", "sha256:abc")   # immune from now on

    def test_transfer_sites_never_persistent(self):
        inj = FaultInjector(seed=0, rate=1.0, persistent_rate=1.0)
        kinds = set()
        for i in range(40):
            try:
                inj.arm("registry.push", f"ref{i}")
            except TransientFault:
                kinds.add("transient")
            except PersistentFault:
                kinds.add("persistent")
        assert kinds == {"transient"}

    def test_exec_sites_can_go_persistent_and_stay(self):
        inj = FaultInjector(seed=0, rate=1.0, persistent_rate=1.0,
                            sites={"rebuild.node"})
        with pytest.raises(PersistentFault):
            inj.arm("rebuild.node", "n1")
        with pytest.raises(PersistentFault):
            inj.arm("rebuild.node", "n1")   # forever

    def test_scripted_spec_targets_one_key(self):
        inj = FaultInjector(
            specs=[FaultSpec(site="rebuild.node", kind="persistent", match="n7")]
        )
        inj.arm("rebuild.node", "n1")
        with pytest.raises(PersistentFault):
            inj.arm("rebuild.node", "n7")

    def test_disabled_injector_never_fires(self):
        inj = FaultInjector(seed=0, rate=1.0)
        inj.enabled = False
        for i in range(20):
            inj.arm("blob.read", f"k{i}")
        assert inj.fired() == []


class TestRegistryErrors:
    def test_pull_missing_raises_typed_error(self):
        registry = ImageRegistry()
        with pytest.raises(ImageNotFound) as excinfo:
            registry.pull("repro/nothing:latest")
        # The hierarchy: usable as RegistryError AND as legacy KeyError.
        assert isinstance(excinfo.value, RegistryError)
        assert isinstance(excinfo.value, KeyError)
        assert "repro/nothing:latest" in str(excinfo.value)

    def test_transient_transfer_error_is_transient(self):
        assert TransientTransferError.transient is True
        assert not getattr(ImageNotFound("x"), "transient", False)


class TestCacheErrorDiagnostics:
    def test_find_dist_tag_carries_stage(self):
        with pytest.raises(CacheError) as excinfo:
            find_dist_tag(OCILayout())
        assert excinfo.value.stage == "find-dist-tag"

    def test_decode_cache_carries_stage_and_tag(self):
        layout = OCILayout()
        manifest, config, layer = _tiny_image("/bin/app", b"x")
        layout.add_manifest(manifest, config, [layer], tag="app.dist")
        with pytest.raises(CacheError) as excinfo:
            decode_cache(layout, "app.dist")
        assert excinfo.value.stage == "decode-cache"
        assert excinfo.value.tag == "app.dist+coM"


def _tiny_image(path: str, data: bytes):
    from repro.oci.blobs import Blob
    from repro.oci.image import ImageConfig, Manifest
    from repro.oci.layer import Layer, LayerEntry

    layer = Layer().add(LayerEntry.file(path, InlineContent(data)))
    config = ImageConfig(architecture="amd64", diff_ids=[layer.digest])
    manifest = Manifest(
        config=config.descriptor(), layers=[Blob.from_layer(layer).descriptor()]
    )
    return manifest, config, layer


def _journal_layout():
    layout = OCILayout()
    manifest, config, layer = _tiny_image("/app/x", b"bin")
    layout.add_manifest(manifest, config, [layer], tag="app.dist")
    return layout


class TestRebuildJournal:
    def test_record_flush_reload_roundtrip(self):
        layout = _journal_layout()
        journal = RebuildJournal(layout, "app.dist")
        journal.record("n1", "digest-a", "/src/main.o", InlineContent(b"obj"), 0o755)
        journal.flush()
        assert has_journal(layout, "app.dist")

        reloaded = RebuildJournal(layout, "app.dist")
        assert reloaded.node_ids() == ["n1"]
        assert reloaded.digest_of("n1") == "digest-a"
        content, mode = reloaded.output_for("n1")
        assert content.read() == b"obj"
        assert mode == 0o755

    def test_journal_invisible_to_tags_and_dist_lookup(self):
        layout = _journal_layout()
        journal = RebuildJournal(layout, "app.dist")
        journal.record("n1", "d", "/a", InlineContent(b"x"), 0o644)
        journal.flush()
        assert layout.tags() == ["app.dist"]
        assert find_dist_tag(layout) == "app.dist"

    def test_journal_survives_save_load(self, tmp_path):
        layout = _journal_layout()
        journal = RebuildJournal(layout, "app.dist")
        journal.record("n1", "d1", "/src/a.o", InlineContent(b"aa"), 0o644)
        journal.flush()
        layout.save(str(tmp_path / "oci"))

        loaded = OCILayout.load(str(tmp_path / "oci"))
        assert has_journal(loaded, "app.dist")
        reloaded = RebuildJournal(loaded, "app.dist")
        assert reloaded.digest_of("n1") == "d1"
        content, _mode = reloaded.output_for("n1")
        assert content.read() == b"aa"

    def test_flush_replaces_previous_blob_no_orphans(self):
        layout = _journal_layout()
        journal = RebuildJournal(layout, "app.dist")
        for i in range(5):
            journal.record(f"n{i}", f"d{i}", f"/o{i}", InlineContent(b"x"), 0o644)
            journal.flush()
        assert layout.audit() == []
        journal.clear()
        assert not has_journal(layout, "app.dist")
        assert layout.audit() == []

    def test_clear_when_absent_is_noop(self):
        layout = _journal_layout()
        RebuildJournal(layout, "app.dist").clear()
        assert layout.audit() == []


class TestLayoutInvariants:
    def test_gc_sweeps_replaced_tag_blobs(self):
        layout = _journal_layout()
        # Replace the tag with a different image: old blobs become orphans.
        manifest, config, layer = _tiny_image("/app/y", b"other")
        layout.add_manifest(manifest, config, [layer], tag="app.dist")
        assert any("orphaned" in p for p in layout.audit())
        removed = layout.gc()
        assert removed > 0
        assert layout.audit() == []
