"""Tests for layer application, flattening, and filesystem diffs."""

from hypothesis import given
from hypothesis import strategies as st

from repro.oci import Layer, LayerEntry, apply_layer, diff_filesystems, flatten_layers
from repro.oci.diff import layer_from_tree
from repro.vfs import InlineContent, VirtualFilesystem


def _fs_with(files):
    fs = VirtualFilesystem()
    for path, data in files.items():
        fs.write_file(path, data, create_parents=True)
    return fs


class TestApply:
    def test_apply_files_and_dirs(self):
        layer = Layer()
        layer.add(LayerEntry.directory("/opt/app"))
        layer.add(LayerEntry.file("/opt/app/bin", InlineContent(b"b"), mode=0o755))
        fs = apply_layer(VirtualFilesystem(), layer)
        assert fs.read_file("/opt/app/bin") == b"b"
        assert fs.get_node("/opt/app/bin").mode == 0o755

    def test_whiteout_removes(self):
        fs = _fs_with({"/etc/conf": "x"})
        apply_layer(fs, Layer().add(LayerEntry.whiteout("/etc/conf")))
        assert not fs.exists("/etc/conf")

    def test_whiteout_removes_subtree(self):
        fs = _fs_with({"/d/a": "1", "/d/b/c": "2"})
        apply_layer(fs, Layer().add(LayerEntry.whiteout("/d")))
        assert not fs.exists("/d")

    def test_whiteout_missing_is_noop(self):
        fs = VirtualFilesystem()
        apply_layer(fs, Layer().add(LayerEntry.whiteout("/ghost")))

    def test_opaque_clears_directory(self):
        fs = _fs_with({"/cache/a": "1", "/cache/b": "2"})
        apply_layer(fs, Layer().add(LayerEntry.opaque("/cache")))
        assert fs.is_dir("/cache")
        assert fs.listdir("/cache") == []

    def test_file_replaces_directory(self):
        fs = _fs_with({"/thing/inner": "x"})
        apply_layer(fs, Layer().add(LayerEntry.file("/thing", InlineContent(b"now-a-file"))))
        assert fs.read_file("/thing") == b"now-a-file"

    def test_symlink_replaces_file(self):
        fs = _fs_with({"/f": "x", "/target": "t"})
        apply_layer(fs, Layer().add(LayerEntry.symlink("/f", "/target")))
        assert fs.readlink("/f") == "/target"

    def test_later_layer_shadows_earlier(self):
        l1 = Layer().add(LayerEntry.file("/f", InlineContent(b"one")))
        l2 = Layer().add(LayerEntry.file("/f", InlineContent(b"two")))
        fs = flatten_layers([l1, l2])
        assert fs.read_file("/f") == b"two"


class TestDiff:
    def test_identical_is_empty(self):
        a = _fs_with({"/x": "1"})
        b = a.clone()
        assert len(diff_filesystems(a, b)) == 0

    def test_added_file(self):
        a = _fs_with({"/x": "1"})
        b = a.clone()
        b.write_file("/y", "2")
        layer = diff_filesystems(a, b)
        assert layer.paths() == ["/y"]

    def test_changed_content(self):
        a = _fs_with({"/x": "1"})
        b = a.clone()
        b.write_file("/x", "CHANGED")
        layer = diff_filesystems(a, b)
        assert layer.paths() == ["/x"]
        assert layer.entries[0].content.read() == b"CHANGED"

    def test_changed_mode_only(self):
        a = _fs_with({"/x": "1"})
        b = a.clone()
        b.chmod("/x", 0o755)
        layer = diff_filesystems(a, b)
        assert layer.paths() == ["/x"]

    def test_removed_file_becomes_whiteout(self):
        a = _fs_with({"/x": "1", "/keep": "k"})
        b = a.clone()
        b.remove("/x")
        layer = diff_filesystems(a, b)
        assert layer.entries[0].kind == "whiteout"
        assert layer.entries[0].path == "/x"

    def test_removed_tree_single_whiteout(self):
        a = _fs_with({"/d/a": "1", "/d/sub/b": "2"})
        b = a.clone()
        b.remove("/d", recursive=True)
        layer = diff_filesystems(a, b)
        whiteouts = [e for e in layer if e.kind == "whiteout"]
        assert [e.path for e in whiteouts] == ["/d"]

    def test_type_change_file_to_symlink(self):
        a = _fs_with({"/x": "1"})
        b = a.clone()
        b.remove("/x")
        b.symlink("/elsewhere", "/x")
        layer = diff_filesystems(a, b)
        kinds = {e.path: e.kind for e in layer}
        assert kinds["/x"] == "symlink"

    def test_layer_from_tree_captures_everything(self):
        fs = _fs_with({"/a/f": "1", "/b/g": "2"})
        fs.symlink("/a/f", "/b/l")
        layer = layer_from_tree(fs)
        assert set(layer.paths()) == {"/a", "/a/f", "/b", "/b/g", "/b/l"}


_paths = st.lists(
    st.text(alphabet="abcd", min_size=1, max_size=3).map(lambda s: "/" + s),
    min_size=0,
    max_size=6,
    unique=True,
)


class TestDiffApplyProperty:
    @given(_paths, _paths, st.data())
    def test_apply_diff_reconstructs(self, base_paths, new_paths, data):
        """fundamental invariant: apply(base, diff(base, new)) == new."""
        base = VirtualFilesystem()
        for p in base_paths:
            base.write_file(p, data.draw(st.binary(max_size=8)), create_parents=True)
        new = VirtualFilesystem()
        for p in new_paths:
            new.write_file(p, data.draw(st.binary(max_size=8)), create_parents=True)

        layer = diff_filesystems(base, new)
        rebuilt = apply_layer(base.clone(), layer)

        assert dict(
            (p, n.content.digest) for p, n in rebuilt.iter_files()
        ) == dict((p, n.content.digest) for p, n in new.iter_files())
        # And the diff of the reconstruction against the target is empty.
        assert len(diff_filesystems(rebuilt, new)) == 0
