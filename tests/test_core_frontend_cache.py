"""Frontend analysis + cache layer tests (incl. Table 3 cache sizes)."""

import pytest

from repro.apps import get_app
from repro.apps.specs import MIB, TABLE3_APPS
from repro.containers import ContainerEngine, TRACE_PATH
from repro.containers.hijack import read_trace
from repro.core.cache.storage import (
    CacheError,
    decode_cache,
    extended_tag,
    find_dist_tag,
    rebuilt_tag,
)
from repro.core.frontend.parser import graph_from_trace
from repro.core.models import FileOrigin
from repro.core.workflow import build_extended_image
from repro.oci import mediatypes
from repro.oci.layout import OCILayout


@pytest.fixture(scope="module")
def engine():
    return ContainerEngine(arch="amd64")


@pytest.fixture(scope="module")
def lulesh_layout(engine):
    layout, dist_tag = build_extended_image(engine, get_app("lulesh"))
    return layout, dist_tag


class TestTraceParsing:
    def test_records_from_simple_trace(self):
        records = [
            {"argv": ["gcc", "-O2", "-c", "a.c"], "cwd": "/src",
             "program": "compiler-driver", "meta": {"toolchain": "gnu-12", "role": "cc"}},
            {"argv": ["gcc", "-O2", "-c", "b.c"], "cwd": "/src",
             "program": "compiler-driver", "meta": {"toolchain": "gnu-12", "role": "cc"}},
            {"argv": ["ar", "rcs", "lib.a", "b.o"], "cwd": "/src",
             "program": "ar", "meta": {}},
            {"argv": ["gcc", "a.o", "lib.a", "-o", "/app/demo", "-lm"], "cwd": "/src",
             "program": "compiler-driver", "meta": {"toolchain": "gnu-12", "role": "cc"}},
        ]
        graph = graph_from_trace(records)
        assert {n.id for n in graph.sinks()} == {"/app/demo"}
        exe = graph.get("/app/demo")
        assert set(exe.deps) == {"/src/a.o", "/src/lib.a"}
        assert exe.metadata["libs"] == ["m"]
        archive = graph.get("/src/lib.a")
        assert archive.deps == ["/src/b.o"]
        assert graph.get("/src/a.o").deps == ["/src/a.c"]

    def test_mpi_wrapper_recorded(self):
        records = [
            {"argv": ["mpicc", "x.o", "-o", "/app/x"], "cwd": "/",
             "program": "compiler-driver",
             "meta": {"toolchain": "gnu-12", "role": "cc", "mpi_wrapper": True}},
        ]
        graph = graph_from_trace(records)
        assert "mpi" in graph.get("/app/x").metadata["libs"]

    def test_preprocess_and_version_ignored(self):
        records = [
            {"argv": ["gcc", "--version"], "cwd": "/", "program": "compiler-driver",
             "meta": {}},
            {"argv": ["gcc", "-E", "x.c"], "cwd": "/", "program": "compiler-driver",
             "meta": {}},
        ]
        assert len(graph_from_trace(records)) == 0

    def test_strip_creates_no_nodes(self):
        records = [
            {"argv": ["strip", "/app/demo"], "cwd": "/", "program": "strip", "meta": {}},
        ]
        assert len(graph_from_trace(records)) == 0


class TestHijackDuringBuild:
    def test_env_image_records_trace(self, engine):
        """Building on the Env image leaves a trace in the build container."""
        from repro.core.images import env_ref, install_user_side_images

        install_user_side_images(engine)
        container = engine.from_image(env_ref("amd64"), name="hj")
        container.fs.write_file("/w/x.c", "int x;\n" * 20, create_parents=True)
        engine.run(container, ["sh", "-c", "cd /w && gcc -O2 -c x.c"]).check()
        records = read_trace(container.fs)
        assert len(records) == 1
        assert records[0]["argv"][0] == "gcc"
        assert records[0]["cwd"] == "/w"
        assert records[0]["meta"]["toolchain"] == "gnu-12"
        engine.remove_container("hj")


class TestExtendedImage:
    def test_extended_manifest_added(self, lulesh_layout):
        layout, dist_tag = lulesh_layout
        assert layout.has_tag(dist_tag)
        assert layout.has_tag(extended_tag(dist_tag))

    def test_extended_annotations(self, lulesh_layout):
        layout, dist_tag = lulesh_layout
        desc = layout.manifest_descriptor(extended_tag(dist_tag))
        # manifest annotations live inside the blob, index entry has ref name
        resolved = layout.resolve(extended_tag(dist_tag))
        assert resolved.manifest.annotations[mediatypes.ANNOTATION_COMTAINER_KIND] == "extended"

    def test_extended_image_is_superset(self, lulesh_layout):
        """The cache layer adds; it never changes the original image."""
        layout, dist_tag = lulesh_layout
        original = layout.resolve(dist_tag)
        extended = layout.resolve(extended_tag(dist_tag))
        assert extended.layers[:-1] == original.layers
        assert extended.manifest.layers[:-1] == original.manifest.layers

    def test_decode_cache_roundtrip(self, lulesh_layout):
        layout, dist_tag = lulesh_layout
        models, sources, resolved = decode_cache(layout, dist_tag)
        assert models.graph.validate() is None
        assert len(sources) == len(models.graph.source_paths())
        assert "/src/main.cc" in sources

    def test_graph_shape_matches_app(self, lulesh_layout):
        layout, dist_tag = lulesh_layout
        models, _, _ = decode_cache(layout, dist_tag)
        sinks = models.graph.sinks()
        assert [n.path for n in sinks] == ["/app/lulesh"]
        spec = get_app("lulesh")
        assert len(models.graph.nodes("object")) == len(
            [p for p in models.graph.source_paths()]
        )

    def test_image_model_classifies_binary_as_build(self, lulesh_layout):
        layout, dist_tag = lulesh_layout
        models, _, _ = decode_cache(layout, dist_tag)
        record = models.image.files["/app/lulesh"]
        assert record.origin == FileOrigin.BUILD
        assert record.node_id == "/app/lulesh"

    def test_image_model_classifies_runtime_packages(self, lulesh_layout):
        layout, dist_tag = lulesh_layout
        models, _, _ = decode_cache(layout, dist_tag)
        assert "libopenmpi3" in models.image.packages
        lib = "/usr/lib/x86_64-linux-gnu/libmpi.so.40"
        assert models.image.files[lib].origin == FileOrigin.PACKAGE

    def test_image_model_classifies_data(self, lulesh_layout):
        layout, dist_tag = lulesh_layout
        models, _, _ = decode_cache(layout, dist_tag)
        data = [r.path for r in models.image.by_origin(FileOrigin.DATA)]
        assert any(p.startswith("/app/share") for p in data)

    def test_base_files_classified(self, lulesh_layout):
        layout, dist_tag = lulesh_layout
        models, _, _ = decode_cache(layout, dist_tag)
        assert models.image.files["/bin/bash"].origin == FileOrigin.BASE

    def test_find_dist_tag(self, lulesh_layout):
        layout, dist_tag = lulesh_layout
        assert find_dist_tag(layout) == dist_tag

    def test_decode_missing_cache_raises(self):
        layout = OCILayout()
        with pytest.raises(CacheError):
            decode_cache(layout, "ghost")


class TestCacheSizeTable3:
    @pytest.mark.parametrize("app", ["lulesh", "hpl", "comd", "lammps", "openmx"])
    def test_cache_layer_size(self, engine, app):
        """Table 3: cache layer sizes (0.59 - 23.99 MiB)."""
        layout, dist_tag = build_extended_image(engine, get_app(app))
        extended = layout.resolve(extended_tag(dist_tag))
        cache_layer = extended.layers[-1]
        target = get_app(app).cache_size * MIB
        assert cache_layer.payload_size == pytest.approx(target, rel=0.03), app

    def test_cache_much_smaller_than_image(self, engine):
        """Paper: cache is <= ~7-11% of the original image size."""
        for app in ("lulesh", "lammps"):
            layout, dist_tag = build_extended_image(engine, get_app(app))
            extended = layout.resolve(extended_tag(dist_tag))
            image_size = sum(l.payload_size for l in extended.layers[:-1])
            cache_size = extended.layers[-1].payload_size
            assert cache_size < 0.12 * image_size
