"""Tests: the analytic model reproduces the paper's evaluation shape."""

import math
import statistics

import pytest

from repro.perf import (
    SCHEMES,
    WORKLOADS,
    get_workload,
    predict_time,
    scheme_ratio,
    scheme_traits,
)
from repro.perf.calibration import calibrate, original_comm_penalty
from repro.perf.provenance import BinaryTraits, profile_id, profile_match
from repro.sysmodel import AARCH64_CLUSTER, SYSTEMS, X86_CLUSTER


def _t(workload, system, scheme, nodes=16):
    traits = scheme_traits(workload, system, scheme)
    return predict_time(workload, system, traits, nodes=nodes)


class TestWorkloadTable:
    def test_all_18_workloads_present(self):
        assert len(WORKLOADS) == 18

    def test_table2_loc(self):
        assert get_workload("hpl").loc == 37556
        assert get_workload("lammps.eam").loc == 2273423
        assert get_workload("openmx.pt13").loc == 287381
        assert get_workload("hpccg").loc == 1563

    def test_fractions_sane(self):
        for profile in WORKLOADS.values():
            assert 0 <= profile.serial_fraction <= 1
            assert profile.lib_fraction + profile.compiler_fraction <= 1

    def test_native_time_averages_match_paper(self):
        """§5.2: native averages 21.35 s (x86-64) and 67.0 s (AArch64)."""
        x86 = statistics.mean(p.native_time["x86"] for p in WORKLOADS.values())
        arm = statistics.mean(p.native_time["arm"] for p in WORKLOADS.values())
        assert x86 == pytest.approx(21.35, rel=0.02)
        assert arm == pytest.approx(67.0, rel=0.02)

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            get_workload("fluidsim")


class TestCalibration:
    @pytest.mark.parametrize("system_key", ["x86", "arm"])
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_forward_model_hits_figure9_target(self, workload, system_key):
        """original/native at 16 nodes == the calibration target ratio."""
        system = SYSTEMS[system_key]
        ratio = _t(workload, system, "original") / _t(workload, system, "native")
        target = get_workload(workload).target_ratio[system_key]
        assert ratio == pytest.approx(target, rel=0.01)

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_no_degenerate_calibration(self, workload):
        for system_key in ("x86", "arm"):
            cal = calibrate(workload, system_key)
            assert cal.compute_ratio > 0.5
            assert cal.native_compiled_speedup > 0.25
            assert cal.vector_gain > 0.2

    def test_comm_penalty_larger_on_arm(self):
        """The AArch64 network needs the MPI plugin far more (§5.2 lulesh)."""
        assert original_comm_penalty(AARCH64_CLUSTER) > 2 * original_comm_penalty(
            X86_CLUSTER
        )


class TestFigure9Shape:
    def test_native_beats_original_everywhere_but_hpccg(self):
        for system_key, system in SYSTEMS.items():
            for name in WORKLOADS:
                orig, native = _t(name, system, "original"), _t(name, system, "native")
                if name == "hpccg":
                    assert native > orig, "hpccg degrades under native toolchain"
                else:
                    assert native < orig, (name, system_key)

    def test_adapted_comparable_to_native(self):
        """§5.2: adapted avg 22.0 s vs native 21.35 s (x86); 69.7 vs 67.0 (arm)."""
        for system, native_avg, adapted_avg in [
            (X86_CLUSTER, 21.35, 22.0),
            (AARCH64_CLUSTER, 67.0, 69.7),
        ]:
            native = statistics.mean(_t(n, system, "native") for n in WORKLOADS)
            adapted = statistics.mean(_t(n, system, "adapted") for n in WORKLOADS)
            assert native == pytest.approx(native_avg, rel=0.02)
            # adapted is slightly slower than native but within a few percent
            assert adapted == pytest.approx(adapted_avg, rel=0.04)
            assert native < adapted < native * 1.08

    def test_average_improvements_match_paper(self):
        """§5.2: avg improvement 96.3% (x86) / 66.5% (arm)."""
        for system, expected in [(X86_CLUSTER, 0.963), (AARCH64_CLUSTER, 0.665)]:
            improvements = [
                _t(n, system, "original") / _t(n, system, "native") - 1.0
                for n in WORKLOADS
            ]
            assert statistics.mean(improvements) == pytest.approx(expected, abs=0.12)

    def test_lammps_max_improvement_on_x86(self):
        """§5.2: lammps shows the max x86 improvement (+253%)."""
        best = max(
            (n for n in WORKLOADS),
            key=lambda n: _t(n, X86_CLUSTER, "original") / _t(n, X86_CLUSTER, "native"),
        )
        assert best.startswith("lammps")
        ratio = _t(best, X86_CLUSTER, "original") / _t(best, X86_CLUSTER, "native")
        assert ratio == pytest.approx(3.53, rel=0.02)

    def test_lulesh_arm_improvement_dominated_by_mpi(self):
        """§5.2: lulesh +231% on AArch64 due to the MPI network plugin."""
        ratio = _t("lulesh", AARCH64_CLUSTER, "original") / _t(
            "lulesh", AARCH64_CLUSTER, "native"
        )
        assert ratio == pytest.approx(3.31, rel=0.02)
        # With the HSN plugin but no recompilation (libo), most of the gap closes.
        libo = scheme_traits("lulesh", AARCH64_CLUSTER, "libo")
        libo_ratio = predict_time("lulesh", AARCH64_CLUSTER, libo) / _t(
            "lulesh", AARCH64_CLUSTER, "native"
        )
        assert libo_ratio < ratio
        assert (ratio - libo_ratio) > 0.4 * (ratio - 1.0)

    def test_lulesh_x86_improvement_small_at_scale(self):
        """§5.2: lulesh only +15.6% on x86 at 16 nodes (comm dominates)."""
        ratio = _t("lulesh", X86_CLUSTER, "original") / _t("lulesh", X86_CLUSTER, "native")
        assert ratio == pytest.approx(1.156, rel=0.02)


class TestFigure3Motivation:
    """Single-node LULESH: the motivation experiment."""

    def test_x86_libo_cxxo_recover_half(self):
        orig = _t("lulesh", X86_CLUSTER, "original", nodes=1)
        cxxo = _t("lulesh", X86_CLUSTER, "cxxo", nodes=1)
        assert 1.0 - cxxo / orig == pytest.approx(0.50, abs=0.03)

    def test_arm_libo_cxxo_recover_72_percent(self):
        orig = _t("lulesh", AARCH64_CLUSTER, "original", nodes=1)
        cxxo = _t("lulesh", AARCH64_CLUSTER, "cxxo", nodes=1)
        assert 1.0 - cxxo / orig == pytest.approx(0.72, abs=0.03)

    def test_lto_pgo_incremental_gains(self):
        """Fig 3: LTO +17.5% and PGO +9.6% on top of the adapted build."""
        cxxo = _t("lulesh", X86_CLUSTER, "cxxo", nodes=1)
        lto = _t("lulesh", X86_CLUSTER, "lto", nodes=1)
        pgo = _t("lulesh", X86_CLUSTER, "pgo", nodes=1)
        assert 1.0 - lto / cxxo == pytest.approx(0.175, abs=0.02)
        assert 1.0 - pgo / lto == pytest.approx(0.096, abs=0.02)

    def test_scheme_order_monotone(self):
        times = [
            _t("lulesh", X86_CLUSTER, s, nodes=1)
            for s in ("original", "libo", "cxxo", "lto", "pgo")
        ]
        assert times == sorted(times, reverse=True)


class TestFigure10Optimization:
    def test_pt13_best_on_x86(self):
        """Fig 10a: openmx.pt13 improves ~30.4% over native on x86."""
        reduction = 1.0 - _t("openmx.pt13", X86_CLUSTER, "optimized") / _t(
            "openmx.pt13", X86_CLUSTER, "native"
        )
        assert reduction == pytest.approx(0.304, abs=0.04)

    def test_lammps_chain_regresses_on_x86(self):
        """Fig 10a: lammps.chain degrades ~-12.1% under LTO+PGO."""
        reduction = 1.0 - _t("lammps.chain", X86_CLUSTER, "optimized") / _t(
            "lammps.chain", X86_CLUSTER, "native"
        )
        assert reduction == pytest.approx(-0.121, abs=0.04)

    def test_lammps_lj_best_on_arm(self):
        """Fig 10b: lammps.lj improves ~17.7% on AArch64."""
        reduction = 1.0 - _t("lammps.lj", AARCH64_CLUSTER, "optimized") / _t(
            "lammps.lj", AARCH64_CLUSTER, "native"
        )
        assert reduction == pytest.approx(0.177, abs=0.04)

    def test_hpcg_worst_on_arm(self):
        """Fig 10b: hpcg degrades ~-14.9% on AArch64."""
        reduction = 1.0 - _t("hpcg", AARCH64_CLUSTER, "optimized") / _t(
            "hpcg", AARCH64_CLUSTER, "native"
        )
        assert reduction == pytest.approx(-0.149, abs=0.05)

    def test_overall_optimized_beats_native_slightly(self):
        """§5.3: optimized ~3.4% (x86) / ~3% (arm) better than native overall."""
        for system, expected in [(X86_CLUSTER, 0.034), (AARCH64_CLUSTER, 0.03)]:
            native = sum(_t(n, system, "native") for n in WORKLOADS)
            optimized = sum(_t(n, system, "optimized") for n in WORKLOADS)
            assert 1.0 - optimized / native == pytest.approx(expected, abs=0.03)

    def test_optimized_beats_adapted_overall(self):
        for system in SYSTEMS.values():
            adapted = sum(_t(n, system, "adapted") for n in WORKLOADS)
            optimized = sum(_t(n, system, "optimized") for n in WORKLOADS)
            assert optimized < adapted


class TestModelMechanics:
    def test_wrong_isa_raises(self):
        traits = scheme_traits("hpl", X86_CLUSTER, "original")
        with pytest.raises(ValueError, match="exec format"):
            predict_time("hpl", AARCH64_CLUSTER, traits)

    def test_nodes_scaling_reduces_compute(self):
        t1 = _t("hpl", X86_CLUSTER, "native", nodes=1)
        t16 = _t("hpl", X86_CLUSTER, "native", nodes=16)
        assert t1 > t16

    def test_comm_zero_at_one_node(self):
        traits = scheme_traits("lulesh", X86_CLUSTER, "original")
        hsn_off = predict_time("lulesh", X86_CLUSTER, traits, nodes=1)
        hsn_on = predict_time(
            "lulesh", X86_CLUSTER,
            scheme_traits("lulesh", X86_CLUSTER, "libo"), nodes=1,
        )
        # At one node, only the (unchanged) compute differs... libo also has
        # better libraries, but lulesh has lib_fraction 0 -> identical.
        assert hsn_off == pytest.approx(hsn_on)

    def test_opt_level_zero_is_slow(self):
        base = scheme_traits("comd", X86_CLUSTER, "original")
        slow = BinaryTraits(**{**base.__dict__, "opt_level": "0"})
        assert predict_time("comd", X86_CLUSTER, slow) > predict_time(
            "comd", X86_CLUSTER, base
        )

    def test_jitter_deterministic_and_small(self):
        traits = scheme_traits("hpl", X86_CLUSTER, "native")
        a = predict_time("hpl", X86_CLUSTER, traits, jitter_seed="run1")
        b = predict_time("hpl", X86_CLUSTER, traits, jitter_seed="run1")
        c = predict_time("hpl", X86_CLUSTER, traits, jitter_seed="run2")
        base = predict_time("hpl", X86_CLUSTER, traits)
        assert a == b
        assert a != c
        assert abs(a - base) / base < 0.011

    def test_mismatched_pgo_profile_weakens_gain(self):
        good = scheme_traits("openmx.pt13", X86_CLUSTER, "optimized")
        stale = BinaryTraits(
            **{**good.__dict__, "pgo_profile": profile_id("openmx.pt13", "arm")}
        )
        wrong = BinaryTraits(
            **{**good.__dict__, "pgo_profile": profile_id("hpl", "x86")}
        )
        t_good = predict_time("openmx.pt13", X86_CLUSTER, good)
        t_stale = predict_time("openmx.pt13", X86_CLUSTER, stale)
        t_wrong = predict_time("openmx.pt13", X86_CLUSTER, wrong)
        assert t_good < t_stale < t_wrong

    def test_profile_match_levels(self):
        assert profile_match(profile_id("hpl", "x86"), "hpl", "x86") == 1.0
        assert profile_match(profile_id("hpl", "arm"), "hpl", "x86") == 0.5
        assert profile_match(profile_id("comd", "x86"), "hpl", "x86") == 0.15
        assert profile_match(None, "hpl", "x86") == 0.0

    def test_scheme_ratio_helper(self):
        traits = scheme_traits("hpl", X86_CLUSTER, "original")
        assert scheme_ratio("hpl", "x86", traits) == pytest.approx(1.90, rel=0.02)

    def test_partial_lto_coverage_scales_gain(self):
        full = scheme_traits("minimd", X86_CLUSTER, "lto")
        half = BinaryTraits(**{**full.__dict__, "lto_coverage": 0.5})
        t_full = predict_time("minimd", X86_CLUSTER, full)
        t_half = predict_time("minimd", X86_CLUSTER, half)
        t_none = predict_time(
            "minimd", X86_CLUSTER, scheme_traits("minimd", X86_CLUSTER, "cxxo")
        )
        assert t_full < t_half < t_none
