"""Tests for the reporting harness and the demo CLI."""

import pytest

from repro import cli
from repro.reporting import (
    FIG3_PAPER,
    figure3_rows,
    render_table,
    table1_rows,
    table2_rows,
)
from repro.sysmodel import AARCH64_CLUSTER, X86_CLUSTER


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["a", "bb"], [("x", 1.5), ("long", 2.25)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "1.500" in lines[2]

    def test_empty_rows(self):
        text = render_table(["col"], [])
        assert "col" in text

    def test_mixed_types(self):
        text = render_table(["n", "v"], [(1, "x"), (2, None)])
        assert "None" in text


class TestReportingTables:
    def test_table1_cells(self):
        rows = {r[0]: r for r in table1_rows()}
        assert "512GB" in rows["RAM"]
        assert "Kylin" in rows["OS"][2]

    def test_table2_complete(self):
        rows = table2_rows()
        assert len(rows) == 18
        assert sum(1 for app, _, _ in rows if app == "lammps") == 5
        assert sum(1 for app, _, _ in rows if app == "openmx") == 4

    def test_figure3_monotone_both_systems(self):
        for system in (X86_CLUSTER, AARCH64_CLUSTER):
            rows = figure3_rows(system)
            times = [t for _, t, _ in rows]
            assert times == sorted(times, reverse=True) or all(
                times[i] >= times[i + 1] - 1e-9 for i in range(len(times) - 1)
            )
            # Reductions are relative to original and grow monotonically.
            reductions = [r for _, _, r in rows]
            assert reductions[0] == 0.0
            assert reductions[-1] > 0.5

    def test_fig3_paper_reference_constants(self):
        assert FIG3_PAPER["x86"]["cxxo_vs_original"] == 0.50
        assert FIG3_PAPER["arm"]["cxxo_vs_original"] == 0.72


class TestCli:
    def test_tables(self, capsys):
        assert cli.main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "8358P" in out
        assert "lammps" in out

    def test_analyze(self, capsys):
        assert cli.main(["analyze", "hpccg"]) == 0
        out = capsys.readouterr().out
        assert '"nodes"' in out
        assert "cached sources" in out

    def test_crossisa_crossable(self, capsys):
        assert cli.main(["crossisa", "lulesh"]) == 0
        out = capsys.readouterr().out
        assert "can cross        : True" in out

    def test_crossisa_blocked_exit_code(self, capsys):
        assert cli.main(["crossisa", "lammps"]) == 1

    def test_schemes(self, capsys):
        assert cli.main(["schemes", "hpccg", "--system", "x86"]) == 0
        out = capsys.readouterr().out
        assert "original" in out and "optimized" in out

    def test_adapt(self, capsys):
        assert cli.main(["adapt", "hpccg", "--system", "x86"]) == 0
        out = capsys.readouterr().out
        assert "adapted image" in out
        assert "+coMre" in out

    def test_bad_command(self):
        with pytest.raises(SystemExit):
            cli.main(["no-such-command"])

    def test_parser_help_smoke(self):
        parser = cli.build_parser()
        assert parser.prog == "comtainer-demo"
