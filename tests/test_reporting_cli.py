"""Tests for the reporting harness and the demo CLI."""

import pytest

from repro import cli
from repro.reporting import (
    FIG3_PAPER,
    figure3_rows,
    render_table,
    table1_rows,
    table2_rows,
)
from repro.sysmodel import AARCH64_CLUSTER, X86_CLUSTER


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["a", "bb"], [("x", 1.5), ("long", 2.25)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "1.500" in lines[2]

    def test_empty_rows(self):
        text = render_table(["col"], [])
        assert "col" in text

    def test_empty_rows_widths_follow_headers(self):
        text = render_table(["scheme", "time (s)"], [])
        header, rule = text.splitlines()
        assert rule == "------  --------"
        assert len(header) == len(rule)

    def test_mixed_types(self):
        text = render_table(["n", "v"], [(1, "x"), (2, None)])
        assert "None" in text

    def test_mixed_int_float_str_formatting(self):
        text = render_table(
            ["name", "count", "ratio"],
            [("blob", 3, 0.5), ("layer", 10, 1.0), ("none", "-", "-")],
        )
        lines = text.splitlines()
        assert "0.500" in lines[2]          # floats get 3 decimals
        assert "1.000" in lines[3]
        assert " 3 " in lines[2] + " "      # ints render bare
        assert "-" in lines[4]              # strings pass through
        # Every rendered line is padded to the same table width.
        assert len({len(l.rstrip()) for l in lines[:2]}) == 1

    def test_multiline_cell_sets_column_width(self):
        text = render_table(
            ["stage", "detail"],
            [("rebuild", "node a\na much longer second line"), ("redirect", "ok")],
        )
        lines = text.splitlines()
        # The widest *line* of the multi-line cell drives the column.
        assert len(lines[1].split("  ")[1]) == len("a much longer second line")
        # The multi-line row spans two output lines; short columns pad.
        assert lines[2].startswith("rebuild")
        assert lines[3].strip() == "a much longer second line"
        assert lines[4].startswith("redirect")

    def test_multiline_and_empty_cells_pad_consistently(self):
        text = render_table(["a", "b"], [("x\ny\nz", ""), ("", "w")])
        lines = text.splitlines()
        assert len(lines) == 2 + 3 + 1      # header + rule + 3-line row + row
        widths = {len(l) for l in lines[:2]}
        assert len(widths) == 1


class TestReportingTables:
    def test_table1_cells(self):
        rows = {r[0]: r for r in table1_rows()}
        assert "512GB" in rows["RAM"]
        assert "Kylin" in rows["OS"][2]

    def test_table2_complete(self):
        rows = table2_rows()
        assert len(rows) == 18
        assert sum(1 for app, _, _ in rows if app == "lammps") == 5
        assert sum(1 for app, _, _ in rows if app == "openmx") == 4

    def test_figure3_monotone_both_systems(self):
        for system in (X86_CLUSTER, AARCH64_CLUSTER):
            rows = figure3_rows(system)
            times = [t for _, t, _ in rows]
            assert times == sorted(times, reverse=True) or all(
                times[i] >= times[i + 1] - 1e-9 for i in range(len(times) - 1)
            )
            # Reductions are relative to original and grow monotonically.
            reductions = [r for _, _, r in rows]
            assert reductions[0] == 0.0
            assert reductions[-1] > 0.5

    def test_fig3_paper_reference_constants(self):
        assert FIG3_PAPER["x86"]["cxxo_vs_original"] == 0.50
        assert FIG3_PAPER["arm"]["cxxo_vs_original"] == 0.72


class TestCli:
    def test_tables(self, capsys):
        assert cli.main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "8358P" in out
        assert "lammps" in out

    def test_analyze(self, capsys):
        assert cli.main(["analyze", "hpccg"]) == 0
        out = capsys.readouterr().out
        assert '"nodes"' in out
        assert "cached sources" in out

    def test_crossisa_crossable(self, capsys):
        assert cli.main(["crossisa", "lulesh"]) == 0
        out = capsys.readouterr().out
        assert "can cross        : True" in out

    def test_crossisa_blocked_exit_code(self, capsys):
        assert cli.main(["crossisa", "lammps"]) == 1

    def test_schemes(self, capsys):
        assert cli.main(["schemes", "hpccg", "--system", "x86"]) == 0
        out = capsys.readouterr().out
        assert "original" in out and "optimized" in out

    def test_adapt(self, capsys):
        assert cli.main(["adapt", "hpccg", "--system", "x86"]) == 0
        out = capsys.readouterr().out
        assert "adapted image" in out
        assert "+coMre" in out

    def test_bad_command(self):
        with pytest.raises(SystemExit):
            cli.main(["no-such-command"])

    def test_parser_help_smoke(self):
        parser = cli.build_parser()
        assert parser.prog == "comtainer-demo"


class TestServiceReportRenderer:
    """The serve report table surfaces retry-after hints and, for
    durable runs, the WAL/recovery rows."""

    def overloaded_report(self):
        from repro.service import AdaptationService

        service = AdaptationService(workers=2, seed=3, queue_capacity=4)
        service.add_tenant("noisy", max_workers=2)
        for i in range(30):
            service.submit("noisy", "hpccg", at=0.2 * i)
        return service.run()

    def test_retry_after_surfaces_in_table(self):
        from repro.reporting import render_service_report
        from repro.service import STATUS_REJECTED

        report = self.overloaded_report()
        rejected = [o for o in report.outcomes
                    if o.status == STATUS_REJECTED
                    and o.retry_after is not None]
        assert rejected, "workload failed to produce typed rejections"
        text = render_service_report(report)
        assert "retry-after hint (s)" in text
        hints = sorted(o.retry_after for o in rejected)
        assert f"{hints[0]:.1f}-{hints[-1]:.1f}" in text
        # Each rejection is itemized with its own hint.
        for outcome in rejected:
            assert (f"rejected: {outcome.request_id}" in text
                    and f"retry after {outcome.retry_after:.1f}s" in text)

    def test_volatile_run_renders_no_recovery_rows(self):
        from repro.reporting import render_service_report

        text = render_service_report(self.overloaded_report())
        assert "WAL records" not in text
        assert "recovered from WAL" not in text

    def test_durable_crash_restart_rows(self):
        from repro.reporting import render_service_report
        from repro.service import AdaptationService, ServiceCrash

        service = AdaptationService(workers=4, seed=11, durable=True,
                                    crash_at=1.5)
        service.add_tenant("acme", max_workers=4)
        service.submit("acme", "hpccg", at=0.0)
        service.submit("acme", "minimd", at=2.0)
        with pytest.raises(ServiceCrash):
            service.run()
        restarted = service.restart()
        text = render_service_report(restarted.run())
        assert "WAL records" in text
        assert "WAL restarts survived" in text
