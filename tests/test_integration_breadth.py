"""Breadth integration: every app builds on both architectures; every
workload adapts; run_image semantics; scaling behaviour."""

import math

import pytest

from repro.apps import APPS, app_containerfile, build_context, get_app
from repro.containers import ContainerEngine
from repro.core.workflow import build_original_image
from repro.images import install_ubuntu_base
from repro.perf import attach_perf, predict_time, scheme_traits
from repro.sysmodel import AARCH64_CLUSTER, X86_CLUSTER
from repro.toolchain.artifacts import ExecutableArtifact, read_artifact


@pytest.fixture(scope="module")
def amd64_engine():
    eng = ContainerEngine(arch="amd64")
    install_ubuntu_base(eng)
    return eng


@pytest.fixture(scope="module")
def arm64_engine():
    eng = ContainerEngine(arch="arm64")
    install_ubuntu_base(eng)
    return eng


class TestAllAppsBuildEverywhere:
    @pytest.mark.parametrize("app", sorted(APPS))
    def test_amd64_build(self, amd64_engine, app):
        ref = build_original_image(amd64_engine, get_app(app), tag=f"{app}:it-x86")
        spec = get_app(app)
        exe = read_artifact(
            amd64_engine.image_filesystem(ref).read_file(f"/app/{spec.binary_name}")
        )
        assert isinstance(exe, ExecutableArtifact)
        assert exe.isa == "x86-64"

    @pytest.mark.parametrize("app", sorted(APPS))
    def test_arm64_build(self, arm64_engine, app):
        ref = build_original_image(arm64_engine, get_app(app), tag=f"{app}:it-arm")
        spec = get_app(app)
        exe = read_artifact(
            arm64_engine.image_filesystem(ref).read_file(f"/app/{spec.binary_name}")
        )
        assert exe.isa == "aarch64"


class TestRunImage:
    def test_entrypoint_execution(self, amd64_engine):
        ref = build_original_image(amd64_engine, get_app("lulesh"),
                                   tag="lulesh:run-image")
        recorder = attach_perf(amd64_engine, X86_CLUSTER)
        result = amd64_engine.run_image(ref, env={"SIM_NPROCS": "16"})
        assert result.ok, result.stderr
        assert "Elapsed time" in result.stdout
        assert recorder.last.workload == "lulesh"
        amd64_engine.binary_runner = None

    def test_argv_overrides_cmd(self, amd64_engine):
        amd64_engine.build(
            'FROM ubuntu:24.04\nENTRYPOINT ["/bin/echo"]\nCMD ["default"]\n',
            tag="echoimg:1",
        )
        assert amd64_engine.run_image("echoimg:1").stdout == "default\n"
        assert amd64_engine.run_image("echoimg:1", ["custom"]).stdout == "custom\n"

    def test_no_command_is_an_error(self, amd64_engine):
        amd64_engine.build("FROM scratch\n", tag="empty:1")
        result = amd64_engine.run_image("empty:1")
        assert result.exit_code == 125


class TestScalingBehaviour:
    """The analytic model's node-count behaviour (strong scaling)."""

    def test_compute_scales_down_with_nodes(self):
        traits = scheme_traits("hpl", X86_CLUSTER, "native")
        times = [predict_time("hpl", X86_CLUSTER, traits, nodes=n)
                 for n in (1, 2, 4, 8, 16)]
        assert times == sorted(times, reverse=True)

    def test_comm_grows_with_nodes(self):
        """For the comm-heavy original lulesh, adding nodes eventually
        stops helping on the generic stack."""
        traits = scheme_traits("lulesh", X86_CLUSTER, "original")
        native = scheme_traits("lulesh", X86_CLUSTER, "native")
        gap = [
            predict_time("lulesh", X86_CLUSTER, traits, nodes=n)
            - predict_time("lulesh", X86_CLUSTER, native, nodes=n)
            for n in (1, 4, 16)
        ]
        # At 1 node the gap is pure compute; at 16 the comm penalty adds.
        assert gap[-1] > 0

    def test_adaptation_gain_largest_at_small_scale_on_x86(self):
        """lulesh x86: compute effects dominate at 1 node, comm at 16 ->
        relative improvement shrinks with scale (the paper's
        'improvement becomes unobvious' at 16 nodes)."""
        orig = scheme_traits("lulesh", X86_CLUSTER, "original")
        adapted = scheme_traits("lulesh", X86_CLUSTER, "adapted")
        improvements = []
        for n in (1, 4, 16):
            t_o = predict_time("lulesh", X86_CLUSTER, orig, nodes=n)
            t_a = predict_time("lulesh", X86_CLUSTER, adapted, nodes=n)
            improvements.append(t_o / t_a - 1)
        assert improvements[0] > improvements[-1]

    def test_mpi_plugin_gain_largest_at_scale_on_arm(self):
        """lulesh arm: the HSN-plugin gain grows with node count."""
        orig = scheme_traits("lulesh", AARCH64_CLUSTER, "original")
        libo = scheme_traits("lulesh", AARCH64_CLUSTER, "libo")
        gains = []
        for n in (2, 8, 16):
            t_o = predict_time("lulesh", AARCH64_CLUSTER, orig, nodes=n)
            t_l = predict_time("lulesh", AARCH64_CLUSTER, libo, nodes=n)
            gains.append(t_o - t_l)
        assert gains == sorted(gains)

    def test_nodes_clamped_to_system(self):
        traits = scheme_traits("hpl", X86_CLUSTER, "native")
        assert predict_time("hpl", X86_CLUSTER, traits, nodes=64) == predict_time(
            "hpl", X86_CLUSTER, traits, nodes=16
        )
        assert predict_time("hpl", X86_CLUSTER, traits, nodes=0) == predict_time(
            "hpl", X86_CLUSTER, traits, nodes=1
        )
