"""Unit tests for the telemetry substrate: spans, metrics, exporters.

These test the recorder in isolation — no engines, no registries.  The
pipeline-level wiring (span trees over a real adaptation, byte counters
on the OCI stores) lives in ``test_telemetry_integration.py``.
"""

import json

import pytest

from repro.telemetry import (
    EVENT_LOG_CAP,
    NULL_TELEMETRY,
    MetricError,
    MetricsRegistry,
    NullTelemetry,
    Telemetry,
    chrome_trace,
    chrome_trace_json,
    prometheus_text,
    render_span_tree,
)

pytestmark = pytest.mark.telemetry


class TestSpans:
    def test_nesting_builds_a_tree(self):
        tele = Telemetry()
        with tele.span("root") as root:
            with tele.span("child-a"):
                with tele.span("grandchild"):
                    pass
            with tele.span("child-b"):
                pass
        assert [s.name for s in tele.roots] == ["root"]
        assert [c.name for c in root.children] == ["child-a", "child-b"]
        assert root.children[0].children[0].name == "grandchild"
        assert [s.name for s in tele.iter_spans()] == [
            "root", "child-a", "grandchild", "child-b",
        ]

    def test_durations_are_positive_and_nested(self):
        tele = Telemetry()
        with tele.span("outer") as outer:
            with tele.span("inner") as inner:
                tele.charge(2.5)
        assert inner.duration >= 2.5
        assert outer.duration > inner.duration
        assert outer.start <= inner.start <= inner.end <= outer.end

    def test_attributes_via_kwargs_and_set(self):
        tele = Telemetry()
        with tele.span("stage", app="lammps") as span:
            span.set("ref", "lammps:adapted")
        assert span.attributes == {"app": "lammps", "ref": "lammps:adapted"}

    def test_exception_marks_span_error_and_reraises(self):
        tele = Telemetry()
        with pytest.raises(ValueError):
            with tele.span("doomed"):
                raise ValueError("boom")
        (span,) = tele.roots
        assert span.status == "error"
        assert span.attributes["error"] == "boom"
        assert span.finished

    def test_mis_nested_end_closes_dangling_children(self):
        tele = Telemetry()
        outer = tele.start_span("outer")
        tele.start_span("abandoned")
        tele.end_span(outer)   # never ended the child explicitly
        assert outer.finished
        assert outer.children[0].finished
        assert tele.current is None

    def test_events_attach_to_the_active_span(self):
        tele = Telemetry()
        with tele.span("stage") as span:
            tele.event("retry.attempt", site="transfer", attempt=1)
        orphan = tele.event("fault.armed", site="pull")
        (evt,) = tele.events_for(span)
        assert evt.name == "retry.attempt"
        assert evt.attributes["site"] == "transfer"
        assert orphan.span_id is None

    def test_event_log_is_bounded(self):
        tele = Telemetry()
        for i in range(EVENT_LOG_CAP + 100):
            tele.event("tick", i=i)
        assert len(tele.events) == EVENT_LOG_CAP
        # Oldest entries were evicted, newest kept.
        assert tele.events[-1].attributes["i"] == EVENT_LOG_CAP + 99
        assert tele.events[0].attributes["i"] == 100

    def test_find_spans_and_reset(self):
        tele = Telemetry()
        with tele.span("rebuild"):
            with tele.span("rebuild.node"):
                pass
            with tele.span("rebuild.node"):
                pass
        assert len(tele.find_spans("rebuild.node")) == 2
        tele.metrics.counter("x_total").inc()
        tele.reset()
        assert tele.roots == []
        assert tele.events == []
        assert len(tele.metrics) == 0
        assert tele.clock.now == 0.0


class TestMetrics:
    def test_counter_increments_and_rejects_negative(self):
        reg = MetricsRegistry()
        c = reg.counter("ops_total")
        c.inc()
        c.inc(4)
        assert reg.value("ops_total") == 5
        with pytest.raises(MetricError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert reg.value("depth") == 7

    def test_histogram_buckets_and_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("size_bytes", buckets=(10, 100, 1000))
        for v in (5, 50, 50, 500, 5000):
            h.observe(v)
        assert h.count == 5
        assert h.sum == 5605
        assert h.cumulative() == [
            (10, 1), (100, 3), (1000, 4), (float("inf"), 5),
        ]

    def test_histogram_rejects_degenerate_buckets(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricError):
            reg.histogram("empty", buckets=())
        with pytest.raises(MetricError):
            reg.histogram("dupes", buckets=(1, 1, 2))

    def test_get_or_create_is_idempotent_but_kind_checked(self):
        reg = MetricsRegistry()
        assert reg.counter("n_total") is reg.counter("n_total")
        with pytest.raises(MetricError):
            reg.gauge("n_total")

    def test_value_defaults_and_histogram_sum(self):
        reg = MetricsRegistry()
        assert reg.value("missing", default=-1.0) == -1.0
        reg.histogram("h", buckets=(1,)).observe(3)
        assert reg.value("h") == 3

    def test_snapshot_is_json_friendly(self):
        reg = MetricsRegistry()
        reg.counter("a_total").inc(2)
        reg.histogram("b_bytes", buckets=(1024,)).observe(10)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["a_total"] == 2
        assert snap["b_bytes"]["count"] == 1
        assert snap["b_bytes"]["buckets"]["+Inf"] == 1


class TestNullTelemetry:
    def test_records_nothing(self):
        tele = NullTelemetry()
        assert not tele.enabled
        with tele.span("ignored", app="x") as span:
            span.set("k", "v")
            tele.event("ignored.event")
            tele.charge(100.0)
        assert tele.roots == []
        assert tele.events == []
        assert list(tele.iter_spans()) == []
        assert tele.find_spans("ignored") == []
        assert len(tele.metrics) == 0

    def test_null_metrics_swallow_everything(self):
        tele = NULL_TELEMETRY
        tele.metrics.counter("c_total").inc(5)
        tele.metrics.gauge("g").set(3)
        tele.metrics.histogram("h").observe(9)
        assert tele.metrics.snapshot() == {}
        assert tele.metrics.value("c_total") == 0.0

    def test_exceptions_still_propagate(self):
        tele = NullTelemetry()
        with pytest.raises(RuntimeError):
            with tele.span("doomed"):
                raise RuntimeError("still visible")


class TestExport:
    def _sample(self):
        tele = Telemetry()
        with tele.span("adapt", app="lammps"):
            with tele.span("build"):
                tele.event("fault.armed", site="transfer")
            with tele.span("rebuild") as span:
                tele.charge(1.5)
                span.set("nodes", 3)
        tele.metrics.counter("oci_blob_bytes_written_total").inc(4096)
        tele.metrics.gauge("oci_blob_store_blobs").set(7)
        tele.metrics.histogram("oci_blob_size_bytes",
                               buckets=(1024, 65536)).observe(2048)
        return tele

    def test_span_tree_renderer(self):
        text = render_span_tree(self._sample())
        lines = text.splitlines()
        assert lines[0].startswith("adapt")
        assert "app=lammps" in lines[0]
        assert any(l.strip().startswith("build") for l in lines)
        assert any("* fault.armed" in l for l in lines)
        assert any("nodes=3" in l for l in lines)
        assert render_span_tree(Telemetry()) == "(no spans recorded)"

    def test_chrome_trace_round_trips_through_json(self):
        doc = json.loads(chrome_trace_json(self._sample()))
        events = doc["traceEvents"]
        phases = {e["name"]: e["ph"] for e in events}
        assert phases["adapt"] == "X"
        assert phases["fault.armed"] == "i"
        # Timestamps sorted, microsecond-scaled, durations non-negative.
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)
        spans = [e for e in events if e["ph"] == "X"]
        assert all(e["dur"] >= 0 for e in spans)
        rebuild = next(e for e in spans if e["name"] == "rebuild")
        assert rebuild["dur"] >= 1.5e6
        assert rebuild["args"]["status"] == "ok"

    def test_chrome_trace_of_empty_recording(self):
        doc = chrome_trace(Telemetry())
        assert doc["traceEvents"] == []
        json.loads(chrome_trace_json(Telemetry()))

    def test_prometheus_text_format(self):
        text = prometheus_text(self._sample().metrics)
        assert "# TYPE oci_blob_bytes_written_total counter" in text
        assert "oci_blob_bytes_written_total 4096" in text
        assert "oci_blob_store_blobs 7" in text
        assert '# TYPE oci_blob_size_bytes histogram' in text
        assert 'oci_blob_size_bytes_bucket{le="1024"} 0' in text
        assert 'oci_blob_size_bytes_bucket{le="65536"} 1' in text
        assert 'oci_blob_size_bytes_bucket{le="+Inf"} 1' in text
        assert "oci_blob_size_bytes_sum 2048" in text
        assert "oci_blob_size_bytes_count 1" in text
        assert text.endswith("\n")

    def test_prometheus_text_empty_registry(self):
        assert prometheus_text(MetricsRegistry()) == "# (no metrics recorded)\n"


class TestExportEdgeCases:
    def test_histogram_overflow_lands_in_inf_bucket_only(self):
        m = MetricsRegistry()
        h = m.histogram("h", buckets=(1.0, 10.0))
        h.observe(5.0)
        h.observe(1e12)        # beyond every finite bound
        text = prometheus_text(m)
        assert 'h_bucket{le="1"} 0' in text
        assert 'h_bucket{le="10"} 1' in text
        assert 'h_bucket{le="+Inf"} 2' in text
        assert "h_count 2" in text

    def test_zero_length_span_exports_with_zero_duration(self):
        tele = Telemetry()
        span = tele.start_span("instant")
        tele.end_span(span)
        doc = chrome_trace(tele)
        (event,) = [e for e in doc["traceEvents"] if e["name"] == "instant"]
        assert event["ph"] == "X"
        # One clock tick start->end; never negative, json-clean.
        assert 0 <= event["dur"] <= 10
        json.loads(chrome_trace_json(tele))

    def test_unicode_attributes_survive_the_trace_round_trip(self):
        tele = Telemetry()
        with tele.span("build", app="héllo-wörld", note="步骤①"):
            tele.event("fault.armed", key="ключ")
        doc = json.loads(chrome_trace_json(tele))
        args = {e["name"]: e["args"] for e in doc["traceEvents"]}
        assert args["build"]["app"] == "héllo-wörld"
        assert args["build"]["note"] == "步骤①"
        assert args["fault.armed"]["key"] == "ключ"

    def test_unicode_never_breaks_span_tree_rendering(self):
        tele = Telemetry()
        with tele.span("build", app="héllo-wörld"):
            pass
        assert "héllo-wörld" in render_span_tree(tele)


class TestMetricSiteFolding:
    def test_distinct_sites_never_fold_to_the_same_name(self):
        from repro.telemetry.metrics import metric_site

        # "mirror.sync" and "mirror_sync" both fold to "mirror_sync":
        # the second-comer must get a disambiguated name, not silently
        # share the first one's instruments.
        dotted = metric_site("mirror.sync")
        flat = metric_site("mirror_sync")
        assert dotted != flat

    def test_resolution_is_stable_across_repeat_calls(self):
        from repro.telemetry.metrics import metric_site

        first = metric_site("transfer.chunk")
        assert metric_site("transfer.chunk") == first
        collided = metric_site("transfer/chunk")
        assert metric_site("transfer/chunk") == collided
        assert collided != first

    def test_folded_names_stay_prometheus_legal(self):
        from repro.telemetry.metrics import metric_site
        import re

        for site in ("a.b", "a-b", "a/b", "a_b"):
            assert re.fullmatch(r"[a-zA-Z_][a-zA-Z0-9_]*", metric_site(site))
