"""Deeper app-generation coverage: data plans, size accounting, containerfiles."""

import pytest

from repro.apps import APPS, app_containerfile, build_context, get_app
from repro.apps.generate import (
    data_plan,
    estimate_executable_size,
    runtime_extra_bytes,
)
from repro.apps.specs import MIB, TABLE3_APPS


class TestDataPlans:
    @pytest.mark.parametrize("arch", ["amd64", "arm64"])
    @pytest.mark.parametrize("app", sorted(APPS))
    def test_pads_positive(self, app, arch):
        for relpath, size in data_plan(get_app(app), arch):
            assert size > 0, (app, arch, relpath)

    def test_lammps_inputs_per_workload(self):
        plan = dict(data_plan(get_app("lammps"), "amd64"))
        for wkld in ("chain", "chute", "eam", "lj", "rhodo"):
            assert f"in.{wkld}" in plan

    def test_single_input_apps_have_no_input_files(self):
        plan = dict(data_plan(get_app("lulesh"), "amd64"))
        assert not any(name.startswith("in.") for name in plan)

    def test_named_bulk_data(self):
        assert "potentials.bin" in dict(data_plan(get_app("lammps"), "amd64"))
        assert "vps_pao_database.bin" in dict(data_plan(get_app("openmx"), "amd64"))

    @pytest.mark.parametrize("app", TABLE3_APPS)
    def test_plan_totals_consistent_with_table3(self, app):
        """base + runtime extras + exe + data == the Table 3 target."""
        spec = get_app(app)
        for arch in ("amd64", "arm64"):
            from repro.pkg.catalog import BASE_PLUS_RUNTIME_TARGET

            total = (
                BASE_PLUS_RUNTIME_TARGET[arch]
                + runtime_extra_bytes(spec, arch)
                + estimate_executable_size(spec)
                + sum(size for _, size in data_plan(spec, arch))
            )
            assert total == pytest.approx(spec.image_size[arch] * MIB, rel=0.001)


class TestRuntimeExtras:
    def test_plain_apps_have_no_extras(self):
        assert runtime_extra_bytes(get_app("lulesh"), "amd64") == 0

    def test_lammps_extras_positive_and_arch_dependent(self):
        x86 = runtime_extra_bytes(get_app("lammps"), "amd64")
        arm = runtime_extra_bytes(get_app("lammps"), "arm64")
        assert x86 > arm > 0

    def test_lto_estimate_larger(self):
        spec = get_app("lulesh")
        assert estimate_executable_size(spec, lto=True) > estimate_executable_size(spec)


class TestContainerfiles:
    def test_two_stages(self):
        text = app_containerfile(get_app("lulesh"))
        assert text.count("FROM ") == 2
        assert "AS build" in text and "AS dist" in text

    def test_custom_bases(self):
        text = app_containerfile(get_app("lulesh"),
                                 build_base="comt:amd64.env",
                                 dist_base="comt:amd64.base")
        assert "FROM comt:amd64.env AS build" in text
        assert "FROM comt:amd64.base AS dist" in text

    def test_runtime_packages_in_dist_stage(self):
        text = app_containerfile(get_app("lammps"))
        dist_part = text.split("AS dist")[1]
        assert "libfftw3-3" in dist_part

    def test_build_stage_installs_link_deps(self):
        text = app_containerfile(get_app("lammps"))
        build_part = text.split("AS dist")[0]
        assert "libjpeg8" in build_part   # needed to link -ljpeg

    def test_entrypoint_points_at_binary(self):
        assert 'ENTRYPOINT ["/app/lmp"]' in app_containerfile(get_app("lammps"))


class TestContextDeterminism:
    def test_context_digests_stable(self):
        a = build_context(get_app("comd"), "amd64")
        b = build_context(get_app("comd"), "amd64")
        digests_a = {p: n.content.digest for p, n in a.iter_files()}
        digests_b = {p: n.content.digest for p, n in b.iter_files()}
        assert digests_a == digests_b

    def test_contexts_differ_across_arch(self):
        x86 = build_context(get_app("hpl"), "amd64")
        arm = build_context(get_app("hpl"), "arm64")
        assert x86.read_text("/src/build.sh") != arm.read_text("/src/build.sh")
