"""Tests for manifests, configs, OCI layouts and the registry."""

import pytest

from repro.oci import (
    ImageConfig,
    ImageRegistry,
    Layer,
    LayerEntry,
    Manifest,
    OCILayout,
    mediatypes,
)
from repro.oci.blobs import Blob, BlobStore
from repro.oci.registry import parse_reference
from repro.vfs import InlineContent


def _make_image(tag_data=b"payload"):
    layer = Layer().add(LayerEntry.file("/app/bin", InlineContent(tag_data), mode=0o755))
    config = ImageConfig(architecture="amd64", env=["PATH=/usr/bin"], entrypoint=["/app/bin"])
    config.diff_ids.append(layer.digest)
    manifest = Manifest(config=config.descriptor(), layers=[Blob.from_layer(layer).descriptor()])
    return manifest, config, layer


class TestConfigManifest:
    def test_config_roundtrip(self):
        _, config, _ = _make_image()
        restored = ImageConfig.from_json(config.to_json())
        assert restored.to_bytes() == config.to_bytes()
        assert restored.digest == config.digest

    def test_env_dict(self):
        config = ImageConfig(env=["A=1", "B=two=2"])
        assert config.env_dict() == {"A": "1", "B": "two=2"}

    def test_manifest_roundtrip(self):
        manifest, _, _ = _make_image()
        restored = Manifest.from_json(manifest.to_json())
        assert restored.digest == manifest.digest

    def test_total_layer_size(self):
        manifest, _, layer = _make_image()
        assert manifest.total_layer_size == layer.size

    def test_clone_is_independent(self):
        _, config, _ = _make_image()
        clone = config.clone()
        clone.env.append("X=1")
        assert "X=1" not in config.env


class TestBlobStore:
    def test_put_get_bytes(self):
        store = BlobStore()
        desc = store.put_bytes(b"{}", mediatypes.IMAGE_CONFIG)
        assert store.get(desc.digest).as_bytes() == b"{}"

    def test_put_get_layer(self):
        store = BlobStore()
        _, _, layer = _make_image()
        desc = store.put_layer(layer)
        assert store.get_layer(desc.digest).digest == layer.digest

    def test_missing_blob_raises(self):
        with pytest.raises(KeyError):
            BlobStore().get("sha256:" + "0" * 64)

    def test_copy_into_dedupes(self):
        a, b = BlobStore(), BlobStore()
        a.put_bytes(b"x", mediatypes.IMAGE_CONFIG)
        assert a.copy_into(b) == 1
        assert a.copy_into(b) == 0


class TestLayout:
    def test_add_and_resolve(self):
        layout = OCILayout()
        manifest, config, layer = _make_image()
        layout.add_manifest(manifest, config, [layer], tag="app:latest")
        resolved = layout.resolve("app:latest")
        assert resolved.manifest.digest == manifest.digest
        assert resolved.config.entrypoint == ["/app/bin"]
        fs = resolved.filesystem()
        assert fs.read_file("/app/bin") == b"payload"

    def test_retag_replaces_index_entry(self):
        layout = OCILayout()
        m1, c1, l1 = _make_image(b"v1")
        m2, c2, l2 = _make_image(b"v2")
        layout.add_manifest(m1, c1, [l1], tag="app:latest")
        layout.add_manifest(m2, c2, [l2], tag="app:latest")
        assert layout.tags().count("app:latest") == 1
        assert layout.resolve("app:latest").manifest.digest == m2.digest

    def test_multiple_tags_coexist(self):
        """The coMtainer workflow appends +coM manifests next to the original."""
        layout = OCILayout()
        m1, c1, l1 = _make_image(b"v1")
        m2, c2, l2 = _make_image(b"v2")
        layout.add_manifest(m1, c1, [l1], tag="app:latest")
        layout.add_manifest(m2, c2, [l2], tag="app:latest+coM")
        assert set(layout.tags()) == {"app:latest", "app:latest+coM"}

    def test_unknown_tag_raises(self):
        with pytest.raises(KeyError):
            OCILayout().resolve("ghost")

    def test_save_load_roundtrip(self, tmp_path):
        layout = OCILayout()
        manifest, config, layer = _make_image()
        layout.add_manifest(manifest, config, [layer], tag="app:latest")
        layout.save(str(tmp_path / "app.oci"))
        loaded = OCILayout.load(str(tmp_path / "app.oci"))
        resolved = loaded.resolve("app:latest")
        assert resolved.manifest.digest == manifest.digest
        assert resolved.filesystem().read_file("/app/bin") == b"payload"


class TestRegistry:
    def test_parse_reference(self):
        assert parse_reference("repo/app:1.0") == ("repo/app", "1.0")
        assert parse_reference("app") == ("app", "latest")
        assert parse_reference("host:5000/app:x")[1] == "x"

    def test_push_pull(self):
        registry = ImageRegistry()
        manifest, config, layer = _make_image()
        registry.push("lab/app:1.0", manifest, config, [layer])
        resolved = registry.pull("lab/app:1.0")
        assert resolved.manifest.digest == manifest.digest
        assert registry.repositories() == ["lab/app"]
        assert registry.tags("lab/app") == ["1.0"]

    def test_pull_missing_raises(self):
        with pytest.raises(KeyError):
            ImageRegistry().pull("nope:latest")

    def test_layout_to_registry_to_layout(self):
        layout = OCILayout()
        manifest, config, layer = _make_image()
        layout.add_manifest(manifest, config, [layer], tag="dist")
        registry = ImageRegistry()
        registry.push_layout("lab/app:dist", layout, tag="dist")
        pulled = registry.pull_to_layout("lab/app:dist")
        assert pulled.resolve("dist").manifest.digest == manifest.digest
