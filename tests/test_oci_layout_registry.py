"""Tests for manifests, configs, OCI layouts and the registry."""

import pytest

from repro.oci import (
    ImageConfig,
    ImageRegistry,
    Layer,
    LayerEntry,
    Manifest,
    OCILayout,
    mediatypes,
)
from repro.oci.blobs import Blob, BlobStore
from repro.oci.registry import parse_reference
from repro.vfs import InlineContent


def _make_image(tag_data=b"payload"):
    layer = Layer().add(LayerEntry.file("/app/bin", InlineContent(tag_data), mode=0o755))
    config = ImageConfig(architecture="amd64", env=["PATH=/usr/bin"], entrypoint=["/app/bin"])
    config.diff_ids.append(layer.digest)
    manifest = Manifest(config=config.descriptor(), layers=[Blob.from_layer(layer).descriptor()])
    return manifest, config, layer


class TestConfigManifest:
    def test_config_roundtrip(self):
        _, config, _ = _make_image()
        restored = ImageConfig.from_json(config.to_json())
        assert restored.to_bytes() == config.to_bytes()
        assert restored.digest == config.digest

    def test_env_dict(self):
        config = ImageConfig(env=["A=1", "B=two=2"])
        assert config.env_dict() == {"A": "1", "B": "two=2"}

    def test_manifest_roundtrip(self):
        manifest, _, _ = _make_image()
        restored = Manifest.from_json(manifest.to_json())
        assert restored.digest == manifest.digest

    def test_total_layer_size(self):
        manifest, _, layer = _make_image()
        assert manifest.total_layer_size == layer.size

    def test_clone_is_independent(self):
        _, config, _ = _make_image()
        clone = config.clone()
        clone.env.append("X=1")
        assert "X=1" not in config.env


class TestBlobStore:
    def test_put_get_bytes(self):
        store = BlobStore()
        desc = store.put_bytes(b"{}", mediatypes.IMAGE_CONFIG)
        assert store.get(desc.digest).as_bytes() == b"{}"

    def test_put_get_layer(self):
        store = BlobStore()
        _, _, layer = _make_image()
        desc = store.put_layer(layer)
        assert store.get_layer(desc.digest).digest == layer.digest

    def test_missing_blob_raises(self):
        with pytest.raises(KeyError):
            BlobStore().get("sha256:" + "0" * 64)

    def test_copy_into_dedupes(self):
        a, b = BlobStore(), BlobStore()
        a.put_bytes(b"x", mediatypes.IMAGE_CONFIG)
        assert a.copy_into(b) == 1
        assert a.copy_into(b) == 0


class TestLayout:
    def test_add_and_resolve(self):
        layout = OCILayout()
        manifest, config, layer = _make_image()
        layout.add_manifest(manifest, config, [layer], tag="app:latest")
        resolved = layout.resolve("app:latest")
        assert resolved.manifest.digest == manifest.digest
        assert resolved.config.entrypoint == ["/app/bin"]
        fs = resolved.filesystem()
        assert fs.read_file("/app/bin") == b"payload"

    def test_retag_replaces_index_entry(self):
        layout = OCILayout()
        m1, c1, l1 = _make_image(b"v1")
        m2, c2, l2 = _make_image(b"v2")
        layout.add_manifest(m1, c1, [l1], tag="app:latest")
        layout.add_manifest(m2, c2, [l2], tag="app:latest")
        assert layout.tags().count("app:latest") == 1
        assert layout.resolve("app:latest").manifest.digest == m2.digest

    def test_multiple_tags_coexist(self):
        """The coMtainer workflow appends +coM manifests next to the original."""
        layout = OCILayout()
        m1, c1, l1 = _make_image(b"v1")
        m2, c2, l2 = _make_image(b"v2")
        layout.add_manifest(m1, c1, [l1], tag="app:latest")
        layout.add_manifest(m2, c2, [l2], tag="app:latest+coM")
        assert set(layout.tags()) == {"app:latest", "app:latest+coM"}

    def test_unknown_tag_raises(self):
        with pytest.raises(KeyError):
            OCILayout().resolve("ghost")

    def test_save_load_roundtrip(self, tmp_path):
        layout = OCILayout()
        manifest, config, layer = _make_image()
        layout.add_manifest(manifest, config, [layer], tag="app:latest")
        layout.save(str(tmp_path / "app.oci"))
        loaded = OCILayout.load(str(tmp_path / "app.oci"))
        resolved = loaded.resolve("app:latest")
        assert resolved.manifest.digest == manifest.digest
        assert resolved.filesystem().read_file("/app/bin") == b"payload"


class TestRegistry:
    def test_parse_reference(self):
        assert parse_reference("repo/app:1.0") == ("repo/app", "1.0")
        assert parse_reference("app") == ("app", "latest")
        assert parse_reference("host:5000/app:x")[1] == "x"

    def test_push_pull(self):
        registry = ImageRegistry()
        manifest, config, layer = _make_image()
        registry.push("lab/app:1.0", manifest, config, [layer])
        resolved = registry.pull("lab/app:1.0")
        assert resolved.manifest.digest == manifest.digest
        assert registry.repositories() == ["lab/app"]
        assert registry.tags("lab/app") == ["1.0"]

    def test_pull_missing_raises(self):
        with pytest.raises(KeyError):
            ImageRegistry().pull("nope:latest")

    def test_layout_to_registry_to_layout(self):
        layout = OCILayout()
        manifest, config, layer = _make_image()
        layout.add_manifest(manifest, config, [layer], tag="dist")
        registry = ImageRegistry()
        registry.push_layout("lab/app:dist", layout, tag="dist")
        pulled = registry.pull_to_layout("lab/app:dist")
        assert pulled.resolve("dist").manifest.digest == manifest.digest


class TestCorruptManifestTraversal:
    """``referenced_digests`` must flag — not crash on — a manifest blob
    whose bytes no longer parse (e.g. a bit flip landing in the JSON)."""

    def _rot(self, store, digest):
        blob = store.try_get(digest)
        bad = bytearray(blob.as_bytes())
        bad[len(bad) // 2] ^= 0xFF
        store._blobs[digest] = Blob(
            media_type=blob.media_type, digest=digest,
            size=blob.size, payload=bytes(bad),
        )
        store._verified.discard(digest)

    def test_registry_skips_unparseable_manifest_closure(self):
        registry = ImageRegistry()
        manifest, config, layer = _make_image()
        registry.push("lab/app:1.0", manifest, config, [layer])
        self._rot(registry.blobs, manifest.digest)
        refs = registry.referenced_digests()
        assert manifest.digest in refs          # still a repair target
        assert registry.audit()                 # loudly unhealthy, no crash

    def test_layout_repairable_after_manifest_rot(self):
        from repro.integrity.repair import LayoutSource, RepairEngine

        pristine, damaged = OCILayout(), OCILayout()
        manifest, config, layer = _make_image()
        for layout in (pristine, damaged):
            layout.add_manifest(manifest, config, [layer], tag="app:dist")
        self._rot(damaged.blobs, manifest.digest)
        engine = RepairEngine().add_layout(pristine, label="pristine")
        outcomes = engine.repair_layout(damaged)
        assert any(o.digest == manifest.digest and o.repaired for o in outcomes)
        assert damaged.audit() == []
        assert damaged.referenced_digests() == pristine.referenced_digests()


class TestNearestTagSuggestion:
    def _registry(self):
        registry = ImageRegistry()
        for tag in ("1.0", "1.1", "2.0-rc1"):
            manifest, config, layer = _make_image(tag.encode())
            registry.push(f"lab/app:{tag}", manifest, config, [layer])
        return registry

    def test_close_typo_suggested(self):
        registry = self._registry()
        with pytest.raises(KeyError) as excinfo:
            registry.pull("lab/app:2.0rc1")
        assert excinfo.value.suggestion == "lab/app:2.0-rc1"
        assert "did you mean" in str(excinfo.value)

    def test_distant_tag_still_suggests_something(self):
        registry = self._registry()
        with pytest.raises(KeyError) as excinfo:
            registry.pull("lab/app:9.9")
        suggestion = excinfo.value.suggestion
        assert suggestion is not None
        assert registry.exists(suggestion)     # always an existing ref

    def test_unknown_repository_has_no_suggestion(self):
        registry = self._registry()
        with pytest.raises(KeyError) as excinfo:
            registry.pull("lab/other:1.0")
        assert excinfo.value.suggestion is None

    def test_nearest_tag_helper_direct(self):
        registry = self._registry()
        assert registry._nearest_tag("lab/app", "1.2") in (
            "lab/app:1.0", "lab/app:1.1",
        )
        assert registry._nearest_tag("lab/none", "x") is None


class TestArtifactCacheUnderFaults:
    def _cache_blob(self, payload=b'{"artifacts": ["a.o", "b.o"]}'):
        return Blob.from_bytes(payload, "application/json")

    def test_roundtrip_plain(self):
        registry = ImageRegistry()
        blob = self._cache_blob()
        assert registry.put_artifact_cache("lab/app", blob) == blob.digest
        got = registry.get_artifact_cache("lab/app")
        assert got is not None and got.digest == blob.digest
        assert registry.get_artifact_cache("lab/none") is None

    def test_roundtrip_survives_transient_faults_with_retry(self):
        from repro.resilience import FaultInjector, FaultSpec
        from repro.resilience.retry import (
            RetryPolicy, SimulatedClock, retry_call,
        )

        registry = ImageRegistry()
        inj = FaultInjector(
            specs=[FaultSpec(site="blob.write", times=2)]
        )
        registry.blobs.fault_injector = inj
        blob = self._cache_blob()
        clock = SimulatedClock()
        retry_call(
            lambda: registry.put_artifact_cache("lab/app", blob),
            policy=RetryPolicy(max_attempts=4), clock=clock,
            site="registry.push",
        )
        got = registry.get_artifact_cache("lab/app")
        assert got is not None and got.digest == blob.digest
        assert clock.now > 0.0           # backoff was charged, not slept

    def test_corrupted_transfer_detected_and_replaced(self):
        from repro.oci.blobs import check_blob
        from repro.resilience import CorruptionSpec, FaultInjector

        registry = ImageRegistry()
        registry.fault_injector = FaultInjector(
            corruptions=[CorruptionSpec(site="registry.transfer", times=1)]
        )
        blob = self._cache_blob()
        registry.put_artifact_cache("lab/app", blob)
        stored = registry.get_artifact_cache("lab/app")
        assert check_blob(stored) is not None   # silent rot, detectable
        # The verified-put promotion path replaces it with good bytes.
        registry.blobs.put_verified(blob)
        assert check_blob(registry.get_artifact_cache("lab/app")) is None

    def test_replacing_cache_gcs_unreferenced_old_blob(self):
        registry = ImageRegistry()
        old = self._cache_blob(b'{"v": 1}')
        new = self._cache_blob(b'{"v": 2}')
        registry.put_artifact_cache("lab/app", old)
        registry.put_artifact_cache("lab/app", new)
        assert old.digest not in registry.blobs
        assert registry.get_artifact_cache("lab/app").digest == new.digest
