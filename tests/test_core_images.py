"""Tests for the coMtainer image set (Env / Base / Sysenv / Rebase)."""

import pytest

from repro import simbin
from repro.containers import ContainerEngine
from repro.core.images import (
    base_ref,
    env_ref,
    install_system_side_images,
    install_user_side_images,
    rebase_ref,
    sysenv_ref,
)
from repro.pkg.database import DpkgDatabase
from repro.sysmodel import AARCH64_CLUSTER, X86_CLUSTER


@pytest.fixture(scope="module")
def user_engine():
    engine = ContainerEngine(arch="amd64")
    install_user_side_images(engine)
    return engine


@pytest.fixture(scope="module")
def system_engine():
    engine = ContainerEngine(arch="amd64")
    install_system_side_images(engine, X86_CLUSTER)
    install_system_side_images(engine, X86_CLUSTER, flavor="llvm")
    return engine


class TestUserSideImages:
    def test_refs(self):
        assert env_ref("amd64") == "comt:amd64.env"
        assert base_ref("arm64") == "comt:arm64.base"

    def test_base_is_standard_compatible(self, user_engine):
        """Base = ubuntu + a marker; nothing else changes."""
        base_fs = user_engine.image_filesystem(base_ref("amd64"))
        ubuntu_fs = user_engine.image_filesystem("ubuntu:24.04")
        assert base_fs.exists("/.coMtainer/release")
        assert base_fs.exists("/bin/bash")
        # Same package set as the standard base.
        assert (DpkgDatabase.read_from(base_fs).names()
                == DpkgDatabase.read_from(ubuntu_fs).names())

    def test_env_has_toolchain(self, user_engine):
        fs = user_engine.image_filesystem(env_ref("amd64"))
        assert fs.exists("/usr/bin/gcc-12")
        assert fs.exists("/usr/bin/mpicc")
        assert fs.exists("/usr/bin/ar")

    def test_env_toolchain_is_hijacked(self, user_engine):
        fs = user_engine.image_filesystem(env_ref("amd64"))
        marker = simbin.read_program_marker(fs.read_file("/usr/bin/gcc-12"))
        assert marker["program"] == "hijack"
        assert marker["forward"]["program"] == "compiler-driver"
        assert marker["forward"]["toolchain"] == "gnu-12"

    def test_env_has_comtainer_build(self, user_engine):
        fs = user_engine.image_filesystem(env_ref("amd64"))
        marker = simbin.read_program_marker(fs.read_file("/usr/bin/coMtainer-build"))
        assert marker["program"] == "coMtainer-build"

    def test_hijack_does_not_break_compilation(self, user_engine):
        ctr = user_engine.from_image(env_ref("amd64"), name="hj-compile")
        ctr.fs.write_file("/s/x.c", "int x;\n" * 10, create_parents=True)
        result = user_engine.run(ctr, ["sh", "-c", "cd /s && gcc -c x.c"])
        assert result.ok, result.stderr
        assert ctr.fs.exists("/s/x.o")
        user_engine.remove_container("hj-compile")

    def test_idempotent_install(self, user_engine):
        install_user_side_images(user_engine)  # second call must not break
        assert user_engine.has_image(env_ref("amd64"))


class TestSystemSideImages:
    def test_sysenv_has_vendor_toolchain(self, system_engine):
        fs = system_engine.image_filesystem(sysenv_ref("x86"))
        marker = simbin.read_program_marker(fs.read_file("/opt/intel/bin/icx"))
        assert marker["program"] == "compiler-driver"
        assert marker["toolchain"] == "intel-2024"

    def test_sysenv_has_vendor_libraries(self, system_engine):
        fs = system_engine.image_filesystem(sysenv_ref("x86"))
        assert fs.exists("/usr/lib/x86_64-linux-gnu/libmkl_core.so.0")

    def test_sysenv_path_includes_vendor_bins(self, system_engine):
        stored = system_engine.image(sysenv_ref("x86"))
        assert "/opt/intel/bin" in stored.config.env_dict()["PATH"]

    def test_sysenv_sources_list_has_all_repos(self, system_engine):
        fs = system_engine.image_filesystem(sysenv_ref("x86"))
        sources = fs.read_text("/etc/apt/sources.list")
        assert "ubuntu-generic" in sources
        assert "intel-hpc" in sources
        assert "llvm-generic" in sources

    def test_llvm_flavor_sysenv(self, system_engine):
        fs = system_engine.image_filesystem(sysenv_ref("x86", "llvm"))
        assert fs.exists("/usr/bin/clang")
        # Optimized vendor *libraries* still present (artifact B.2: only
        # the proprietary compilers are substituted).
        assert fs.exists("/usr/lib/x86_64-linux-gnu/libmkl_core.so.0")
        # But the proprietary compiler is not.
        assert not fs.exists("/opt/intel/bin/icx")

    def test_rebase_is_minimal(self, system_engine):
        fs = system_engine.image_filesystem(rebase_ref("x86"))
        marker = simbin.read_program_marker(
            fs.read_file("/usr/bin/coMtainer-redirect")
        )
        assert marker["program"] == "coMtainer-redirect"
        assert not fs.exists("/usr/bin/gcc-12")   # no toolchain in Rebase

    def test_arm_system_images(self):
        engine = ContainerEngine(arch="arm64")
        install_system_side_images(engine, AARCH64_CLUSTER)
        fs = engine.image_filesystem(sysenv_ref("arm"))
        marker = simbin.read_program_marker(fs.read_file("/opt/phytium/bin/ftcc"))
        assert marker["toolchain"] == "phytium-kit-3"

    def test_arch_mismatch_asserts(self):
        engine = ContainerEngine(arch="amd64")
        with pytest.raises(AssertionError):
            install_system_side_images(engine, AARCH64_CLUSTER)
