"""Chaos suite for the corruption fault family.

The invariant under every seeded corruption, regardless of where it
lands: the pipeline **never emits a wrong-digest image**.  Either the
corrupt blob is repaired (and the adapted image is digest-identical to a
corruption-free run) or the session degrades/fails with a typed
``IntegrityError`` on record — silent wrongness is the one outcome the
verified-read layer rules out.
"""

import dataclasses

import pytest

from repro.apps import get_app
from repro.containers import ContainerEngine
from repro.core.cache.storage import decode_rebuild, extended_tag
from repro.core.frontend.build import IO_MOUNT
from repro.core.images import install_system_side_images, sysenv_ref
from repro.core.workflow import ComtainerSession, build_extended_image, run_workload
from repro.integrity import IntegrityError, find_integrity_error
from repro.integrity.fsck import fsck_layout
from repro.oci.layer import Layer
from repro.oci.registry import ImageRegistry
from repro.perf.runtime import attach_perf
from repro.resilience import (
    RUNG_FULL,
    RUNG_ORDER,
    CorruptionSpec,
    FaultInjector,
    FaultSpec,
    PersistentFault,
    RebuildJournal,
    ResiliencePolicy,
    adapt_with_resilience,
    has_journal,
    install_resilience,
    resilient_transfer,
    uninstall_resilience,
)
from repro.sysmodel import X86_CLUSTER

pytestmark = pytest.mark.chaos

CORRUPTION_SEEDS = list(range(10))


@pytest.fixture(scope="module")
def extended():
    engine = ContainerEngine(arch="amd64")
    return build_extended_image(engine, get_app("hpccg"))


@pytest.fixture(scope="module")
def system_engine():
    engine = ContainerEngine(arch="amd64")
    install_system_side_images(engine, X86_CLUSTER)
    recorder = attach_perf(engine, X86_CLUSTER)
    return engine, recorder


@pytest.fixture(scope="module")
def baseline_layer_key():
    """Layer digests of a corruption-free adapted image (the identity the
    repaired runs must reproduce exactly)."""
    session = ComtainerSession(system=X86_CLUSTER)
    ref = session.adapt("hpccg")
    return session.system_engine.image(ref).layer_key()


def _cache_layer_digest(layout, dist_tag):
    """Digest of the coMtainer cache layer (top layer of the +coM image)."""
    resolved = layout.resolve(extended_tag(dist_tag))
    return resolved.manifest.layers[-1].digest


def _corrupt_layer_blob(layout, digest):
    """Tamper a Layer-payload blob at rest, keeping its declared identity."""
    blob = layout.blobs.try_get(digest)
    assert blob is not None
    original = blob.payload
    tampered = Layer(entries=list(original.entries)[:-1],
                     comment=original.comment)
    layout.blobs.put(dataclasses.replace(blob, payload=tampered))


class TestAcceptance:
    """The issue's acceptance scenario, both branches."""

    def test_session_repairs_cache_corruption_digest_identical(
        self, baseline_layer_key
    ):
        session = ComtainerSession(
            system=X86_CLUSTER,
            resilience=ResiliencePolicy.permissive(seed=3),
        )
        layout, dist_tag = session.extended_layout("hpccg")
        _corrupt_layer_blob(layout, _cache_layer_digest(layout, dist_tag))

        ref = session.adapt("hpccg")
        report = session.resilience_reports[-1]
        # The corruption was detected (typed, on record) and repaired from
        # the registry replica, so the run recovered the *full* rung...
        assert report.integrity_errors
        assert report.repaired_digests
        assert report.rung == RUNG_FULL
        # ...and the adapted image is digest-identical to a clean run.
        assert session.system_engine.image(ref).layer_key() == baseline_layer_key
        # The repaired layout holds no corrupt or quarantined state.
        assert layout.audit() == []
        assert fsck_layout(layout).exit_code == 0

    def test_degrades_with_error_on_record_when_unrepairable(
        self, extended, system_engine
    ):
        layout, dist_tag = extended
        engine, recorder = system_engine
        registry = ImageRegistry()
        ctx = install_resilience(
            ResiliencePolicy.permissive(seed=11), registry=registry,
            engines=[engine],
        )
        try:
            remote = resilient_transfer(
                registry, layout, "repro/hpccg",
                (dist_tag, extended_tag(dist_tag)), ctx,
            )
            _corrupt_layer_blob(remote, _cache_layer_digest(remote, dist_tag))
            # No repair engine: the corruption cannot be healed, so the
            # ladder must descend — with the IntegrityError on record.
            report = adapt_with_resilience(
                engine, remote, X86_CLUSTER, ctx, recorder=recorder,
                ref="unrepairable:adapted", repair=None,
            )
            assert report.rung in RUNG_ORDER and report.rung != RUNG_FULL
            assert report.integrity_errors
            assert report.ref is not None
            # The degraded image is still runnable (generic binaries)...
            result = run_workload(engine, report.ref, "hpccg", recorder,
                                  vendor_mpirun=True)
            assert result.seconds > 0
            # ...and the corruption is still loudly visible to fsck.
            assert fsck_layout(remote).exit_code == 1
        finally:
            uninstall_resilience(registry=registry, engines=[engine])


class TestTransferCorruptionSweep:
    """Seeded corruption during distribution: repaired from the push
    source, or failed with a typed error — never silently wrong."""

    def _transfer_run(self, extended, system_engine, seed, corruption_rate):
        layout, dist_tag = extended
        engine, recorder = system_engine
        registry = ImageRegistry()
        injector = FaultInjector(seed=seed, rate=0.1,
                                 corruption_rate=corruption_rate)
        ctx = install_resilience(
            ResiliencePolicy.permissive(seed=seed, injector=injector),
            registry=registry, engines=[engine],
        )
        try:
            remote = resilient_transfer(
                registry, layout, "repro/hpccg",
                (dist_tag, extended_tag(dist_tag)), ctx,
            )
            # Everything the transfer handed over is verified content.
            assert remote.audit() == []
            report = adapt_with_resilience(
                engine, remote, X86_CLUSTER, ctx, recorder=recorder,
                ref=f"corrupt{seed}:adapted",
            )
            assert report.rung in RUNG_ORDER
            assert report.ref is not None
            injector.enabled = False
            result = run_workload(engine, report.ref, "hpccg", recorder,
                                  vendor_mpirun=True)
            assert result.seconds > 0
            return injector, True
        except Exception as exc:
            # A failed run must fail *typed*: the corruption was detected,
            # not served.
            assert find_integrity_error(exc) is not None, exc
            return injector, False
        finally:
            uninstall_resilience(registry=registry, engines=[engine])

    @pytest.mark.parametrize("seed", CORRUPTION_SEEDS)
    def test_seeded_transfer_corruption(self, extended, system_engine, seed):
        self._transfer_run(extended, system_engine, seed, corruption_rate=0.2)

    def test_sweep_actually_corrupts_and_mostly_recovers(
        self, extended, system_engine
    ):
        corrupted = 0
        completed = 0
        for seed in CORRUPTION_SEEDS:
            injector, ok = self._transfer_run(
                extended, system_engine, seed, corruption_rate=0.2)
            corrupted += sum(
                1 for r in injector.log if r.kind.startswith("corrupt-"))
            completed += int(ok)
        # Guard against a silently disarmed injector, and require the
        # push-source repair path to actually absorb most of the damage.
        assert corrupted > 0
        assert completed >= len(CORRUPTION_SEEDS) // 2


class TestJournalCorruption:
    def _fresh_layout(self, extended):
        layout, dist_tag = extended
        from repro.oci.layout import OCILayout

        fresh = OCILayout()
        for tag in (dist_tag, extended_tag(dist_tag)):
            resolved = layout.resolve(tag)
            fresh.add_manifest(resolved.manifest, resolved.config,
                               resolved.layers, tag=tag)
        return fresh, dist_tag

    @pytest.mark.parametrize("mode", ["torn", "bitflip"])
    def test_corrupted_journal_resume_recompiles_not_crashes(
        self, extended, system_engine, mode
    ):
        """Every ``--journal`` flush during run 1 lands corrupted; run 2
        must salvage what parses, recompile the rest, and finish clean."""
        engine, _recorder = system_engine
        layout, dist_tag = self._fresh_layout(extended)
        from repro.core.cache.storage import decode_cache

        models, _sources, _resolved = decode_cache(layout, dist_tag)
        step_nodes = [n for n in models.graph.topo_order() if n.step is not None]
        victim = step_nodes[-1]

        engine.fault_injector = FaultInjector(
            specs=[FaultSpec(site="rebuild.node", kind="persistent",
                             match=victim.id)]
        )
        layout.blobs.fault_injector = FaultInjector(
            corruptions=[CorruptionSpec(site="journal.append", mode=mode,
                                        times=-1)]
        )
        name1 = f"journal-corrupt-{mode}-run1"
        ctr1 = engine.from_image(sysenv_ref("x86"), name=name1,
                                 mounts={IO_MOUNT: layout})
        try:
            with pytest.raises(PersistentFault):
                engine.run(ctr1, ["coMtainer-rebuild", "--journal"])
        finally:
            engine.fault_injector = None
            layout.blobs.fault_injector = None
            engine.remove_container(name1)

        # The blob store stayed self-consistent (the journal digest covers
        # whatever bytes actually landed)...
        assert layout.audit() == []
        # ...and the salvage sees a strict subset of the checkpoints.
        assert has_journal(layout, dist_tag)
        journal = RebuildJournal(layout, dist_tag)
        salvaged = set(journal.node_ids())
        assert victim.id not in salvaged

        name2 = f"journal-corrupt-{mode}-run2"
        ctr2 = engine.from_image(sysenv_ref("x86"), name=name2,
                                 mounts={IO_MOUNT: layout})
        try:
            engine.run(ctr2, ["coMtainer-rebuild", "--journal"]).check()
        finally:
            engine.remove_container(name2)

        meta = decode_rebuild(layout, dist_tag)[0]
        # Nothing was trusted blindly: only salvaged checkpoints may be
        # restored (a damaged sibling forces its whole command group to
        # recompile, so restore can be a strict subset), and every node
        # run 1 completed but the salvage dropped was re-executed.
        restored = set(meta["journal_restored"])
        executed = set(meta["executed_nodes"])
        completed = {n.id for n in step_nodes} - {victim.id}
        assert restored <= salvaged
        assert victim.id in executed
        assert not (executed & restored)
        assert (completed - salvaged) <= executed
        assert not has_journal(layout, dist_tag)
        assert layout.audit() == []
