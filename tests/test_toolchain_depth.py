"""Deeper toolchain coverage: response files, env paths, vendor drivers,
Fortran, preprocessing to files, and driver/option interplay."""

import pytest

from repro.toolchain.artifacts import (
    ExecutableArtifact,
    ObjectArtifact,
    SharedObjectArtifact,
    read_artifact,
)
from repro.toolchain.drivers import CompilerDriver, CompilerError
from repro.toolchain.info import get_toolchain, known_toolchains
from repro.vfs import VirtualFilesystem


@pytest.fixture
def fs():
    filesystem = VirtualFilesystem()
    filesystem.write_file("/src/main.c", "int main(){return 0;}\n" * 30,
                          create_parents=True)
    filesystem.write_file("/src/solve.f90", "program solve\nend program\n" * 40,
                          create_parents=True)
    return filesystem


class TestResponseFiles:
    def test_driver_expands_rsp(self, fs):
        fs.write_file("/src/flags.rsp", "-O3 -funroll-loops -DFAST=1")
        gcc = CompilerDriver("gnu-12", isa="x86-64")
        gcc.execute(["gcc", "@flags.rsp", "-c", "main.c"], fs, cwd="/src")
        obj = read_artifact(fs.read_file("/src/main.o"))
        assert obj.opt_level == "3"
        assert obj.fflags["unroll-loops"] is True
        assert "FAST=1" in obj.defines

    def test_missing_rsp_raises(self, fs):
        gcc = CompilerDriver("gnu-12", isa="x86-64")
        with pytest.raises(Exception):
            gcc.execute(["gcc", "@ghost.rsp", "-c", "main.c"], fs, cwd="/src")


class TestLibraryPathEnv:
    def test_library_path_searched(self, fs):
        fs.write_file("/custom/libs/libweird.so", b"x", create_parents=True)
        gcc = CompilerDriver("gnu-12", isa="x86-64")
        gcc.execute(
            ["gcc", "main.c", "-lweird", "-o", "app"], fs, cwd="/src",
            env={"LIBRARY_PATH": "/custom/libs"},
        )
        exe = read_artifact(fs.read_file("/src/app"))
        assert exe.lib_paths["weird"] == "/custom/libs/libweird.so"

    def test_l_flag_beats_library_path(self, fs):
        fs.write_file("/a/libdual.so", b"a", create_parents=True)
        fs.write_file("/b/libdual.so", b"b", create_parents=True)
        gcc = CompilerDriver("gnu-12", isa="x86-64")
        gcc.execute(
            ["gcc", "main.c", "-L/a", "-ldual", "-o", "app"], fs, cwd="/src",
            env={"LIBRARY_PATH": "/b"},
        )
        exe = read_artifact(fs.read_file("/src/app"))
        assert exe.lib_paths["dual"] == "/a/libdual.so"

    def test_static_preference(self, fs):
        fs.makedirs("/usr/lib")
        fs.write_file("/usr/lib/libpick.so", b"so")
        # Static preference only matters when a real .a artifact exists;
        # here only the .so exists, so -static still resolves the .so path
        # ... unless an archive is present:
        gcc = CompilerDriver("gnu-12", isa="x86-64")
        gcc.execute(["gcc", "main.c", "-lpick", "-o", "app"], fs, cwd="/src")
        exe = read_artifact(fs.read_file("/src/app"))
        assert exe.lib_paths["pick"].endswith(".so")


class TestVendorAndLlvmDrivers:
    @pytest.mark.parametrize("toolchain_id,isa", [
        ("intel-2024", "x86-64"),
        ("phytium-kit-3", "aarch64"),
        ("llvm-17", "x86-64"),
        ("llvm-17", "aarch64"),
    ])
    def test_compile_and_provenance(self, fs, toolchain_id, isa):
        driver = CompilerDriver(toolchain_id, isa=isa)
        driver.execute(["cc", "-O2", "-march=native", "-c", "main.c"],
                       fs, cwd="/src")
        obj = read_artifact(fs.read_file("/src/main.o"))
        assert obj.toolchain == toolchain_id
        assert obj.isa == isa

    def test_vendor_rejects_unsupported_isa_quality(self):
        info = get_toolchain("intel-2024")
        assert not info.supports("aarch64")
        assert info.quality_on("aarch64") == 1.0   # neutral off-target

    def test_known_toolchains(self):
        assert set(known_toolchains()) >= {
            "gnu-12", "llvm-17", "intel-2024", "phytium-kit-3"
        }

    def test_unknown_toolchain_raises(self):
        with pytest.raises(KeyError):
            get_toolchain("pgi-19")

    def test_version_banner(self, fs):
        result = CompilerDriver("phytium-kit-3", isa="aarch64").execute(
            ["ftcc", "--version"], fs
        )
        assert "Phytium" in result.stdout
        assert "aarch64" in result.stdout


class TestFortran:
    def test_fortran_compile(self, fs):
        gfortran = CompilerDriver("gnu-12", role="fc", isa="x86-64")
        gfortran.execute(["gfortran", "-O2", "-c", "solve.f90"], fs, cwd="/src")
        obj = read_artifact(fs.read_file("/src/solve.o"))
        assert obj.language == "fortran"

    def test_fortran_link_with_runtime(self, fs):
        gfortran = CompilerDriver("gnu-12", role="fc", isa="x86-64")
        gfortran.execute(
            ["gfortran", "-O2", "solve.f90", "-o", "solver", "-lgfortran"],
            fs, cwd="/src",
        )
        exe = read_artifact(fs.read_file("/src/solver"))
        assert isinstance(exe, ExecutableArtifact)
        assert "gfortran" in exe.libs

    def test_fortran_flags(self, fs):
        gfortran = CompilerDriver("gnu-12", role="fc", isa="x86-64")
        gfortran.execute(
            ["gfortran", "-O3", "-fdefault-real-8", "-c", "solve.f90"],
            fs, cwd="/src",
        )
        obj = read_artifact(fs.read_file("/src/solve.o"))
        assert obj.fflags["default-real-8"] is True


class TestPipelineModes:
    def test_preprocess_to_file(self, fs):
        gcc = CompilerDriver("gnu-12", isa="x86-64")
        gcc.execute(["gcc", "-E", "main.c", "-o", "main.i"], fs, cwd="/src")
        assert '"main.c"' in fs.read_text("/src/main.i")

    def test_assemble_mode(self, fs):
        gcc = CompilerDriver("gnu-12", isa="x86-64")
        result = gcc.execute(["gcc", "-S", "main.c"], fs, cwd="/src")
        assert result.outputs == ["main.s"]
        assert "asm for" in fs.read_text("/src/main.s")

    def test_shared_without_soname(self, fs):
        gcc = CompilerDriver("gnu-12", isa="x86-64")
        gcc.execute(["gcc", "-shared", "-fPIC", "main.c", "-o", "libm1.so"],
                    fs, cwd="/src")
        so = read_artifact(fs.read_file("/src/libm1.so"))
        assert isinstance(so, SharedObjectArtifact)
        assert so.soname is None

    def test_link_against_simulated_shared_artifact(self, fs):
        gcc = CompilerDriver("gnu-12", isa="x86-64")
        gcc.execute(["gcc", "-shared", "-fPIC", "main.c", "-o", "/usr/lib/libown.so"],
                    fs, cwd="/src")
        gcc.execute(["gcc", "main.c", "-lown", "-o", "app"], fs, cwd="/src")
        exe = read_artifact(fs.read_file("/src/app"))
        assert exe.lib_paths["own"] == "/usr/lib/libown.so"

    def test_direct_shared_input(self, fs):
        gcc = CompilerDriver("gnu-12", isa="x86-64")
        gcc.execute(["gcc", "-shared", "main.c", "-o", "libx.so.2"], fs, cwd="/src")
        gcc.execute(["gcc", "main.c", "libx.so.2", "-o", "app"], fs, cwd="/src")
        exe = read_artifact(fs.read_file("/src/app"))
        assert exe.lib_paths["x"] == "/src/libx.so.2"

    def test_source_directory_rejected(self, fs):
        gcc = CompilerDriver("gnu-12", isa="x86-64")
        fs.makedirs("/src/adir.c")
        with pytest.raises(CompilerError, match="is a directory"):
            gcc.execute(["gcc", "-c", "adir.c"], fs, cwd="/src")


class TestObjectProvenanceDetails:
    def test_command_recorded(self, fs):
        gcc = CompilerDriver("gnu-12", isa="x86-64")
        gcc.execute(["gcc", "-O2", "-c", "main.c"], fs, cwd="/src")
        obj = read_artifact(fs.read_file("/src/main.o"))
        assert obj.command[0] == "gcc"
        assert "-O2" in obj.command

    def test_debug_flag_recorded(self, fs):
        gcc = CompilerDriver("gnu-12", isa="x86-64")
        gcc.execute(["gcc", "-g", "-c", "main.c"], fs, cwd="/src")
        assert read_artifact(fs.read_file("/src/main.o")).debug

    def test_lto_grows_object(self, fs):
        gcc = CompilerDriver("gnu-12", isa="x86-64")
        gcc.execute(["gcc", "-O2", "-c", "main.c", "-o", "plain.o"], fs, cwd="/src")
        gcc.execute(["gcc", "-O2", "-flto", "-c", "main.c", "-o", "fat.o"],
                    fs, cwd="/src")
        assert fs.file_size("/src/fat.o") > fs.file_size("/src/plain.o")
