"""Deeper shell executor coverage."""

import pytest

from repro.containers import ContainerEngine
from repro.containers.shell import Shell
from repro.images import install_ubuntu_base


@pytest.fixture(scope="module")
def engine():
    eng = ContainerEngine(arch="amd64")
    install_ubuntu_base(eng)
    return eng


@pytest.fixture
def shell(engine):
    container = engine.from_image("ubuntu:24.04", name="shtest")
    yield Shell(engine, container), container
    engine.remove_container("shtest")


def run(shell_tuple, script):
    shell, container = shell_tuple
    return shell.run_script(script, env=container.environment(), cwd="/")


class TestBuiltins:
    def test_exit_stops_script(self, shell):
        result = run(shell, "echo before\nexit 3\necho after\n")
        assert result.exit_code == 3
        assert "before" in result.stdout
        assert "after" not in result.stdout

    def test_exit_zero_default(self, shell):
        assert run(shell, "exit").exit_code == 0

    def test_unset(self, shell):
        result = run(shell, "X=1\nunset X\necho [$X]\n")
        assert result.stdout == "[]\n"

    def test_colon_noop(self, shell):
        assert run(shell, ": ignored args\necho ok\n").stdout == "ok\n"

    def test_cd_missing_dir_fails_script(self, shell):
        result = run(shell, "cd /missing\necho unreachable\n")
        assert result.exit_code == 1
        assert "unreachable" not in result.stdout

    def test_cd_home_default(self, shell):
        _, container = shell
        container.fs.makedirs("/root")
        result = run(shell, "cd\ntouch marker\n")
        assert result.ok
        assert container.fs.exists("/root/marker")

    def test_assignment_only_line(self, shell):
        result = run(shell, "JUST=assignment\necho $JUST\n")
        assert result.stdout == "assignment\n"

    def test_prefix_assignment_does_not_persist(self, shell):
        result = run(shell, "X=once env\necho [$X]\n")
        assert "X=once" in result.stdout         # visible to the command
        assert result.stdout.endswith("[]\n")    # not persisted


class TestOperators:
    def test_or_short_circuits(self, shell):
        result = run(shell, "true || echo skipped\necho done\n")
        assert result.stdout == "done\n"

    def test_and_short_circuits(self, shell):
        result = run(shell, "missing-cmd && echo skipped || echo rescued\n")
        assert "rescued" in result.stdout
        assert "skipped" not in result.stdout

    def test_mixed_chain_left_to_right(self, shell):
        result = run(shell, "echo a && missing || echo b && echo c\n")
        assert result.stdout == "a\nb\nc\n"

    def test_semicolon_continues_after_success(self, shell):
        assert run(shell, "echo a; echo b\n").stdout == "a\nb\n"

    def test_errexit_between_statements(self, shell):
        result = run(shell, "missing-cmd\necho never\n")
        assert result.exit_code != 0
        assert "never" not in result.stdout


class TestRedirectsAndGlobs:
    def test_redirect_failing_command_keeps_stderr(self, shell):
        result = run(shell, "missing-cmd > /out.txt\n")
        assert not result.ok
        _, container = shell
        assert not container.fs.exists("/out.txt")

    def test_glob_no_match_stays_literal(self, shell):
        result = run(shell, "echo *.nomatch\n")
        assert result.stdout == "*.nomatch\n"

    def test_glob_question_mark(self, shell):
        _, container = shell
        container.fs.makedirs("/g")
        for name in ("a1.o", "a2.o", "b12.o"):
            container.fs.write_file(f"/g/{name}", b"")
        result = run(shell, "cd /g && echo a?.o\n")
        assert result.stdout == "a1.o a2.o\n"

    def test_quoted_glob_literal(self, shell):
        _, container = shell
        container.fs.write_file("/x.o", b"")
        result = run(shell, "echo '*.o'\n")
        assert result.stdout == "*.o\n"

    def test_redirect_target_with_vars(self, shell):
        result = run(shell, "OUT=/v.txt\necho data > $OUT\ncat /v.txt\n")
        assert result.stdout == "data\n"

    def test_append_creates_file(self, shell):
        _, container = shell
        run(shell, "echo x >> /fresh.txt\n")
        assert container.fs.read_text("/fresh.txt") == "x\n"


class TestSyntaxErrors:
    def test_unterminated_quote_reports(self, shell):
        result = run(shell, "echo 'oops\n")
        assert result.exit_code == 2
        assert "unterminated" in result.stderr

    def test_leading_operator_reports(self, shell):
        result = run(shell, "&& echo nope\n")
        assert result.exit_code == 2


class TestExitRobustness:
    def test_exit_with_garbage_code(self, shell):
        result = run(shell, "exit notanumber\n")
        assert result.exit_code == 2
