"""Tests for LTO scope helpers and PGO profile plumbing."""

import pytest

from repro.core.models import BuildGraph, BuildNode, CompilationStep
from repro.core.optimizations import (
    lto_scope_all,
    lto_scope_excluding,
    lto_scope_for_sinks,
    profile_bytes_for,
    read_profile,
)


def _diamond_graph():
    """a.c -> a.o \\
               app1
       b.c -> b.o /   ; c.c -> c.o -> app2"""
    graph = BuildGraph()
    step = CompilationStep(argv=["gcc", "-c", "x.c"])
    for src in ("a", "b", "c"):
        graph.ensure(f"/{src}.c")
        graph.add(BuildNode(id=f"/{src}.o", kind="object", path=f"/{src}.o",
                            deps=[f"/{src}.c"], step=step))
    graph.add(BuildNode(id="/app1", kind="executable", path="/app1",
                        deps=["/a.o", "/b.o"], step=step))
    graph.add(BuildNode(id="/app2", kind="executable", path="/app2",
                        deps=["/c.o"], step=step))
    return graph


class TestLtoScope:
    def test_all_covers_produced_nodes(self):
        scope = lto_scope_all(_diamond_graph())
        assert set(scope) == {"/a.o", "/b.o", "/c.o", "/app1", "/app2"}

    def test_sources_never_in_scope(self):
        assert "/a.c" not in lto_scope_all(_diamond_graph())

    def test_excluding(self):
        scope = lto_scope_excluding(_diamond_graph(), ["/a.o"])
        assert "/a.o" not in scope
        assert "/b.o" in scope and "/app1" in scope

    def test_excluding_by_path(self):
        scope = lto_scope_excluding(_diamond_graph(), ["/b.o"])
        assert "/b.o" not in scope

    def test_for_sinks_restricts_to_ancestry(self):
        scope = lto_scope_for_sinks(_diamond_graph(), ["/app2"])
        assert set(scope) == {"/c.o", "/app2"}

    def test_for_sinks_multiple(self):
        scope = lto_scope_for_sinks(_diamond_graph(), ["/app1", "/app2"])
        assert set(scope) == {"/a.o", "/b.o", "/c.o", "/app1", "/app2"}

    def test_for_sinks_unknown_is_empty(self):
        assert lto_scope_for_sinks(_diamond_graph(), ["/ghost"]) == []


class TestPgoProfiles:
    def test_roundtrip(self):
        data = profile_bytes_for("lulesh", "x86")
        profile = read_profile(data)
        assert profile["profile"] == "lulesh|x86"
        assert profile["quality"] == 1.0

    def test_custom_quality(self):
        profile = read_profile(profile_bytes_for("hpl", "arm", quality=0.4))
        assert profile["quality"] == 0.4

    def test_malformed_returns_none(self):
        assert read_profile(b"not json") is None
        assert read_profile(b'{"other": 1}') is None
