"""Tests for the simulated binary marker formats."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import simbin


class TestProgramMarkers:
    def test_roundtrip(self):
        data = simbin.program_marker("gcc", toolchain="gnu-12", role="cc")
        marker = simbin.read_program_marker(data)
        assert marker == {"program": "gcc", "toolchain": "gnu-12", "role": "cc"}

    def test_is_program(self):
        assert simbin.is_program(simbin.program_marker("x"))
        assert not simbin.is_program(b"#!/bin/sh\necho")
        assert not simbin.is_program(b"")

    def test_garbage_after_magic(self):
        assert simbin.read_program_marker(b"#!sim\nnot json") is None

    def test_json_without_program_key(self):
        assert simbin.read_program_marker(b'#!sim\n{"x": 1}') is None

    def test_artifact_magic_is_not_program(self):
        data = simbin.artifact_payload("object", {"sources": []})
        assert simbin.read_program_marker(data) is None


class TestArtifactPayloads:
    def test_roundtrip(self):
        data = simbin.artifact_payload("object", {"sources": ["/a.c"], "opt": "2"})
        payload = simbin.read_artifact_payload(data)
        assert payload["kind"] == "object"
        assert payload["sources"] == ["/a.c"]

    def test_is_artifact(self):
        assert simbin.is_artifact(simbin.artifact_payload("archive", {}))
        assert not simbin.is_artifact(simbin.program_marker("x"))
        assert not simbin.is_artifact(b"\x7fELF real elf")

    def test_trailing_whitespace_tolerated(self):
        data = simbin.artifact_payload("object", {}) + b"    "
        assert simbin.read_artifact_payload(data)["kind"] == "object"


@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.dictionaries(
    st.text(alphabet="abcxyz_", min_size=1, max_size=8),
    st.one_of(st.integers(-100, 100), st.text(max_size=10), st.booleans()),
    max_size=5,
))
def test_program_marker_meta_roundtrip(meta):
    meta.pop("program", None)
    data = simbin.program_marker("prog", **meta)
    marker = simbin.read_program_marker(data)
    assert marker.pop("program") == "prog"
    assert marker == meta
