"""Unit tests for the virtual filesystem."""

import pytest

from repro.vfs import (
    Directory,
    InlineContent,
    NotFoundError,
    RegularFile,
    Symlink,
    SymlinkLoopError,
    SyntheticContent,
    VfsError,
    VirtualFilesystem,
)
from repro.vfs.errors import FileExistsVfsError, IsADirectoryVfsError, NotADirectoryVfsError


@pytest.fixture
def fs():
    return VirtualFilesystem()


class TestBasicOps:
    def test_root_exists(self, fs):
        assert fs.exists("/")
        assert fs.is_dir("/")

    def test_write_read_file(self, fs):
        fs.write_file("/hello.txt", "hi", create_parents=True)
        assert fs.read_text("/hello.txt") == "hi"
        assert fs.is_file("/hello.txt")

    def test_write_bytes(self, fs):
        fs.write_file("/b.bin", b"\x00\x01", create_parents=True)
        assert fs.read_file("/b.bin") == b"\x00\x01"

    def test_write_without_parent_raises(self, fs):
        with pytest.raises(NotFoundError):
            fs.write_file("/no/such/dir/f", "x")

    def test_write_with_create_parents(self, fs):
        fs.write_file("/a/b/c/f", "x", create_parents=True)
        assert fs.is_dir("/a/b/c")
        assert fs.read_text("/a/b/c/f") == "x"

    def test_mkdir(self, fs):
        fs.mkdir("/opt")
        assert fs.is_dir("/opt")

    def test_mkdir_existing_raises(self, fs):
        fs.mkdir("/opt")
        with pytest.raises(FileExistsVfsError):
            fs.mkdir("/opt")

    def test_mkdir_exist_ok(self, fs):
        fs.mkdir("/opt")
        fs.mkdir("/opt", exist_ok=True)

    def test_makedirs(self, fs):
        fs.makedirs("/a/b/c")
        assert fs.is_dir("/a/b/c")
        fs.makedirs("/a/b/c")  # idempotent

    def test_makedirs_through_file_raises(self, fs):
        fs.write_file("/a", "x")
        with pytest.raises(NotADirectoryVfsError):
            fs.makedirs("/a/b")

    def test_listdir_sorted(self, fs):
        fs.makedirs("/d")
        fs.write_file("/d/z", "1")
        fs.write_file("/d/a", "2")
        assert fs.listdir("/d") == ["a", "z"]

    def test_read_directory_raises(self, fs):
        fs.mkdir("/d")
        with pytest.raises(IsADirectoryVfsError):
            fs.read_file("/d")

    def test_overwrite_file(self, fs):
        fs.write_file("/f", "one")
        fs.write_file("/f", "two")
        assert fs.read_text("/f") == "two"

    def test_overwrite_dir_with_file_raises(self, fs):
        fs.mkdir("/d")
        with pytest.raises(IsADirectoryVfsError):
            fs.write_file("/d", "x")

    def test_file_size(self, fs):
        fs.write_file("/f", b"12345")
        assert fs.file_size("/f") == 5

    def test_chmod(self, fs):
        fs.write_file("/f", "x")
        fs.chmod("/f", 0o755)
        assert fs.get_node("/f").mode == 0o755


class TestRemoveRename:
    def test_remove_file(self, fs):
        fs.write_file("/f", "x")
        fs.remove("/f")
        assert not fs.exists("/f")

    def test_remove_missing_raises(self, fs):
        with pytest.raises(NotFoundError):
            fs.remove("/nope")

    def test_remove_missing_ok(self, fs):
        fs.remove("/nope", missing_ok=True)

    def test_remove_nonempty_dir_requires_recursive(self, fs):
        fs.makedirs("/d/sub")
        with pytest.raises(VfsError):
            fs.remove("/d")
        fs.remove("/d", recursive=True)
        assert not fs.exists("/d")

    def test_rename(self, fs):
        fs.write_file("/a", "x")
        fs.rename("/a", "/b")
        assert not fs.exists("/a")
        assert fs.read_text("/b") == "x"

    def test_rename_dir(self, fs):
        fs.makedirs("/d1/s")
        fs.write_file("/d1/s/f", "x")
        fs.rename("/d1", "/d2")
        assert fs.read_text("/d2/s/f") == "x"


class TestSymlinks:
    def test_create_and_read(self, fs):
        fs.write_file("/target", "data")
        fs.symlink("/target", "/link")
        assert fs.is_symlink("/link")
        assert fs.read_text("/link") == "data"
        assert fs.readlink("/link") == "/target"

    def test_relative_symlink(self, fs):
        fs.makedirs("/usr/bin")
        fs.write_file("/usr/bin/gcc-12", "real")
        fs.symlink("gcc-12", "/usr/bin/gcc")
        assert fs.read_text("/usr/bin/gcc") == "real"

    def test_symlink_through_directory(self, fs):
        fs.makedirs("/real/dir")
        fs.write_file("/real/dir/f", "x")
        fs.symlink("/real", "/alias")
        assert fs.read_text("/alias/dir/f") == "x"

    def test_resolve_path_canonicalizes(self, fs):
        fs.makedirs("/real")
        fs.write_file("/real/f", "x")
        fs.symlink("/real", "/alias")
        assert fs.resolve_path("/alias/f") == "/real/f"

    def test_dangling_symlink(self, fs):
        fs.symlink("/nowhere", "/dangling")
        assert fs.lexists("/dangling")
        assert not fs.exists("/dangling")

    def test_symlink_loop_detected(self, fs):
        fs.symlink("/b", "/a")
        fs.symlink("/a", "/b")
        with pytest.raises(SymlinkLoopError):
            fs.read_file("/a")

    def test_self_loop(self, fs):
        fs.symlink("/self", "/self")
        with pytest.raises(SymlinkLoopError):
            fs.get_node("/self")

    def test_symlink_chain(self, fs):
        fs.write_file("/end", "v")
        fs.symlink("/end", "/l1")
        fs.symlink("/l1", "/l2")
        fs.symlink("/l2", "/l3")
        assert fs.read_text("/l3") == "v"

    def test_no_follow_final(self, fs):
        fs.write_file("/t", "x")
        fs.symlink("/t", "/l")
        node = fs.get_node("/l", follow_symlinks=False)
        assert isinstance(node, Symlink)


class TestTraversal:
    def _populate(self, fs):
        fs.makedirs("/usr/bin")
        fs.makedirs("/usr/lib")
        fs.makedirs("/etc")
        fs.write_file("/usr/bin/gcc", "g")
        fs.write_file("/usr/lib/libc.so", "c")
        fs.write_file("/etc/passwd", "p")
        fs.symlink("/usr/bin/gcc", "/usr/bin/cc")

    def test_walk_preorder_sorted(self, fs):
        self._populate(fs)
        dirs = [d for d, _, _ in fs.walk("/")]
        assert dirs == ["/", "/etc", "/usr", "/usr/bin", "/usr/lib"]

    def test_walk_does_not_follow_symlinks(self, fs):
        fs.makedirs("/a")
        fs.symlink("/", "/a/rootlink")
        dirs = [d for d, _, _ in fs.walk("/")]
        assert "/a/rootlink" not in dirs

    def test_iter_files(self, fs):
        self._populate(fs)
        files = dict(fs.iter_files("/"))
        assert set(files) == {"/usr/bin/gcc", "/usr/lib/libc.so", "/etc/passwd"}

    def test_iter_entries_includes_symlinks(self, fs):
        self._populate(fs)
        entries = dict(fs.iter_entries("/"))
        assert isinstance(entries["/usr/bin/cc"], Symlink)
        assert isinstance(entries["/usr"], Directory)
        assert isinstance(entries["/etc/passwd"], RegularFile)

    def test_total_size(self, fs):
        fs.write_file("/a", b"123")
        fs.write_file("/b", b"4567")
        assert fs.total_size() == 7

    def test_total_size_synthetic(self, fs):
        fs.write_file("/big", SyntheticContent("seed", 10_000_000))
        assert fs.total_size() == 10_000_000


class TestTreeOps:
    def test_clone_independent(self, fs):
        fs.write_file("/f", "orig", create_parents=True)
        clone = fs.clone()
        clone.write_file("/f", "changed")
        clone.write_file("/new", "n")
        assert fs.read_text("/f") == "orig"
        assert not fs.exists("/new")

    def test_copy_tree_within(self, fs):
        fs.makedirs("/src/sub")
        fs.write_file("/src/sub/f", "x")
        fs.symlink("f", "/src/sub/l")
        fs.copy_tree("/src", "/dst")
        assert fs.read_text("/dst/sub/f") == "x"
        assert fs.readlink("/dst/sub/l") == "f"

    def test_copy_tree_across_filesystems(self, fs):
        other = VirtualFilesystem()
        other.write_file("/data/f", "远", create_parents=True)
        fs.copy_tree("/data", "/imported", source_fs=other)
        assert fs.read_text("/imported/f") == "远"

    def test_overlay(self, fs):
        fs.write_file("/kept", "k")
        fs.write_file("/replaced", "old")
        other = VirtualFilesystem()
        other.write_file("/replaced", "new")
        other.write_file("/added", "a")
        fs.overlay(other)
        assert fs.read_text("/kept") == "k"
        assert fs.read_text("/replaced") == "new"
        assert fs.read_text("/added") == "a"


class TestContent:
    def test_synthetic_deterministic(self):
        a = SyntheticContent("s", 100)
        b = SyntheticContent("s", 100)
        assert a.digest == b.digest
        assert a.read() == b.read()
        assert len(a.read()) == 100

    def test_synthetic_distinct_seeds(self):
        assert SyntheticContent("a", 10).digest != SyntheticContent("b", 10).digest

    def test_synthetic_distinct_sizes(self):
        assert SyntheticContent("a", 10).digest != SyntheticContent("a", 11).digest

    def test_synthetic_negative_size_rejected(self):
        with pytest.raises(ValueError):
            SyntheticContent("a", -1)

    def test_inline_digest_matches_sha(self):
        import hashlib

        c = InlineContent(b"hello")
        assert c.digest == "sha256:" + hashlib.sha256(b"hello").hexdigest()

    def test_inline_synthetic_never_collide(self):
        # A synthetic file and an inline file with identical bytes must not
        # share a digest: digests identify providers, not streams.
        syn = SyntheticContent("x", 32)
        inline = InlineContent(syn.read())
        assert syn.digest != inline.digest


class TestSortedItemsCache:
    def _dir(self):
        d = Directory()
        d.children["zeta"] = RegularFile(content=InlineContent(b"z"))
        d.children["alpha"] = RegularFile(content=InlineContent(b"a"))
        d.children["mid"] = RegularFile(content=InlineContent(b"m"))
        return d

    def test_iteration_order_is_lexicographic(self):
        # Pinned: every consumer (diffing, layer encoding, tar walks)
        # relies on name order regardless of insertion order.
        d = self._dir()
        assert [name for name, _ in d.sorted_items()] == [
            "alpha", "mid", "zeta"]

    def test_repeat_calls_reuse_cached_list(self):
        d = self._dir()
        assert d.sorted_items() is d.sorted_items()

    def test_cache_invalidated_on_every_mutation(self):
        d = self._dir()
        first = d.sorted_items()
        d.children["beta"] = RegularFile(content=InlineContent(b"b"))
        assert [n for n, _ in d.sorted_items()] == [
            "alpha", "beta", "mid", "zeta"]
        del d.children["zeta"]
        assert [n for n, _ in d.sorted_items()] == ["alpha", "beta", "mid"]
        d.children.pop("mid")
        assert [n for n, _ in d.sorted_items()] == ["alpha", "beta"]
        d.children.update({"omega": RegularFile(content=InlineContent(b"o"))})
        assert [n for n, _ in d.sorted_items()] == ["alpha", "beta", "omega"]
        d.children.clear()
        assert d.sorted_items() == []
        assert first[0][0] == "alpha"   # old snapshots are unaffected

    def test_clone_does_not_share_cache_entries(self):
        d = self._dir()
        d.sorted_items()
        twin = d.clone()
        twin.children["extra"] = RegularFile(content=InlineContent(b"e"))
        assert [n for n, _ in twin.sorted_items()] == [
            "alpha", "extra", "mid", "zeta"]
        assert [n for n, _ in d.sorted_items()] == ["alpha", "mid", "zeta"]
