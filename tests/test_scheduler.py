"""Unit tests for the parallel wavefront scheduler, the build-cost model,
the iterative topological sort, and the rebuild artifact cache."""

import pytest

from repro.core.adapters.base import RebuildOptions
from repro.core.backend.scheduler import (
    compute_wavefronts,
    lpt_schedule,
    plan_command_groups,
)
from repro.core.cache.artifacts import (
    RebuildArtifactCache,
    attach_artifact_cache,
    cache_key,
    has_artifact_cache,
    publish_artifact_cache,
)
from repro.core.models.build_graph import BuildGraph, BuildNode, GraphError
from repro.core.models.compilation import CompilationStep
from repro.oci.blobs import Blob
from repro.oci.layout import OCILayout
from repro.oci.registry import ImageRegistry
from repro.oci import mediatypes
from repro.perf.buildcost import (
    ARCHIVE_BASE_SECONDS,
    COMPILE_BASE_SECONDS,
    LINK_BASE_SECONDS,
    LTO_LINK_FACTOR,
    command_cost_seconds,
    estimate_node_bytes,
)
from repro.vfs.content import InlineContent


class IdentityAdapter:
    """Pass-through transform: plan against the traced commands as-is."""

    def transform_step(self, step, options, node_id=None):
        return step


def _compile(src, out):
    return CompilationStep(argv=["gcc", "-c", src, "-o", out], cwd="/src")


def _link(objs, out):
    return CompilationStep(argv=["gcc"] + objs + ["-o", out], cwd="/src")


def _diamond_graph():
    """Two independent compiles feeding one link — a 2-wide wavefront."""
    g = BuildGraph()
    for name in ("a", "b"):
        g.add(BuildNode(id=f"/src/{name}.c", kind="source",
                        path=f"/src/{name}.c"))
        g.add(BuildNode(id=f"/src/{name}.o", kind="object",
                        path=f"/src/{name}.o", deps=[f"/src/{name}.c"],
                        step=_compile(f"{name}.c", f"{name}.o")))
    g.add(BuildNode(id="/src/app", kind="executable", path="/src/app",
                    deps=["/src/a.o", "/src/b.o"],
                    step=_link(["a.o", "b.o"], "app")))
    return g


def _plan(graph, options=None):
    return plan_command_groups(graph, IdentityAdapter(),
                               options or RebuildOptions())


class TestWavefronts:
    def test_diamond_layers_into_two_waves(self):
        plan = _plan(_diamond_graph())
        assert [len(w) for w in plan.waves] == [2, 1]
        first = {g.nodes[0].id for g in plan.waves[0]}
        assert first == {"/src/a.o", "/src/b.o"}
        assert plan.waves[1][0].nodes[0].id == "/src/app"

    def test_sibling_outputs_share_one_group(self):
        g = BuildGraph()
        multi = CompilationStep(argv=["gcc", "-c", "x.c", "y.c"], cwd="/src")
        for name in ("x", "y"):
            g.add(BuildNode(id=f"/src/{name}.c", kind="source",
                            path=f"/src/{name}.c"))
            g.add(BuildNode(id=f"/src/{name}.o", kind="object",
                            path=f"/src/{name}.o", deps=[f"/src/{name}.c"],
                            step=multi))
        plan = _plan(g)
        assert len(plan.groups) == 1
        assert plan.groups[0].node_ids == ["/src/x.o", "/src/y.o"]

    def test_group_dependencies_exclude_self(self):
        plan = _plan(_diamond_graph())
        link = plan.waves[1][0]
        assert len(link.dep_groups) == 2
        assert link.key not in link.dep_groups

    def test_wave_order_is_first_visit_order(self):
        plan = _plan(_diamond_graph())
        orders = [g.order for g in plan.waves[0]]
        assert orders == sorted(orders)

    def test_critical_path_spans_compile_plus_link(self):
        plan = _plan(_diamond_graph())
        compile_cost = max(g.cost for g in plan.waves[0])
        link_cost = plan.waves[1][0].cost
        assert plan.critical_path_seconds == pytest.approx(
            compile_cost + link_cost
        )

    def test_group_cycle_detected(self):
        a = CompilationStep(argv=["gcc", "-c", "a.c"], cwd="/")
        b = CompilationStep(argv=["gcc", "-c", "b.c"], cwd="/")
        g = BuildGraph()
        g.add(BuildNode(id="a.o", kind="object", path="/a.o", deps=["b.o"],
                        step=a))
        g.add(BuildNode(id="b.o", kind="object", path="/b.o", deps=["a.o"],
                        step=b))
        # topo_order raises first on node cycles; the group projection
        # guards independently.
        groups = []
        producer = {}
        for node, step in (("a.o", a), ("b.o", b)):
            producer[node] = (tuple(step.argv), step.cwd)
        from repro.core.backend.scheduler import CommandGroup
        ga = CommandGroup(key=producer["a.o"], nodes=[g.get("a.o")], order=0,
                          dep_groups={producer["b.o"]})
        gb = CommandGroup(key=producer["b.o"], nodes=[g.get("b.o")], order=1,
                          dep_groups={producer["a.o"]})
        with pytest.raises(ValueError, match="cycle"):
            compute_wavefronts([ga, gb])


class TestListScheduling:
    def test_single_worker_makespan_is_serial_sum(self):
        costs = [3.0, 1.0, 2.0, 5.0]
        makespan, loads = lpt_schedule(costs, jobs=1)
        assert makespan == pytest.approx(sum(costs))
        assert loads == [pytest.approx(sum(costs))]

    def test_enough_workers_makespan_is_max(self):
        costs = [3.0, 1.0, 2.0]
        makespan, _ = lpt_schedule(costs, jobs=8)
        assert makespan == pytest.approx(3.0)

    def test_lpt_balances_two_workers(self):
        # LPT on [5,4,3,3,3]: worker loads 5+3 and 4+3+3 -> makespan 10.
        makespan, loads = lpt_schedule([5.0, 4.0, 3.0, 3.0, 3.0], jobs=2)
        assert makespan == pytest.approx(10.0)
        assert sorted(loads) == [pytest.approx(8.0), pytest.approx(10.0)]

    def test_deterministic(self):
        costs = [1.0, 2.0, 2.0, 1.0, 4.0]
        assert lpt_schedule(costs, 3) == lpt_schedule(costs, 3)

    def test_empty_wave(self):
        makespan, loads = lpt_schedule([], jobs=4)
        assert makespan == 0.0
        assert loads == [0.0] * 4


class TestIterativeTopoOrder:
    def test_deep_chain_beyond_recursion_limit(self):
        # Ids sort so the sink is visited first: the DFS must descend the
        # full chain in one go — the old recursive visit() overflowed here.
        depth = 3000
        g = BuildGraph()
        for i in range(depth):
            deps = [f"{i + 1:05d}"] if i + 1 < depth else []
            g.add(BuildNode(id=f"{i:05d}", kind="file", path=f"/{i:05d}",
                            deps=deps))
        order = g.topo_order()
        assert len(order) == depth
        assert order[0].id == f"{depth - 1:05d}"    # the leaf comes first
        assert order[-1].id == "00000"              # the sink comes last
        seen = set()
        for node in order:
            assert all(dep in seen for dep in node.deps)
            seen.add(node.id)

    def test_cycle_still_raises_graph_error(self):
        g = BuildGraph()
        g.add(BuildNode(id="a", kind="file", path="/a", deps=["b"]))
        g.add(BuildNode(id="b", kind="file", path="/b", deps=["a"]))
        with pytest.raises(GraphError, match="cycle involving"):
            g.topo_order()

    def test_unknown_deps_are_skipped(self):
        g = BuildGraph()
        g.add(BuildNode(id="a", kind="file", path="/a", deps=["missing"]))
        order = g.topo_order()
        assert [n.id for n in order] == ["a"]

    def test_matches_dependency_first_property_on_diamond(self):
        order = [n.id for n in _diamond_graph().topo_order()]
        assert order.index("/src/a.c") < order.index("/src/a.o")
        assert order.index("/src/a.o") < order.index("/src/app")
        assert order.index("/src/b.o") < order.index("/src/app")


class TestBuildCost:
    def test_compile_costs_scale_with_source_bytes(self):
        small = command_cost_seconds(_compile("a.c", "a.o"), 4 * 1024)
        big = command_cost_seconds(_compile("b.c", "b.o"), 4 * 1024 * 1024)
        assert big > small > COMPILE_BASE_SECONDS

    def test_archive_is_cheap(self):
        step = CompilationStep(argv=["ar", "rcs", "lib.a", "a.o"], cwd="/",
                               tool="ar")
        assert command_cost_seconds(step, 1024) == pytest.approx(
            ARCHIVE_BASE_SECONDS, rel=0.05
        )

    def test_lto_multiplies_link_cost(self):
        step = _link(["a.o"], "app")
        plain = command_cost_seconds(step, 1024, lto=False)
        lto = command_cost_seconds(step, 1024, lto=True)
        assert lto == pytest.approx(plain * LTO_LINK_FACTOR)
        assert plain > LINK_BASE_SECONDS * 0.99

    def test_estimate_node_bytes_dependencies_first(self):
        g = _diamond_graph()
        sizes = estimate_node_bytes(g, lambda path: 1000)
        assert sizes["/src/a.c"] == 1000
        assert sizes["/src/a.o"] == 440        # OBJECT_DENSITY
        assert sizes["/src/app"] == 880        # link aggregates objects

    def test_costs_never_depend_on_jobs(self):
        plan1 = _plan(_diamond_graph())
        plan2 = _plan(_diamond_graph())
        assert [g.cost for g in plan1.groups] == [g.cost for g in plan2.groups]


class TestCacheKey:
    def test_dep_order_does_not_matter(self):
        deps = [("/a.o", "sha256:1"), ("/b.o", "sha256:2")]
        assert cache_key("d1", deps) == cache_key("d1", list(reversed(deps)))

    def test_command_digest_matters(self):
        deps = [("/a.o", "sha256:1")]
        assert cache_key("d1", deps) != cache_key("d2", deps)

    def test_input_content_matters(self):
        assert cache_key("d1", [("/a.o", "sha256:1")]) != cache_key(
            "d1", [("/a.o", "sha256:2")]
        )


class TestArtifactCache:
    def _store_one(self, layout, dist_tag="app.dist"):
        cache = RebuildArtifactCache(layout, dist_tag)
        key = cache_key("digest", [("/src/a.c", "sha256:a")])
        cache.store(key, [("a.o", "/src/a.o", InlineContent(b"object-a"), 0o644)])
        cache.flush()
        return key

    def test_roundtrip_through_layout(self):
        layout = OCILayout()
        key = self._store_one(layout)
        assert has_artifact_cache(layout, "app.dist")
        reloaded = RebuildArtifactCache(layout, "app.dist")
        hit = reloaded.lookup(key)
        assert hit is not None
        node_id, path, content, mode = hit[0]
        assert (node_id, path, mode) == ("a.o", "/src/a.o", 0o644)
        assert content.read() == b"object-a"
        assert reloaded.hits == 1

    def test_miss_counts(self):
        layout = OCILayout()
        cache = RebuildArtifactCache(layout, "app.dist")
        assert cache.lookup("nope") is None
        assert cache.misses == 1

    def test_corrupt_blob_degrades_to_empty(self):
        layout = OCILayout()
        key = self._store_one(layout)
        desc = next(
            d for d in layout.index
            if mediatypes.ANNOTATION_COMTAINER_ARTIFACTS in d.annotations
        )
        blob = layout.blobs.try_get(desc.digest)
        bad = Blob(media_type=blob.media_type, digest=blob.digest,
                   size=blob.size, payload=b"\x00garbage{{{")
        layout.blobs.put(bad)
        reloaded = RebuildArtifactCache(layout, "app.dist")
        assert len(reloaded) == 0
        assert reloaded.lookup(key) is None

    def test_content_digest_mismatch_is_a_miss(self):
        layout = OCILayout()
        cache = RebuildArtifactCache(layout, "app.dist")
        key = cache_key("digest", [])
        cache.store(key, [("a.o", "/src/a.o", InlineContent(b"bytes"), 0o644)])
        cache._entries[key][0]["content_digest"] = "sha256:not-these-bytes"
        assert cache.lookup(key) is None
        assert key not in cache._entries    # evicted, will be re-stored

    def test_flush_replaces_previous_blob(self):
        layout = OCILayout()
        self._store_one(layout)
        cache = RebuildArtifactCache(layout, "app.dist")
        cache.store(cache_key("d2", []),
                    [("b.o", "/src/b.o", InlineContent(b"b"), 0o644)])
        cache.flush()
        descs = [
            d for d in layout.index
            if mediatypes.ANNOTATION_COMTAINER_ARTIFACTS in d.annotations
        ]
        assert len(descs) == 1
        assert layout.audit() == []

    def test_registry_share_roundtrip_and_audit(self):
        layout = OCILayout()
        key = self._store_one(layout)
        registry = ImageRegistry()
        assert publish_artifact_cache(registry, "repro/app", layout, "app.dist")
        assert registry.audit() == []
        other = OCILayout()
        added = attach_artifact_cache(other, registry, "repro/app", "app.dist")
        assert added == 1
        assert RebuildArtifactCache(other, "app.dist").lookup(key) is not None

    def test_attach_missing_cache_is_noop(self):
        assert attach_artifact_cache(
            OCILayout(), ImageRegistry(), "repro/app", "app.dist"
        ) == 0

    def test_republish_drops_superseded_blob(self):
        layout = OCILayout()
        self._store_one(layout)
        registry = ImageRegistry()
        publish_artifact_cache(registry, "repro/app", layout, "app.dist")
        cache = RebuildArtifactCache(layout, "app.dist")
        cache.store(cache_key("d2", []),
                    [("b.o", "/src/b.o", InlineContent(b"b"), 0o644)])
        cache.flush()
        publish_artifact_cache(registry, "repro/app", layout, "app.dist")
        assert registry.audit() == []
