"""Worker-fleet chaos: digest equivalence, crash resume, ladder rung.

The acceptance bar for the fault-tolerant fleet: rebuilt-layer digests
must be byte-identical under **any** seeded worker fault pattern and any
``--jobs`` value (faults reshape simulated time, never bytes); a crash
mid-wavefront followed by a ``--journal`` resume must complete without
re-executing journaled groups; and exhausting the whole fleet must land
the degradation ladder on the documented ``fleet-exhausted`` rung, with
the worker stats surfaced in every report.
"""

import pytest

from repro.apps import APPS, get_app
from repro.containers import ContainerEngine
from repro.core.adapters.base import RebuildOptions
from repro.core.adapters.builtin import get_adapter
from repro.core.backend.scheduler import plan_command_groups
from repro.core.cache.storage import decode_cache, decode_rebuild, extended_tag
from repro.core.frontend.build import IO_MOUNT
from repro.core.images import install_system_side_images, sysenv_ref
from repro.core.workflow import ComtainerSession, build_extended_image
from repro.oci.layout import OCILayout
from repro.oci.registry import ImageRegistry
from repro.perf import attach_perf
from repro.reporting import render_adaptation_report, render_resilience_report
from repro.resilience import (
    RUNG_FLEET_EXHAUSTED,
    FaultInjector,
    FaultSpec,
    FleetExhaustedError,
    RebuildJournal,
    ResiliencePolicy,
    adapt_with_resilience,
    has_journal,
    install_resilience,
    resilient_transfer,
    uninstall_resilience,
)
from repro.sysmodel import X86_CLUSTER
from repro.telemetry import Telemetry

pytestmark = pytest.mark.chaos

ALL_APPS = sorted(APPS)
JOBS_SWEEP = (2, 8)
PATTERNS = ("crash", "straggle", "flaky")


@pytest.fixture(scope="module")
def system_engine():
    engine = ContainerEngine(arch="amd64")
    install_system_side_images(engine, X86_CLUSTER)
    attach_perf(engine, X86_CLUSTER)
    return engine


@pytest.fixture(scope="module")
def extended_images():
    user = ContainerEngine(arch="amd64")
    built = {}

    def get(app):
        if app not in built:
            built[app] = build_extended_image(user, get_app(app))
        return built[app]

    return get


@pytest.fixture(scope="module")
def baselines(system_engine, extended_images):
    """Fault-free ``jobs=1`` rebuilt-layer digest + meta, per app."""
    cache = {}

    def get(app):
        if app not in cache:
            layout, dist_tag = _fresh_copy(extended_images(app))
            _rebuild(system_engine, layout, ["--adapter=vendor", "--jobs=1"])
            cache[app] = (
                _rebuilt_layer_digest(layout, dist_tag),
                decode_rebuild(layout, dist_tag)[0],
            )
        return cache[app]

    return get


def _fresh_copy(extended):
    layout, dist_tag = extended
    fresh = OCILayout()
    for tag in (dist_tag, extended_tag(dist_tag)):
        resolved = layout.resolve(tag)
        fresh.add_manifest(resolved.manifest, resolved.config,
                           resolved.layers, tag=tag)
    return fresh, dist_tag


def _rebuild(engine, layout, args, name="fleet-rb"):
    ctr = engine.from_image(sysenv_ref("x86"), name=name,
                            mounts={IO_MOUNT: layout})
    try:
        return engine.run(ctr, ["coMtainer-rebuild"] + args).check().stdout
    finally:
        engine.remove_container(name)


def _rebuilt_layer_digest(layout, dist_tag):
    from repro.core.cache.storage import rebuilt_tag

    return layout.resolve(rebuilt_tag(dist_tag)).layers[-1].digest


def _pattern_injector(pattern, chaos_injector, seed):
    if pattern == "crash":
        # Scripted: exactly one worker dies (deterministically, on the
        # very first assignment), so even jobs=2 keeps a survivor.
        return FaultInjector(
            specs=[FaultSpec(site="worker.crash", match="", times=1)]
        )
    if pattern == "straggle":
        return chaos_injector.reset(seed=seed, worker_straggle_rate=0.5)
    return chaos_injector.reset(seed=seed, worker_flaky_rate=0.4)


def _pattern_args(pattern):
    # Flaky attempts only burn time; with a large strike budget the fleet
    # can never blacklist itself into exhaustion.
    return ["--max-worker-failures=99"] if pattern == "flaky" else []


class TestDigestEquivalenceUnderChaos:
    @pytest.mark.parametrize("app", ALL_APPS)
    @pytest.mark.parametrize("jobs", JOBS_SWEEP)
    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_rebuilt_bytes_survive_worker_faults(
        self, app, jobs, pattern, system_engine, extended_images,
        baselines, chaos_injector,
    ):
        base_digest, base_meta = baselines(app)
        layout, dist_tag = _fresh_copy(extended_images(app))
        seed = ALL_APPS.index(app) * len(JOBS_SWEEP) + jobs
        system_engine.fault_injector = _pattern_injector(
            pattern, chaos_injector, seed
        )
        try:
            _rebuild(
                system_engine, layout,
                ["--adapter=vendor", f"--jobs={jobs}", "--speculate"]
                + _pattern_args(pattern),
            )
        finally:
            system_engine.fault_injector = None
        # Faults reshape simulated time, never bytes.
        assert _rebuilt_layer_digest(layout, dist_tag) == base_digest
        meta = decode_rebuild(layout, dist_tag)[0]
        assert meta["executed_nodes"] == base_meta["executed_nodes"]
        assert meta["node_commands"] == base_meta["node_commands"]
        assert meta["failed_nodes"] == []

    def test_sweep_actually_exercises_worker_faults(
        self, system_engine, extended_images, chaos_injector
    ):
        """Guard against silently-inert worker sites: high rates on one
        app must fire every fault family and print the fleet line."""
        fired = {}
        for pattern, site in (("crash", "worker.crash"),
                              ("straggle", "worker.straggle"),
                              ("flaky", "worker.flaky")):
            layout, _ = _fresh_copy(extended_images("hpccg"))
            if pattern == "crash":
                injector = _pattern_injector(pattern, chaos_injector, 0)
            else:
                injector = chaos_injector.reset(
                    seed=1, worker_straggle_rate=0.9
                ) if pattern == "straggle" else chaos_injector.reset(
                    seed=1, worker_flaky_rate=0.6
                )
            system_engine.fault_injector = injector
            try:
                out = _rebuild(
                    system_engine, layout,
                    ["--adapter=vendor", "--jobs=8"] + _pattern_args(pattern),
                )
            finally:
                system_engine.fault_injector = None
            fired[pattern] = len(injector.fired(site))
            assert "fleet jobs=8" in out
        assert all(count > 0 for count in fired.values()), fired


class TestWorkerCrashJournalResume:
    def test_resume_after_crash_mid_wavefront_reexecutes_nothing_done(
        self, system_engine, extended_images
    ):
        """A crash that exhausts the fleet mid-wavefront (jobs=2, with
        speculation on) leaves leases in the journal; the resume clears
        them and re-executes only the never-checkpointed groups."""
        from repro.sysmodel import system_for_arch

        extended = extended_images("hpccg")
        layout, dist_tag = _fresh_copy(extended)
        models, _, _ = decode_cache(layout, dist_tag)
        # The final wavefront's (link) group digest, computed exactly the
        # way the rebuild plans it — every compile wave completes first.
        adapter = get_adapter("vendor", system_for_arch("amd64"))
        plan = plan_command_groups(models.graph, adapter, RebuildOptions())
        link_group = plan.waves[-1][0]
        link_nodes = set(link_group.node_ids)

        system_engine.fault_injector = FaultInjector(specs=[
            FaultSpec(site="worker.crash", match=link_group.digest, times=-1)
        ])
        ctr1 = system_engine.from_image(sysenv_ref("x86"), name="fleet-res1",
                                        mounts={IO_MOUNT: layout})
        try:
            with pytest.raises(FleetExhaustedError) as excinfo:
                system_engine.run(
                    ctr1, ["coMtainer-rebuild", "--adapter=vendor",
                           "--journal", "--jobs=2", "--speculate"]
                )
        finally:
            system_engine.fault_injector = None
            system_engine.remove_container("fleet-res1")
        assert excinfo.value.pending == [link_group.digest]

        # The journal holds every completed group's checkpoint AND the
        # lease of the in-flight link group.
        assert has_journal(layout, dist_tag)
        journal = RebuildJournal(layout, dist_tag)
        completed = set(journal.node_ids())
        assert completed and not (completed & link_nodes)
        leases = journal.leases()
        assert set(leases) == {link_group.digest}
        assert leases[link_group.digest]["nodes"] == link_group.node_ids
        run1_cmds = {
            argv for name, argv in system_engine.exec_log
            if name == "fleet-res1" and argv[0] != "coMtainer-rebuild"
        }
        assert run1_cmds, "run 1 should have executed the compile waves"

        # Resume without faults: stale leases are surfaced and cleared,
        # and zero already-completed groups re-execute.
        system_engine.reset_exec_log()
        out = _rebuild(system_engine, layout,
                       ["--adapter=vendor", "--journal", "--jobs=2"],
                       name="fleet-res2")
        assert "cleared 1 stale worker leases" in out
        run2_cmds = {
            argv for name, argv in system_engine.exec_log
            if name == "fleet-res2" and argv[0] != "coMtainer-rebuild"
        }
        assert run2_cmds
        assert run1_cmds.isdisjoint(run2_cmds)
        meta = decode_rebuild(layout, dist_tag)[0]
        assert set(meta["journal_restored"]) == completed
        assert link_nodes <= set(meta["executed_nodes"])
        assert not (set(meta["executed_nodes"]) & completed)
        assert not has_journal(layout, dist_tag)
        assert layout.audit() == []


class TestFleetExhaustedRung:
    def test_exhaustion_lands_on_fleet_exhausted_rung(self):
        """Killing every parallel worker degrades to exactly one serial
        retry; success there is the ``fleet-exhausted`` rung, and the
        worker stats surface in the report and its renderings."""
        user = ContainerEngine(arch="amd64")
        layout, dist_tag = build_extended_image(user, get_app("hpccg"))
        engine = ContainerEngine(arch="amd64")
        install_system_side_images(engine, X86_CLUSTER)
        recorder = attach_perf(engine, X86_CLUSTER)
        registry = ImageRegistry()
        # Two scripted crashes: at jobs=2 the first two assignments of
        # wave 0 kill both workers; the serial retry's fresh fleet runs
        # with the spec budget already consumed.
        injector = FaultInjector(
            specs=[FaultSpec(site="worker.crash", match="", times=2)]
        )
        policy = ResiliencePolicy.permissive(seed=0, injector=injector)
        ctx = install_resilience(policy, registry=registry, engines=[engine])
        try:
            remote = resilient_transfer(
                registry, layout, "repro/hpccg",
                (dist_tag, extended_tag(dist_tag)), ctx,
            )
            report = adapt_with_resilience(
                engine, remote, X86_CLUSTER, ctx, recorder=recorder,
                ref="fleetex:adapted", jobs=2,
            )
        finally:
            uninstall_resilience(registry=registry, engines=[engine])
        assert report.rung == RUNG_FLEET_EXHAUSTED
        assert report.ref is not None
        assert any("worker fleet" in reason for reason in report.reasons)
        assert report.worker_stats["crashes"] == 2
        assert report.worker_stats["reassignments"] == 2
        assert report.worker_stats["exhausted_waves"] == 1
        summary = report.summary()
        assert "2 worker crashes" in summary
        assert "2 group reassignments" in summary
        rendered = render_resilience_report(report)
        assert "worker crashes" in rendered
        assert report.to_json()["worker_stats"]["crashes"] == 2


class TestAdaptationReportFleetRows:
    def test_fleet_counters_surface_in_adaptation_report(self):
        tele = Telemetry()
        session = ComtainerSession(telemetry=tele, jobs=2)
        session.system_engine.fault_injector = FaultInjector(
            specs=[FaultSpec(site="worker.crash", match="", times=1)]
        )
        try:
            assert session.adapted_image("hpccg")
        finally:
            session.system_engine.fault_injector = None
        m = tele.metrics
        assert m.value("fleet_worker_crashes_total") == 1
        assert m.value("fleet_reassignments_total") == 1
        assert m.value("fleet_lease_expirations_total") == 1
        text = render_adaptation_report(tele)
        assert "worker crashes" in text
        assert "lease reassignments" in text
        assert "speculative wins" in text
        assert "workers blacklisted" in text
