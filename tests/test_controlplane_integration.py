"""The control plane wired through the real substrates.

* **Fleet chaos**: a seeded worker-crash wave drives the crash counter
  and per-wave utilization series; the built-in SLO rules fire, and
  fault-free waves afterwards deterministically resolve them.  Health
  scoring flips the fleet component and recovers it.
* **Mirror staleness**: a never-synced mirror left behind extra origin
  generations fires ``mirror-staleness``; syncing it resolves the alert
  and the federation/mirror components recover.
* **Digest parity**: for *every* app spec, an adaptation with the full
  control plane enabled (sampler + rules + profiler) produces images
  byte-identical to an untraced ``NullTelemetry`` run.
* **Profiler reconciliation**: on several apps the collapsed-stack
  totals equal the recorder clock's elapsed nanoseconds exactly (±0).
"""

import pytest

from repro.apps import APPS
from repro.core.workflow import ComtainerSession
from repro.federation import FederatedRegistry
from repro.resilience import FaultInjector, WorkerFleet
from repro.telemetry import ControlPlane, Telemetry
from repro.telemetry.controlplane.health import (
    STATUS_CRITICAL,
    STATUS_DEGRADED,
    STATUS_HEALTHY,
)
from tests.test_federation import make_image

pytestmark = pytest.mark.telemetry


def _entries(costs, prefix="g"):
    return [(f"{prefix}{i}", cost) for i, cost in enumerate(costs)]


class TestFleetChaosAlerts:
    def test_crash_wave_fires_fleet_alerts_and_clean_waves_resolve(self):
        tele = Telemetry()
        cp = ControlPlane(tele, cadence=1.0)
        injector = FaultInjector(seed=0, worker_crash_rate=0.1)
        fleet = WorkerFleet(jobs=4, injector=injector, telemetry=tele)

        fleet.run_wave(0, _entries([2.0] * 8))
        assert tele.metrics.value("fleet_worker_crashes_total") > 0
        assert tele.metrics.value("fleet_workers_alive") >= 2
        assert cp.sampler.samples_taken > 0
        # The crash burn-rate alert fired when the counter jumped (and
        # resolves within the wave once the window slides past the
        # step); the lease-timeout drag keeps utilization firing.
        assert any(
            a.rule == "fleet-worker-crashes" for a in cp.rules.history
        )
        assert "fleet-utilization-low" in cp.rules.active
        report = cp.health()
        assert report.component("fleet").status == STATUS_DEGRADED
        assert report.exit_code == 1

        # Fault-free waves on the surviving workers: the crash counter
        # stays still and the schedule packs again, so every fleet
        # alert deterministically resolves.
        fleet.injector = None
        for wave in range(1, 4):
            fleet.run_wave(wave, _entries([2.0] * 8, prefix=f"w{wave}-"))
        cp.finalize()
        assert not any(a.component == "fleet" for a in cp.rules.firing())
        fleet_alerts = [
            a for a in cp.rules.history if a.component == "fleet"
        ]
        assert fleet_alerts and all(not a.firing for a in fleet_alerts)
        report = cp.health()
        fleet_health = report.component("fleet")
        assert fleet_health.status == STATUS_HEALTHY
        assert any("recovered" in r for r in fleet_health.reasons)
        assert report.exit_code == 0

    def test_chaos_run_replays_identically_for_the_same_seed(self):
        def run():
            tele = Telemetry()
            cp = ControlPlane(tele, cadence=1.0)
            fleet = WorkerFleet(
                jobs=4,
                injector=FaultInjector(seed=0, worker_crash_rate=0.1),
                telemetry=tele,
            )
            fleet.run_wave(0, _entries([2.0] * 8))
            cp.finalize()
            return [
                (a.rule, a.state, a.fired_at, a.value)
                for a in cp.rules.history
            ], cp.sampler.samples_taken

        assert run() == run()


class TestMirrorStalenessAlerts:
    def test_stale_mirror_fires_and_syncing_resolves(self):
        tele = Telemetry()
        cp = ControlPlane(tele, cadence=0.01)
        # Throttled bandwidth so one sync spans several sampling ticks.
        fed = FederatedRegistry(telemetry=tele, bandwidth=1e5)
        fed.add_mirror("edge-0")
        fed.add_mirror("edge-1")
        manifest, config, layer = make_image()
        fed.push("app:v1", manifest, config, [layer])
        fed.sync_mirror("edge-1")
        # The sync engine's per-chunk charge advanced the sampler.
        assert cp.sampler.now > 0
        assert cp.sampler.samples_taken > 0

        # Two more origin generations edge-0 never sees: it is now
        # generation+1 = 4 behind, past the staleness SLO of 2.
        for v in (2, 3):
            fed.push(f"app:v{v}", manifest, config, [layer])
        fed.sync_mirror("edge-1")        # recomputes the staleness gauge
        cp.advance(cp.sampler.cadence)
        assert "mirror-staleness" in cp.rules.active
        report = cp.health(federation=fed, audit=True)
        assert report.component("federation").status == STATUS_DEGRADED
        # Stale (degraded) AND audit-divergent (critical): worst wins.
        assert report.component("mirror:edge-0").status == STATUS_CRITICAL
        assert report.component("mirror:edge-1").status == STATUS_HEALTHY
        assert report.exit_code == 1

        fed.sync_mirror("edge-0")
        cp.advance(cp.sampler.cadence)
        assert "mirror-staleness" not in cp.rules.active
        (alert,) = [
            a for a in cp.rules.history if a.rule == "mirror-staleness"
        ]
        assert not alert.firing and alert.resolved_at is not None
        report = cp.health(federation=fed, audit=True)
        assert report.component("federation").status == STATUS_HEALTHY
        assert report.component("mirror:edge-0").status == STATUS_HEALTHY


class TestDigestParity:
    @pytest.mark.parametrize("app", sorted(APPS))
    def test_full_control_plane_never_perturbs_artifacts(self, app):
        untraced = ComtainerSession()            # NULL_TELEMETRY default
        tele = Telemetry()
        ControlPlane(tele, cadence=0.5)
        observed = ComtainerSession(telemetry=tele)

        ref_u = untraced.adapt(app)
        ref_o = observed.adapt(app)
        tele.controlplane.finalize()

        assert ref_u == ref_o
        img_u = untraced.system_engine.images[ref_u]
        img_o = observed.system_engine.images[ref_o]
        assert img_u.layer_key() == img_o.layer_key()
        assert img_u.config.to_json() == img_o.config.to_json()
        # The untraced run really had no control plane anywhere near it.
        assert untraced.telemetry.controlplane is None
        assert untraced.telemetry.profiler is None


class TestProfilerReconciliation:
    @pytest.mark.parametrize("app", ["hpccg", "minimd", "lulesh"])
    def test_collapsed_stack_totals_equal_clock_elapsed_exactly(self, app):
        tele = Telemetry()
        cp = ControlPlane(tele, cadence=0.5)
        session = ComtainerSession(telemetry=tele)
        session.adapt(app)
        cp.finalize()

        prof = cp.profiler
        assert prof.total_ns() == round(tele.clock.now * 1e9)
        lines = prof.collapsed_stack().splitlines()
        assert sum(int(line.rsplit(" ", 1)[1]) for line in lines) \
            == prof.total_ns()
        # The pipeline's big phases all attracted real cost.
        totals = prof.phase_totals_ns()
        for phase in ("frontend", "compile", "transfer"):
            assert totals.get(phase, 0) > 0, f"no cost in {phase!r}"

    def test_sampler_saw_the_adaptation_and_rules_evaluated(self):
        tele = Telemetry()
        cp = ControlPlane(tele, cadence=0.5)
        ComtainerSession(telemetry=tele).adapt("hpccg")
        cp.finalize()
        assert cp.sampler.samples_taken > 1
        assert cp.rules.evaluations == cp.sampler.samples_taken
        utilization = cp.sampler.series["fleet_utilization"].values()
        assert any(v is not None for v in utilization)
