"""Seeded property-style fuzz of the salvage tiers (ISSUE 10 satellite).

220 seeds of torn/bit-flipped/truncated/spliced damage against the three
JSONL durability artifacts — the v2 rebuild journal, the mirror transfer
ledger, and the service write-ahead log. Properties:

* **never raises** — salvage is total: any byte string yields a usable
  (possibly empty) artifact;
* **never resurrects a dropped line** — every salvaged WAL record
  re-serializes to a byte-identical line of the original log (the
  ``line_digest`` makes any mutation indistinguishable from a tear),
  and every salvaged journal entry's reconstructed content hashes to
  its recorded ``content_digest``;
* **untouched lines survive** — damage to one line never drops its
  neighbours (asserted whenever the header line itself is intact).

Plus the torn-header regressions: bytes truncated *inside* the header
line (or down to nothing) salvage to an empty-but-valid artifact
instead of raising.
"""

import json
import random

import pytest

from repro.federation.ledger import TransferLedger
from repro.oci.layout import OCILayout
from repro.resilience.journal import RebuildJournal, _parse_journal
from repro.service import AdaptationService, ServiceWAL
from repro.vfs.content import InlineContent

pytestmark = pytest.mark.recovery

SEEDS = 220


# -- reference artifacts (built once per module) ---------------------------

@pytest.fixture(scope="module")
def wal_bytes():
    service = AdaptationService(workers=4, seed=11, durable=True)
    service.add_tenant("acme", max_workers=4)
    service.add_tenant("beta", max_workers=4)
    service.submit("acme", "hpccg", at=0.0)
    service.submit("beta", "minimd", at=1.0)
    service.submit("acme", "lulesh", at=2.0)
    service.run()
    data = service.wal.flushed_bytes
    assert len(data.split(b"\n")) > 10
    return data


@pytest.fixture(scope="module")
def journal_bytes():
    layout = OCILayout()
    journal = RebuildJournal(layout, "hpccg.dist")
    for i in range(12):
        content = InlineContent(f"object-{i}-".encode() * 40)
        journal.record(f"node-{i}", f"sha256:{i:064x}", f"/src/o{i}.o",
                       content, 0o644)
    journal.flush()
    # Pull the flushed blob back out of the layout.
    from repro.resilience.journal import _find_descriptor
    desc = _find_descriptor(layout, "hpccg.dist")
    return layout.blobs.try_get(desc.digest).as_bytes()


@pytest.fixture(scope="module")
def ledger_bytes():
    ledger = TransferLedger(mirror="edge-0")
    for blob in range(4):
        for index in range(6):
            ledger.record_chunk(
                f"sha256:{blob:064x}", index, f"sha256:{blob}{index:063x}",
                index * 1024, 1024, 6 * 1024, 1024)
    return ledger.to_bytes()


# -- damage models ---------------------------------------------------------

def mutate(data: bytes, rng: random.Random) -> bytes:
    """One seeded act of violence: truncate, tear, flip, splice, blank."""
    kind = rng.choice(("truncate", "tear", "bitflip", "splice", "blank"))
    if kind == "truncate":
        return data[: rng.randrange(len(data) + 1)]
    if kind == "tear":
        # Tear inside the last non-empty line (a torn trailing flush).
        body = data.rstrip(b"\n")
        last = body.rfind(b"\n") + 1
        return body[: rng.randrange(last, len(body) + 1)]
    if kind == "bitflip":
        out = bytearray(data)
        for _ in range(rng.randrange(1, 5)):
            out[rng.randrange(len(out))] ^= 1 << rng.randrange(8)
        return bytes(out)
    if kind == "splice":
        at = rng.randrange(len(data) + 1)
        junk = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 40)))
        return data[:at] + junk + data[at:]
    lines = data.split(b"\n")
    victim = rng.randrange(len(lines))
    lines[victim] = b"\x00" * len(lines[victim])
    return b"\n".join(lines)


def intact_lines(original: bytes, mutated: bytes):
    """Original non-empty lines that survived the mutation byte-identical
    and line-aligned."""
    return set(original.split(b"\n")) & set(mutated.split(b"\n")) - {b""}


# -- the sweep -------------------------------------------------------------

@pytest.mark.parametrize("seed", range(SEEDS))
def test_salvage_properties(seed, wal_bytes, journal_bytes, ledger_bytes):
    rng = random.Random(seed)
    artifact = rng.choice(("wal", "journal", "ledger"))

    if artifact == "wal":
        original = wal_bytes
        mutated = mutate(original, rng)
        wal = ServiceWAL.from_bytes(mutated)     # property: never raises
        original_lines = set(original.split(b"\n"))
        header_intact = original.split(b"\n")[0] in mutated.split(b"\n")[:1]
        salvaged_lines = {
            json.dumps(record, sort_keys=True).encode("utf-8")
            for record in wal.records
        }
        # Never resurrects: every salvaged record is a byte-identical
        # line of the original log.
        assert salvaged_lines <= original_lines
        if header_intact:
            # Untouched record lines always survive.
            survivors = intact_lines(original, mutated) - {
                original.split(b"\n")[0]}
            assert survivors <= salvaged_lines

    elif artifact == "journal":
        original = journal_bytes
        mutated = mutate(original, rng)
        nodes, leases, dropped = _parse_journal(mutated)  # never raises
        for entry in nodes.values():
            # Self-consistency: salvage only keeps entries whose content
            # reconstructs to the recorded digest (_content_intact; the
            # digest field itself is optional for legacy entries).
            if "content_digest" in entry:
                assert entry["content_digest"].startswith("sha256:")
        header_intact = original.split(b"\n")[0] in mutated.split(b"\n")[:1]
        if header_intact:
            survivor_ids = {
                json.loads(line)["node"]
                for line in intact_lines(original, mutated)
                if b'"node"' in line
            }
            assert survivor_ids <= set(nodes)

    else:
        original = ledger_bytes
        mutated = mutate(original, rng)
        ledger = TransferLedger.from_bytes(mutated)       # never raises
        header_intact = original.split(b"\n")[0] in mutated.split(b"\n")[:1]
        if header_intact:
            survivors = {
                (json.loads(line)["blob"], json.loads(line)["index"])
                for line in intact_lines(original, mutated)
                if b'"chunk_size"' in line
            }
            recorded = {
                (blob, index)
                for blob in ledger.blobs()
                for index in ledger.chunks(blob)
            }
            assert survivors <= recorded


# -- torn-header regressions ----------------------------------------------

class TestTornHeader:
    """Truncation inside (or before) the header line yields an
    empty-but-valid artifact, never a raise."""

    def test_ledger_header_truncations(self, ledger_bytes):
        # Cuts strictly *inside* the header text (the full header line
        # minus its newline is a complete, valid header).
        for cut in range(ledger_bytes.index(b"\n")):
            ledger = TransferLedger.from_bytes(ledger_bytes[:cut])
            assert len(ledger) == 0
            assert ledger.blobs() == []
            if cut and ledger_bytes[:cut].strip(b" \t\r\n\x00"):
                assert ledger.torn_entries_dropped == 1
            else:
                # Empty/whitespace bytes are an empty ledger, not a tear.
                assert ledger.torn_entries_dropped == 0

    def test_ledger_header_keeps_mirror_argument(self, ledger_bytes):
        header_end = ledger_bytes.index(b"\n")
        salvaged = TransferLedger.from_bytes(
            ledger_bytes[: header_end // 2], mirror="edge-9")
        assert salvaged.mirror == "edge-9"

    def test_journal_header_truncations(self, journal_bytes):
        for cut in range(journal_bytes.index(b"\n")):
            nodes, leases, dropped = _parse_journal(journal_bytes[:cut])
            assert nodes == {} and leases == {}
            if journal_bytes[:cut].strip(b" \t\r\n\x00"):
                assert dropped == 1
            else:
                assert dropped == 0

    def test_wal_header_truncations(self, wal_bytes):
        header_end = wal_bytes.index(b"\n") + 1
        for cut in range(header_end):
            wal = ServiceWAL.from_bytes(wal_bytes[:cut])
            assert len(wal) == 0
            assert wal.open_request_count() == 0

    def test_mirror_crash_with_torn_ledger_header_is_resumable(self):
        """End-to-end: a mirror whose flushed ledger was truncated
        inside the header reloads to an empty ledger and just
        re-transfers (the original failure mode was a raise)."""
        from repro.federation import FederatedRegistry

        fed = FederatedRegistry()
        from tests.test_recovery_chaos import make_image
        manifest, config, layer = make_image()
        fed.push("app:dist", manifest, config, [layer])
        mirror = fed.add_mirror("edge-0")
        fed.sync_mirror("edge-0")
        mirror.ledger_bytes = mirror.ledger_bytes[:10]   # torn header
        dropped = mirror.crash()
        assert dropped == 1
        assert len(mirror.ledger) == 0
        fed.sync_mirror("edge-0")
        assert fed.converged(mirror)
