"""Tests for the shell lexer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.shellparse import (
    ShellSyntaxError,
    expand_variables,
    parse_statement,
    split_statements,
    tokenize,
)


class TestSplitStatements:
    def test_simple_lines(self):
        assert split_statements("a\nb\n") == ["a", "b"]

    def test_blank_and_comment_lines_dropped(self):
        assert split_statements("\n# comment\n  \ncmd\n") == ["cmd"]

    def test_trailing_comment_stripped(self):
        assert split_statements("cmd arg # note") == ["cmd arg"]

    def test_hash_inside_word_kept(self):
        assert split_statements("echo foo#bar") == ["echo foo#bar"]

    def test_hash_in_quotes_kept(self):
        assert split_statements("echo '#literal'") == ["echo '#literal'"]

    def test_continuation(self):
        assert split_statements("gcc -c \\\n  main.c") == ["gcc -c    main.c"]


class TestExpand:
    def test_simple_var(self):
        assert expand_variables("$CC -c", {"CC": "gcc"}) == "gcc -c"

    def test_braced_var(self):
        assert expand_variables("${PREFIX}/bin", {"PREFIX": "/usr"}) == "/usr/bin"

    def test_undefined_empty(self):
        assert expand_variables("$NOPE!", {}) == "!"

    def test_dollar_literal(self):
        assert expand_variables("a$", {}) == "a$"

    def test_unterminated_brace_raises(self):
        with pytest.raises(ShellSyntaxError):
            expand_variables("${X", {})


class TestTokenize:
    def test_simple(self):
        tokens = tokenize("gcc -O2 -c main.c")
        assert [t.text for t in tokens] == ["gcc", "-O2", "-c", "main.c"]

    def test_single_quotes_literal(self):
        tokens = tokenize("echo '$HOME x'", {"HOME": "/root"})
        assert tokens[1].text == "$HOME x"

    def test_double_quotes_expand(self):
        tokens = tokenize('echo "$CC done"', {"CC": "gcc"})
        assert tokens[1].text == "gcc done"

    def test_adjacent_parts_joined(self):
        tokens = tokenize("echo pre'mid'post")
        assert tokens[1].text == "premidpost"

    def test_operators(self):
        tokens = tokenize("a && b || c; d")
        texts = [(t.text, t.is_operator) for t in tokens]
        assert texts == [("a", False), ("&&", True), ("b", False),
                         ("||", True), ("c", False), (";", True), ("d", False)]

    def test_glob_marked(self):
        tokens = tokenize("gcc *.o -o app")
        assert tokens[1].glob
        assert not tokens[0].glob

    def test_quoted_glob_not_marked(self):
        tokens = tokenize("echo '*.o'")
        assert not tokens[1].glob

    def test_backslash_escape(self):
        tokens = tokenize(r"echo a\ b")
        assert tokens[1].text == "a b"

    def test_unterminated_quote_raises(self):
        with pytest.raises(ShellSyntaxError):
            tokenize("echo 'oops")

    def test_var_expansion_in_bare_word(self):
        tokens = tokenize("$CC -c x.c", {"CC": "g++"})
        assert tokens[0].text == "g++"


class TestParseStatement:
    def test_single_group(self):
        groups = parse_statement("gcc -c x.c")
        assert len(groups) == 1
        assert groups[0][0] == ";"

    def test_and_or_chain(self):
        groups = parse_statement("a && b || c")
        assert [g[0] for g in groups] == [";", "&&", "||"]
        assert [g[1][0].text for g in groups] == ["a", "b", "c"]

    def test_leading_operator_raises(self):
        with pytest.raises(ShellSyntaxError):
            parse_statement("&& a")

    def test_trailing_semicolon_ok(self):
        groups = parse_statement("a;")
        assert len(groups) == 1


@given(st.lists(st.text(alphabet="abcXYZ09_./-", min_size=1, max_size=8),
                min_size=1, max_size=6))
def test_plain_words_roundtrip(words):
    tokens = tokenize(" ".join(words))
    assert [t.text for t in tokens] == words
