"""Tests for the structured option table."""

from repro.toolchain.options import (
    OPTION_TABLE,
    classify_option,
    is_isa_specific,
    table_size,
)


class TestTable:
    def test_table_is_large(self):
        """The paper models 2314 GCC options; we model a substantial subset."""
        assert table_size() >= 800

    def test_core_options_present(self):
        for name in ["-c", "-S", "-E", "-o", "-O2", "-O3", "-Ofast",
                     "-flto", "-fprofile-use", "-fprofile-generate",
                     "-shared", "-static", "-pthread", "-fopenmp"]:
            assert name in OPTION_TABLE, name

    def test_fno_variants_present(self):
        assert "-fno-inline" in OPTION_TABLE
        assert "-fno-lto" in OPTION_TABLE

    def test_optimization_flags_marked(self):
        assert OPTION_TABLE["-O3"].optimization
        assert OPTION_TABLE["-flto"].optimization
        assert OPTION_TABLE["-ftree-vectorize"].optimization
        assert not OPTION_TABLE["-Wall"].optimization

    def test_isa_tagging(self):
        assert OPTION_TABLE["-mavx2"].isa == "x86-64"
        assert OPTION_TABLE["-msve-vector-bits"].isa == "aarch64"
        # -march is shared; the value decides.
        assert OPTION_TABLE["-march"].isa is None


class TestClassify:
    def test_exact_match(self):
        assert classify_option("-c").name == "-c"

    def test_joined_value(self):
        assert classify_option("-march=native").name == "-march"
        assert classify_option("-I/usr/include").name == "-I"
        assert classify_option("-DNDEBUG").name == "-D"
        assert classify_option("-Wl,-rpath,/x").name == "-Wl"

    def test_non_option_returns_none(self):
        assert classify_option("main.c") is None
        assert classify_option("-") is None

    def test_unknown_family_member_synthesized(self):
        spec = classify_option("-fsome-future-flag")
        assert spec is not None
        assert spec.optimization  # -f family default
        spec = classify_option("-Wsome-future-warning")
        assert spec is not None
        assert not spec.codegen

    def test_unknown_option(self):
        spec = classify_option("--totally-unknown")
        assert spec is not None
        assert spec.description == "unknown option"


class TestIsaSpecific:
    def test_m_flags(self):
        assert is_isa_specific("-mavx512f") == "x86-64"
        assert is_isa_specific("-mno-sse4.2") == "x86-64"
        assert is_isa_specific("-moutline-atomics") == "aarch64"

    def test_march_values(self):
        assert is_isa_specific("-march=skylake-avx512") == "x86-64"
        assert is_isa_specific("-march=armv8.2-a") == "aarch64"
        assert is_isa_specific("-mcpu=ft-2000plus") == "aarch64"

    def test_march_native_is_ambiguous(self):
        assert is_isa_specific("-march=native") is None

    def test_portable_options(self):
        assert is_isa_specific("-O3") is None
        assert is_isa_specific("-flto") is None
        assert is_isa_specific("main.c") is None
