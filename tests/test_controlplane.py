"""Unit tests for the observability control plane.

Covers the sampler (cadence boundaries, ring bounding, catch-up cap,
None-as-no-data), the SLO rule language (parsing, canonical rendering,
threshold vs burn-rate evaluation), the alert lifecycle (streaks,
firing/resolved transitions, telemetry events and counters), the
span-boundary cost profiler (exact integer-nanosecond reconciliation,
phase classification, dangling-span unwinding), health scoring, and the
install/uninstall/inertness contract.
"""

import pytest

from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.telemetry.controlplane import (
    ControlPlane,
    CostProfiler,
    RuleError,
    RulesEngine,
    Series,
    SloRule,
    TimeSeriesSampler,
    classify_phase,
    score_health,
)
from repro.telemetry.controlplane.health import (
    STATUS_CRITICAL,
    STATUS_DEGRADED,
    STATUS_HEALTHY,
    STATUS_UNKNOWN,
)
from repro.telemetry.controlplane.rules import (
    SEVERITY_CRITICAL,
    SEVERITY_INFO,
    SEVERITY_WARNING,
    STATE_RESOLVED,
)

pytestmark = pytest.mark.telemetry


UTIL_LOW = SloRule.parse(
    "util-low", "fleet_utilization < 0.5 for 3 samples",
    component="fleet", severity=SEVERITY_WARNING,
)
CRASH_RATE = SloRule.parse(
    "crashes", "rate(fleet_worker_crashes_total) > 0 over 2 samples",
    component="fleet", severity=SEVERITY_CRITICAL,
)


def controlplane(cadence=1.0, rules=(UTIL_LOW, CRASH_RATE), **kwargs):
    tele = Telemetry()
    cp = ControlPlane(tele, cadence=cadence, rules=rules, **kwargs)
    return tele, cp


class TestSeries:
    def test_ring_drops_oldest_beyond_capacity(self):
        series = Series("s", capacity=4)
        for i in range(10):
            series.append(float(i), float(i))
        assert len(series) == 4
        assert series.values() == [6.0, 7.0, 8.0, 9.0]
        assert series.latest().value == 9.0
        assert [s.t for s in series.tail(2)] == [8.0, 9.0]

    def test_none_values_are_retained_as_gaps(self):
        series = Series("s")
        series.append(1.0, None)
        series.append(2.0, 3.0)
        assert series.values() == [None, 3.0]


class TestSampler:
    def test_samples_only_on_cadence_boundaries(self):
        tele, cp = controlplane(cadence=1.0)
        assert cp.advance(0.5) == 0
        assert cp.advance(0.4) == 0
        assert cp.advance(0.2) == 1     # crosses t=1.0
        assert cp.advance(3.0) == 3     # t=2, 3, 4
        assert cp.sampler.samples_taken == 4
        ts = [s.t for s in cp.sampler.series["fleet_utilization"]]
        assert ts == [1.0, 2.0, 3.0, 4.0]

    def test_absent_instrument_samples_as_none_then_value(self):
        tele, cp = controlplane(cadence=1.0)
        cp.advance(1.0)
        tele.metrics.gauge("fleet_wave_utilization").set(0.75)
        cp.advance(1.0)
        assert cp.sampler.series["fleet_utilization"].values() == [None, 0.75]

    def test_catchup_cap_bounds_one_giant_jump(self):
        tele = Telemetry()
        sampler = TimeSeriesSampler(tele, cadence=1.0, max_catchup=5)
        assert sampler.advance(100.0) == 5
        assert sampler.samples_skipped == 95
        # Realigned: the next second emits exactly one sample again.
        assert sampler.advance(1.0) == 1
        assert sampler.samples_taken == 6

    def test_poll_emits_overdue_without_claiming_time(self):
        tele = Telemetry()
        sampler = TimeSeriesSampler(tele, cadence=1.0)
        sampler.now = 2.5          # hook sites advanced out of band
        assert sampler.poll() == 2
        assert sampler.poll() == 0

    def test_force_sample_is_unconditional(self):
        tele, cp = controlplane(cadence=100.0)
        cp.sampler.force_sample()
        assert cp.sampler.samples_taken == 1

    def test_non_positive_cadence_rejected(self):
        with pytest.raises(ValueError):
            TimeSeriesSampler(Telemetry(), cadence=0.0)


class TestRuleLanguage:
    def test_threshold_parse_and_render_round_trip(self):
        rule = SloRule.parse("r", "fleet_utilization < 0.5 for 3 samples")
        assert rule.kind == "threshold"
        assert rule.for_samples == 3 and rule.window == 1
        assert rule.render() == "fleet_utilization < 0.5 for 3 samples"
        again = SloRule.parse("r", rule.render())
        assert again == rule

    def test_burn_rate_parse_and_render_round_trip(self):
        rule = SloRule.parse(
            "r", "rate(crashes_total) >= 2 over 4 samples for 2 samples"
        )
        assert rule.kind == "burn_rate"
        assert (rule.op, rule.threshold) == (">=", 2.0)
        assert (rule.window, rule.for_samples) == (4, 2)
        assert SloRule.parse("r", rule.render()) == rule

    @pytest.mark.parametrize("text", [
        "", "utilization", "x <", "< 0.5", "x ~ 1", "rate(x < 1",
        "x < 0.5 over samples", "x < 0.5 for 0x3 samples",
    ])
    def test_unparseable_expressions_raise(self, text):
        with pytest.raises(RuleError):
            SloRule.parse("bad", text)

    def test_invalid_fields_raise(self):
        with pytest.raises(RuleError):
            SloRule(name="r", series="s", op="~", threshold=1.0)
        with pytest.raises(RuleError):
            SloRule(name="r", series="s", op="<", threshold=1.0,
                    for_samples=0)

    def test_threshold_evaluates_latest_sample(self):
        rule = SloRule.parse("r", "s < 0.5")
        series = Series("s")
        assert rule.evaluate(series) == (None, None)
        series.append(1.0, None)
        assert rule.evaluate(series) == (None, None)
        series.append(2.0, 0.25)
        assert rule.evaluate(series) == (True, 0.25)
        series.append(3.0, 0.75)
        assert rule.evaluate(series) == (False, 0.75)

    def test_burn_rate_differences_over_window(self):
        rule = SloRule.parse("r", "rate(c) > 0 over 2 samples")
        series = Series("c")
        for t, v in enumerate([0.0, 0.0, 0.0, 4.0]):
            series.append(float(t), v)
        breaching, value = rule.evaluate(series)
        assert breaching and value == pytest.approx(2.0)   # (4-0)/2

    def test_burn_rate_first_reading_counts_from_zero_baseline(self):
        # A counter that springs into existence already non-zero must
        # still register as an increase.
        rule = SloRule.parse("r", "rate(c) > 0 over 2 samples")
        series = Series("c")
        series.append(1.0, 3.0)
        breaching, value = rule.evaluate(series)
        assert breaching and value == pytest.approx(1.5)

    def test_burn_rate_skips_none_gaps(self):
        rule = SloRule.parse("r", "rate(c) > 0 over 2 samples")
        series = Series("c")
        for t, v in enumerate([None, 2.0, None, 2.0]):
            series.append(float(t), v)
        breaching, value = rule.evaluate(series)   # (2-0)/2 over non-None
        assert breaching and value == pytest.approx(1.0)


class TestAlertLifecycle:
    def test_threshold_fires_after_streak_and_resolves(self):
        tele, cp = controlplane(cadence=1.0)
        tele.metrics.gauge("fleet_wave_utilization").set(0.2)
        cp.advance(2.0)
        assert not cp.rules.active        # streak 2 of 3: not yet
        cp.advance(1.0)
        assert [a.rule for a in cp.rules.firing()] == ["util-low"]
        alert = cp.rules.active["util-low"]
        assert alert.fired_at == 3.0 and alert.value == 0.2
        tele.metrics.gauge("fleet_wave_utilization").set(0.9)
        cp.advance(1.0)
        assert not cp.rules.active
        (resolved,) = cp.rules.history
        assert resolved.state == STATE_RESOLVED
        assert resolved.resolved_at == 4.0 and resolved.value == 0.9

    def test_one_sample_blip_below_streak_never_fires(self):
        tele, cp = controlplane(cadence=1.0)
        gauge = tele.metrics.gauge("fleet_wave_utilization")
        gauge.set(0.2)
        cp.advance(2.0)
        gauge.set(0.9)                    # recovery resets the streak
        cp.advance(1.0)
        gauge.set(0.2)
        cp.advance(2.0)
        assert not cp.rules.active and not cp.rules.history

    def test_burn_rate_alert_resolves_when_counter_stops_moving(self):
        tele, cp = controlplane(cadence=1.0)
        tele.metrics.counter("fleet_worker_crashes_total").inc(2)
        cp.advance(1.0)
        assert "crashes" in cp.rules.active
        cp.advance(3.0)                   # window slides past the step
        assert "crashes" not in cp.rules.active
        (alert,) = cp.rules.history
        assert alert.state == STATE_RESOLVED

    def test_transitions_emit_events_and_counters(self):
        tele, cp = controlplane(cadence=1.0)
        tele.metrics.gauge("fleet_wave_utilization").set(0.2)
        cp.advance(3.0)
        tele.metrics.gauge("fleet_wave_utilization").set(0.9)
        cp.advance(1.0)
        assert [e.name for e in tele.events if e.name.startswith("alert.")] \
            == ["alert.firing", "alert.resolved"]
        m = tele.metrics
        assert m.value("controlplane_alerts_fired_total") == 1
        assert m.value("controlplane_alerts_resolved_total") == 1
        assert m.value("controlplane_alerts_firing") == 0

    def test_alerts_text_renders_latest_state_per_rule(self):
        tele, cp = controlplane(cadence=1.0)
        assert cp.rules.alerts_text() == "# (no alerts fired)\n"
        tele.metrics.gauge("fleet_wave_utilization").set(0.2)
        cp.advance(3.0)
        text = cp.rules.alerts_text()
        assert "# TYPE comtainer_alert gauge" in text
        assert ('comtainer_alert{rule="util-low",component="fleet",'
                'severity="warning"} 1') in text
        tele.metrics.gauge("fleet_wave_utilization").set(0.9)
        cp.advance(1.0)
        assert 'severity="warning"} 0' in cp.rules.alerts_text()

    def test_duplicate_rule_names_rejected(self):
        tele = Telemetry()
        sampler = TimeSeriesSampler(tele, cadence=1.0)
        with pytest.raises(RuleError):
            RulesEngine(sampler, rules=(UTIL_LOW, UTIL_LOW))


class TestCostProfiler:
    def test_attribution_reconciles_with_the_clock_exactly(self):
        tele, cp = controlplane(cadence=1.0)
        with tele.span("build"):
            tele.charge(2.0)
        with tele.span("rebuild"):
            with tele.span("rebuild.node", phase="link"):
                tele.charge(1.5)
            with tele.span("rebuild.node", phase="compile"):
                tele.charge(3.0)
        cp.finalize()
        prof = cp.profiler
        assert prof.total_ns() == round(tele.clock.now * 1e9)
        totals = prof.phase_totals()
        assert totals["frontend"] == pytest.approx(2.0, abs=1e-4)
        assert totals["link"] == pytest.approx(1.5, abs=1e-4)
        assert totals["compile"] == pytest.approx(3.0, abs=1e-4)

    def test_collapsed_stack_lines_sum_to_the_total(self):
        tele, cp = controlplane(cadence=1.0)
        with tele.span("build"):
            tele.charge(0.5)
            with tele.span("engine.commit"):
                tele.charge(0.25)
        cp.finalize()
        lines = cp.profiler.collapsed_stack().splitlines()
        assert lines == sorted(lines)
        parsed = [line.rsplit(" ", 1) for line in lines]
        assert sum(int(ns) for _, ns in parsed) == cp.profiler.total_ns()
        assert "build;engine.commit;frontend" in dict(parsed)

    def test_phase_rides_as_leaf_frame_distinguishing_same_stack(self):
        tele, cp = controlplane(cadence=1.0)
        with tele.span("rebuild"):
            with tele.span("rebuild.node", phase="compile"):
                tele.charge(1.0)
            with tele.span("rebuild.node", phase="link"):
                tele.charge(2.0)
        cp.finalize()
        stacks = dict(
            line.rsplit(" ", 1)
            for line in cp.profiler.collapsed_stack().splitlines()
        )
        assert int(stacks["rebuild;rebuild.node;compile"]) >= 10 ** 9
        assert int(stacks["rebuild;rebuild.node;link"]) >= 2 * 10 ** 9

    def test_time_outside_spans_lands_in_idle(self):
        tele, cp = controlplane(cadence=1.0)
        tele.charge(4.0)
        cp.finalize()
        assert cp.profiler.phase_totals()["idle"] == pytest.approx(4.0, abs=1e-4)
        assert cp.profiler.total_ns() == round(tele.clock.now * 1e9)

    def test_dangling_children_unwind_with_their_parent(self):
        tele, cp = controlplane(cadence=1.0)
        parent = tele.start_span("rebuild")
        tele.start_span("rebuild.node")      # never ended explicitly
        tele.charge(1.0)
        tele.end_span(parent)                # sweeps the dangling child
        tele.charge(0.5)
        cp.finalize()
        assert cp.profiler.total_ns() == round(tele.clock.now * 1e9)
        assert cp.profiler.phase_totals()["idle"] == pytest.approx(0.5, abs=1e-4)

    def test_hot_rows_rank_by_cost_with_shares(self):
        tele, cp = controlplane(cadence=1.0)
        with tele.span("build"):
            tele.charge(1.0)
        with tele.span("redirect"):
            tele.charge(3.0)
        cp.finalize()
        rows = cp.profiler.hot_rows(2)
        assert rows[0][0] == "redirect" and rows[0][1] == "link"
        assert rows[0][3] > rows[1][3]
        assert sum(r[3] for r in cp.profiler.hot_rows(100)) \
            == pytest.approx(1.0)

    def test_classify_phase_precedence(self):
        assert classify_phase("anything", {"phase": "verify"}, "compile") \
            == "verify"
        assert classify_phase("mirror.sync", {}, None) == "transfer"
        assert classify_phase("container.run", None, "compile") == "compile"
        assert classify_phase("mystery", None, None) == "other"

    def test_nonzero_origin_excludes_preexisting_time(self):
        tele = Telemetry()
        tele.charge(5.0)                     # before the profiler attaches
        cp = ControlPlane(tele, cadence=1.0)
        with tele.span("build"):
            tele.charge(1.0)
        cp.finalize()
        assert cp.profiler.total_ns() \
            == round(tele.clock.now * 1e9) - round(5.0 * 1e9)


class FakeFsck:
    def __init__(self, clean=True, findings=(), missing=(), failed=(),
                 repaired=()):
        self.findings = list(findings)
        self.missing = list(missing)
        self.failed = list(failed)
        self.repaired = list(repaired)
        self._clean = clean

    @property
    def clean(self):
        return self._clean


class TestHealthScoring:
    def test_no_samples_means_all_unknown_and_exit_zero(self):
        report = score_health(None)
        assert all(c.status == STATUS_UNKNOWN for c in report.components)
        assert report.overall == STATUS_UNKNOWN
        assert report.exit_code == 0
        rows = report.status_rows()
        assert rows[-1][0] == "overall"

    def test_out_of_band_failures_make_their_component_critical(self):
        # A hard failure the caller saw (an exhausted fleet, a crashed
        # adaptation) outranks everything, even on a no-sample report.
        report = score_health(
            None, failures={"fleet": "rebuild aborted: fleet exhausted"}
        )
        fleet = report.component("fleet")
        assert fleet.status == STATUS_CRITICAL
        assert any("rebuild aborted" in r for r in fleet.reasons)
        assert report.overall == STATUS_CRITICAL
        assert report.exit_code == 1
        # Other components stay unknown, untouched by the failure.
        assert report.component("engine").status == STATUS_UNKNOWN

    def test_firing_severities_map_to_statuses(self):
        rules = (
            SloRule.parse("warn", "fleet_utilization < 0.5",
                          component="fleet", severity=SEVERITY_WARNING),
            SloRule.parse("crit", "retry_exhaustion_ratio > 0",
                          component="engine", severity=SEVERITY_CRITICAL),
            SloRule.parse("note", "cache_hit_ratio < 0.2",
                          component="cache", severity=SEVERITY_INFO),
        )
        tele, cp = controlplane(cadence=1.0, rules=rules)
        tele.metrics.gauge("fleet_wave_utilization").set(0.2)
        tele.metrics.counter("resilience_retries_total").inc()
        tele.metrics.counter("resilience_retries_exhausted_total").inc()
        tele.metrics.counter("rebuild_artifact_cache_misses_total").inc()
        cp.advance(1.0)
        report = cp.health()
        assert report.component("fleet").status == STATUS_DEGRADED
        assert report.component("engine").status == STATUS_CRITICAL
        # info annotates without escalating.
        cache = report.component("cache")
        assert cache.status == STATUS_HEALTHY and cache.reasons
        assert report.overall == STATUS_CRITICAL
        assert report.exit_code == 1

    def test_resolved_alerts_annotate_as_recovered(self):
        tele, cp = controlplane(
            cadence=1.0,
            rules=(SloRule.parse("warn", "fleet_utilization < 0.5",
                                 component="fleet"),),
        )
        tele.metrics.gauge("fleet_wave_utilization").set(0.2)
        cp.advance(1.0)
        tele.metrics.gauge("fleet_wave_utilization").set(0.9)
        cp.advance(1.0)
        report = cp.health()
        fleet = report.component("fleet")
        assert fleet.status == STATUS_HEALTHY
        assert any("recovered" in r for r in fleet.reasons)

    def test_unclean_fsck_is_engine_critical(self):
        tele, cp = controlplane(cadence=1.0)
        cp.advance(1.0)
        report = cp.health(fsck=FakeFsck(clean=False, findings=[1, 2],
                                         missing=[3]))
        engine = report.component("engine")
        assert engine.status == STATUS_CRITICAL
        assert "2 corrupt" in engine.reasons[0]

    def test_clean_fsck_with_repairs_annotates_only(self):
        tele, cp = controlplane(cadence=1.0)
        cp.advance(1.0)
        report = cp.health(fsck=FakeFsck(clean=True, repaired=[1]))
        engine = report.component("engine")
        assert engine.status == STATUS_HEALTHY
        assert "repaired" in engine.reasons[0]


class TestInstallContract:
    def test_null_telemetry_refused(self):
        with pytest.raises(ValueError):
            ControlPlane(NULL_TELEMETRY)

    def test_null_telemetry_carries_no_hooks(self):
        assert NULL_TELEMETRY.controlplane is None
        assert NULL_TELEMETRY.profiler is None

    def test_install_attaches_and_uninstall_detaches(self):
        tele, cp = controlplane()
        assert tele.controlplane is cp
        assert tele.profiler is cp.profiler
        cp.uninstall()
        assert tele.controlplane is None and tele.profiler is None
        # Listeners are gone too: a sample no longer evaluates rules.
        before = cp.rules.evaluations
        cp.sampler.force_sample()
        assert cp.rules.evaluations == before

    def test_reset_detaches_the_control_plane(self):
        tele, cp = controlplane()
        tele.reset()
        assert tele.controlplane is None and tele.profiler is None

    def test_finalize_is_idempotent_and_forces_one_sample(self):
        tele, cp = controlplane(cadence=100.0)
        cp.finalize()
        cp.finalize()
        assert cp.sampler.samples_taken == 1
        assert cp.rules.evaluations == 1

    def test_profile_false_skips_the_profiler(self):
        tele = Telemetry()
        cp = ControlPlane(tele, profile=False)
        assert cp.profiler is None and tele.profiler is None
        with tele.span("build"):
            tele.charge(1.0)
        cp.finalize()           # must not blow up without a profiler
