"""Deeper property tests over the OCI substrate."""

from hypothesis import given
from hypothesis import strategies as st

from repro.oci import Layer, LayerEntry, apply_layer, diff_filesystems, flatten_layers
from repro.oci.diff import layer_from_tree
from repro.vfs import InlineContent, VirtualFilesystem

_names = st.text(alphabet="abcd", min_size=1, max_size=3)
_paths = st.builds(lambda parts: "/" + "/".join(parts),
                   st.lists(_names, min_size=1, max_size=3))


@st.composite
def _random_fs(draw):
    fs = VirtualFilesystem()
    for path in draw(st.lists(_paths, max_size=6, unique=True)):
        try:
            fs.write_file(path, draw(st.binary(max_size=16)), create_parents=True)
        except Exception:
            pass  # path collides with an existing directory: fine
    return fs


def _file_map(fs):
    return {p: n.content.digest for p, n in fs.iter_files()}


class TestFlattenProperties:
    @given(_random_fs())
    def test_layer_from_tree_flattens_back(self, fs):
        layer = layer_from_tree(fs)
        rebuilt = flatten_layers([layer])
        assert _file_map(rebuilt) == _file_map(fs)

    @given(_random_fs(), _random_fs())
    def test_flatten_equals_sequential_diffs(self, a, b):
        """flatten([tree(a), diff(a,b)]) reproduces b exactly."""
        layers = [layer_from_tree(a), diff_filesystems(a, b)]
        assert _file_map(flatten_layers(layers)) == _file_map(b)

    @given(_random_fs())
    def test_apply_layer_idempotent_for_pure_adds(self, fs):
        layer = layer_from_tree(fs)
        once = flatten_layers([layer])
        twice = apply_layer(once.clone(), layer)
        assert _file_map(once) == _file_map(twice)

    @given(_random_fs(), _random_fs(), _random_fs())
    def test_three_way_stack(self, a, b, c):
        layers = [
            layer_from_tree(a),
            diff_filesystems(a, b),
            diff_filesystems(b, c),
        ]
        assert _file_map(flatten_layers(layers)) == _file_map(c)


class TestTarCodecProperties:
    @given(_random_fs())
    def test_tar_roundtrip_preserves_files(self, fs):
        layer = layer_from_tree(fs)
        restored = Layer.from_tar_bytes(layer.to_tar_bytes())
        rebuilt = flatten_layers([restored])
        assert _file_map(rebuilt) == _file_map(fs)

    @given(st.lists(_paths, min_size=1, max_size=5, unique=True))
    def test_whiteouts_roundtrip_through_tar(self, paths):
        layer = Layer(entries=[LayerEntry.whiteout(p) for p in paths])
        restored = Layer.from_tar_bytes(layer.to_tar_bytes())
        assert [e.kind for e in restored] == ["whiteout"] * len(paths)
        assert sorted(e.path for e in restored) == sorted(
            e.path for e in layer
        )

    def test_opaque_roundtrip_through_tar(self):
        layer = Layer(entries=[LayerEntry.opaque("/var/cache")])
        restored = Layer.from_tar_bytes(layer.to_tar_bytes())
        assert restored.entries[0].kind == "opaque"
        assert restored.entries[0].path == "/var/cache"


class TestDiffMinimality:
    @given(_random_fs())
    def test_self_diff_empty(self, fs):
        assert len(diff_filesystems(fs, fs.clone())) == 0

    @given(_random_fs(), st.data())
    def test_single_change_single_entry(self, fs, data):
        files = sorted(p for p, _ in fs.iter_files())
        if not files:
            return
        target = data.draw(st.sampled_from(files))
        changed = fs.clone()
        changed.write_file(target, b"CHANGED-CONTENT-UNIQUE")
        layer = diff_filesystems(fs, changed)
        assert layer.paths() == [target]
