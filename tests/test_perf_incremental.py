"""Unit tests for the plan-level incremental short-circuit
(:mod:`repro.perf.incremental`): fingerprint stability, plan diffing,
and the pruned-wavefront guarantees — all on synthetic graphs, no
containers."""

import pytest

from repro.core.adapters.base import RebuildOptions
from repro.core.backend.scheduler import plan_command_groups
from repro.core.models.build_graph import BuildGraph, BuildNode
from repro.core.models.compilation import CompilationStep
from repro.perf.incremental import (
    REASON_CHANGED,
    REASON_MISSING,
    REASON_NEW,
    compute_plan_fingerprints,
    diff_plan,
)
from repro.vfs import VirtualFilesystem


class IdentityAdapter:
    def transform_step(self, step, options, node_id=None):
        return step


class LtoAdapter(IdentityAdapter):
    """Identity except it honours the LTO option + scope — the minimal
    adapter whose transformed digests react to an option-only change."""

    def transform_step(self, step, options, node_id=None):
        lto_on = options.lto and (
            options.lto_scope is None or node_id in options.lto_scope
        )
        if lto_on:
            return CompilationStep(argv=list(step.argv) + ["-flto"],
                                   cwd=step.cwd)
        return step


def _compile(src, out):
    return CompilationStep(argv=["gcc", "-c", src, "-o", out], cwd="/src")


def _link(objs, out):
    return CompilationStep(argv=["gcc"] + objs + ["-o", out], cwd="/src")


def _source(name):
    return BuildNode(id=f"/src/{name}.c", kind="source", path=f"/src/{name}.c")


def _object(name):
    return BuildNode(id=f"/src/{name}.o", kind="object",
                     path=f"/src/{name}.o", deps=[f"/src/{name}.c"],
                     step=_compile(f"{name}.c", f"{name}.o"))


def _diamond(order=("a", "b")):
    """a.c/b.c -> a.o/b.o -> app, nodes declared in *order*."""
    g = BuildGraph()
    for name in order:
        g.add(_source(name))
        g.add(_object(name))
    g.add(BuildNode(id="/src/app", kind="executable", path="/src/app",
                    deps=["/src/a.o", "/src/b.o"],
                    step=_link(["a.o", "b.o"], "app")))
    return g


def _sources_fs(contents=None):
    fs = VirtualFilesystem()
    contents = contents or {}
    for name in ("a", "b"):
        fs.write_file(f"/src/{name}.c", contents.get(name, f"int {name};"),
                      create_parents=True)
    return fs


def _fingerprint(graph, fs, adapter=None, options=None):
    plan = plan_command_groups(graph, adapter or IdentityAdapter(),
                               options or RebuildOptions())
    return plan, compute_plan_fingerprints(plan, graph, fs)


class TestFingerprints:
    def test_every_planned_node_fingerprinted(self):
        plan, fps = _fingerprint(_diamond(), _sources_fs())
        planned = {nid for g in plan.groups for nid in g.node_ids}
        assert set(fps) == planned == {"/src/a.o", "/src/b.o", "/src/app"}

    def test_stable_under_node_order_permutation(self):
        _, forward = _fingerprint(_diamond(("a", "b")), _sources_fs())
        _, reverse = _fingerprint(_diamond(("b", "a")), _sources_fs())
        assert forward == reverse

    def test_source_change_reaches_dependents_only(self):
        _, base = _fingerprint(_diamond(), _sources_fs())
        _, edited = _fingerprint(
            _diamond(), _sources_fs({"b": "int b2;"}))
        assert edited["/src/a.o"] == base["/src/a.o"]
        assert edited["/src/b.o"] != base["/src/b.o"]
        # The fold carries the change through to the link.
        assert edited["/src/app"] != base["/src/app"]

    def test_absent_source_still_fingerprints(self):
        fs = _sources_fs()
        fs.remove("/src/b.c")
        _, fps = _fingerprint(_diamond(), fs)
        _, present = _fingerprint(_diamond(), _sources_fs())
        assert fps["/src/b.o"] != present["/src/b.o"]

    def test_option_only_change_flips_scoped_fingerprints(self):
        fs = _sources_fs()
        _, plain = _fingerprint(_diamond(), fs, adapter=LtoAdapter())
        _, scoped = _fingerprint(
            _diamond(), fs, adapter=LtoAdapter(),
            options=RebuildOptions(lto=True, lto_scope=["/src/a.o"]))
        assert scoped["/src/a.o"] != plain["/src/a.o"]
        assert scoped["/src/b.o"] == plain["/src/b.o"]
        assert scoped["/src/app"] != plain["/src/app"]


def _outputs(plan):
    return {node.path: object()
            for group in plan.groups for node in group.nodes}


class TestPlanDiff:
    def test_identical_plan_fully_pruned_zero_waves(self):
        plan, fps = _fingerprint(_diamond(), _sources_fs())
        diff = diff_plan(plan, fps, dict(fps), _outputs(plan))
        assert diff.fully_pruned
        assert diff.dirty == [] and diff.waves == []
        assert sorted(diff.pruned_node_ids) == [
            "/src/a.o", "/src/app", "/src/b.o"]

    def test_added_node_is_new_and_dirties_dependents(self):
        fs = _sources_fs()
        plan, prev = _fingerprint(_diamond(), fs)
        grown = _diamond()
        fs.write_file("/src/c.c", "int c;", create_parents=True)
        grown.add(_source("c"))
        grown.add(_object("c"))
        grown.get("/src/app").deps.append("/src/c.o")
        new_plan, fps = _fingerprint(grown, fs)
        diff = diff_plan(new_plan, fps, prev, _outputs(plan))
        dirty = {n for g in diff.dirty for n in g.node_ids}
        assert dirty == {"/src/c.o", "/src/app"}
        assert diff.reasons["/src/c.o"] == REASON_NEW
        assert diff.reasons["/src/app"] == REASON_CHANGED
        assert diff.pruned_node_ids == ["/src/a.o", "/src/b.o"]

    def test_removed_node_leaves_rest_pruned(self):
        full_plan, prev = _fingerprint(_diamond(), _sources_fs())
        shrunk = BuildGraph()
        shrunk.add(_source("a"))
        shrunk.add(_object("a"))
        new_plan, fps = _fingerprint(shrunk, _sources_fs())
        diff = diff_plan(new_plan, fps, prev, _outputs(full_plan))
        # The survivors' inputs are untouched: nothing to execute.
        assert diff.fully_pruned
        assert diff.pruned_node_ids == ["/src/a.o"]

    def test_command_text_change_dirties_group_and_dependents(self):
        plan, prev = _fingerprint(_diamond(), _sources_fs())
        edited = _diamond()
        edited.get("/src/b.o").step = CompilationStep(
            argv=["gcc", "-c", "-O3", "b.c", "-o", "b.o"], cwd="/src")
        new_plan, fps = _fingerprint(edited, _sources_fs())
        diff = diff_plan(new_plan, fps, prev, _outputs(plan))
        dirty = {n for g in diff.dirty for n in g.node_ids}
        assert dirty == {"/src/b.o", "/src/app"}
        assert diff.reasons["/src/b.o"] == REASON_CHANGED
        assert diff.pruned_node_ids == ["/src/a.o"]

    def test_option_only_lto_scope_diff(self):
        fs = _sources_fs()
        plan, prev = _fingerprint(_diamond(), fs, adapter=LtoAdapter())
        new_plan, fps = _fingerprint(
            _diamond(), fs, adapter=LtoAdapter(),
            options=RebuildOptions(lto=True, lto_scope=["/src/b.o"]))
        diff = diff_plan(new_plan, fps, prev, _outputs(plan))
        dirty = {n for g in diff.dirty for n in g.node_ids}
        assert dirty == {"/src/b.o", "/src/app"}
        assert diff.pruned_node_ids == ["/src/a.o"]

    def test_missing_previous_output_forces_execution(self):
        plan, fps = _fingerprint(_diamond(), _sources_fs())
        outputs = _outputs(plan)
        del outputs["/src/b.o"]
        diff = diff_plan(plan, fps, dict(fps), outputs)
        dirty = {n for g in diff.dirty for n in g.node_ids}
        assert dirty == {"/src/b.o"}
        assert diff.reasons["/src/b.o"] == REASON_MISSING
        # Its fingerprint still matches, so dependents stay pruned.
        assert "/src/app" in diff.pruned_node_ids

    def test_dirty_waves_respect_dependencies(self):
        plan, prev = _fingerprint(_diamond(), _sources_fs())
        _, fps = _fingerprint(_diamond(), _sources_fs({"b": "int b2;"}))
        diff = diff_plan(plan, fps, prev, _outputs(plan))
        assert [sorted(n for g in wave for n in g.node_ids)
                for wave in diff.waves] == [["/src/b.o"], ["/src/app"]]
