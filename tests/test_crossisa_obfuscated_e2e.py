"""End-to-end: an obfuscated x86-64 extended image crosses to AArch64.

Combines three capabilities: source obfuscation (§4.6), cross-ISA
rebuild with relaxed constraints (§5.5), and the standard redirect —
the strongest integration path in the repository.
"""

import pytest

from repro.apps import get_app
from repro.containers import ContainerEngine
from repro.core.cache.storage import decode_cache
from repro.core.crossisa import analyze_cross_isa
from repro.core.images import install_system_side_images
from repro.core.workflow import (
    _run_rebuild,
    _run_redirect,
    build_extended_image,
    run_workload,
)
from repro.perf import attach_perf, predict_time, scheme_traits
from repro.sysmodel import AARCH64_CLUSTER
from repro.toolchain.artifacts import read_artifact


@pytest.fixture(scope="module")
def crossed():
    user_x86 = ContainerEngine(arch="amd64")
    layout, dist_tag = build_extended_image(
        user_x86, get_app("minimd"), obfuscate=True
    )
    arm = ContainerEngine(arch="arm64")
    recorder = attach_perf(arm, AARCH64_CLUSTER)
    install_system_side_images(arm, AARCH64_CLUSTER)
    _run_rebuild(arm, layout, AARCH64_CLUSTER, "vendor",
                 ["--adapter=vendor", "--relax-isa"])
    ref = _run_redirect(arm, layout, AARCH64_CLUSTER, ref="minimd:obf-crossed")
    return arm, layout, dist_tag, ref, recorder


class TestObfuscatedCrossIsa:
    def test_analysis_on_obfuscated_cache(self, crossed):
        _, layout, dist_tag, _, _ = crossed
        models, sources, _ = decode_cache(layout, dist_tag)
        assert models.metadata["sources_obfuscated"]
        report = analyze_cross_isa(models, sources, "aarch64", app="minimd")
        assert report.can_cross
        assert report.asm_guarded == 1       # recorded before obfuscation
        assert report.flag_lines > 0         # x86 SIMD flags detected

    def test_crossed_binary_is_native_aarch64(self, crossed):
        arm, _, _, ref, _ = crossed
        exe = read_artifact(arm.image_filesystem(ref).read_file("/app/minimd"))
        assert exe.isa == "aarch64"
        assert exe.toolchain == "phytium-kit-3"
        assert exe.march == "native"
        # The x86 SIMD flags were stripped, not carried across.
        for member in exe.member_objects():
            assert "avx2" not in member.fflags
            assert "sse4.2" not in member.fflags

    def test_crossed_binary_runs_at_adapted_speed(self, crossed):
        arm, _, _, ref, recorder = crossed
        report = run_workload(arm, ref, "minimd", recorder, vendor_mpirun=True)
        expected = predict_time(
            "minimd", AARCH64_CLUSTER,
            scheme_traits("minimd", AARCH64_CLUSTER, "adapted"),
        )
        assert report.seconds == pytest.approx(expected, rel=0.01)
