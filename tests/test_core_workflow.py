"""End-to-end workflow tests: the four schemes through the full pipeline."""

import pytest

from repro.apps.specs import MIB, get_app
from repro.core.workflow import ComtainerSession, WorkflowError, measure_schemes
from repro.perf import predict_time, scheme_traits
from repro.sysmodel import AARCH64_CLUSTER, X86_CLUSTER
from repro.toolchain.artifacts import read_artifact


@pytest.fixture(scope="module")
def x86():
    return ComtainerSession(system=X86_CLUSTER)


@pytest.fixture(scope="module")
def arm():
    return ComtainerSession(system=AARCH64_CLUSTER)


def _expected(workload, system, scheme, nodes=16):
    return predict_time(
        workload, system, scheme_traits(workload, system, scheme), nodes=nodes
    )


class TestSchemesEndToEnd:
    """The measured pipeline must match the calibrated model exactly:
    provenance extraction is the only path between them."""

    @pytest.mark.parametrize("workload", ["lulesh", "hpl", "hpccg", "lammps.eam"])
    def test_x86_all_schemes(self, x86, workload):
        times = measure_schemes(x86, workload)
        for scheme, seconds in times.items():
            assert seconds == pytest.approx(
                _expected(workload, X86_CLUSTER, scheme), rel=0.005
            ), (workload, scheme)

    @pytest.mark.parametrize("workload", ["lulesh", "openmx.pt13"])
    def test_arm_all_schemes(self, arm, workload):
        times = measure_schemes(arm, workload)
        for scheme, seconds in times.items():
            assert seconds == pytest.approx(
                _expected(workload, AARCH64_CLUSTER, scheme), rel=0.005
            ), (workload, scheme)

    def test_hpccg_degrades_under_adaptation(self, x86):
        times = measure_schemes(x86, "hpccg", schemes=("original", "adapted"))
        assert times["adapted"] > times["original"]

    def test_lulesh_x86_comm_dominated(self, x86):
        times = measure_schemes(x86, "lulesh", schemes=("original", "adapted"))
        improvement = times["original"] / times["adapted"] - 1
        assert improvement < 0.20   # only +15.6% in the paper

    def test_multiple_workloads_share_app_artifacts(self, x86):
        x86.run_scheme("lammps.eam", "adapted")
        adapted_before = dict(x86._adapted)
        x86.run_scheme("lammps.lj", "adapted")
        assert x86._adapted == adapted_before  # same adapted image reused

    def test_unknown_scheme_raises(self, x86):
        with pytest.raises(WorkflowError):
            x86.run_scheme("lulesh", "turbo")


class TestOptimizedArtifacts:
    def test_optimized_binary_has_lto_and_pgo(self, x86):
        ref = x86.optimized_image("lulesh")
        fs = x86.system_engine.image_filesystem(ref)
        exe = read_artifact(fs.read_file("/app/lulesh"))
        assert exe.lto_applied
        assert exe.lto_coverage == 1.0
        assert exe.pgo_applied
        assert exe.pgo_profile == "lulesh|x86"

    def test_pgo_profile_is_per_workload(self, x86):
        ref = x86.optimized_image("lammps.lj")
        fs = x86.system_engine.image_filesystem(ref)
        exe = read_artifact(fs.read_file("/app/lmp"))
        assert exe.pgo_profile == "lammps.lj|x86"

    def test_native_binary_tuned(self, x86):
        ref = x86.native_image("lulesh")
        fs = x86.system_engine.image_filesystem(ref)
        exe = read_artifact(fs.read_file("/app/lulesh"))
        assert exe.toolchain == "intel-2024"
        members = exe.member_objects()
        assert any(m.fflags.get("unroll-loops") for m in members)
        assert any(m.fflags.get("fast-math") for m in members)

    def test_adapted_binary_not_tuned(self, x86):
        ref = x86.adapted_image("lulesh")
        fs = x86.system_engine.image_filesystem(ref)
        exe = read_artifact(fs.read_file("/app/lulesh"))
        members = exe.member_objects()
        assert not any(m.fflags.get("fast-math") for m in members)


class TestSingleNodeMotivation:
    """Figure 3's single-node LULESH run through the real pipeline."""

    def test_single_node_x86(self, x86):
        orig = x86.run_scheme("lulesh", "original", nodes=1)
        adapted = x86.run_scheme("lulesh", "adapted", nodes=1)
        reduction = 1 - adapted / orig
        # cxxo-level recovery (paper: up to 50% on x86); adapted lacks the
        # hand-tuned flags so it recovers slightly less.
        assert 0.40 < reduction < 0.55


class TestRedirectedImageSize:
    def test_adapted_image_size_reasonable(self, x86):
        """The optimized image swaps libs; size stays in the same ballpark
        (MKL is bigger than OpenBLAS, so some growth is expected)."""
        ref = x86.adapted_image("lulesh")
        total = x86.system_engine.image_filesystem(ref).total_size()
        original_target = get_app("lulesh").image_size["amd64"] * MIB
        assert 0.9 * original_target < total < 1.8 * original_target
