"""Adapter + backend (rebuild/redirect) tests."""

import pytest

from repro.apps import get_app
from repro.containers import ContainerEngine
from repro.core.adapters import (
    GnuNativeAdapter,
    LibraryReplacement,
    RebuildOptions,
    SystemAdapter,
    VendorAdapter,
    adapter_for_system,
    get_adapter,
    register_adapter,
)
from repro.core.cache.storage import decode_cache, decode_rebuild, rebuilt_tag
from repro.core.models.compilation import CompilationStep
from repro.core.workflow import build_extended_image, system_side_adapt
from repro.oci import mediatypes
from repro.perf import attach_perf
from repro.sysmodel import AARCH64_CLUSTER, X86_CLUSTER
from repro.toolchain.artifacts import read_artifact
from repro.toolchain.cli import parse_command_line


def _cc_step(argv, role="cc", mpi=False):
    return CompilationStep(
        argv=argv, cwd="/src", tool="compiler-driver",
        meta={"toolchain": "gnu-12", "role": role, "mpi_wrapper": mpi},
    )


class TestAdapters:
    def test_vendor_adapter_swaps_compiler(self):
        adapter = VendorAdapter(X86_CLUSTER)
        step = adapter.transform_step(
            _cc_step(["gcc", "-O3", "-c", "main.c"]), RebuildOptions()
        )
        inv = parse_command_line(step.argv)
        assert inv.program == "/opt/intel/bin/icx"
        assert inv.march == "native"
        assert step.toolchain == "intel-2024"

    def test_role_mapping(self):
        adapter = VendorAdapter(AARCH64_CLUSTER)
        step = adapter.transform_step(
            _cc_step(["g++", "-c", "x.cc"], role="cxx"), RebuildOptions()
        )
        assert step.argv[0] == "/opt/phytium/bin/ftcxx"

    def test_app_flags_preserved(self):
        adapter = VendorAdapter(X86_CLUSTER)
        step = adapter.transform_step(
            _cc_step(["gcc", "-O3", "-DUSE_MPI=1", "-funroll-loops", "-c", "m.c"]),
            RebuildOptions(),
        )
        inv = parse_command_line(step.argv)
        assert inv.opt_level == "3"
        assert "USE_MPI=1" in inv.defines
        assert inv.fflags["unroll-loops"] is True

    def test_mpi_wrapper_link_gets_explicit_lmpi(self):
        adapter = VendorAdapter(X86_CLUSTER)
        step = adapter.transform_step(
            _cc_step(["mpicc", "a.o", "-o", "/app/x"], mpi=True), RebuildOptions()
        )
        inv = parse_command_line(step.argv)
        assert "mpi" in inv.libs

    def test_lto_and_pgo_options(self):
        adapter = VendorAdapter(X86_CLUSTER)
        options = RebuildOptions(lto=True, pgo="instrument")
        inv = parse_command_line(
            adapter.transform_step(_cc_step(["gcc", "-c", "x.c"]), options).argv
        )
        assert inv.lto and inv.profile_generate
        options = RebuildOptions(pgo="use", pgo_profile_path="/p/app.gcda")
        inv = parse_command_line(
            adapter.transform_step(_cc_step(["gcc", "-c", "x.c"]), options).argv
        )
        assert inv.fflags["profile-use"] == "/p/app.gcda"

    def test_lto_scope_limits_nodes(self):
        adapter = VendorAdapter(X86_CLUSTER)
        options = RebuildOptions(lto=True, lto_scope=["/src/hot.o"])
        hot = adapter.transform_step(
            _cc_step(["gcc", "-c", "hot.c"]), options, node_id="/src/hot.o"
        )
        cold = adapter.transform_step(
            _cc_step(["gcc", "-c", "cold.c"]), options, node_id="/src/cold.o"
        )
        assert parse_command_line(hot.argv).lto
        assert not parse_command_line(cold.argv).lto

    def test_relax_isa_strips_foreign_flags(self):
        adapter = VendorAdapter(AARCH64_CLUSTER)
        options = RebuildOptions(relax_isa=True)
        step = adapter.transform_step(
            _cc_step(["gcc", "-mavx2", "-msse4.2", "-O3", "-c", "x.c"]), options
        )
        inv = parse_command_line(step.argv)
        assert "avx2" not in inv.mflags
        assert "sse4.2" not in inv.mflags
        assert inv.opt_level == "3"

    def test_without_relax_foreign_flags_kept(self):
        adapter = VendorAdapter(AARCH64_CLUSTER)
        step = adapter.transform_step(
            _cc_step(["gcc", "-mavx2", "-c", "x.c"]), RebuildOptions()
        )
        assert "avx2" in parse_command_line(step.argv).mflags

    def test_non_compiler_step_passthrough(self):
        adapter = VendorAdapter(X86_CLUSTER)
        step = CompilationStep(argv=["ar", "rcs", "l.a", "a.o"], tool="ar")
        assert adapter.transform_step(step, RebuildOptions()) is step

    def test_registry_and_custom_adapter(self):
        class SiteAdapter(GnuNativeAdapter):
            name = "site-x"

        register_adapter("site-x", SiteAdapter)
        adapter = get_adapter("site-x", X86_CLUSTER)
        assert adapter.name == "site-x"
        with pytest.raises(KeyError):
            get_adapter("nope", X86_CLUSTER)

    def test_adapter_for_system(self):
        assert adapter_for_system(X86_CLUSTER).name == "vendor"
        assert adapter_for_system(X86_CLUSTER, "llvm").toolchain_id() == "llvm-17"

    def test_replacement_json_roundtrip(self):
        repl = LibraryReplacement(
            generic="libopenblas0", optimized="intel-mkl", quality=1.6,
            link_map={"/usr/lib/a.so.0": "/usr/lib/mkl.so.0"},
        )
        restored = LibraryReplacement.from_json(repl.to_json())
        assert restored == repl


@pytest.fixture(scope="module")
def adapted_x86():
    """Full rebuild+redirect of lulesh on the x86 system engine."""
    user = ContainerEngine(arch="amd64")
    layout, dist_tag = build_extended_image(user, get_app("lulesh"))
    system_engine = ContainerEngine(arch="amd64")
    recorder = attach_perf(system_engine, X86_CLUSTER)
    ref = system_side_adapt(system_engine, layout, X86_CLUSTER,
                            recorder=recorder, ref="lulesh:adapted")
    return system_engine, layout, dist_tag, ref


class TestRebuildRedirect:
    def test_rebuilt_manifest_added(self, adapted_x86):
        _, layout, dist_tag, _ = adapted_x86
        assert layout.has_tag(rebuilt_tag(dist_tag))
        resolved = layout.resolve(rebuilt_tag(dist_tag))
        assert resolved.manifest.annotations[
            mediatypes.ANNOTATION_COMTAINER_KIND] == "rebuilt"

    def test_rebuild_meta(self, adapted_x86):
        _, layout, dist_tag, _ = adapted_x86
        meta, files, modes, _ = decode_rebuild(layout, dist_tag)
        assert meta["adapter"] == "vendor"
        assert meta["system"] == "x86"
        replaced = {r["generic"]: r["optimized"] for r in meta["replacements"]}
        assert replaced["libopenblas0"] == "intel-mkl"
        assert replaced["libopenmpi3"] == "intel-mpi"
        assert "/app/lulesh" in files
        assert modes["/app/lulesh"] & 0o111

    def test_rebuilt_binary_provenance(self, adapted_x86):
        _, layout, dist_tag, _ = adapted_x86
        _, files, _, _ = decode_rebuild(layout, dist_tag)
        exe = read_artifact(files["/app/lulesh"].read())
        assert exe.toolchain == "intel-2024"
        assert exe.march == "native"
        assert not exe.lto_applied

    def test_redirected_image_layout(self, adapted_x86):
        engine, _, _, ref = adapted_x86
        fs = engine.image_filesystem(ref)
        assert fs.exists("/app/lulesh")
        assert fs.exists("/app/share/tables.bin")   # data carried over
        # Generic MPI lib path resolves to the vendor library.
        resolved = fs.resolve_path("/usr/lib/x86_64-linux-gnu/libmpi.so.40")
        assert "intel" in resolved

    def test_redirected_config_preserved(self, adapted_x86):
        engine, _, _, ref = adapted_x86
        stored = engine.image(ref)
        assert stored.config.entrypoint == ["/app/lulesh"]
        assert stored.config.labels["io.comtainer.adapted"] == "vendor"

    def test_redirected_has_no_generic_blas(self, adapted_x86):
        engine, _, _, ref = adapted_x86
        from repro.pkg.database import DpkgDatabase

        db = DpkgDatabase.read_from(engine.image_filesystem(ref))
        assert "intel-mkl" in db.names()
        assert "libopenblas0" not in db.names()

    def test_llvm_flavor_adapts(self):
        """The artifact's free LLVM Sysenv/Rebase images work too."""
        user = ContainerEngine(arch="amd64")
        layout, dist_tag = build_extended_image(user, get_app("hpccg"))
        system_engine = ContainerEngine(arch="amd64")
        recorder = attach_perf(system_engine, X86_CLUSTER)
        ref = system_side_adapt(system_engine, layout, X86_CLUSTER,
                                recorder=recorder, flavor="llvm",
                                ref="hpccg:llvm-adapted")
        exe = read_artifact(
            system_engine.image_filesystem(ref).read_file("/app/hpccg")
        )
        assert exe.toolchain == "llvm-17"
