"""Tests for incremental re-rebuilds (§4.1: rebuild/redirect can be
performed many times during the image's lifetime)."""

import pytest

from repro.apps import get_app
from repro.containers import ContainerEngine
from repro.core.cache.storage import decode_rebuild, decode_rebuild_nodes
from repro.core.images import install_system_side_images, sysenv_ref
from repro.core.frontend.build import IO_MOUNT
from repro.core.workflow import _run_rebuild, _run_redirect, build_extended_image
from repro.perf import attach_perf
from repro.sysmodel import X86_CLUSTER
from repro.oci.layout import OCILayout
from repro.toolchain.artifacts import read_artifact


@pytest.fixture(scope="module")
def setup():
    user = ContainerEngine(arch="amd64")
    layout, dist_tag = build_extended_image(user, get_app("minife"))
    engine = ContainerEngine(arch="amd64")
    attach_perf(engine, X86_CLUSTER)
    install_system_side_images(engine, X86_CLUSTER)
    install_system_side_images(engine, X86_CLUSTER, flavor="llvm")
    return engine, layout, dist_tag


def _rebuild(engine, layout, args, flavor="vendor"):
    ctr = engine.from_image(sysenv_ref("x86", flavor), name="inc-rb",
                            mounts={IO_MOUNT: layout})
    try:
        result = engine.run(ctr, ["coMtainer-rebuild"] + args).check()
        return result.stdout
    finally:
        engine.remove_container("inc-rb")


class TestIncrementalRebuild:
    def test_first_rebuild_executes_everything(self, setup):
        engine, layout, dist_tag = setup
        out = _rebuild(engine, layout, ["--adapter=vendor"])
        meta, _, _, _ = decode_rebuild(layout, dist_tag)
        assert meta["reused_nodes"] == []
        assert len(meta["executed_nodes"]) == len(meta["node_commands"])
        assert "(0 reused)" in out

    def test_identical_rebuild_reuses_everything(self, setup):
        engine, layout, dist_tag = setup
        _rebuild(engine, layout, ["--adapter=vendor"])
        out = _rebuild(engine, layout, ["--adapter=vendor"])
        meta, _, _, _ = decode_rebuild(layout, dist_tag)
        assert meta["executed_nodes"] == []
        assert len(meta["reused_nodes"]) > 0
        assert "rebuilt 0 nodes" in out

    def test_reused_artifacts_identical(self, setup):
        engine, layout, dist_tag = setup
        _rebuild(engine, layout, ["--adapter=vendor"])
        _, files_first, _, _ = decode_rebuild(layout, dist_tag)
        first = files_first["/app/minife"].digest
        _rebuild(engine, layout, ["--adapter=vendor"])
        _, files_second, _, _ = decode_rebuild(layout, dist_tag)
        assert files_second["/app/minife"].digest == first

    def test_option_change_invalidates_reuse(self, setup):
        engine, layout, dist_tag = setup
        _rebuild(engine, layout, ["--adapter=vendor"])
        _rebuild(engine, layout, ["--adapter=vendor", "--lto"])
        meta, files, _, _ = decode_rebuild(layout, dist_tag)
        # -flto changes every compile and link command: nothing reusable.
        assert meta["reused_nodes"] == []
        exe = read_artifact(files["/app/minife"].read())
        assert exe.lto_applied

    def test_adapter_change_invalidates_reuse(self, setup):
        engine, layout, dist_tag = setup
        _rebuild(engine, layout, ["--adapter=vendor"])
        _rebuild(engine, layout, ["--adapter=llvm"], flavor="llvm")
        meta, files, _, _ = decode_rebuild(layout, dist_tag)
        assert meta["reused_nodes"] == []
        assert read_artifact(files["/app/minife"].read()).toolchain == "llvm-17"

    def test_node_outputs_stored_in_layer(self, setup):
        engine, layout, dist_tag = setup
        _rebuild(engine, layout, ["--adapter=vendor"])
        commands, node_files = decode_rebuild_nodes(layout, dist_tag)
        assert commands
        # Objects and the final binary are all present.
        assert any(path.endswith(".o") for path in node_files)
        assert "/app/minife" in node_files

    def test_no_previous_rebuild_yields_empty_maps(self, setup):
        engine, layout, dist_tag = setup
        fresh = OCILayout()
        assert decode_rebuild_nodes(fresh, "ghost") == ({}, {})

    def test_redirect_after_incremental_rebuild(self, setup):
        engine, layout, dist_tag = setup
        _rebuild(engine, layout, ["--adapter=vendor"])
        _rebuild(engine, layout, ["--adapter=vendor"])   # all reused
        ref = _run_redirect(engine, layout, X86_CLUSTER, ref="minife:inc")
        exe = read_artifact(engine.image_filesystem(ref).read_file("/app/minife"))
        assert exe.toolchain == "intel-2024"
