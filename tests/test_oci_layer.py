"""Unit + property tests for layers, digests, and tar round-trips."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.oci import Layer, LayerEntry, digest_bytes, is_valid_digest
from repro.oci.digest import short_digest
from repro.vfs import InlineContent, SyntheticContent


class TestDigest:
    def test_digest_bytes_format(self):
        assert is_valid_digest(digest_bytes(b"x"))

    def test_invalid_digests_rejected(self):
        assert not is_valid_digest("sha256:xyz")
        assert not is_valid_digest("md5:" + "0" * 64)
        assert not is_valid_digest("0" * 64)

    def test_short_digest(self):
        d = digest_bytes(b"x")
        assert short_digest(d) == d.split(":")[1][:12]


def _sample_layer():
    layer = Layer(comment="sample")
    layer.add(LayerEntry.directory("/usr/bin", mode=0o755))
    layer.add(LayerEntry.file("/usr/bin/tool", InlineContent(b"#!bin"), mode=0o755))
    layer.add(LayerEntry.symlink("/usr/bin/alias", "tool"))
    layer.add(LayerEntry.whiteout("/etc/old.conf"))
    layer.add(LayerEntry.opaque("/var/cache"))
    return layer


class TestLayer:
    def test_digest_stable(self):
        assert _sample_layer().digest == _sample_layer().digest

    def test_digest_order_sensitive(self):
        a = Layer().add(LayerEntry.directory("/a")).add(LayerEntry.directory("/b"))
        b = Layer().add(LayerEntry.directory("/b")).add(LayerEntry.directory("/a"))
        assert a.digest != b.digest

    def test_digest_content_sensitive(self):
        a = Layer().add(LayerEntry.file("/f", InlineContent(b"1")))
        b = Layer().add(LayerEntry.file("/f", InlineContent(b"2")))
        assert a.digest != b.digest

    def test_size_accounts_tar_framing(self):
        layer = Layer().add(LayerEntry.file("/f", InlineContent(b"x" * 600)))
        # header (512) + payload padded to 1024 + 2 end blocks (1024)
        assert layer.size == 512 + 1024 + 1024

    def test_size_synthetic_no_materialization(self):
        layer = Layer().add(
            LayerEntry.file("/big", SyntheticContent("s", 170 * 1024 * 1024))
        )
        assert layer.size > 170 * 1024 * 1024
        assert layer.payload_size == 170 * 1024 * 1024

    def test_json_roundtrip(self):
        layer = _sample_layer()
        restored = Layer.from_bytes(layer.to_bytes())
        assert restored.digest == layer.digest
        assert [e.kind for e in restored] == [e.kind for e in layer]
        assert restored.comment == "sample"

    def test_json_roundtrip_synthetic(self):
        layer = Layer().add(LayerEntry.file("/big", SyntheticContent("seed7", 4096)))
        restored = Layer.from_bytes(layer.to_bytes())
        assert restored.digest == layer.digest
        assert restored.entries[0].content.read() == SyntheticContent("seed7", 4096).read()

    def test_tar_roundtrip(self):
        layer = _sample_layer()
        restored = Layer.from_tar_bytes(layer.to_tar_bytes())
        assert [e.kind for e in restored] == [e.kind for e in layer]
        assert [e.path for e in restored] == [e.path for e in layer]
        assert restored.entries[1].content.read() == b"#!bin"
        assert restored.entries[2].link_target == "tool"

    def test_entry_path_normalized(self):
        entry = LayerEntry.directory("//usr//bin/")
        assert entry.path == "/usr/bin"

    def test_file_entry_size_from_content(self):
        entry = LayerEntry.file("/f", InlineContent(b"abc"))
        assert entry.size == 3


_names = st.text(alphabet="abcdefgh", min_size=1, max_size=6)


@st.composite
def _entries(draw):
    kind = draw(st.sampled_from(["dir", "file", "symlink", "whiteout"]))
    path = "/" + "/".join(draw(st.lists(_names, min_size=1, max_size=3)))
    if kind == "dir":
        return LayerEntry.directory(path)
    if kind == "file":
        return LayerEntry.file(path, InlineContent(draw(st.binary(max_size=64))))
    if kind == "symlink":
        return LayerEntry.symlink(path, draw(_names))
    return LayerEntry.whiteout(path)


class TestLayerProperties:
    @given(st.lists(_entries(), max_size=8))
    def test_json_roundtrip_preserves_digest(self, entries):
        layer = Layer(entries=entries)
        assert Layer.from_bytes(layer.to_bytes()).digest == layer.digest

    @given(st.lists(_entries(), max_size=8))
    def test_size_is_positive_and_block_aligned(self, entries):
        layer = Layer(entries=entries)
        assert layer.size >= 1024
        assert layer.size % 512 == 0
