"""Federated registry tier: ledger, sync engine, failover, fsck.

Deterministic unit tests (scripted faults only); the seeded chaos
sweeps live in ``test_federation_chaos.py``.
"""

import pytest

from repro.federation import (
    DEFAULT_CHUNK_SIZE,
    FederatedRegistry,
    FederationError,
    SyncEngine,
    TransferLedger,
    chunk_spans,
)
from repro.integrity import IntegrityError
from repro.integrity.fsck import fsck_federation
from repro.integrity.repair import RepairEngine
from repro.oci import (
    ImageConfig,
    ImageRegistry,
    Layer,
    LayerEntry,
    Manifest,
)
from repro.oci.blobs import Blob, check_blob
from repro.oci.registry import ImageNotFound, RegistryError
from repro.resilience import CorruptionSpec, FaultInjector, FaultSpec
from repro.vfs import InlineContent

pytestmark = pytest.mark.federation

CHUNK = 1024


def make_image(data=b"payload-", reps=600, path="/app/bin"):
    layer = Layer().add(
        LayerEntry.file(path, InlineContent(data * reps), mode=0o755)
    )
    config = ImageConfig(
        architecture="amd64", env=["PATH=/usr/bin"], entrypoint=[path]
    )
    config.diff_ids.append(layer.digest)
    manifest = Manifest(
        config=config.descriptor(),
        layers=[Blob.from_layer(layer).descriptor()],
    )
    return manifest, config, layer


def make_federation(mirrors=2, injector=None, chunk_size=CHUNK, **kw):
    fed = FederatedRegistry(injector=injector, chunk_size=chunk_size, **kw)
    for i in range(mirrors):
        fed.add_mirror(f"edge-{i}")
    return fed


def sync_until_converged(fed, attempts=200):
    """Retry interrupted syncs (transient faults abort an attempt) until
    every mirror converges; fails the test if the budget runs out."""
    failures = 0
    for _ in range(attempts):
        try:
            fed.sync_all()
        except (RegistryError, IntegrityError, Exception):
            failures += 1
            continue
        if all(fed.converged(m) for m in fed.mirrors.values()):
            return failures
    raise AssertionError(
        f"not converged after {attempts} attempts: {fed.audit()}"
    )


# ---------------------------------------------------------------------------
# chunk plans
# ---------------------------------------------------------------------------

class TestChunkSpans:
    def test_empty(self):
        assert chunk_spans(0, 1024) == []

    def test_exact_multiple(self):
        assert chunk_spans(2048, 1024) == [(0, 0, 1024), (1, 1024, 1024)]

    def test_tail_chunk_short(self):
        spans = chunk_spans(2500, 1024)
        assert spans[-1] == (2, 2048, 452)
        assert sum(length for _, _, length in spans) == 2500

    def test_single_chunk(self):
        assert chunk_spans(10, 1024) == [(0, 0, 10)]


# ---------------------------------------------------------------------------
# transfer ledger
# ---------------------------------------------------------------------------

class TestTransferLedger:
    def _entry(self, ledger, blob="sha256:aa", index=0):
        ledger.record_chunk(
            blob, index, f"sha256:chunk{index}",
            offset=index * 64, length=64, size=640, chunk_size=64,
        )

    def test_record_and_query(self):
        ledger = TransferLedger(mirror="edge-0")
        self._entry(ledger, index=0)
        self._entry(ledger, index=3)
        assert len(ledger) == 2
        assert ledger.blobs() == ["sha256:aa"]
        assert ledger.chunk_digest("sha256:aa", 3) == "sha256:chunk3"
        assert ledger.chunk_digest("sha256:aa", 1) is None

    def test_discard_chunk_and_blob(self):
        ledger = TransferLedger()
        self._entry(ledger, index=0)
        self._entry(ledger, index=1)
        ledger.discard_chunk("sha256:aa", 0)
        assert len(ledger) == 1
        ledger.discard_blob("sha256:aa")
        assert len(ledger) == 0
        assert ledger.blobs() == []

    def test_roundtrip(self):
        ledger = TransferLedger(mirror="edge-7")
        for i in range(5):
            self._entry(ledger, index=i)
        restored = TransferLedger.from_bytes(ledger.to_bytes())
        assert restored.mirror == "edge-7"
        assert restored.torn_entries_dropped == 0
        assert len(restored) == 5
        assert restored.chunks("sha256:aa") == ledger.chunks("sha256:aa")

    def test_torn_line_salvage(self):
        ledger = TransferLedger(mirror="edge-0")
        for i in range(4):
            self._entry(ledger, index=i)
        data = ledger.to_bytes()
        # Tear the serialized form mid-way: the tail lines are lost, the
        # head lines must survive.
        torn = data[: len(data) // 2] + b"\x00" * (len(data) - len(data) // 2)
        restored = TransferLedger.from_bytes(torn)
        assert restored.torn_entries_dropped >= 1
        assert 0 < len(restored) < 4
        for index, entry in restored.chunks("sha256:aa").items():
            assert entry == ledger.chunks("sha256:aa")[index]

    def test_bitflip_costs_one_line(self):
        ledger = TransferLedger(mirror="edge-0")
        for i in range(4):
            self._entry(ledger, index=i)
        data = bytearray(ledger.to_bytes())
        # Flip a bit inside the third chunk line.
        lines = bytes(data).split(b"\n")
        target = lines[3]
        offset = bytes(data).find(target) + len(target) // 2
        data[offset] ^= 0x20
        restored = TransferLedger.from_bytes(bytes(data))
        assert len(restored) >= 3 or restored.torn_entries_dropped >= 1

    def test_invalid_entries_dropped(self):
        bad = (
            b'{"kind": "transfer-ledger", "version": 1, "mirror": "m"}\n'
            b'{"blob": "sha256:aa", "index": -1, "digest": "d", "offset": 0,'
            b' "length": 1, "size": 1, "chunk_size": 1}\n'
            b'{"blob": "sha256:aa", "index": 0, "digest": "d", "offset": 9,'
            b' "length": 4, "size": 8, "chunk_size": 4}\n'
            b"not json at all\n"
        )
        restored = TransferLedger.from_bytes(bad)
        assert len(restored) == 0
        assert restored.torn_entries_dropped == 3

    def test_garbage_header(self):
        restored = TransferLedger.from_bytes(b"\xff\xfe garbage")
        assert len(restored) == 0
        assert restored.torn_entries_dropped >= 1


# ---------------------------------------------------------------------------
# sync engine
# ---------------------------------------------------------------------------

class TestSync:
    def test_initial_fanout_converges(self):
        fed = make_federation(mirrors=3)
        manifest, config, layer = make_image()
        fed.push("lab/app:1.0", manifest, config, [layer])
        reports = fed.sync_all()
        assert all(fed.converged(m) for m in fed.mirrors.values())
        assert fed.audit() == {"edge-0": [], "edge-1": [], "edge-2": []}
        for report in reports.values():
            assert report.references_promoted == ["lab/app:1.0"]
            assert report.blobs_fetched == 3
            assert report.bytes_on_wire > 0

    def test_second_sync_is_free(self):
        fed = make_federation(mirrors=1)
        manifest, config, layer = make_image()
        fed.push("lab/app:1.0", manifest, config, [layer])
        fed.sync_all()
        report = fed.sync_mirror("edge-0")
        assert report.up_to_date
        assert report.bytes_on_wire == 0
        assert report.chunks_fetched == 0

    def test_incremental_sync_moves_only_the_diff(self):
        fed = make_federation(mirrors=1)
        manifest, config, layer = make_image(reps=3000)
        fed.push("lab/app:1.0", manifest, config, [layer])
        first = fed.sync_mirror("edge-0")
        # One added layer under the same tag: only the new layer, config
        # and manifest move; the bulk of the image (the shared base
        # layer) does not re-transfer.
        _, _, layer2 = make_image(data=b"extra-", reps=20, path="/app/extra")
        config2 = ImageConfig(
            architecture="amd64", env=["PATH=/usr/bin"], entrypoint=["/app/bin"]
        )
        config2.diff_ids.extend([layer.digest, layer2.digest])
        manifest2 = Manifest(
            config=config2.descriptor(),
            layers=[
                Blob.from_layer(layer).descriptor(),
                Blob.from_layer(layer2).descriptor(),
            ],
        )
        fed.push("lab/app:1.0", manifest2, config2, [layer, layer2])
        second = fed.sync_mirror("edge-0")
        assert fed.converged(fed.mirror("edge-0"))
        assert second.bytes_on_wire < first.bytes_on_wire / 5
        assert "lab/app:1.0" in second.references_promoted

    def test_sync_heals_rotten_mirror_blob(self):
        fed = make_federation(mirrors=1)
        manifest, config, layer = make_image()
        fed.push("lab/app:1.0", manifest, config, [layer])
        fed.sync_all()
        mirror = fed.mirror("edge-0")
        # Rot a replica blob in place, then re-push the same tag on the
        # origin: the diff treats the rotten blob as missing.
        store = mirror.registry.blobs
        digest = manifest.config.digest
        good = store.try_get(digest)
        store._blobs[digest] = Blob(
            media_type=good.media_type, digest=digest,
            size=good.size, payload=b"{}",
        )
        store._verified.discard(digest)
        assert not fed.converged(mirror)
        fed.push("lab/app:1.0", manifest, config, [layer])
        fed.sync_mirror("edge-0")
        assert fed.converged(mirror)

    def test_artifact_cache_replicates(self):
        fed = make_federation(mirrors=1)
        manifest, config, layer = make_image()
        fed.push("lab/app:1.0", manifest, config, [layer])
        cache = Blob.from_bytes(b'{"artifacts": []}', "application/json")
        fed.put_artifact_cache("lab/app", cache)
        report = fed.sync_mirror("edge-0")
        assert report.artifact_caches_synced == 1
        mirror = fed.mirror("edge-0")
        assert mirror.registry.get_artifact_cache("lab/app").digest == cache.digest
        assert fed.converged(mirror)

    def test_generation_tracking(self):
        fed = make_federation(mirrors=2)
        manifest, config, layer = make_image()
        fed.push("lab/app:1.0", manifest, config, [layer])
        assert fed.generation == 1
        mirror = fed.mirror("edge-0")
        assert fed.generations_behind(mirror) == fed.generation + 1
        fed.sync_mirror("edge-0")
        assert fed.generations_behind(mirror) == 0
        manifest2, config2, layer2 = make_image(data=b"v2-")
        fed.push("lab/app:2.0", manifest2, config2, [layer2])
        assert fed.generations_behind(mirror) == 1

    def test_sim_clock_charges_bandwidth(self):
        fed = make_federation(mirrors=1, bandwidth=1000.0)
        manifest, config, layer = make_image()
        fed.push("lab/app:1.0", manifest, config, [layer])
        report = fed.sync_mirror("edge-0")
        assert report.simulated_seconds == pytest.approx(
            report.bytes_on_wire / 1000.0
        )

    def test_duplicate_mirror_rejected(self):
        fed = make_federation(mirrors=1)
        with pytest.raises(FederationError):
            fed.add_mirror("edge-0")
        with pytest.raises(FederationError):
            fed.mirror("nope")


class TestResume:
    def _fed_with_crash(self, times=1):
        inj = FaultInjector(
            specs=[FaultSpec(site="transfer.chunk", match="#4", times=times)]
        )
        fed = make_federation(mirrors=1, injector=inj)
        manifest, config, layer = make_image()
        fed.push("lab/app:1.0", manifest, config, [layer])
        return fed, inj

    def test_resumed_sync_refetches_only_unfinished_chunks(self):
        fed, inj = self._fed_with_crash()
        with pytest.raises(RegistryError):
            fed.sync_mirror("edge-0")
        mirror = fed.mirror("edge-0")
        assert len(mirror.ledger) > 0          # progress survived the abort
        assert mirror.staging                  # staged bytes retained
        report = fed.sync_mirror("edge-0")
        assert fed.converged(mirror)
        assert report.chunks_resumed > 0
        # Resumed chunks were not re-fetched.
        assert report.chunks_fetched == report.chunks_total - report.chunks_resumed

    def test_resume_after_process_crash(self):
        fed, inj = self._fed_with_crash()
        with pytest.raises(RegistryError):
            fed.sync_mirror("edge-0")
        mirror = fed.mirror("edge-0")
        # Hard crash: volatile ledger is lost, the flushed bytes salvage.
        dropped = mirror.crash()
        assert dropped == 0
        assert len(mirror.ledger) > 0
        report = fed.sync_mirror("edge-0")
        assert fed.converged(mirror)
        assert report.chunks_resumed > 0

    def test_resume_with_torn_ledger_still_converges(self):
        fed, inj = self._fed_with_crash()
        with pytest.raises(RegistryError):
            fed.sync_mirror("edge-0")
        mirror = fed.mirror("edge-0")
        data = mirror.ledger_bytes
        mirror.ledger_bytes = data[: len(data) * 2 // 3] + b"\x00" * 8
        mirror.crash()
        report = fed.sync_mirror("edge-0")
        assert fed.converged(mirror)
        assert report.ledger_lines_dropped >= 1

    def test_staged_corruption_refetches_only_bad_chunks(self):
        inj = FaultInjector(
            corruptions=[
                CorruptionSpec(site="transfer.chunk", mode="bitflip", times=2)
            ]
        )
        fed = make_federation(mirrors=1, injector=inj)
        manifest, config, layer = make_image()
        fed.push("lab/app:1.0", manifest, config, [layer])
        report = fed.sync_mirror("edge-0")
        assert fed.converged(fed.mirror("edge-0"))
        assert report.chunks_corrupted == 2
        # Only the corrupted chunks were re-fetched on the repair pass.
        assert report.chunks_fetched == report.chunks_total + 2


# ---------------------------------------------------------------------------
# failover pulls
# ---------------------------------------------------------------------------

class TestFailover:
    def _synced_fed(self, mirrors=2):
        fed = make_federation(mirrors=mirrors)
        manifest, config, layer = make_image()
        fed.push("lab/app:1.0", manifest, config, [layer])
        fed.sync_all()
        return fed

    def test_origin_serves_when_healthy(self):
        fed = self._synced_fed()
        resolved = fed.pull("lab/app:1.0")
        assert len(resolved.layers) == 1

    def test_failover_to_mirror_on_origin_fault(self):
        fed = self._synced_fed()
        inj = FaultInjector(
            specs=[FaultSpec(site="registry.pull", kind="persistent")]
        )
        fed.origin.fault_injector = inj
        resolved = fed.pull("lab/app:1.0")
        assert len(resolved.layers) == 1

    def test_not_found_is_authoritative(self):
        fed = self._synced_fed()
        # Even with every mirror healthy, an origin 404 must not fail
        # over: a mirror serving it would serve a stale catalogue.
        with pytest.raises(ImageNotFound):
            fed.pull("lab/app:9.9")

    def test_stale_mirror_skipped(self):
        fed = self._synced_fed(mirrors=2)
        # Push v2 and sync only edge-1: edge-0 is stale for the new tag.
        manifest2, config2, layer2 = make_image(data=b"v2-")
        fed.push("lab/app:2.0", manifest2, config2, [layer2])
        fed.sync_mirror("edge-1")
        inj = FaultInjector(
            specs=[FaultSpec(site="registry.pull", kind="persistent")]
        )
        fed.origin.fault_injector = inj
        resolved = fed.pull("lab/app:2.0")
        assert resolved.manifest.digest == manifest2.digest

    def test_stale_probe_skips_mirror(self):
        fed = self._synced_fed(mirrors=2)
        origin_inj = FaultInjector(
            specs=[FaultSpec(site="registry.pull", kind="persistent")]
        )
        fed.origin.fault_injector = origin_inj
        # The federation-level probe marks edge-0 stale; edge-1 serves.
        fed.injector = FaultInjector(
            specs=[FaultSpec(site="mirror.stale", match="edge-0", times=-1)]
        )
        resolved = fed.pull("lab/app:1.0")
        assert len(resolved.layers) == 1

    def test_all_members_down_raises_federation_error(self):
        fed = self._synced_fed(mirrors=1)
        inj = FaultInjector(
            specs=[FaultSpec(site="registry.pull", kind="persistent", times=-1)]
        )
        fed.origin.fault_injector = inj
        fed.mirror("edge-0").registry.fault_injector = FaultInjector(
            specs=[FaultSpec(site="registry.pull", kind="persistent", times=-1)]
        )
        with pytest.raises(FederationError):
            fed.pull("lab/app:1.0")


# ---------------------------------------------------------------------------
# replica-backed repair + federation fsck
# ---------------------------------------------------------------------------

class TestFederationRepair:
    def _corrupt_origin_layer(self, fed, manifest):
        digest = manifest.layers[0].digest
        store = fed.origin.blobs
        good = store.try_get(digest)
        store._blobs[digest] = Blob(
            media_type=good.media_type, digest=digest,
            size=good.size, payload=b"rotten bytes",
        )
        store._verified.discard(digest)
        return digest

    def test_origin_blob_self_heals_from_replica(self):
        fed = make_federation(mirrors=2)
        manifest, config, layer = make_image()
        fed.push("lab/app:1.0", manifest, config, [layer])
        fed.sync_all()
        digest = self._corrupt_origin_layer(fed, manifest)
        assert check_blob(fed.origin.blobs.try_get(digest)) is not None
        engine = fed.repair_engine()
        outcome = engine.repair_blob(fed.origin.blobs, digest)
        assert outcome.repaired
        assert outcome.source.startswith("mirror:")
        assert check_blob(fed.origin.blobs.try_get(digest)) is None

    def test_add_federation_registers_mirror_sources(self):
        fed = make_federation(mirrors=2)
        engine = RepairEngine().add_federation(fed)
        assert len(engine.sources) == 2
        assert {s.label for s in engine.sources} == {
            "mirror:edge-0", "mirror:edge-1",
        }

    def test_fsck_federation_clean(self):
        fed = make_federation(mirrors=2)
        manifest, config, layer = make_image()
        fed.push("lab/app:1.0", manifest, config, [layer])
        fed.sync_all()
        report = fsck_federation(fed)
        assert report.clean
        assert report.exit_code == 0
        assert set(report.replicas) == {"edge-0", "edge-1"}

    def test_fsck_federation_flags_divergence(self):
        fed = make_federation(mirrors=2)
        manifest, config, layer = make_image()
        fed.push("lab/app:1.0", manifest, config, [layer])
        fed.sync_mirror("edge-0")    # edge-1 left behind
        report = fsck_federation(fed)
        assert not report.clean
        assert report.divergences["edge-0"] == []
        assert any(
            "missing reference" in p for p in report.divergences["edge-1"]
        )

    def test_fsck_federation_repairs_origin_from_replicas(self):
        fed = make_federation(mirrors=2)
        manifest, config, layer = make_image()
        fed.push("lab/app:1.0", manifest, config, [layer])
        fed.sync_all()
        self._corrupt_origin_layer(fed, manifest)
        scan = fsck_federation(fed)
        assert not scan.clean                      # scan-only reports it
        report = fsck_federation(fed, repair=True)
        assert report.clean
        assert any(
            o.source.startswith("mirror:") for o in report.origin.repaired
        )

    def test_fsck_federation_repairs_replica_from_origin(self):
        fed = make_federation(mirrors=1)
        manifest, config, layer = make_image()
        fed.push("lab/app:1.0", manifest, config, [layer])
        fed.sync_all()
        mirror = fed.mirror("edge-0")
        digest = manifest.config.digest
        good = mirror.registry.blobs.try_get(digest)
        mirror.registry.blobs._blobs[digest] = Blob(
            media_type=good.media_type, digest=digest,
            size=good.size, payload=b"{}",
        )
        mirror.registry.blobs._verified.discard(digest)
        report = fsck_federation(fed, repair=True)
        assert report.clean
        assert any(
            o.source == "origin" for o in report.replicas["edge-0"].repaired
        )


# ---------------------------------------------------------------------------
# satellite regressions: fault-transparent probes
# ---------------------------------------------------------------------------

class TestFaultTransparentProbes:
    def test_exists_does_not_consume_scripted_pull_fault(self):
        registry = ImageRegistry()
        manifest, config, layer = make_image()
        registry.push("lab/app:1.0", manifest, config, [layer])
        registry.fault_injector = FaultInjector(
            specs=[FaultSpec(site="registry.pull", times=1)]
        )
        # Any number of probes must leave the scripted fault untouched...
        for _ in range(5):
            assert registry.exists("lab/app:1.0")
            assert not registry.exists("lab/app:9.9")
            assert registry.manifest_digest("lab/app:1.0") == manifest.digest
            assert registry.manifest_map() == {"lab/app:1.0": manifest.digest}
        # ...so the real pull still hits it.
        with pytest.raises(RegistryError):
            registry.pull("lab/app:1.0")
        registry.pull("lab/app:1.0")   # transient: gone on retry

    def test_probe_site_validated(self):
        inj = FaultInjector()
        with pytest.raises(ValueError):
            inj.probe("registry.pull")

    def test_probe_seeded_rate_and_reset(self):
        inj = FaultInjector(seed=7, mirror_stale_rate=1.0)
        assert inj.probe("mirror.stale", "edge-0/ref")
        inj.reset(mirror_stale_rate=0.0)
        assert not inj.probe("mirror.stale", "edge-0/ref")
        inj.reset()   # reverts to the constructed rate
        assert inj.probe("mirror.stale", "edge-0/ref")


class TestTagManifest:
    def test_tag_requires_stored_manifest(self):
        registry = ImageRegistry()
        with pytest.raises(RegistryError):
            registry.tag_manifest("lab/app:1.0", "sha256:absent")

    def test_tag_flip(self):
        registry = ImageRegistry()
        manifest, config, layer = make_image()
        registry.push("lab/app:1.0", manifest, config, [layer])
        registry.tag_manifest("lab/app:2.0", manifest.digest)
        assert registry.manifest_digest("lab/app:2.0") == manifest.digest
