"""Tests for dependency parsing, package control files, database, repos."""

import pytest

from repro.pkg import (
    DpkgDatabase,
    Package,
    PackagedFile,
    Repository,
    RepositoryPool,
    parse_depends,
)
from repro.pkg.depends import parse_dependency, render_depends
from repro.vfs import VirtualFilesystem


class TestDepends:
    def test_simple(self):
        dep = parse_dependency("libc6")
        assert dep.name == "libc6"
        assert dep.relation is None

    def test_versioned(self):
        dep = parse_dependency("libc6 (>= 2.34)")
        assert dep.relation == ">="
        assert dep.version == "2.34"

    def test_matches(self):
        dep = parse_dependency("libc6 (>= 2.34)")
        assert dep.matches("libc6", "2.39")
        assert not dep.matches("libc6", "2.31")
        assert not dep.matches("other", "2.39")

    def test_clauses_and_alternatives(self):
        clauses = parse_depends("libc6 (>= 2.34), libblas3 | libopenblas0, make")
        assert len(clauses) == 3
        assert len(clauses[1].alternatives) == 2

    def test_render_roundtrip(self):
        text = "libc6 (>= 2.34), libblas3 | libopenblas0"
        assert render_depends(parse_depends(text)) == text

    def test_empty(self):
        assert parse_depends("") == []

    def test_malformed_raises(self):
        with pytest.raises(ValueError):
            parse_dependency("UPPER_CASE!!")


class TestPackage:
    def _pkg(self):
        return Package(
            name="libdemo1",
            version="1.2-3",
            architecture="amd64",
            depends=parse_depends("libc6 (>= 2.34)"),
            provides=["libdemo.so.1"],
            equivalent_of="libolddemo1",
            quality=1.4,
            tags=("blas",),
            files=[
                PackagedFile(path="/usr/lib/libdemo.so.1", size=2048, kind="library"),
                PackagedFile(path="/usr/bin/demo", program="demo"),
            ],
        )

    def test_installed_size(self):
        assert self._pkg().installed_size == 2048

    def test_program_file_forced_executable(self):
        pfile = PackagedFile(path="/usr/bin/x", program="x")
        assert pfile.kind == "binary"
        assert pfile.mode == 0o755

    def test_control_roundtrip(self):
        pkg = self._pkg()
        restored = Package.from_control(pkg.to_control())
        assert restored.name == pkg.name
        assert restored.version == pkg.version
        assert restored.equivalent_of == "libolddemo1"
        assert restored.quality == 1.4
        assert restored.tags == ("blas",)
        assert render_depends(restored.depends) == render_depends(pkg.depends)
        assert restored.provides == ["libdemo.so.1"]

    def test_provides_names_includes_self(self):
        assert self._pkg().provides_names() == ["libdemo1", "libdemo.so.1"]


class TestDatabase:
    def test_add_and_query(self):
        db = DpkgDatabase()
        pkg = Package(name="a", version="1", files=[PackagedFile(path="/usr/lib/a.so")])
        db.add(pkg)
        assert "a" in db
        assert db.owner_of("/usr/lib/a.so") == "a"
        assert db.file_index() == {"/usr/lib/a.so": "a"}

    def test_fs_roundtrip(self):
        db = DpkgDatabase()
        db.add(
            Package(
                name="libx",
                version="2.0-1",
                depends=parse_depends("libc6"),
                files=[PackagedFile(path="/usr/lib/libx.so.2", size=100)],
            )
        )
        db.add(Package(name="liby", version="1.0", files=[]))
        fs = VirtualFilesystem()
        db.write_to(fs)
        restored = DpkgDatabase.read_from(fs)
        assert restored.names() == ["libx", "liby"]
        assert restored.get("libx").version == "2.0-1"
        assert restored.file_list("libx") == ["/usr/lib/libx.so.2"]

    def test_read_from_empty_fs(self):
        assert DpkgDatabase.read_from(VirtualFilesystem()).names() == []

    def test_provides_index(self):
        db = DpkgDatabase()
        db.add(Package(name="mkl", version="1", provides=["libblas.so.3"]))
        assert db.provides_index()["libblas.so.3"] == "mkl"


class TestRepository:
    def test_versions_sorted(self):
        repo = Repository("r", "amd64")
        repo.add(Package(name="a", version="1.10", architecture="amd64"))
        repo.add(Package(name="a", version="1.9", architecture="amd64"))
        assert [p.version for p in repo.candidates("a")] == ["1.9", "1.10"]
        assert repo.latest("a").version == "1.10"

    def test_arch_mismatch_rejected(self):
        repo = Repository("r", "amd64")
        with pytest.raises(ValueError):
            repo.add(Package(name="a", version="1", architecture="arm64"))

    def test_arch_all_accepted(self):
        repo = Repository("r", "amd64")
        repo.add(Package(name="docs", version="1", architecture="all"))
        assert repo.latest("docs") is not None

    def test_providers(self):
        repo = Repository("r", "amd64")
        repo.add(Package(name="mkl", version="1", architecture="amd64", provides=["libblas.so.3"]))
        assert [p.name for p in repo.providers("libblas.so.3")] == ["mkl"]

    def test_optimized_equivalents_sorted_by_quality(self):
        repo = Repository("r", "amd64")
        repo.add(Package(name="fast", version="1", architecture="amd64",
                         equivalent_of="generic", quality=1.5))
        repo.add(Package(name="faster", version="1", architecture="amd64",
                         equivalent_of="generic", quality=1.8))
        assert [p.name for p in repo.optimized_equivalents("generic")] == ["faster", "fast"]

    def test_pool_latest_across_repos(self):
        r1, r2 = Repository("a", "amd64"), Repository("b", "amd64")
        r1.add(Package(name="x", version="1.0", architecture="amd64"))
        r2.add(Package(name="x", version="2.0", architecture="amd64"))
        pool = RepositoryPool([r1, r2])
        assert pool.latest("x").version == "2.0"
