"""Telemetry wired through the pipeline: span trees, OCI metrics, parity.

The acceptance criteria for the observability layer:

* a traced :meth:`ComtainerSession.adapt` run produces a span tree that
  covers build, transfer, every rebuild compile node and redirect, with
  OCI byte / cache-hit metrics recorded alongside;
* the Chrome trace-event export round-trips through ``json.loads``;
* with telemetry disabled (the default), the produced image digests are
  byte-identical to a traced run — observation never perturbs artifacts.
"""

import json

import pytest

from repro.core.workflow import ComtainerSession
from repro.reporting import render_adaptation_report, telemetry_stage_rows
from repro.resilience import FaultSpec, FaultInjector, ResiliencePolicy
from repro.telemetry import Telemetry, chrome_trace_json, render_span_tree

pytestmark = pytest.mark.telemetry

APP = "hpccg"


@pytest.fixture(scope="module")
def traced_session():
    tele = Telemetry()
    session = ComtainerSession(telemetry=tele)
    ref = session.adapt(APP)
    return session, tele, ref


class TestTracedAdaptation:
    def test_span_tree_covers_the_whole_pipeline(self, traced_session):
        session, tele, ref = traced_session
        (adapt,) = tele.find_spans("adapt")
        assert adapt.attributes["app"] == APP
        assert adapt.attributes["ref"] == ref
        assert adapt.status == "ok"
        for stage in ("build", "transfer", "rebuild", "redirect"):
            spans = tele.find_spans(stage)
            assert spans, f"no {stage!r} span recorded"
            assert all(s.finished and s.status == "ok" for s in spans)
        # Registry traffic and engine commits appear under the tree too.
        assert tele.find_spans("registry.push")
        assert tele.find_spans("registry.pull")
        assert tele.find_spans("engine.commit")

    def test_every_compile_node_gets_a_span(self, traced_session):
        session, tele, _ref = traced_session
        node_spans = tele.find_spans("rebuild.node")
        executed = tele.metrics.value("rebuild_nodes_executed_total")
        assert executed > 0
        # A span covers one dispatch group (a node plus its merged
        # siblings); together the groups cover every executed node.
        covered = [n for s in node_spans for n in s.attributes["nodes"]]
        assert len(covered) == len(set(covered)) == executed
        # Node spans are children of the rebuild stage.
        (rebuild,) = tele.find_spans("rebuild")

        def descendants(span):
            for child in span.children:
                yield child
                yield from descendants(child)

        assert set(id(s) for s in node_spans) <= set(
            id(s) for s in descendants(rebuild)
        )

    def test_oci_byte_and_cache_metrics_recorded(self, traced_session):
        _session, tele, _ref = traced_session
        m = tele.metrics
        assert m.value("registry_push_bytes_total") > 0
        assert m.value("registry_pull_bytes_total") > 0
        assert m.value("oci_blob_bytes_written_total") > 0
        writes = m.value("oci_blob_writes_total")
        hits = m.value("oci_blob_cache_hits_total")
        misses = m.value("oci_blob_cache_misses_total")
        assert writes == hits + misses
        assert misses > 0
        hist = m.get("oci_blob_size_bytes")
        assert hist is not None and hist.count == misses

    def test_chrome_trace_round_trips(self, traced_session, tmp_path):
        _session, tele, _ref = traced_session
        out = tmp_path / "trace.json"
        out.write_text(chrome_trace_json(tele), encoding="utf-8")
        doc = json.loads(out.read_text(encoding="utf-8"))
        names = {e["name"] for e in doc["traceEvents"]}
        assert {"adapt", "build", "transfer", "rebuild",
                "rebuild.node", "redirect"} <= names
        assert doc["displayTimeUnit"] == "ms"

    def test_text_exports_render(self, traced_session):
        _session, tele, _ref = traced_session
        tree = render_span_tree(tele)
        assert tree.splitlines()[0].startswith("adapt")
        stages = {row[0] for row in telemetry_stage_rows(tele)}
        assert "rebuild" in stages
        report = render_adaptation_report(tele)
        assert "registry push" in report


class TestDigestParity:
    def test_traced_and_untraced_runs_produce_identical_images(self):
        """Observation must not perturb artifacts: same layer digests."""
        untraced = ComtainerSession()           # NULL_TELEMETRY default
        traced = ComtainerSession(telemetry=Telemetry())
        ref_u = untraced.adapt(APP)
        ref_t = traced.adapt(APP)
        assert ref_u == ref_t
        img_u = untraced.system_engine.images[ref_u]
        img_t = traced.system_engine.images[ref_t]
        assert img_u.layer_key() == img_t.layer_key()
        assert img_u.config.to_json() == img_t.config.to_json()
        # The untraced session really recorded nothing.
        assert not untraced.telemetry.enabled
        assert list(untraced.telemetry.iter_spans()) == []


class TestResilienceEventsOnTrace:
    def test_retry_and_fault_events_reach_the_event_log(self):
        """Chaos-mode events (fault armed/fired, retry attempts) land on
        the active span and surface in the counters."""
        tele = Telemetry()
        injector = FaultInjector(specs=[
            FaultSpec(site="registry.push", kind="transient", times=2),
        ])
        policy = ResiliencePolicy.permissive(injector=injector)
        session = ComtainerSession(resilience=policy, telemetry=tele)
        session.registry.fault_injector = injector
        injector.telemetry = tele
        report = session.resilient_adapt(APP)
        assert report.ref is not None
        armed = [e for e in tele.events if e.name == "fault.armed"]
        fired = [e for e in tele.events if e.name == "fault.fired"]
        attempts = [e for e in tele.events if e.name == "retry.attempt"]
        assert armed
        assert len(fired) == 2
        assert attempts, "retries should be visible as events"
        assert tele.metrics.value("resilience_retries_total") >= 2
        assert tele.metrics.value("resilience_faults_fired_total") == 2
        # The degradation rung is reported as an event as well.
        rungs = [e for e in tele.events if e.name == "degradation.rung"]
        assert rungs and rungs[-1].attributes["rung"] == report.rung
