#!/usr/bin/env python
"""Tour of the extensions built from the paper's discussion section.

1. Source obfuscation (§4.6): ship the cache layer with scrambled
   sources; adaptation and cross-ISA analysis still work.
2. Incremental re-rebuild (§4.1): a second rebuild reuses unchanged
   node outputs.
3. RPM image support (§4.6): coMtainer's analysis auto-detects the
   package database format.
4. BOLT-style post-link layout optimization (§3): extra gain on top of
   the adapted image, without recompiling.

Run:  python examples/extensions_tour.py
"""

from repro.apps import get_app
from repro.containers import ContainerEngine
from repro.core.cache.storage import decode_cache, decode_rebuild
from repro.core.crossisa import analyze_cross_isa
from repro.core.frontend.build import IO_MOUNT
from repro.core.images import install_system_side_images, sysenv_ref
from repro.core.optimizations import bolt_optimize_image
from repro.core.workflow import (
    build_extended_image,
    run_workload,
    system_side_adapt,
)
from repro.perf import attach_perf
from repro.pkg.rpm import RpmDatabase, detect_database_format
from repro.sysmodel import X86_CLUSTER
from repro.vfs import VirtualFilesystem


def main() -> None:
    user = ContainerEngine(arch="amd64")
    engine = ContainerEngine(arch="amd64")
    recorder = attach_perf(engine, X86_CLUSTER)
    install_system_side_images(engine, X86_CLUSTER)

    # ------------------------------------------------------------------
    print("=== 1. obfuscated cache layer ===")
    layout, dist_tag = build_extended_image(user, get_app("hpl"), obfuscate=True)
    models, sources, _ = decode_cache(layout, dist_tag)
    sample = sources["/src/main.c"].read()[:40]
    print(f"cached main.c starts with: {sample!r}  (scrambled)")
    report = analyze_cross_isa(models, sources, "aarch64", app="hpl")
    print(f"cross-ISA analysis still works via the recorded scan: "
          f"{report.asm_guarded} guarded asm files, can_cross={report.can_cross}")
    ref = system_side_adapt(engine, layout, X86_CLUSTER, recorder=recorder,
                            ref="hpl:from-obfuscated")
    print(f"adaptation from the obfuscated cache produced {ref}\n")

    # ------------------------------------------------------------------
    print("=== 2. incremental re-rebuild ===")
    ctr = engine.from_image(sysenv_ref("x86"), mounts={IO_MOUNT: layout})
    out = engine.run(ctr, ["coMtainer-rebuild", "--adapter=vendor"]).check()
    print("second rebuild:", out.stdout.splitlines()[0])
    meta, _, _, _ = decode_rebuild(layout, dist_tag)
    print(f"executed={len(meta['executed_nodes'])} "
          f"reused={len(meta['reused_nodes'])}\n")

    # ------------------------------------------------------------------
    print("=== 3. RPM image detection ===")
    rpm_fs = VirtualFilesystem()
    RpmDatabase().write_to(rpm_fs)
    print("an (empty) Kylin-style image is detected as:",
          detect_database_format(rpm_fs))
    deb_fs = engine.image_filesystem("ubuntu:24.04")
    print("the ubuntu base image is detected as:",
          detect_database_format(deb_fs), "\n")

    # ------------------------------------------------------------------
    print("=== 4. BOLT-style layout pass ===")
    before = run_workload(engine, ref, "hpl", recorder, vendor_mpirun=True).seconds
    bolted = bolt_optimize_image(engine, ref, "hpl", X86_CLUSTER,
                                 binary_path="/app/hpl", ref="hpl:bolted")
    after = run_workload(engine, bolted, "hpl", recorder, vendor_mpirun=True).seconds
    print(f"adapted: {before:.2f} s -> +layout: {after:.2f} s "
          f"({1 - after / before:+.1%})")


if __name__ == "__main__":
    main()
