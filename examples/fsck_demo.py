#!/usr/bin/env python
"""fsck demo: save an image layout, corrupt it on disk, detect, repair.

Builds the hpccg extended image, saves it (and a replica) to disk with
crash-consistent checksummed writes, then flips one bit in the largest
blob file — the coMtainer cache layer.  ``coMtainer fsck`` detects the
damage (exit 1), ``fsck --repair`` quarantines the corrupt blob and
restores a verified copy from the replica (exit 0), and the repaired
directory loads back fully verified.

Run:  python examples/fsck_demo.py
"""

import glob
import os
import shutil
import tempfile

from repro.apps import get_app
from repro.cli import main as cli
from repro.containers import ContainerEngine
from repro.core.workflow import build_extended_image
from repro.oci.layout import OCILayout


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="comtainer-fsck-")
    target = os.path.join(workdir, "hpccg.oci")
    replica = os.path.join(workdir, "replica.oci")
    try:
        # Build the extended image and persist it twice: the working copy
        # and an untouched replica to repair from.
        layout, dist_tag = build_extended_image(
            ContainerEngine(arch="amd64"), get_app("hpccg"))
        layout.save(target)
        layout.save(replica)
        print(f"saved layout : {target}")
        print(f"saved replica: {replica}")

        # Silent at-rest corruption: one flipped bit in the biggest blob
        # (the cache layer, the blob a system-side rebuild depends on).
        victim = max(glob.glob(os.path.join(target, "blobs", "sha256", "*")),
                     key=os.path.getsize)
        with open(victim, "rb") as fh:
            data = bytearray(fh.read())
        data[len(data) // 2] ^= 0x40
        with open(victim, "wb") as fh:
            fh.write(bytes(data))
        print(f"flipped a bit in {os.path.basename(victim)[:20]}... "
              f"({len(data)} bytes)")

        print("\n--- fsck (scan only) ---")
        rc = cli(["fsck", target])
        print(f"exit code: {rc}")
        assert rc == 1, "scan must report the corruption"

        print("\n--- fsck --repair ---")
        rc = cli(["fsck", target, "--repair", "--source", replica])
        print(f"exit code: {rc}")
        assert rc == 0, "repair from the replica must succeed"

        # The proof: the directory loads back with full verification and
        # the image's Merkle walk is clean.
        restored = OCILayout.load(target, verify=True)
        for tag in restored.tags():
            assert restored.resolve(tag).verify() == []
        print(f"\nrestored and verified: tags {restored.tags()}")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
