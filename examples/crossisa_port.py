#!/usr/bin/env python
"""Cross-ISA porting with coMtainer (paper §5.5 / Figure 11).

Takes x86-64 extended images and attempts to rebuild them on the
AArch64 system: analyzes ISA-specific content in the cache, shows why
unguarded assembly blocks a port, performs the relaxed rebuild for a
crossable app, and compares the build-script line changes against a
conventional cross-compilation port.

Run:  python examples/crossisa_port.py
"""

from repro.apps import get_app
from repro.containers import ContainerEngine
from repro.core.cache.storage import decode_cache
from repro.core.crossisa import analyze_cross_isa
from repro.core.images import install_system_side_images
from repro.core.workflow import (
    _run_rebuild,
    _run_redirect,
    build_extended_image,
    run_workload,
)
from repro.perf import attach_perf
from repro.reporting import render_table
from repro.sysmodel import AARCH64_CLUSTER
from repro.toolchain.artifacts import read_artifact


def main() -> None:
    user_x86 = ContainerEngine(arch="amd64")

    # --- analysis across the application set ---------------------------
    rows = []
    layouts = {}
    for app in ("hpl", "lulesh", "comd", "lammps"):
        layout, dist_tag = build_extended_image(user_x86, get_app(app))
        layouts[app] = (layout, dist_tag)
        models, sources, _ = decode_cache(layout, dist_tag)
        report = analyze_cross_isa(models, sources, "aarch64", app=app)
        c_add, c_del = report.comtainer_changes
        x_add, x_del = report.xbuild_changes
        rows.append((
            app,
            "yes" if report.can_cross else "NO (unguarded asm)",
            report.flag_lines, f"+{c_add}/-{c_del}", f"+{x_add}/-{x_del}",
        ))
    print(render_table(
        ["app", "can cross?", "ISA-flag cmds", "coMtainer Δ", "xbuild Δ"], rows
    ))

    # --- the failure mode: rebuilding hpl's x86 flags on AArch64 -------
    arm = ContainerEngine(arch="arm64")
    recorder = attach_perf(arm, AARCH64_CLUSTER)
    install_system_side_images(arm, AARCH64_CLUSTER)
    layout, dist_tag = layouts["hpl"]
    print("\nRebuilding x86-64 hpl image on the AArch64 system, as-is:")
    try:
        _run_rebuild(arm, layout, AARCH64_CLUSTER, "vendor", ["--adapter=vendor"])
    except Exception as exc:
        print(f"  FAILED (as the paper expects): {exc}")

    # --- relaxed constraints: minor modifications, then it crosses -----
    print("\nRetrying with --relax-isa (minor build script modifications):")
    _run_rebuild(arm, layout, AARCH64_CLUSTER, "vendor",
                 ["--adapter=vendor", "--relax-isa"])
    ref = _run_redirect(arm, layout, AARCH64_CLUSTER, ref="hpl:crossed")
    exe = read_artifact(arm.image_filesystem(ref).read_file("/app/hpl"))
    print(f"  crossed: /app/hpl is now {exe.isa}, toolchain {exe.toolchain}")

    report = run_workload(arm, ref, "hpl", recorder, vendor_mpirun=True)
    print(f"  executes on the AArch64 cluster: {report.seconds:.2f} s "
          f"({report.nodes} nodes)")


if __name__ == "__main__":
    main()
