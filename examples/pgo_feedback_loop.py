#!/usr/bin/env python
"""The automated PGO feedback loop (paper §4.4).

PGO is rarely used for pre-built HPC applications because profiling data
must come from representative runs *on the target system*.  coMtainer
closes the loop automatically: instrumented rebuild -> redirect ->
profiling run on the system -> final rebuild with the gathered profile.
This example walks the loop manually for openmx.pt13 (the paper's best
x86 LTO+PGO case, +30.4%) and then shows what a *mismatched* profile
would have cost.

Run:  python examples/pgo_feedback_loop.py
"""

from repro.apps import get_app
from repro.containers import ContainerEngine
from repro.core.images import install_system_side_images
from repro.core.optimizations import profile_bytes_for, read_profile
from repro.core.workflow import (
    _run_rebuild,
    _run_redirect,
    build_extended_image,
    run_workload,
)
from repro.perf import attach_perf
from repro.reporting import render_table
from repro.sysmodel import X86_CLUSTER

WORKLOAD = "openmx.pt13"


def main() -> None:
    user = ContainerEngine(arch="amd64")
    layout, dist_tag = build_extended_image(user, get_app("openmx"))

    engine = ContainerEngine(arch="amd64")
    recorder = attach_perf(engine, X86_CLUSTER)
    install_system_side_images(engine, X86_CLUSTER)

    # Step 0: plain adaptation (the baseline the loop improves on).
    _run_rebuild(engine, layout, X86_CLUSTER, "vendor", ["--adapter=vendor"])
    baseline_ref = _run_redirect(engine, layout, X86_CLUSTER, ref="openmx:plain")
    baseline = run_workload(engine, baseline_ref, WORKLOAD, recorder,
                            vendor_mpirun=True).seconds

    # Step 1: instrumented rebuild + redirect.
    _run_rebuild(engine, layout, X86_CLUSTER, "vendor",
                 ["--adapter=vendor", "--lto", "--pgo=instrument"])
    instr_ref = _run_redirect(engine, layout, X86_CLUSTER, ref="openmx:instr")

    # Step 2: profiling run on the system; the instrumented binary drops
    # profile data into the container.
    ctr = engine.from_image(instr_ref)
    engine.run(
        ctr,
        ["/opt/intel/bin/mpirun", "-np", "16", "/app/openmx",
         "/app/share/in.pt13"],
        env={"SIM_WORKLOAD": WORKLOAD},
    ).check()
    profile_bytes = ctr.fs.read_file("/default.gcda")
    print("gathered profile:", read_profile(profile_bytes))

    # Step 3: final rebuild consuming the profile.
    _run_rebuild(engine, layout, X86_CLUSTER, "vendor",
                 ["--adapter=vendor", "--lto"], profile_bytes=profile_bytes)
    optimized_ref = _run_redirect(engine, layout, X86_CLUSTER, ref="openmx:pgo")
    optimized = run_workload(engine, optimized_ref, WORKLOAD, recorder,
                             vendor_mpirun=True).seconds

    # What if the profile had come from the wrong input?
    _run_rebuild(engine, layout, X86_CLUSTER, "vendor",
                 ["--adapter=vendor", "--lto"],
                 profile_bytes=profile_bytes_for("openmx.nitro", "x86"))
    mismatched_ref = _run_redirect(engine, layout, X86_CLUSTER, ref="openmx:mis")
    mismatched = run_workload(engine, mismatched_ref, WORKLOAD, recorder,
                              vendor_mpirun=True).seconds

    rows = [
        ("adapted (no LTO/PGO)", baseline, "-"),
        ("LTO + matched PGO profile", optimized,
         f"{1 - optimized / baseline:+.1%}"),
        ("LTO + mismatched profile", mismatched,
         f"{1 - mismatched / baseline:+.1%}"),
    ]
    print()
    print(render_table(["build", "time (s)", "gain"], rows))
    print("\nThe matched profile realizes the full PGO gain; a profile from "
          "a different input realizes only a fraction — which is why the "
          "loop must run on the target system with the target workload.")


if __name__ == "__main__":
    main()
