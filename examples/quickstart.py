#!/usr/bin/env python
"""Quickstart: the coMtainer adaptability story in ~30 lines of API.

Builds the LULESH application image the conventional way and through the
coMtainer workflow, adapts it to the simulated x86-64 cluster, and prints
the execution time of the four evaluation schemes (paper §5.1.3).

Run:  python examples/quickstart.py
"""

from repro.core.workflow import ComtainerSession, measure_schemes
from repro.reporting import render_table
from repro.sysmodel import X86_CLUSTER


def main() -> None:
    # A session wires together: a user-side container engine (where images
    # are built), an image registry (distribution), and the HPC system's
    # engine with its vendor software stack and the perf model attached.
    session = ComtainerSession(system=X86_CLUSTER)

    print(f"Target system: {X86_CLUSTER.name}")
    print(f"  native toolchain : {X86_CLUSTER.native_toolchain}")
    print(f"  vendor repository: {X86_CLUSTER.vendor_repo}")
    print()

    # Measure LULESH under all four schemes.  Behind this call:
    #  original  — generic ubuntu image, built and pulled as-is
    #  native    — hand-built on the system with the vendor stack
    #  adapted   — coMtainer: extended image -> rebuild -> redirect
    #  optimized — adapted + LTO + the automated PGO feedback loop
    times = measure_schemes(session, "lulesh")

    rows = [
        (scheme, seconds, f"{times['original'] / seconds - 1:+.1%}")
        for scheme, seconds in times.items()
    ]
    print(render_table(["scheme", "time (s)", "speedup vs original"], rows))
    print()
    print(
        "coMtainer recovered "
        f"{(1 - times['adapted'] / times['original']):.1%} of the execution "
        "time without any user involvement — the user only ever published "
        "a generic image."
    )


if __name__ == "__main__":
    main()
