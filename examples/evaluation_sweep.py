#!/usr/bin/env python
"""Regenerate the paper's evaluation tables (Figures 9/10, Tables 1-3).

Runs the full pipeline for every workload on both simulated testbeds and
prints the same series the paper reports.  This is the long-form version
of what the benchmark harness under benchmarks/ asserts on.

Run:  python examples/evaluation_sweep.py           # both systems
      python examples/evaluation_sweep.py x86       # one system
"""

import sys

from repro.core.workflow import ComtainerSession
from repro.reporting import (
    figure9_rows,
    figure9_run,
    figure10_rows,
    render_table,
    table1_rows,
    table2_rows,
)
from repro.sysmodel import SYSTEMS


def main() -> None:
    wanted = sys.argv[1:] or list(SYSTEMS)

    print("=== Table 1: testbed ===")
    print(render_table(["", "x86_64", "aarch64"], table1_rows()))
    print("\n=== Table 2: workloads ===")
    print(render_table(["App", "Wkld", "LoC"], table2_rows()))

    for key in wanted:
        system = SYSTEMS[key]
        print(f"\n=== Figure 9: execution time on {system.name} ===")
        session = ComtainerSession(system=system)
        result = figure9_run(session)
        print(render_table(
            ["workload", "original", "native", "adapted", "optimized",
             "orig/native", "paper"],
            figure9_rows(result),
        ))
        averages = result.averages()
        print(f"\naverages: " + ", ".join(
            f"{k}={v:.2f}s" for k, v in averages.items()
        ))
        print(f"\n=== Figure 10: relative to native ({key}) ===")
        print(render_table(
            ["workload", "adapted/native", "optimized/native"],
            figure10_rows(result),
        ))


if __name__ == "__main__":
    main()
