#!/usr/bin/env python
"""The full coMtainer workflow, step by step (paper Figure 5 + artifact B.2).

Follows the artifact description's buildah command sequence, but through
the library API, and inspects every intermediate artifact: the hijacker
trace, the process models, the cache layer, the ``+coM``/``+coMre``
manifests, and the final redirected image.

Run:  python examples/lulesh_workflow.py
"""

import json

from repro.apps import app_containerfile, build_context, get_app
from repro.containers import ContainerEngine
from repro.containers.hijack import read_trace
from repro.core.cache.storage import decode_cache, decode_rebuild, extended_tag
from repro.core.frontend.build import IO_MOUNT
from repro.core.images import (
    base_ref,
    env_ref,
    install_system_side_images,
    install_user_side_images,
    rebase_ref,
    sysenv_ref,
)
from repro.oci.layout import OCILayout
from repro.perf import attach_perf
from repro.reporting import render_table
from repro.sysmodel import X86_CLUSTER


def main() -> None:
    spec = get_app("lulesh")

    # ------------------------------------------------------------------
    # USER SIDE
    # ------------------------------------------------------------------
    user = ContainerEngine(arch="amd64")
    install_user_side_images(user)

    # The user's Dockerfile differs from a conventional one only in the
    # base references (paper Figure 6).
    containerfile = app_containerfile(
        spec, build_base=env_ref("amd64"), dist_base=base_ref("amd64")
    )
    print("=== Containerfile (user side) ===")
    print(containerfile)

    # $ buildah build --target build -t lulesh.build .
    # $ buildah build --target dist  -t lulesh.dist  .
    context = build_context(spec, "amd64")
    refs = user.build_stages(containerfile, context=context)
    print(f"built stages: {sorted(refs)}")

    # The Env image hijacked the toolchain: the build container carries
    # the raw build process.
    build_fs = user.image_filesystem(refs["build"])
    trace = read_trace(build_fs)
    print(f"\n=== raw build process ({len(trace)} records) ===")
    for record in trace[:3]:
        print(" ", " ".join(record["argv"][:6]), "...")
    print("  ...")

    # $ buildah push lulesh.dist oci:./lulesh.dist.oci
    layout = OCILayout()
    dist_tag = "lulesh.dist"
    user.push_to_layout(refs["dist"], layout, tag=dist_tag)

    # $ buildah from --name lulesh.build -v $(pwd)/lulesh.dist.oci:/.coMtainer/io ...
    # $ buildah run lulesh.build -- coMtainer-build
    build_ctr = user.from_image(refs["build"], mounts={IO_MOUNT: layout})
    result = user.run(build_ctr, ["coMtainer-build"]).check()
    print("\n=== coMtainer-build ===")
    print(result.stdout)
    print("layout index tags:", layout.tags())
    assert layout.has_tag(extended_tag(dist_tag))   # the +coM manifest

    models, sources, _ = decode_cache(layout, dist_tag)
    print("process model summary:",
          json.dumps(models.summary(), indent=2, default=str))

    # ------------------------------------------------------------------
    # SYSTEM SIDE  (the extended image arrived via the registry)
    # ------------------------------------------------------------------
    system_engine = ContainerEngine(arch="amd64")
    recorder = attach_perf(system_engine, X86_CLUSTER)
    install_system_side_images(system_engine, X86_CLUSTER)

    # $ buildah from -v ...:/.coMtainer/io --name lulesh.rebuild comtainer:x86-64.sysenv
    # $ buildah run lulesh.rebuild -- coMtainer-rebuild
    rebuild_ctr = system_engine.from_image(
        sysenv_ref("x86"), mounts={IO_MOUNT: layout}
    )
    result = system_engine.run(
        rebuild_ctr, ["coMtainer-rebuild", "--adapter=vendor"]
    ).check()
    print("=== coMtainer-rebuild ===")
    print(result.stdout)
    print("layout index tags:", layout.tags())

    meta, files, _, _ = decode_rebuild(layout, dist_tag)
    print("replacements:",
          [(r["generic"], r["optimized"]) for r in meta["replacements"]])

    # $ buildah from -v ... --name lulesh.redirect comtainer:x86-64.rebase
    # $ buildah run lulesh.redirect -- coMtainer-redirect
    # $ buildah commit lulesh.redirect oci:./lulesh.redirect.oci
    redirect_ctr = system_engine.from_image(
        rebase_ref("x86"), mounts={IO_MOUNT: layout}
    )
    system_engine.run(redirect_ctr, ["coMtainer-redirect"]).check()
    system_engine.commit(redirect_ctr, ref="lulesh:redirected")
    print("committed optimized image: lulesh:redirected")

    # ------------------------------------------------------------------
    # Run original vs redirected
    # ------------------------------------------------------------------
    system_engine.load_from_layout(layout, dist_tag, ref="lulesh:original")
    rows = []
    for label, ref, launcher in [
        ("original", "lulesh:original", "mpirun"),
        ("redirected", "lulesh:redirected", "/opt/intel/bin/mpirun"),
    ]:
        ctr = system_engine.from_image(ref)
        run = system_engine.run(
            ctr, [launcher, "-np", "16", "/app/lulesh"],
            env={"SIM_WORKLOAD": "lulesh"},
        ).check()
        rows.append((label, recorder.last.seconds))
    print()
    print(render_table(["image", "time (s)"], rows))


if __name__ == "__main__":
    main()
