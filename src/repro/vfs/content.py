"""File content providers.

Container base images in the evaluation weigh 95-440 MiB (Table 3 of the
paper); materializing those bytes for every simulated image would dominate
runtime without exercising any interesting code path.  Content is therefore
an abstraction: :class:`InlineContent` stores real bytes (used for anything
the toolchain or coMtainer actually reads), while :class:`SyntheticContent`
declares a size and a seed and only generates its deterministic byte stream
on demand (used for bulk payload files whose *size* matters but whose bytes
never do).

Every provider exposes a stable ``digest`` so layers built from either kind
are content-addressable.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field


class FileContent:
    """Interface for file payloads inside the virtual filesystem."""

    @property
    def size(self) -> int:
        raise NotImplementedError

    @property
    def digest(self) -> str:
        """Stable ``sha256:<hex>`` identifier for this content."""
        raise NotImplementedError

    def read(self) -> bytes:
        """Materialize the payload bytes."""
        raise NotImplementedError


@dataclass(frozen=True)
class InlineContent(FileContent):
    """Content held directly in memory."""

    data: bytes = b""
    _digest_cache: list = field(default_factory=list, repr=False, compare=False)

    @property
    def size(self) -> int:
        return len(self.data)

    @property
    def digest(self) -> str:
        if not self._digest_cache:
            self._digest_cache.append(
                "sha256:" + hashlib.sha256(self.data).hexdigest()
            )
        return self._digest_cache[0]

    def read(self) -> bytes:
        return self.data


@dataclass(frozen=True)
class SyntheticContent(FileContent):
    """Deterministic pseudo-content identified by ``(seed, size)``.

    ``read`` produces a repeating pattern derived from the seed; the digest
    is computed over the identity tuple rather than the stream so that the
    (potentially huge) stream never needs hashing.  The two digest domains
    cannot collide because synthetic digests hash a tagged tuple.
    """

    seed: str
    declared_size: int

    def __post_init__(self) -> None:
        if self.declared_size < 0:
            raise ValueError("size must be non-negative")

    @property
    def size(self) -> int:
        return self.declared_size

    @property
    def digest(self) -> str:
        ident = f"synthetic\x00{self.seed}\x00{self.declared_size}".encode()
        return "sha256:" + hashlib.sha256(ident).hexdigest()

    def read(self) -> bytes:
        if self.declared_size == 0:
            return b""
        block = hashlib.sha256(self.seed.encode()).digest()
        repeats = self.declared_size // len(block) + 1
        return (block * repeats)[: self.declared_size]


def text_content(text: str) -> InlineContent:
    """Convenience wrapper: UTF-8 inline content from a string."""
    return InlineContent(text.encode("utf-8"))
