"""Exception hierarchy for the virtual filesystem."""


class VfsError(Exception):
    """Base class for all virtual filesystem errors."""


class NotFoundError(VfsError):
    """A path component does not exist (ENOENT)."""


class NotADirectoryVfsError(VfsError):
    """A non-directory was used as an intermediate path component (ENOTDIR)."""


class IsADirectoryVfsError(VfsError):
    """A directory was used where a file was expected (EISDIR)."""


class FileExistsVfsError(VfsError):
    """Target already exists (EEXIST)."""


class SymlinkLoopError(VfsError):
    """Too many levels of symbolic links (ELOOP)."""
