"""Virtual POSIX filesystem substrate.

The coMtainer paper's front-end requires "a POSIX file system simulator to
compute the final file system state after applying all image layers"
(Section 4.5).  This package is that simulator: an in-memory tree of
directories, regular files and symlinks with POSIX-ish semantics (absolute
paths, symlink resolution with loop detection, recursive removal, tree
copies) plus a content-provider abstraction that lets multi-MiB synthetic
files exist without materializing their bytes.
"""

from repro.vfs.content import (
    FileContent,
    InlineContent,
    SyntheticContent,
    text_content,
)
from repro.vfs.errors import (
    IsADirectoryVfsError,
    NotADirectoryVfsError,
    NotFoundError,
    SymlinkLoopError,
    VfsError,
)
from repro.vfs.filesystem import (
    Directory,
    Node,
    RegularFile,
    Symlink,
    VirtualFilesystem,
)
from repro.vfs.paths import basename, dirname, is_absolute, join, normalize, split_components

__all__ = [
    "Directory",
    "FileContent",
    "InlineContent",
    "IsADirectoryVfsError",
    "Node",
    "NotADirectoryVfsError",
    "NotFoundError",
    "RegularFile",
    "Symlink",
    "SymlinkLoopError",
    "SyntheticContent",
    "VfsError",
    "VirtualFilesystem",
    "basename",
    "dirname",
    "is_absolute",
    "join",
    "normalize",
    "split_components",
    "text_content",
]
