"""Pure-string POSIX path manipulation.

All virtual-filesystem paths are absolute, ``/``-separated, and normalized
(no ``.``/``..`` components, no trailing slash except the root itself).
These helpers never touch the host filesystem.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

#: Path strings repeat massively (every file write resolves its parents,
#: package installs hammer the same prefixes), so the pure-string helpers
#: below are memoized.  Sized to hold a large image's worth of paths.
_CACHE_SIZE = 65536


def is_absolute(path: str) -> bool:
    """Return True when *path* starts at the filesystem root."""
    return path.startswith("/")


@lru_cache(maxsize=_CACHE_SIZE)
def normalize(path: str) -> str:
    """Collapse ``.``/``..``/doubled slashes; result is absolute.

    Relative input is interpreted against ``/`` — callers that care about a
    working directory should :func:`join` first.  ``..`` above the root is
    clamped to the root, matching kernel path resolution.
    """
    parts: List[str] = []
    for comp in path.split("/"):
        if comp in ("", "."):
            continue
        if comp == "..":
            if parts:
                parts.pop()
            continue
        parts.append(comp)
    return "/" + "/".join(parts)


@lru_cache(maxsize=_CACHE_SIZE)
def join(base: str, *rest: str) -> str:
    """Join path fragments; an absolute fragment resets the result."""
    result = base
    for part in rest:
        if is_absolute(part):
            result = part
        elif result.endswith("/"):
            result = result + part
        else:
            result = result + "/" + part
    return normalize(result)


@lru_cache(maxsize=_CACHE_SIZE)
def components(path: str) -> Tuple[str, ...]:
    """The component tuple of a normalized path (root -> ``()``).

    The tuple is cached and shared — the immutable sibling of
    :func:`split_components` for hot resolution loops.
    """
    norm = normalize(path)
    if norm == "/":
        return ()
    return tuple(norm[1:].split("/"))


def split_components(path: str) -> List[str]:
    """Return the component list of a normalized path (root -> [])."""
    return list(components(path))


@lru_cache(maxsize=_CACHE_SIZE)
def split(path: str) -> Tuple[str, str]:
    """Return ``(dirname, basename)`` of a normalized path."""
    norm = normalize(path)
    if norm == "/":
        return "/", ""
    head, _, tail = norm.rpartition("/")
    return (head or "/", tail)


def dirname(path: str) -> str:
    return split(path)[0]


def basename(path: str) -> str:
    return split(path)[1]


def is_within(path: str, ancestor: str) -> bool:
    """Return True when *path* equals or lies below *ancestor*."""
    p = normalize(path)
    a = normalize(ancestor)
    if a == "/":
        return True
    return p == a or p.startswith(a + "/")


def relative_to(path: str, ancestor: str) -> str:
    """Return *path* relative to *ancestor* (no leading slash)."""
    p = normalize(path)
    a = normalize(ancestor)
    if not is_within(p, a):
        raise ValueError(f"{p!r} is not within {a!r}")
    if p == a:
        return "."
    if a == "/":
        return p[1:]
    return p[len(a) + 1 :]
