"""Pure-string POSIX path manipulation.

All virtual-filesystem paths are absolute, ``/``-separated, and normalized
(no ``.``/``..`` components, no trailing slash except the root itself).
These helpers never touch the host filesystem.
"""

from __future__ import annotations

from typing import List, Tuple


def is_absolute(path: str) -> bool:
    """Return True when *path* starts at the filesystem root."""
    return path.startswith("/")


def normalize(path: str) -> str:
    """Collapse ``.``/``..``/doubled slashes; result is absolute.

    Relative input is interpreted against ``/`` — callers that care about a
    working directory should :func:`join` first.  ``..`` above the root is
    clamped to the root, matching kernel path resolution.
    """
    parts: List[str] = []
    for comp in path.split("/"):
        if comp in ("", "."):
            continue
        if comp == "..":
            if parts:
                parts.pop()
            continue
        parts.append(comp)
    return "/" + "/".join(parts)


def join(base: str, *rest: str) -> str:
    """Join path fragments; an absolute fragment resets the result."""
    result = base
    for part in rest:
        if is_absolute(part):
            result = part
        elif result.endswith("/"):
            result = result + part
        else:
            result = result + "/" + part
    return normalize(result)


def split_components(path: str) -> List[str]:
    """Return the component list of a normalized path (root -> [])."""
    norm = normalize(path)
    if norm == "/":
        return []
    return norm[1:].split("/")


def split(path: str) -> Tuple[str, str]:
    """Return ``(dirname, basename)`` of a normalized path."""
    norm = normalize(path)
    if norm == "/":
        return "/", ""
    head, _, tail = norm.rpartition("/")
    return (head or "/", tail)


def dirname(path: str) -> str:
    return split(path)[0]


def basename(path: str) -> str:
    return split(path)[1]


def is_within(path: str, ancestor: str) -> bool:
    """Return True when *path* equals or lies below *ancestor*."""
    p = normalize(path)
    a = normalize(ancestor)
    if a == "/":
        return True
    return p == a or p.startswith(a + "/")


def relative_to(path: str, ancestor: str) -> str:
    """Return *path* relative to *ancestor* (no leading slash)."""
    p = normalize(path)
    a = normalize(ancestor)
    if not is_within(p, a):
        raise ValueError(f"{p!r} is not within {a!r}")
    if p == a:
        return "."
    if a == "/":
        return p[1:]
    return p[len(a) + 1 :]
