"""In-memory POSIX-style filesystem tree.

Semantics intentionally mirror the subset of POSIX the container substrate
needs: absolute normalized paths, symlink resolution with an ELOOP bound,
recursive removal, whole-tree copies between filesystems, and deterministic
ordered traversal (children are kept sorted so layer diffs and digests are
reproducible).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.vfs import paths as vpath
from repro.vfs.content import FileContent, InlineContent, text_content
from repro.vfs.errors import (
    FileExistsVfsError,
    IsADirectoryVfsError,
    NotADirectoryVfsError,
    NotFoundError,
    SymlinkLoopError,
    VfsError,
)

_MAX_SYMLINK_HOPS = 40


@dataclass
class Node:
    """Common metadata carried by every filesystem node."""

    mode: int = 0o644
    mtime: int = 0
    uid: int = 0
    gid: int = 0

    def __post_init__(self) -> None:
        # Structural-sharing marker: a node flagged ``_shared`` may be
        # referenced from more than one tree and must never be mutated in
        # place — mutators replace it with a private copy first.
        self._shared = False


@dataclass
class RegularFile(Node):
    content: FileContent = field(default_factory=InlineContent)

    @property
    def size(self) -> int:
        return self.content.size

    def clone(self) -> "RegularFile":
        # Content providers are immutable, so they are shared between clones.
        return RegularFile(
            mode=self.mode, mtime=self.mtime, uid=self.uid, gid=self.gid,
            content=self.content,
        )


@dataclass
class Symlink(Node):
    target: str = ""

    def clone(self) -> "Symlink":
        return Symlink(
            mode=self.mode, mtime=self.mtime, uid=self.uid, gid=self.gid,
            target=self.target,
        )


class _ChildMap(dict):
    """Child mapping that invalidates the owner's cached sorted view."""

    __slots__ = ("_owner",)

    def __init__(self, data=None, owner: Optional["Directory"] = None):
        super().__init__(data or {})
        self._owner = owner

    def _touch(self) -> None:
        owner = self._owner
        if owner is not None:
            owner._sorted = None

    def __setitem__(self, key, value):
        super().__setitem__(key, value)
        self._touch()

    def __delitem__(self, key):
        super().__delitem__(key)
        self._touch()

    def clear(self):
        super().clear()
        self._touch()

    def pop(self, *args):
        result = super().pop(*args)
        self._touch()
        return result

    def popitem(self):
        result = super().popitem()
        self._touch()
        return result

    def update(self, *args, **kwargs):
        super().update(*args, **kwargs)
        self._touch()

    def setdefault(self, key, default=None):
        had = key in self
        result = super().setdefault(key, default)
        if not had:
            self._touch()
        return result


@dataclass
class Directory(Node):
    mode: int = 0o755
    children: Dict[str, "AnyNode"] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._shared = False
        self._sorted: Optional[List[Tuple[str, "AnyNode"]]] = None
        if not isinstance(self.children, _ChildMap) or self.children._owner is not self:
            self.children = _ChildMap(self.children, owner=self)

    def clone(self) -> "Directory":
        """Copy-on-write copy: O(fan-out), children shared with the original.

        Both the original's and the copy's children become ``_shared``; any
        later mutation through :class:`VirtualFilesystem` replaces the shared
        subtree along the mutated path with private copies first.
        """
        copy = Directory(
            mode=self.mode, mtime=self.mtime, uid=self.uid, gid=self.gid,
            children=dict(self.children),
        )
        for child in copy.children.values():
            child._shared = True
        return copy

    def sorted_items(self) -> List[Tuple[str, "AnyNode"]]:
        """Cached sorted ``(name, child)`` view — treat the list as immutable."""
        cached = self._sorted
        if cached is None:
            cached = self._sorted = sorted(self.children.items())
        return cached


AnyNode = Union[Directory, RegularFile, Symlink]


class VirtualFilesystem:
    """A mutable rooted tree of :class:`Directory`/:class:`RegularFile`/:class:`Symlink`."""

    def __init__(self) -> None:
        self.root = Directory()

    # ------------------------------------------------------------------
    # path resolution
    # ------------------------------------------------------------------

    def _resolve(
        self,
        path: str,
        *,
        follow_final: bool = True,
        _hops: int = 0,
    ) -> Tuple[str, Optional[AnyNode]]:
        """Resolve *path* to ``(canonical_path, node_or_None)``.

        Intermediate symlinks are always followed; the final component is
        followed only when *follow_final*.  Returns ``node=None`` when the
        final component does not exist but all intermediates do.
        """
        if _hops > _MAX_SYMLINK_HOPS:
            raise SymlinkLoopError(f"too many levels of symbolic links: {path!r}")
        comps = vpath.components(path)
        node: AnyNode = self.root
        cur = "/"
        for i, comp in enumerate(comps):
            if not isinstance(node, Directory):
                raise NotADirectoryVfsError(f"not a directory: {cur!r}")
            child = node.children.get(comp)
            is_final = i == len(comps) - 1
            child_path = vpath.join(cur, comp)
            if child is None:
                if is_final:
                    return child_path, None
                raise NotFoundError(f"no such file or directory: {child_path!r}")
            if isinstance(child, Symlink) and (not is_final or follow_final):
                target = child.target
                if not vpath.is_absolute(target):
                    target = vpath.join(cur, target)
                rest = "/".join(comps[i + 1 :])
                rejoined = vpath.join(target, rest) if rest else target
                return self._resolve(
                    rejoined, follow_final=follow_final, _hops=_hops + 1
                )
            node = child
            cur = child_path
        return cur, node

    def resolve_path(self, path: str) -> str:
        """Canonical path after following all symlinks (must exist)."""
        canonical, node = self._resolve(path)
        if node is None:
            raise NotFoundError(f"no such file or directory: {path!r}")
        return canonical

    def get_node(self, path: str, *, follow_symlinks: bool = True) -> AnyNode:
        _, node = self._resolve(path, follow_final=follow_symlinks)
        if node is None:
            raise NotFoundError(f"no such file or directory: {path!r}")
        return node

    def try_get_node(
        self, path: str, *, follow_symlinks: bool = True
    ) -> Optional[AnyNode]:
        try:
            _, node = self._resolve(path, follow_final=follow_symlinks)
        except VfsError:
            return None
        return node

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------

    def exists(self, path: str) -> bool:
        return self.try_get_node(path) is not None

    def lexists(self, path: str) -> bool:
        return self.try_get_node(path, follow_symlinks=False) is not None

    def is_dir(self, path: str) -> bool:
        return isinstance(self.try_get_node(path), Directory)

    def is_file(self, path: str) -> bool:
        return isinstance(self.try_get_node(path), RegularFile)

    def is_symlink(self, path: str) -> bool:
        return isinstance(self.try_get_node(path, follow_symlinks=False), Symlink)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def _writable_dir_at(self, canonical: str) -> Directory:
        """Return a mutation-safe directory at the *canonical* (resolved) path.

        Walks from the root and replaces every ``_shared`` directory along the
        way with a private shallow copy (path copying), so mutating the
        returned node can never leak into another tree that shares structure
        with this one.
        """
        if self.root._shared:
            self.root = self.root.clone()
        node = self.root
        for comp in vpath.components(canonical):
            child = node.children[comp]
            if child._shared:
                child = child.clone()
                node.children[comp] = child
            assert isinstance(child, Directory)
            node = child
        return node

    def _parent_dir(self, path: str, *, create: bool = False) -> Tuple[Directory, str]:
        """Return a writable directory node holding *path*'s final component."""
        parent_path = vpath.dirname(path)
        name = vpath.basename(path)
        if not name:
            raise VfsError("cannot address the root this way")
        if create:
            self.makedirs(parent_path, exist_ok=True)
        canonical, node = self._resolve(parent_path)
        if node is None:
            raise NotFoundError(f"no such directory: {parent_path!r}")
        if not isinstance(node, Directory):
            raise NotADirectoryVfsError(f"not a directory: {canonical!r}")
        return self._writable_dir_at(canonical), name

    def writable_dir(self, path: str, *, create: bool = False) -> Directory:
        """Resolve *path* to a directory safe for direct child mutation."""
        if create:
            self.makedirs(path, exist_ok=True)
        canonical, node = self._resolve(path)
        if node is None:
            raise NotFoundError(f"no such directory: {path!r}")
        if not isinstance(node, Directory):
            raise NotADirectoryVfsError(f"not a directory: {canonical!r}")
        return self._writable_dir_at(canonical)

    def mkdir(self, path: str, *, exist_ok: bool = False, mode: int = 0o755) -> None:
        parent, name = self._parent_dir(path)
        existing = parent.children.get(name)
        if existing is not None:
            if exist_ok and isinstance(existing, Directory):
                return
            raise FileExistsVfsError(f"file exists: {vpath.normalize(path)!r}")
        parent.children[name] = Directory(mode=mode)

    def makedirs(self, path: str, *, exist_ok: bool = True, mode: int = 0o755) -> None:
        if exist_ok:
            # Fast path for the overwhelmingly common case: the whole
            # chain already exists (repeated writes into one directory).
            try:
                _, node = self._resolve(path)
            except VfsError:
                node = None
            if isinstance(node, Directory):
                return
        comps = vpath.components(path)
        cur = "/"
        for comp in comps:
            cur = vpath.join(cur, comp)
            canonical, node = self._resolve(cur)
            if node is None:
                self.mkdir(canonical, mode=mode)
            elif not isinstance(node, Directory):
                raise NotADirectoryVfsError(f"not a directory: {canonical!r}")
            elif cur == vpath.normalize(path) and not exist_ok:
                raise FileExistsVfsError(f"file exists: {cur!r}")

    def write_file(
        self,
        path: str,
        content: Union[FileContent, bytes, str],
        *,
        mode: int = 0o644,
        mtime: int = 0,
        create_parents: bool = False,
    ) -> RegularFile:
        if isinstance(content, str):
            content = text_content(content)
        elif isinstance(content, bytes):
            content = InlineContent(content)
        parent, name = self._parent_dir(path, create=create_parents)
        existing = parent.children.get(name)
        if isinstance(existing, Directory):
            raise IsADirectoryVfsError(f"is a directory: {vpath.normalize(path)!r}")
        node = RegularFile(mode=mode, mtime=mtime, content=content)
        parent.children[name] = node
        return node

    def symlink(self, target: str, linkpath: str, *, create_parents: bool = False) -> Symlink:
        parent, name = self._parent_dir(linkpath, create=create_parents)
        if name in parent.children:
            raise FileExistsVfsError(f"file exists: {vpath.normalize(linkpath)!r}")
        node = Symlink(mode=0o777, target=target)
        parent.children[name] = node
        return node

    def remove(self, path: str, *, recursive: bool = False, missing_ok: bool = False) -> None:
        try:
            parent, name = self._parent_dir(path)
        except NotFoundError:
            if missing_ok:
                return
            raise
        node = parent.children.get(name)
        if node is None:
            if missing_ok:
                return
            raise NotFoundError(f"no such file or directory: {vpath.normalize(path)!r}")
        if isinstance(node, Directory) and node.children and not recursive:
            raise VfsError(f"directory not empty: {vpath.normalize(path)!r}")
        del parent.children[name]

    def rename(self, src: str, dst: str) -> None:
        src_norm = vpath.normalize(src)
        dst_norm = vpath.normalize(dst)
        if vpath.is_within(dst_norm, src_norm):
            raise VfsError(
                f"cannot move {src_norm!r} into itself ({dst_norm!r})"
            )
        sparent, sname = self._parent_dir(src)
        node = sparent.children.get(sname)
        if node is None:
            raise NotFoundError(f"no such file or directory: {src_norm!r}")
        dparent, dname = self._parent_dir(dst)
        del sparent.children[sname]
        dparent.children[dname] = node

    def chmod(self, path: str, mode: int) -> None:
        canonical, node = self._resolve(path)
        if node is None:
            raise NotFoundError(f"no such file or directory: {path!r}")
        if node is self.root:
            if self.root._shared:
                self.root = self.root.clone()
            self.root.mode = mode
            return
        parent = self._writable_dir_at(vpath.dirname(canonical))
        name = vpath.basename(canonical)
        child = parent.children[name]
        if child._shared:
            child = child.clone()
            parent.children[name] = child
        child.mode = mode

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def read_file(self, path: str) -> bytes:
        node = self.get_node(path)
        if isinstance(node, Directory):
            raise IsADirectoryVfsError(f"is a directory: {vpath.normalize(path)!r}")
        assert isinstance(node, RegularFile)
        return node.content.read()

    def read_text(self, path: str) -> str:
        return self.read_file(path).decode("utf-8")

    def readlink(self, path: str) -> str:
        node = self.get_node(path, follow_symlinks=False)
        if not isinstance(node, Symlink):
            raise VfsError(f"not a symlink: {vpath.normalize(path)!r}")
        return node.target

    def listdir(self, path: str = "/") -> List[str]:
        node = self.get_node(path)
        if not isinstance(node, Directory):
            raise NotADirectoryVfsError(f"not a directory: {vpath.normalize(path)!r}")
        return sorted(node.children)

    def file_size(self, path: str) -> int:
        node = self.get_node(path)
        if isinstance(node, RegularFile):
            return node.size
        raise VfsError(f"not a regular file: {vpath.normalize(path)!r}")

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------

    def walk(self, top: str = "/") -> Iterator[Tuple[str, List[str], List[str]]]:
        """Yield ``(dirpath, dirnames, othernames)`` in sorted pre-order.

        Symlinks are reported as non-directories and never followed, so a
        walk terminates even in the presence of symlink cycles.
        """
        node = self.get_node(top, follow_symlinks=False)
        if not isinstance(node, Directory):
            raise NotADirectoryVfsError(f"not a directory: {top!r}")
        top = vpath.normalize(top)
        stack: List[Tuple[str, Directory]] = [(top, node)]
        while stack:
            dirpath, dirnode = stack.pop()
            dirnames: List[str] = []
            othernames: List[str] = []
            for name, child in dirnode.sorted_items():
                if isinstance(child, Directory):
                    dirnames.append(name)
                else:
                    othernames.append(name)
            yield dirpath, dirnames, othernames
            for name in reversed(dirnames):
                child = dirnode.children[name]
                assert isinstance(child, Directory)
                stack.append((vpath.join(dirpath, name), child))

    def iter_entries(self, top: str = "/") -> Iterator[Tuple[str, AnyNode]]:
        """Yield every node strictly below *top* as ``(path, node)``, pre-order."""
        node = self.get_node(top, follow_symlinks=False)
        if not isinstance(node, Directory):
            raise NotADirectoryVfsError(f"not a directory: {top!r}")
        stack: List[Tuple[str, Directory]] = [(vpath.normalize(top), node)]
        while stack:
            dirpath, dirnode = stack.pop()
            subdirs: List[Tuple[str, Directory]] = []
            for name, child in dirnode.sorted_items():
                yield vpath.join(dirpath, name), child
                if isinstance(child, Directory):
                    subdirs.append((vpath.join(dirpath, name), child))
            stack.extend(reversed(subdirs))

    def iter_files(self, top: str = "/") -> Iterator[Tuple[str, RegularFile]]:
        for path, node in self.iter_entries(top):
            if isinstance(node, RegularFile):
                yield path, node

    def file_paths(self, top: str = "/") -> List[str]:
        return [p for p, _ in self.iter_files(top)]

    def total_size(self, top: str = "/") -> int:
        """Sum of regular-file sizes below *top* (bytes)."""
        return sum(node.size for _, node in self.iter_files(top))

    # ------------------------------------------------------------------
    # tree operations
    # ------------------------------------------------------------------

    def clone(self) -> "VirtualFilesystem":
        """O(root fan-out) copy-on-write clone sharing structure with self."""
        other = VirtualFilesystem()
        other.root = self.root.clone()
        return other

    def copy_tree(
        self,
        src: str,
        dst: str,
        *,
        source_fs: Optional["VirtualFilesystem"] = None,
    ) -> None:
        """Recursively copy *src* (from *source_fs* or self) to *dst* on self."""
        source = source_fs if source_fs is not None else self
        node = source.get_node(src, follow_symlinks=False)
        if isinstance(node, Directory):
            self.makedirs(dst, exist_ok=True)
            dst_node = self.get_node(dst, follow_symlinks=False)
            assert isinstance(dst_node, Directory)
            for name, child in node.sorted_items():
                self.copy_tree(
                    vpath.join(src, name), vpath.join(dst, name), source_fs=source
                )
        else:
            parent, name = self._parent_dir(dst, create=True)
            parent.children[name] = node.clone()

    def overlay(self, other: "VirtualFilesystem", at: str = "/") -> None:
        """Merge *other*'s whole tree into self rooted at *at* (other wins)."""
        self.makedirs(at, exist_ok=True)
        for name, _child in other.root.sorted_items():
            self.copy_tree("/" + name, vpath.join(at, name), source_fs=other)
