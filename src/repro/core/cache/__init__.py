"""Cache storage: the extra OCI layer carrying build-time data."""

from repro.core.cache.artifacts import (
    RebuildArtifactCache,
    attach_artifact_cache,
    cache_key,
    has_artifact_cache,
    publish_artifact_cache,
)
from repro.core.cache.storage import (
    CACHE_ROOT,
    CacheError,
    add_cache_manifest,
    add_rebuild_manifest,
    decode_cache,
    decode_rebuild,
    decode_rebuild_plan,
    encode_cache_layer,
    extended_tag,
    find_dist_tag,
    rebuilt_tag,
)

__all__ = [
    "CACHE_ROOT",
    "CacheError",
    "RebuildArtifactCache",
    "attach_artifact_cache",
    "cache_key",
    "has_artifact_cache",
    "publish_artifact_cache",
    "add_cache_manifest",
    "add_rebuild_manifest",
    "decode_cache",
    "decode_rebuild",
    "decode_rebuild_plan",
    "encode_cache_layer",
    "extended_tag",
    "find_dist_tag",
    "rebuilt_tag",
]
