"""Content-addressed rebuild artifact cache.

``coMtainer-rebuild`` pays for the same compiles over and over: the PGO
loop rebuilds the whole graph twice (instrument, then use), repeated
``ComtainerSession.adapt`` calls on the same system re-execute commands
whose inputs did not change, and every node of a cluster redoes work the
first node already did.  The incremental-reuse path in the rebuilder only
survives *within one dist layout lineage* — this cache survives across
rebuilds and, through the registry, across layouts.

Cache entries are **content-addressed**: the key is a digest over the
transformed-command digest (adapter + options + PGO profile salt already
folded in) plus the ``(path, content-digest)`` of every *produced* input
the command consumes.  If any upstream object changed, the key changes —
so a hit is only possible when the command would have produced the exact
same bytes.  Values are the command's sibling outputs, serialized
structurally (the journal's ``_encode_content``), each carrying its
content digest: a hit whose reconstructed bytes do not hash back to the
recorded digest is treated as a miss, so a cache corrupted in registry
transfer degrades to recompilation, never to wrong artifacts.

The cache is persisted like the journal: a single JSON blob in the
layout's blob store, registered through an index descriptor carrying the
``io.comtainer.artifact-cache=<dist-tag>`` annotation and no ref name —
invisible to tags and image pushes, but surviving save/load and ``gc``.
:func:`publish_artifact_cache` / :func:`attach_artifact_cache` move the
blob through an :class:`~repro.oci.registry.ImageRegistry`, which is how
warm compiles reach other sessions and other cluster nodes.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.oci import mediatypes
from repro.oci.image import Descriptor
from repro.oci.layout import OCILayout
from repro.resilience.journal import _decode_content, _encode_content
from repro.telemetry import NULL_TELEMETRY
from repro.vfs.content import FileContent

CACHE_VERSION = 1

_OUTPUT_KEYS = ("node", "path", "mode", "content", "content_digest")


def cache_key(command_digest: str, dep_digests: Iterable[Tuple[str, str]]) -> str:
    """Content address of one command execution.

    *dep_digests* are ``(path, content-digest)`` pairs of the command's
    produced inputs; they are sorted here so the key does not depend on
    dependency-visit order.
    """
    material = json.dumps(
        [command_digest, sorted(dep_digests)], sort_keys=True
    ).encode()
    return hashlib.sha256(material).hexdigest()[:32]


def _find_descriptor(layout: OCILayout, dist_tag: str) -> Optional[Descriptor]:
    for desc in layout.index:
        if desc.annotations.get(mediatypes.ANNOTATION_COMTAINER_ARTIFACTS) == dist_tag:
            return desc
    return None


def _drop_descriptor(layout: OCILayout, desc: Descriptor) -> None:
    layout.index = [d for d in layout.index if d is not desc]
    if not any(d.digest == desc.digest for d in layout.index):
        layout.blobs.remove(desc.digest)


def _valid_output(output: object) -> bool:
    if not isinstance(output, dict):
        return False
    if not all(key in output for key in _OUTPUT_KEYS):
        return False
    return (
        isinstance(output["node"], str)
        and isinstance(output["path"], str)
        and isinstance(output["mode"], int)
        and isinstance(output["content"], dict)
        and isinstance(output["content_digest"], str)
    )


def _parse_entries(data: bytes) -> Dict[str, List[dict]]:
    """Defensively parse cache bytes; anything malformed parses to empty.

    A cache is pure optimization — a corrupted blob (torn write, registry
    transfer fault) must degrade to recompilation, never to an error.
    """
    try:
        doc = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return {}
    if not isinstance(doc, dict) or doc.get("version") != CACHE_VERSION:
        return {}
    entries = doc.get("entries")
    if not isinstance(entries, dict):
        return {}
    good: Dict[str, List[dict]] = {}
    for key, outputs in entries.items():
        if not isinstance(key, str) or not isinstance(outputs, list):
            continue
        if outputs and all(_valid_output(o) for o in outputs):
            good[key] = outputs
    return good


class RebuildArtifactCache:
    """Cross-rebuild compile cache bound to one layout and dist tag."""

    def __init__(self, layout: OCILayout, dist_tag: str,
                 telemetry=NULL_TELEMETRY) -> None:
        self.layout = layout
        self.dist_tag = dist_tag
        self.telemetry = telemetry or NULL_TELEMETRY
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self._entries: Dict[str, List[dict]] = {}
        self._dirty = False
        desc = _find_descriptor(layout, dist_tag)
        if desc is not None:
            blob = layout.blobs.try_get(desc.digest)
            if blob is not None:
                self._entries = _parse_entries(blob.as_bytes())

    def __len__(self) -> int:
        return len(self._entries)

    def _count(self, name: str) -> None:
        """Bump one cache counter and refresh the derived hit-ratio gauge."""
        if not self.telemetry.enabled:
            return
        m = self.telemetry.metrics
        m.counter(name).inc()
        lookups = self.hits + self.misses
        if lookups:
            m.gauge("rebuild_artifact_cache_hit_ratio").set(
                self.hits / lookups
            )

    # -- lookup / store ----------------------------------------------------

    def lookup(self, key: str) -> Optional[List[Tuple[str, str, FileContent, int]]]:
        """Decoded ``(node_id, path, content, mode)`` outputs for *key*.

        Every output's reconstructed content must hash back to its
        recorded digest; any mismatch turns the whole entry into a miss
        (and evicts it), so corruption costs a recompile, not integrity.
        """
        outputs = self._entries.get(key)
        if outputs is None:
            self.misses += 1
            self._count("rebuild_artifact_cache_misses_total")
            return None
        decoded: List[Tuple[str, str, FileContent, int]] = []
        for output in outputs:
            try:
                content = _decode_content(output["content"])
                intact = content.digest == output["content_digest"]
            except Exception:
                intact = False
            if not intact:
                del self._entries[key]
                self._dirty = True
                self.misses += 1
                self.evictions += 1
                self._count("rebuild_artifact_cache_misses_total")
                self._count("rebuild_artifact_cache_evictions_total")
                return None
            decoded.append(
                (output["node"], output["path"], content, output["mode"])
            )
        self.hits += 1
        self._count("rebuild_artifact_cache_hits_total")
        return decoded

    def store(
        self, key: str, outputs: Sequence[Tuple[str, str, FileContent, int]]
    ) -> None:
        self._entries[key] = [
            {
                "node": node_id,
                "path": path,
                "mode": mode,
                "content": _encode_content(content),
                "content_digest": content.digest,
            }
            for node_id, path, content, mode in outputs
        ]
        self._dirty = True
        self.stores += 1
        self._count("rebuild_artifact_cache_stores_total")

    def merge_entries(self, entries: Dict[str, List[dict]]) -> int:
        """Adopt parsed entries from another cache blob; returns adds."""
        added = 0
        for key, outputs in entries.items():
            if key not in self._entries:
                self._entries[key] = outputs
                added += 1
        if added:
            self._dirty = True
        return added

    # -- persistence -------------------------------------------------------

    def flush(self) -> None:
        """Persist into the layout, replacing any previous cache blob."""
        if not self._dirty and _find_descriptor(self.layout, self.dist_tag):
            return
        old = _find_descriptor(self.layout, self.dist_tag)
        if old is not None:
            _drop_descriptor(self.layout, old)
        if not self._entries:
            self._dirty = False
            return
        data = json.dumps(
            {"version": CACHE_VERSION, "entries": self._entries},
            sort_keys=True,
        ).encode("utf-8")
        desc = self.layout.blobs.put_bytes(data, mediatypes.REBUILD_ARTIFACTS)
        self.layout.index.append(
            Descriptor(
                media_type=desc.media_type,
                digest=desc.digest,
                size=desc.size,
                annotations={
                    mediatypes.ANNOTATION_COMTAINER_ARTIFACTS: self.dist_tag
                },
            )
        )
        self._dirty = False

    def clear(self) -> None:
        desc = _find_descriptor(self.layout, self.dist_tag)
        if desc is not None:
            _drop_descriptor(self.layout, desc)
        self._entries = {}
        self._dirty = False


def has_artifact_cache(layout: OCILayout, dist_tag: str) -> bool:
    return _find_descriptor(layout, dist_tag) is not None


def publish_artifact_cache(registry, repository: str, layout: OCILayout,
                           dist_tag: str) -> bool:
    """Push the layout's artifact-cache blob to *registry* for sharing."""
    desc = _find_descriptor(layout, dist_tag)
    if desc is None:
        return False
    blob = layout.blobs.try_get(desc.digest)
    if blob is None:
        return False
    registry.put_artifact_cache(repository, blob)
    return True


def read_cache_entries(layout: OCILayout, dist_tag: str) -> Dict[str, List[dict]]:
    """The parsed artifact-cache entries persisted in *layout* (maybe {}).

    Defensive like :func:`_parse_entries`: a missing or corrupt blob
    reads as an empty cache, never as an error.
    """
    desc = _find_descriptor(layout, dist_tag)
    if desc is None:
        return {}
    blob = layout.blobs.try_get(desc.digest)
    if blob is None:
        return {}
    return _parse_entries(blob.as_bytes())


def seed_cache_entries(layout: OCILayout, dist_tag: str,
                       entries: Dict[str, List[dict]],
                       telemetry=NULL_TELEMETRY) -> int:
    """Merge *entries* into the layout's persisted cache; returns adds."""
    if not entries:
        return 0
    cache = RebuildArtifactCache(layout, dist_tag, telemetry=telemetry)
    added = cache.merge_entries(entries)
    cache.flush()
    return added


class SharedArtifactCache:
    """Capacity-bounded cross-tenant pool of rebuild artifact entries.

    The per-layout :class:`RebuildArtifactCache` only survives within one
    layout lineage (or, through the registry, one repository).  The
    adaptation service instead keeps a single in-memory *pool* of entries
    shared by every tenant: a completed rebuild's entries are absorbed
    into the pool (:meth:`absorb_layout`), and each rebuild about to run
    is seeded from it (:meth:`seed_layout`) — identical compile work
    crosses tenant boundaries exactly once.

    The pool is LRU-bounded at *capacity* entries.  Eviction is safe by
    construction: a layout that was already seeded keeps its own copy of
    every entry, and lookups verify content digests — so evicting (or
    corrupting) a pool entry can only ever cost a recompile, never digest
    equality of an in-flight request's output.
    """

    def __init__(self, capacity: int = 512, telemetry=NULL_TELEMETRY) -> None:
        self.capacity = max(1, int(capacity))
        self.telemetry = telemetry or NULL_TELEMETRY
        self._entries: "OrderedDict[str, List[dict]]" = OrderedDict()
        self.seeded = 0     # entries pushed into layouts
        self.absorbed = 0   # entries adopted from layouts
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def _observe(self, counter: Optional[str] = None, by: int = 1) -> None:
        if not self.telemetry.enabled:
            return
        m = self.telemetry.metrics
        if counter is not None and by:
            m.counter(counter).inc(by)
        m.gauge("service_shared_cache_entries").set(len(self._entries))

    def absorb_layout(self, layout: OCILayout, dist_tag: str) -> int:
        """Adopt the layout's persisted entries into the pool (LRU fresh).

        Returns how many entries were new to the pool.
        """
        adopted = 0
        for key, outputs in read_cache_entries(layout, dist_tag).items():
            if key in self._entries:
                self._entries.move_to_end(key)
                continue
            self._entries[key] = outputs
            adopted += 1
        self.absorbed += adopted
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            self._observe("service_shared_cache_evictions_total")
        self._observe("service_shared_cache_absorbed_total", by=adopted)
        return adopted

    def seed_layout(self, layout: OCILayout, dist_tag: str) -> int:
        """Warm a layout's cache from the pool before its rebuild runs."""
        if not self._entries:
            return 0
        added = seed_cache_entries(
            layout, dist_tag, dict(self._entries), telemetry=self.telemetry
        )
        self.seeded += added
        self._observe("service_shared_cache_seeded_total", by=added)
        return added

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "seeded": self.seeded,
            "absorbed": self.absorbed,
            "evictions": self.evictions,
        }


def attach_artifact_cache(layout: OCILayout, registry, repository: str,
                          dist_tag: str) -> int:
    """Merge the registry's shared cache for *repository* into *layout*.

    Returns how many entries were adopted (0 when the registry has no
    cache or the blob fails to parse — both degrade silently, a shared
    cache is best-effort).
    """
    blob = registry.get_artifact_cache(repository)
    if blob is None:
        return 0
    entries = _parse_entries(blob.as_bytes())
    if not entries:
        return 0
    cache = RebuildArtifactCache(layout, dist_tag)
    added = cache.merge_entries(entries)
    cache.flush()
    return added
