"""The cache layer and the +coM / +coMre manifests.

"The cache storage provides directory services to system adapters,
encodes their data into new layer tarballs, generates new config.json and
manifest.json files to mark the tarballs as new images so that the system
side can pull them as needed.  Thanks to the layered nature of OCI
images, the injection of additional data introduces no changes to the
original image." (§4.5)

Layout inside the cache layer::

    /.coMtainer/cache/models.json        # the process models
    /.coMtainer/cache/sources/<path>     # sources, at their build paths

and inside a rebuild layer::

    /.coMtainer/rebuild/meta.json        # replacement plan + options +
                                         # per-node command digests
    /.coMtainer/rebuild/files/<path>     # rebuilt artifacts, original paths
    /.coMtainer/rebuild/nodes/<path>     # every produced node's output,
                                         # enabling incremental re-rebuilds

Tag conventions follow the artifact description: after ``coMtainer-build``
the layout's index gains ``<tag>+coM``; after ``coMtainer-rebuild`` it
gains ``<tag>+coMre``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.core.models.process import ProcessModels
from repro.oci import mediatypes
from repro.oci.blobs import Blob
from repro.oci.image import ImageConfig, Manifest
from repro.oci.layer import Layer, LayerEntry
from repro.oci.layout import OCILayout, ResolvedImage
from repro.vfs import VirtualFilesystem
from repro.vfs import paths as vpath
from repro.vfs.content import FileContent, InlineContent

CACHE_ROOT = "/.coMtainer/cache"
REBUILD_ROOT = "/.coMtainer/rebuild"

SUFFIX_EXTENDED = mediatypes.TAG_SUFFIX_EXTENDED   # "+coM"
SUFFIX_REBUILT = mediatypes.TAG_SUFFIX_REBUILT     # "+coMre"


class CacheError(Exception):
    """A cache/rebuild layer could not be located or decoded.

    Carries the pipeline *stage* that failed and the *tag* involved, so
    callers (and the resilience report) can say precisely which artifact
    was unusable instead of parsing the message.
    """

    def __init__(
        self, message: str, stage: Optional[str] = None, tag: Optional[str] = None
    ) -> None:
        super().__init__(message)
        self.stage = stage
        self.tag = tag


def extended_tag(tag: str) -> str:
    return tag + SUFFIX_EXTENDED


def rebuilt_tag(tag: str) -> str:
    return tag + SUFFIX_REBUILT


def find_dist_tag(layout: OCILayout) -> str:
    """The original application tag in a layout (no coMtainer suffix)."""
    for tag in layout.tags():
        if not tag.endswith((SUFFIX_EXTENDED, SUFFIX_REBUILT)):
            return tag
    raise CacheError(
        "no application image tag found in layout index", stage="find-dist-tag"
    )


# ---------------------------------------------------------------------------
# encode
# ---------------------------------------------------------------------------

def encode_cache_layer(
    models: ProcessModels, sources: Dict[str, FileContent]
) -> Layer:
    """Serialize models + sources into the cache layer."""
    layer = Layer(comment="coMtainer cache layer")
    layer.add(LayerEntry.directory("/.coMtainer"))
    layer.add(LayerEntry.directory(CACHE_ROOT))
    models_bytes = json.dumps(models.to_json(), sort_keys=True).encode("utf-8")
    layer.add(LayerEntry.file(f"{CACHE_ROOT}/models.json", InlineContent(models_bytes)))
    layer.add(LayerEntry.directory(f"{CACHE_ROOT}/sources"))
    for path in sorted(sources):
        layer.add(
            LayerEntry.file(f"{CACHE_ROOT}/sources{vpath.normalize(path)}", sources[path])
        )
    return layer


def _stacked_manifest(
    base: ResolvedImage,
    extra_layer: Layer,
    kind: str,
    history_note: str,
) -> Tuple[Manifest, ImageConfig, List[Layer]]:
    config = base.config.clone()
    config.diff_ids.append(extra_layer.digest)
    config.add_history(history_note)
    layers = list(base.layers) + [extra_layer]
    manifest = Manifest(
        config=config.descriptor(),
        layers=[Blob.from_layer(layer).descriptor() for layer in layers],
        annotations={
            mediatypes.ANNOTATION_COMTAINER_KIND: kind,
            mediatypes.ANNOTATION_COMTAINER_BASE: base.manifest.digest,
        },
    )
    return manifest, config, layers


def add_cache_manifest(
    layout: OCILayout, dist_tag: str, cache_layer: Layer
) -> str:
    """Append the extended-image manifest (``<tag>+coM``) to the layout."""
    base = layout.resolve(dist_tag)
    manifest, config, layers = _stacked_manifest(
        base, cache_layer, kind="extended", history_note="coMtainer-build cache layer"
    )
    tag = extended_tag(dist_tag)
    layout.add_manifest(manifest, config, layers, tag=tag)
    return tag


def add_rebuild_manifest(
    layout: OCILayout, dist_tag: str, rebuild_layer: Layer
) -> str:
    """Append the rebuilt-image manifest (``<tag>+coMre``) to the layout."""
    base = layout.resolve(extended_tag(dist_tag))
    manifest, config, layers = _stacked_manifest(
        base, rebuild_layer, kind="rebuilt", history_note="coMtainer-rebuild layer"
    )
    tag = rebuilt_tag(dist_tag)
    layout.add_manifest(manifest, config, layers, tag=tag)
    return tag


def encode_rebuild_layer(
    meta: Dict[str, Any],
    files: Dict[str, FileContent],
    modes: Dict[str, int],
    node_files: Optional[Dict[str, FileContent]] = None,
) -> Layer:
    layer = Layer(comment="coMtainer rebuild layer")
    layer.add(LayerEntry.directory("/.coMtainer"))
    layer.add(LayerEntry.directory(REBUILD_ROOT))
    meta_bytes = json.dumps(meta, sort_keys=True).encode("utf-8")
    layer.add(LayerEntry.file(f"{REBUILD_ROOT}/meta.json", InlineContent(meta_bytes)))
    layer.add(LayerEntry.directory(f"{REBUILD_ROOT}/files"))
    for path in sorted(files):
        layer.add(
            LayerEntry.file(
                f"{REBUILD_ROOT}/files{vpath.normalize(path)}",
                files[path],
                mode=modes.get(path, 0o644),
            )
        )
    if node_files:
        layer.add(LayerEntry.directory(f"{REBUILD_ROOT}/nodes"))
        for path in sorted(node_files):
            layer.add(
                LayerEntry.file(
                    f"{REBUILD_ROOT}/nodes{vpath.normalize(path)}",
                    node_files[path],
                )
            )
    return layer


# ---------------------------------------------------------------------------
# decode
# ---------------------------------------------------------------------------

def _subtree_files(fs: VirtualFilesystem, root: str) -> Dict[str, FileContent]:
    out: Dict[str, FileContent] = {}
    if not fs.is_dir(root):
        return out
    for path, node in fs.iter_files(root):
        out["/" + vpath.relative_to(path, root)] = node.content
    return out


def decode_cache(
    layout: OCILayout, dist_tag: str
) -> Tuple[ProcessModels, Dict[str, FileContent], ResolvedImage]:
    """Read models + sources from the extended image in a layout."""
    tag = extended_tag(dist_tag)
    if not layout.has_tag(tag):
        raise CacheError(f"layout has no extended image {tag!r}; "
                         "run coMtainer-build first",
                         stage="decode-cache", tag=tag)
    resolved = layout.resolve(tag)
    fs = resolved.filesystem()
    models_path = f"{CACHE_ROOT}/models.json"
    if not fs.exists(models_path):
        raise CacheError("extended image has no cache layer models.json",
                         stage="decode-cache", tag=tag)
    models = ProcessModels.from_json(json.loads(fs.read_text(models_path)))
    sources = _subtree_files(fs, f"{CACHE_ROOT}/sources")
    return models, sources, resolved


def decode_rebuild(
    layout: OCILayout, dist_tag: str
) -> Tuple[Dict[str, Any], Dict[str, FileContent], Dict[str, int], ResolvedImage]:
    """Read rebuild meta + rebuilt files from the ``+coMre`` image."""
    tag = rebuilt_tag(dist_tag)
    if not layout.has_tag(tag):
        raise CacheError(f"layout has no rebuilt image {tag!r}; "
                         "run coMtainer-rebuild first",
                         stage="decode-rebuild", tag=tag)
    resolved = layout.resolve(tag)
    fs = resolved.filesystem()
    meta_path = f"{REBUILD_ROOT}/meta.json"
    if not fs.exists(meta_path):
        raise CacheError("rebuilt image has no rebuild meta.json",
                         stage="decode-rebuild", tag=tag)
    meta = json.loads(fs.read_text(meta_path))
    files_root = f"{REBUILD_ROOT}/files"
    files = _subtree_files(fs, files_root)
    modes: Dict[str, int] = {}
    if fs.is_dir(files_root):
        for path, node in fs.iter_files(files_root):
            modes["/" + vpath.relative_to(path, files_root)] = node.mode
    return meta, files, modes, resolved


def decode_rebuild_nodes(
    layout: OCILayout, dist_tag: str
) -> Tuple[Dict[str, str], Dict[str, FileContent]]:
    """Per-node command digests + node outputs of a previous rebuild.

    Enables incremental re-rebuilds: "the rebuilding and redirecting can
    be performed many times during the image's lifetime" (§4.1) — a node
    whose transformed command is unchanged reuses its previous output.
    Returns empty maps when no rebuilt image exists yet.
    """
    commands, node_files, _ = decode_rebuild_plan(layout, dist_tag)
    return commands, node_files


def decode_rebuild_plan(
    layout: OCILayout, dist_tag: str
) -> Tuple[Dict[str, str], Dict[str, FileContent], Dict[str, str]]:
    """Like :func:`decode_rebuild_nodes` plus the persisted plan
    fingerprints — ``(node commands, node outputs, node fingerprints)``.

    The fingerprints are what :mod:`repro.perf.incremental` diffs a new
    plan against to prune unchanged command groups before scheduling.
    Returns empty maps when no rebuilt image exists yet.
    """
    tag = rebuilt_tag(dist_tag)
    if not layout.has_tag(tag):
        return {}, {}, {}
    resolved = layout.resolve(tag)
    fs = resolved.filesystem()
    meta_path = f"{REBUILD_ROOT}/meta.json"
    if not fs.exists(meta_path):
        return {}, {}, {}
    meta = json.loads(fs.read_text(meta_path))
    commands = dict(meta.get("node_commands", {}))
    fingerprints = dict(meta.get("node_fingerprints", {}))
    node_files = _subtree_files(fs, f"{REBUILD_ROOT}/nodes")
    return commands, node_files, fingerprints
