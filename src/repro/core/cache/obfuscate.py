"""Source obfuscation for the cache layer.

§4.6: "the included sources don't have to be in their original form —
they can be obfuscated to protect intellectual property while still
enabling all the system-side adaptation and optimizations."

Obfuscation here is a size-preserving, key-dependent byte transformation
(XOR keystream): the system side can rebuild — compilation consumes the
sources byte-for-byte-equivalently in the simulated toolchain, and in a
real deployment the obfuscation would be a semantic-preserving
renamer/stripper — while the cache layer no longer exposes readable
source text.  Because obfuscated sources cannot be *scanned*, the
front-end records its ISA-construct scan (inline assembly etc.) in the
process-model metadata before obfuscating, which keeps the cross-ISA
analysis (§5.5) working on obfuscated caches.
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Dict

from repro.vfs.content import FileContent, InlineContent, SyntheticContent

DEFAULT_KEY = "coMtainer-source-obfuscation-v1"


def _keystream(key: str, length: int) -> bytes:
    out = bytearray()
    counter = 0
    while len(out) < length:
        out.extend(hashlib.sha256(f"{key}:{counter}".encode()).digest())
        counter += 1
    return bytes(out[:length])


def obfuscate_bytes(data: bytes, key: str = DEFAULT_KEY) -> bytes:
    """Size-preserving reversible transformation (XOR keystream)."""
    stream = _keystream(key, len(data))
    return bytes(a ^ b for a, b in zip(data, stream))


def deobfuscate_bytes(data: bytes, key: str = DEFAULT_KEY) -> bytes:
    return obfuscate_bytes(data, key)   # XOR is its own inverse


def obfuscate_content(content: FileContent, key: str = DEFAULT_KEY) -> FileContent:
    """Obfuscate a source file's content.

    Inline text is scrambled in place (same size); synthetic bulk content
    is already opaque (it carries no constructs) and passes through.
    """
    if isinstance(content, SyntheticContent):
        return content
    return InlineContent(obfuscate_bytes(content.read(), key))


def obfuscate_sources(
    sources: Dict[str, FileContent], key: str = DEFAULT_KEY
) -> Dict[str, FileContent]:
    return {path: obfuscate_content(c, key) for path, c in sources.items()}


def deobfuscate_content(content: FileContent, key: str = DEFAULT_KEY) -> FileContent:
    if isinstance(content, SyntheticContent):
        return content
    return InlineContent(deobfuscate_bytes(content.read(), key))
