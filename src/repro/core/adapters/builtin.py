"""Built-in adapters for common HPC setups (§4.2).

"The toolset includes built-in adapters for common HPC setups, which have
broad applicability": the two testbed vendor stacks, a native-GNU adapter
(rebuild with the distro toolchain but native march), and the LLVM
adapter the artifact ships in place of the proprietary toolchains.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.core.adapters.base import SystemAdapter
from repro.sysmodel import SYSTEMS, SystemModel


class VendorAdapter(SystemAdapter):
    """Adapter using the system vendor's proprietary toolchain."""

    name = "vendor"

    def __init__(self, system: SystemModel) -> None:
        super().__init__(system)
        if system.key == "x86":
            self.compiler_map = {
                "cc": "/opt/intel/bin/icx",
                "cxx": "/opt/intel/bin/icpx",
                "fc": "/opt/intel/bin/ifx",
                "cpp": "/opt/intel/bin/icx",
                "ld": "/opt/intel/bin/icx",
            }
        else:
            self.compiler_map = {
                "cc": "/opt/phytium/bin/ftcc",
                "cxx": "/opt/phytium/bin/ftcxx",
                "fc": "/opt/phytium/bin/ftfort",
                "cpp": "/opt/phytium/bin/ftcc",
                "ld": "/opt/phytium/bin/ftcc",
            }


class LlvmAdapter(SystemAdapter):
    """The artifact's freely redistributable LLVM-based adapter."""

    name = "llvm"

    compiler_map = {
        "cc": "/usr/bin/clang",
        "cxx": "/usr/bin/clang++",
        "fc": "/usr/bin/flang",
        "cpp": "/usr/bin/clang",
        "ld": "/usr/bin/clang",
    }

    def toolchain_id(self) -> str:
        return "llvm-17"


class GnuNativeAdapter(SystemAdapter):
    """Rebuild with the distro GNU toolchain, natively tuned.

    Useful as an ablation: isolates the -march/native-library effect from
    the vendor-compiler effect.
    """

    name = "gnu-native"

    compiler_map = {
        "cc": "/usr/bin/gcc",
        "cxx": "/usr/bin/g++",
        "fc": "/usr/bin/gfortran",
        "cpp": "/usr/bin/cpp-12",
        "ld": "/usr/bin/gcc",
    }

    def toolchain_id(self) -> str:
        return "gnu-12"


_FACTORIES: Dict[str, Callable[[SystemModel], SystemAdapter]] = {
    "vendor": VendorAdapter,
    "llvm": LlvmAdapter,
    "gnu-native": GnuNativeAdapter,
}


def register_adapter(name: str, factory: Callable[[SystemModel], SystemAdapter]) -> None:
    """Plug in a site-specific adapter (the extensibility point of §4.2)."""
    _FACTORIES[name] = factory


def get_adapter(name: str, system: SystemModel) -> SystemAdapter:
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(f"unknown adapter: {name!r}") from None
    return factory(system)


def adapter_for_system(system: SystemModel, flavor: str = "vendor") -> SystemAdapter:
    return get_adapter(flavor, system)
