"""Adapter plugin API.

"System adapters, akin to compiler optimization passes, operate on
independent copies of the process models, tailoring transformations to
specific HPC systems.  These adapters analyze and modify process models,
collect additional data from the build environment, and perform the image
rebuilding and redirection on the target system." (§4.2)

An adapter knows its target system and answers two questions:

* which installed generic packages should be replaced by which optimized
  packages (:meth:`SystemAdapter.plan_replacements`), and
* how each recorded compilation command should be transformed
  (:meth:`SystemAdapter.transform_step`): native compiler, native
  microarchitecture, optional LTO / PGO stages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.models.compilation import CompilationStep
from repro.core.models.image_model import ImageModel
from repro.pkg.package import Package
from repro.pkg.repository import RepositoryPool
from repro.sysmodel import SystemModel


class AdapterError(Exception):
    pass


@dataclass(frozen=True)
class LibraryReplacement:
    """One package substitution decision."""

    generic: str                   # installed generic package name
    optimized: str                 # vendor package name
    quality: float                 # optimized package quality
    #: Library files of the generic package -> the optimized file that
    #: should stand in for each (compat symlinks are created accordingly).
    link_map: Dict[str, str] = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "generic": self.generic,
            "optimized": self.optimized,
            "quality": self.quality,
            "link_map": dict(self.link_map),
        }

    @staticmethod
    def from_json(obj: dict) -> "LibraryReplacement":
        return LibraryReplacement(
            generic=obj["generic"],
            optimized=obj["optimized"],
            quality=obj.get("quality", 1.0),
            link_map=dict(obj.get("link_map", {})),
        )


@dataclass
class RebuildOptions:
    """What the system side wants from a rebuild."""

    lto: bool = False
    #: LTO scope: node ids to compile with -flto; None = whole program.
    lto_scope: Optional[List[str]] = None
    pgo: str = "off"               # "off" | "instrument" | "use"
    pgo_profile_path: Optional[str] = None   # container path of profile data
    #: Strip machine flags pinned to a foreign ISA (the "relaxed
    #: constraints" of the cross-ISA study, §5.5).
    relax_isa: bool = False

    def to_json(self) -> dict:
        return {
            "lto": self.lto,
            "lto_scope": self.lto_scope,
            "pgo": self.pgo,
            "pgo_profile_path": self.pgo_profile_path,
            "relax_isa": self.relax_isa,
        }

    @staticmethod
    def from_json(obj: dict) -> "RebuildOptions":
        return RebuildOptions(
            lto=obj.get("lto", False),
            lto_scope=obj.get("lto_scope"),
            pgo=obj.get("pgo", "off"),
            pgo_profile_path=obj.get("pgo_profile_path"),
            relax_isa=obj.get("relax_isa", False),
        )


class SystemAdapter:
    """Base adapter: subclass and override for a specific system."""

    name = "base"

    def __init__(self, system: SystemModel) -> None:
        self.system = system

    # ------------------------------------------------------------------
    # package replacement
    # ------------------------------------------------------------------

    def plan_replacements(
        self, image: ImageModel, pool: RepositoryPool
    ) -> List[LibraryReplacement]:
        """Map each replaceable installed package to its best optimized
        equivalent available in the system's repositories."""
        plan: List[LibraryReplacement] = []
        for generic_name in image.packages:
            candidates = pool.optimized_equivalents(generic_name)
            if not candidates:
                continue
            best = candidates[0]
            plan.append(self._replacement_for(image, generic_name, best))
        return plan

    def _replacement_for(
        self, image: ImageModel, generic_name: str, optimized: Package
    ) -> LibraryReplacement:
        generic_libs = [
            record.path
            for record in image.by_origin("package")
            if record.package == generic_name and ".so" in record.path
        ]
        optimized_libs = [f.path for f in optimized.files if f.kind == "library"]
        link_map: Dict[str, str] = {}
        if optimized_libs:
            for path in generic_libs:
                link_map[path] = optimized_libs[0]
        return LibraryReplacement(
            generic=generic_name,
            optimized=optimized.name,
            quality=optimized.quality,
            link_map=link_map,
        )

    # ------------------------------------------------------------------
    # compilation transformation
    # ------------------------------------------------------------------

    #: role -> native compiler path; subclasses fill this in.
    compiler_map: Dict[str, str] = {}

    def native_compiler(self, role: Optional[str]) -> str:
        try:
            return self.compiler_map[role or "cc"]
        except KeyError:
            raise AdapterError(
                f"{self.name}: no native compiler for role {role!r}"
            ) from None

    def transform_step(
        self, step: CompilationStep, options: RebuildOptions, node_id: str = ""
    ) -> CompilationStep:
        """Rewrite one compiler command for this system.

        The app's own flags are preserved (coMtainer does not second-guess
        them); the program becomes the native compiler, the target
        microarchitecture becomes native, and LTO/PGO controls are added
        per *options*.
        """
        if not step.is_compiler:
            return step
        inv = step.invocation()
        inv.program = self.native_compiler(step.role)
        if options.relax_isa:
            from repro.toolchain.options import is_isa_specific

            for name in list(inv.mflags):
                value = inv.mflags[name]
                arg = f"-m{name}" + (f"={value}" if isinstance(value, str) else "")
                if isinstance(value, bool) and not value:
                    arg = f"-mno-{name}"
                pinned = is_isa_specific(arg)
                if pinned is not None and pinned != self.system.isa:
                    inv.mflags.pop(name, None)
        inv.set_mflag("arch", "native")
        if step.mpi_wrapper and inv.mode == "link" and "mpi" not in inv.libs:
            # The generic MPI wrapper added -lmpi implicitly; the native
            # compiler is not a wrapper, so make it explicit.
            inv.libs.append("mpi")
        lto_on = options.lto and (
            options.lto_scope is None or node_id in options.lto_scope
        )
        if lto_on:
            inv.set_fflag("lto", True)
        if options.pgo == "instrument":
            inv.set_fflag("profile-generate", True)
        elif options.pgo == "use":
            if options.pgo_profile_path:
                inv.set_fflag("profile-use", options.pgo_profile_path)
            else:
                inv.set_fflag("profile-use", True)
        return step.with_argv(inv.render(), toolchain=self.toolchain_id())

    def toolchain_id(self) -> str:
        return self.system.native_toolchain
