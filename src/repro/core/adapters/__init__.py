"""System adapters: extensible, system-specific transformation plugins."""

from repro.core.adapters.base import (
    AdapterError,
    LibraryReplacement,
    RebuildOptions,
    SystemAdapter,
)
from repro.core.adapters.builtin import (
    GnuNativeAdapter,
    LlvmAdapter,
    VendorAdapter,
    adapter_for_system,
    get_adapter,
    register_adapter,
)

__all__ = [
    "AdapterError",
    "GnuNativeAdapter",
    "LibraryReplacement",
    "LlvmAdapter",
    "RebuildOptions",
    "SystemAdapter",
    "VendorAdapter",
    "adapter_for_system",
    "get_adapter",
    "register_adapter",
]
