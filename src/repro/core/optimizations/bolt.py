"""Post-link binary layout optimization (a BOLT-style pass).

The paper's motivation notes that "many other advanced optimizations
(like binary-level layout optimization [BOLT, OCOLOS]) are not included
here, suggesting greater space for potential performance gains" (§3),
and the conclusion leaves further optimizations as future work.  This
extension adds such a pass on top of the coMtainer pipeline: it consumes
the same on-system profile data the PGO loop gathers and rewrites the
*linked binary* (no recompilation), reordering hot code.

Model: layout optimization exploits the same hot-spot locality PGO does,
so its potential is a fraction of the workload's PGO response; applying
it to an already-PGO-optimized binary yields roughly half the remaining
benefit (the compiler has already placed hot code sensibly).
"""

from __future__ import annotations

from typing import Optional

from repro.perf.provenance import profile_id
from repro.toolchain.artifacts import (
    ExecutableArtifact,
    artifact_content,
    read_artifact,
)

# The perf model owns the authoritative constants.
from repro.perf.model import LAYOUT_FRACTION, LAYOUT_POST_PGO_RESIDUAL  # noqa: F401


class BoltError(Exception):
    pass


def bolt_binary(
    artifact: ExecutableArtifact, profile: str
) -> ExecutableArtifact:
    """Rewrite an executable with an optimized code layout.

    Pure artifact transformation: provenance gains ``layout_optimized``
    and the profile identity; code size grows slightly (hot/cold
    splitting duplicates landing pads).
    """
    if artifact.kind != "executable":
        raise BoltError("layout optimization applies to executables only")
    rewritten = ExecutableArtifact(**{
        k: v for k, v in artifact.to_json().items() if k != "kind"
    })
    rewritten.layout_optimized = True
    rewritten.layout_profile = profile
    rewritten.code_size = int(artifact.code_size * 1.02)
    return rewritten


def bolt_optimize_image(
    engine,
    image_ref: str,
    workload_name: str,
    system,
    binary_path: str,
    ref: Optional[str] = None,
) -> str:
    """Apply the layout pass to an image's application binary.

    Profile data is the system-gathered profile of (workload, system) —
    in a full deployment this would come from `perf record` sampling of a
    production run, which needs no instrumented binary.
    """
    container = engine.from_image(image_ref, name="bolt-opt")
    try:
        data = container.fs.read_file(binary_path)
        artifact = read_artifact(data)
        if not isinstance(artifact, ExecutableArtifact):
            raise BoltError(f"{binary_path} is not an executable")
        profile = profile_id(workload_name, system.key)
        rewritten = bolt_binary(artifact, profile)
        container.fs.write_file(
            binary_path, artifact_content(rewritten), mode=0o755
        )
        target = ref or f"{image_ref}.bolt"
        engine.commit(container, ref=target,
                      comment=f"BOLT-style layout optimization ({workload_name})")
        return target
    finally:
        engine.remove_container(container.name)
