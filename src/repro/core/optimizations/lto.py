"""LTO scope control over the build graph.

"coMtainer seamlessly enables LTO and can flexibly control its scope
since the whole build process is represented as an explicit graph data."
(§4.4)  A *scope* is the set of node ids whose producing commands get
``-flto``; partial scopes trade compile time against whole-program
optimization coverage (the ``lto_coverage`` the perf model consumes).
"""

from __future__ import annotations

from typing import Iterable, List, Set

from repro.core.models.build_graph import BuildGraph, KIND_OBJECT


def lto_scope_all(graph: BuildGraph) -> List[str]:
    """Whole-program LTO: every produced node."""
    return sorted(node.id for node in graph if node.is_produced)


def lto_scope_for_sinks(graph: BuildGraph, sink_paths: Iterable[str]) -> List[str]:
    """LTO restricted to the given final artifacts and their ancestry.

    Useful when an image ships several binaries but only the hot one is
    worth the extra compile time.
    """
    wanted: Set[str] = set()
    sinks = {p for p in sink_paths}
    for node in graph.sinks():
        if node.path in sinks or node.id in sinks:
            wanted.add(node.id)
            wanted.update(graph.ancestors(node.id))
    return sorted(
        node_id for node_id in wanted
        if (n := graph.try_get(node_id)) is not None and n.is_produced
    )


def lto_scope_excluding(graph: BuildGraph, excluded_objects: Iterable[str]) -> List[str]:
    """Whole-program LTO minus specific translation units.

    The escape hatch for TUs that misbehave under LTO: excluding their
    object nodes lowers coverage but keeps the rest of the program
    optimized (the perf model scales the gain by coverage).
    """
    excluded = set(excluded_objects)
    scope: List[str] = []
    for node in graph:
        if not node.is_produced:
            continue
        if node.kind == KIND_OBJECT and (node.id in excluded or node.path in excluded):
            continue
        scope.append(node.id)
    return sorted(scope)
