"""PGO profile data helpers.

The paper's automated feedback loop (§4.4) lives in
:func:`repro.core.workflow.system_side_adapt`; this module provides the
profile-data plumbing: reading/validating gathered profiles and
synthesizing profile payloads for ablation studies (e.g. deliberately
mismatched profiles).
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from repro.perf.provenance import profile_id


def profile_bytes_for(workload: str, system_key: str, quality: float = 1.0) -> bytes:
    """Synthesize profile data as if gathered by (workload, system)."""
    return json.dumps(
        {"profile": profile_id(workload, system_key), "quality": quality}
    ).encode("utf-8")


def read_profile(data: bytes) -> Optional[Dict[str, object]]:
    """Parse profile data bytes; None when malformed."""
    try:
        obj = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if isinstance(obj, dict) and "profile" in obj:
        return obj
    return None
