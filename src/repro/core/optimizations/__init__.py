"""Advanced compiler optimizations unlocked by the embedded build data."""

from repro.core.optimizations.lto import (
    lto_scope_all,
    lto_scope_excluding,
    lto_scope_for_sinks,
)
from repro.core.optimizations.bolt import bolt_binary, bolt_optimize_image
from repro.core.optimizations.pgo import profile_bytes_for, read_profile

__all__ = [
    "bolt_binary",
    "bolt_optimize_image",
    "lto_scope_all",
    "lto_scope_excluding",
    "lto_scope_for_sinks",
    "profile_bytes_for",
    "read_profile",
]
