"""coMtainer: the paper's primary contribution.

A compilation-assisted image transformation framework:

* :mod:`repro.core.models` — the process models (§4.3): image model,
  build graph model, compilation models.
* :mod:`repro.core.frontend` — user-side analysis: parse the recorded raw
  build process into models (``coMtainer-build``).
* :mod:`repro.core.cache` — the cache layer: models + sources embedded
  into the image as an extra OCI layer (the *extended image*, ``+coM``).
* :mod:`repro.core.backend` — system-side rebuild (``coMtainer-rebuild``,
  ``+coMre``) and redirect (``coMtainer-redirect``) producing the final
  optimized image.
* :mod:`repro.core.adapters` — system adapters (extensible plugins).
* :mod:`repro.core.optimizations` — LTO scope control and the automated
  PGO feedback loop.
* :mod:`repro.core.crossisa` — the cross-ISA study (§5.5).
* :mod:`repro.core.images` — the Env / Base / Sysenv / Rebase images.
* :mod:`repro.core.workflow` — end-to-end orchestration of Figure 5.
"""

from repro.core.models import (
    BuildGraph,
    BuildNode,
    CompilationStep,
    FileOrigin,
    ImageModel,
    ProcessModels,
)
from repro.core.workflow import (
    ComtainerSession,
    build_extended_image,
    build_native,
    measure_schemes,
    system_side_adapt,
)

__all__ = [
    "BuildGraph",
    "BuildNode",
    "CompilationStep",
    "ComtainerSession",
    "FileOrigin",
    "ImageModel",
    "ProcessModels",
    "build_extended_image",
    "build_native",
    "measure_schemes",
    "system_side_adapt",
]
