"""Parallel wavefront scheduling of the rebuild graph.

``coMtainer-rebuild`` re-executes the transformed build graph.  The graph
is naturally parallel — every translation unit of a wavefront is
independent — so instead of walking ``topo_order()`` one node at a time,
the rebuild is planned here as:

1. **Command groups**: commands are deduplicated by their original
   ``(argv, cwd)`` identity; one group owns every sibling output of a
   multi-source compile and carries the transformed step, its digest
   (salted with the PGO profile content), and its group-level
   dependencies (the groups producing its inputs).
2. **Wavefronts**: Kahn layering over the group DAG.  Every group in a
   wavefront has all producing groups in earlier wavefronts, so the
   groups of one wavefront can run concurrently.
3. **List scheduling**: each wavefront's *executed* groups are assigned
   LPT-style (longest processing time first) onto ``jobs`` simulated
   workers; the wavefront's simulated cost is the **makespan** — the
   maximum worker load — not the serial sum.

Scheduling only affects *simulated time accounting and telemetry*.  The
execution order of groups is always the deterministic wavefront order
(waves in dependency order, groups within a wave in first-topo-visit
order) regardless of ``jobs``, so the rebuilt layer digest is
byte-identical for any ``--jobs`` value — acceptance criterion of the
parallel rebuild work.  Failure semantics are likewise jobs-independent:
a failed group explicitly poisons the groups that depend on it (they are
marked failed without executing), while its wavefront peers are
unaffected.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.models.build_graph import BuildGraph, BuildNode
from repro.perf.buildcost import command_cost_seconds, estimate_node_bytes


def command_digest(argv: List[str], cwd: str) -> str:
    """Stable digest of one transformed command (argv + cwd)."""
    return hashlib.sha256(
        json.dumps([argv, cwd], sort_keys=True).encode()
    ).hexdigest()[:24]


@dataclass
class CommandGroup:
    """One deduplicated command and every sibling node it produces."""

    key: tuple                     # original (tuple(argv), cwd) identity
    nodes: List[BuildNode]         # sibling outputs, first-topo-visit order
    order: int                     # first-visit rank (intra-wave ordering)
    step: object = None            # transformed CompilationStep
    digest: str = ""               # transformed-command digest (+PGO salt)
    dep_ids: List[str] = field(default_factory=list)   # union of node deps
    dep_groups: Set[tuple] = field(default_factory=set)  # producing groups
    cost: float = 0.0              # simulated seconds on a free worker

    @property
    def node_ids(self) -> List[str]:
        return [n.id for n in self.nodes]


@dataclass
class WaveStats:
    """Accounting for one executed wavefront."""

    index: int
    width: int                     # groups in the wavefront
    executed: int                  # groups that actually ran
    makespan: float                # max simulated worker load
    busy: float                    # sum of executed costs

    def to_json(self) -> dict:
        return {
            "index": self.index,
            "width": self.width,
            "executed": self.executed,
            "makespan": self.makespan,
            "busy": self.busy,
        }


@dataclass
class ScheduleReport:
    """What the wavefront schedule did, for telemetry and stdout.

    Never serialized into the rebuild layer's ``meta.json`` — the report
    depends on ``jobs``, and meta bytes feed the layer digest, which must
    be identical for every ``--jobs`` value.
    """

    jobs: int = 1
    waves: List[WaveStats] = field(default_factory=list)
    makespan_seconds: float = 0.0      # sum of wavefront makespans
    serial_seconds: float = 0.0        # sum of executed-group costs
    critical_path_seconds: float = 0.0
    groups_total: int = 0
    groups_executed: int = 0
    #: Fleet accounting (:class:`repro.resilience.fleet.FleetStats`) when
    #: the rebuild ran on the worker fleet; jobs-dependent, so — like the
    #: rest of the report — never serialized into meta.
    fleet: Optional[object] = None
    #: Stale lease records found on a ``--journal`` resume: groups a
    #: previous rebuild had in flight when it died mid-wavefront.
    stale_leases: int = 0
    #: Command groups the incremental plan diff short-circuited before
    #: wavefront computation — they never entered the scheduler at all.
    groups_pruned: int = 0

    @property
    def max_width(self) -> int:
        return max((w.width for w in self.waves), default=0)

    @property
    def speedup(self) -> float:
        # A plan with nothing to execute (fully cached, fully journaled,
        # or empty) has no meaningful ratio; report the vacuous 1.0
        # instead of dividing by a zero makespan.
        if self.groups_executed == 0 or self.makespan_seconds <= 0.0:
            return 1.0
        return self.serial_seconds / self.makespan_seconds

    @property
    def utilization(self) -> float:
        """Busy worker-seconds over provisioned worker-seconds."""
        if self.groups_executed == 0:
            return 1.0   # vacuous: no work was provisioned for
        capacity = self.jobs * self.makespan_seconds
        if capacity <= 0.0:
            return 1.0
        return min(1.0, sum(w.busy for w in self.waves) / capacity)

    def to_json(self) -> dict:
        return {
            "jobs": self.jobs,
            "wavefronts": len(self.waves),
            "max_width": self.max_width,
            "makespan_seconds": self.makespan_seconds,
            "serial_seconds": self.serial_seconds,
            "critical_path_seconds": self.critical_path_seconds,
            "speedup": self.speedup,
            "utilization": self.utilization,
            "groups_total": self.groups_total,
            "groups_executed": self.groups_executed,
            "groups_pruned": self.groups_pruned,
            "fleet": self.fleet.to_json() if self.fleet is not None else None,
            "stale_leases": self.stale_leases,
            "waves": [w.to_json() for w in self.waves],
        }

    def summary_line(self) -> str:
        return (
            f"schedule jobs={self.jobs} wavefronts={len(self.waves)} "
            f"width={self.max_width} makespan={self.makespan_seconds:.3f}s "
            f"serial={self.serial_seconds:.3f}s speedup={self.speedup:.2f}x"
        )


@dataclass
class RebuildPlan:
    """The full schedule: groups, wavefronts, and per-group costs."""

    groups: List[CommandGroup]
    waves: List[List[CommandGroup]]
    by_key: Dict[tuple, CommandGroup]

    @property
    def critical_path_seconds(self) -> float:
        """Longest cost-weighted dependency chain through the groups —
        the makespan lower bound no worker count can beat."""
        finish: Dict[tuple, float] = {}
        for wave in self.waves:
            for group in wave:
                upstream = max(
                    (finish.get(dep, 0.0) for dep in group.dep_groups),
                    default=0.0,
                )
                finish[group.key] = upstream + group.cost
        return max(finish.values(), default=0.0)


def plan_command_groups(
    graph: BuildGraph,
    adapter,
    options,
    profile_salt: str = "",
    source_size: Optional[Callable[[str], int]] = None,
) -> RebuildPlan:
    """Partition the graph into command groups and dependency wavefronts.

    *adapter*/*options* transform each group's representative step once
    (command-granular, like the sequential rebuild did); *profile_salt*
    is folded into each digest so new PGO profile bytes invalidate reuse.
    *source_size* sizes leaf nodes for the cost model (defaults to zero,
    which keeps planning usable in tests without materialized sources).
    """
    # Sibling index in graph-iteration order: the scope representative
    # scan must see siblings in the same order the sequential rebuild's
    # per-node graph scan did.
    graph_order_siblings: Dict[tuple, List[BuildNode]] = {}
    for n in graph:
        if n.step is not None:
            key = (tuple(n.step.argv), n.step.cwd)
            graph_order_siblings.setdefault(key, []).append(n)

    scope = set(options.lto_scope or [])
    by_key: Dict[tuple, CommandGroup] = {}
    groups: List[CommandGroup] = []
    producer: Dict[str, tuple] = {}      # node id -> producing group key
    topo = graph.topo_order()
    for node in topo:
        if node.step is None:
            continue
        key = (tuple(node.step.argv), node.step.cwd)
        group = by_key.get(key)
        if group is None:
            group = CommandGroup(key=key, nodes=[], order=len(groups))
            by_key[key] = group
            groups.append(group)
        group.nodes.append(node)
        producer[node.id] = key

    sizes = estimate_node_bytes(graph, source_size or (lambda path: 0))
    for group in groups:
        # LTO scope is command-granular: the command is in scope when any
        # sibling output is, so transform with an in-scope representative.
        scope_id = group.nodes[0].id
        if scope and scope_id not in scope:
            for sibling in graph_order_siblings[group.key]:
                if sibling.id in scope:
                    scope_id = sibling.id
                    break
        argv, cwd = group.key
        group.step = adapter.transform_step(
            group.nodes[0].step, options, node_id=scope_id
        )
        group.digest = command_digest(
            group.step.argv + ([profile_salt] if profile_salt else []),
            group.step.cwd,
        )
        seen: Set[str] = set()
        for node in group.nodes:
            for dep in node.deps:
                if dep in seen:
                    continue
                seen.add(dep)
                group.dep_ids.append(dep)
                dep_key = producer.get(dep)
                if dep_key is not None and dep_key != group.key:
                    group.dep_groups.add(dep_key)
        input_bytes = sum(sizes.get(dep, 0) for dep in group.dep_ids)
        group.cost = command_cost_seconds(
            group.step, input_bytes, lto=options.lto, pgo=options.pgo
        )

    waves = compute_wavefronts(groups)
    return RebuildPlan(groups=groups, waves=waves, by_key=by_key)


def compute_wavefronts(groups: Sequence[CommandGroup]) -> List[List[CommandGroup]]:
    """Kahn layering of the group DAG; intra-wave order is first-visit
    order, so the result is deterministic and jobs-independent.

    Layering is computed *within* the given set: dependency edges to
    groups outside it are treated as satisfied.  For a full plan that is
    a no-op; for a plan the incremental engine pruned, it means clean
    upstream groups never hold a dirty group back.
    """
    keys = {group.key for group in groups}
    pending: Dict[tuple, int] = {}
    dependents: Dict[tuple, List[CommandGroup]] = {}
    for group in groups:
        inner = [dep for dep in group.dep_groups if dep in keys]
        pending[group.key] = len(inner)
        for dep in inner:
            dependents.setdefault(dep, []).append(group)
    wave = sorted(
        (g for g in groups if pending[g.key] == 0), key=lambda g: g.order
    )
    waves: List[List[CommandGroup]] = []
    placed = 0
    while wave:
        waves.append(wave)
        placed += len(wave)
        ready: List[CommandGroup] = []
        for group in wave:
            for dependent in dependents.get(group.key, ()):
                pending[dependent.key] -= 1
                if pending[dependent.key] == 0:
                    ready.append(dependent)
        wave = sorted(ready, key=lambda g: g.order)
    if placed != len(groups):
        # A cycle among command groups; topo_order would have raised
        # already for node cycles, but guard the group projection too.
        stuck = [g.nodes[0].id for g in groups if pending[g.key] > 0]
        raise ValueError(f"command-group dependency cycle involving {stuck}")
    return waves


def lpt_schedule(costs: Sequence[float], jobs: int) -> Tuple[float, List[float]]:
    """List-schedule *costs* onto *jobs* workers, longest first.

    Returns ``(makespan, per-worker loads)``.  Deterministic: ties break
    on submission index and the lowest-loaded (then lowest-numbered)
    worker wins.  With ``jobs=1`` the makespan is exactly the serial sum.
    """
    workers = [0.0] * max(1, int(jobs))
    if not costs:
        return 0.0, workers
    ranked = sorted(enumerate(costs), key=lambda item: (-item[1], item[0]))
    for _, cost in ranked:
        slot = min(range(len(workers)), key=lambda j: (workers[j], j))
        workers[slot] += cost
    return max(workers), workers
