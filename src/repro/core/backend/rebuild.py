"""``coMtainer-rebuild``: system-side rebuilding (Figure 5, right).

Runs in a rebuild container created from the Sysenv image, with the
extended image's layout mounted.  Decodes the cache, plans package
replacement, prepares the environment, re-executes the (transformed)
build graph with the system's native toolchain, and appends the rebuild
layer as the ``<tag>+coMre`` manifest.

The graph is executed through the wavefront scheduler
(:mod:`repro.core.backend.scheduler`): commands are deduplicated into
groups, layered into dependency wavefronts, and simulated time is charged
as the per-wavefront *makespan* over ``--jobs`` workers.  Execution order
is jobs-independent, so the rebuilt layer digest never depends on the
worker count.  A :class:`repro.core.cache.artifacts.RebuildArtifactCache`
can serve compiles whose transformed command and input contents match a
previous rebuild — warm PGO loops, repeated adapts, other cluster nodes.

Each wavefront is dispatched onto a simulated worker fleet
(:mod:`repro.resilience.fleet`) in three phases: *resolve* (poison /
journal / previous / cache decisions, in deterministic wavefront order),
*simulate* (the fleet timeline decides which groups complete and what the
wave costs, absorbing injected worker crashes, stragglers and flakes via
lease expiry, reassignment and speculation), then *execute* (each
completed group runs exactly once, again in wavefront order).  Faults can
therefore reshape simulated time but never bytes: the rebuilt layer is
byte-identical under any seeded worker fault pattern and any ``--jobs``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.containers.container import Container, ProgramError
from repro.integrity import IntegrityError
from repro.core.adapters.base import RebuildOptions, SystemAdapter
from repro.core.backend.replacement import apply_replacements, install_runtime
from repro.core.backend.scheduler import (
    ScheduleReport,
    WaveStats,
    command_digest,
    plan_command_groups,
)
from repro.resilience.fleet import FleetExhaustedError, WorkerFleet
from repro.core.cache.artifacts import RebuildArtifactCache, cache_key
from repro.core.cache.storage import (
    CacheError,
    add_rebuild_manifest,
    decode_cache,
    decode_rebuild_plan,
    encode_rebuild_layer,
    find_dist_tag,
)
from repro.perf.incremental import compute_plan_fingerprints, diff_plan
from repro.core.models.process import ProcessModels
from repro.oci.layout import OCILayout
from repro.pkg.apt import AptFacade
from repro.vfs import RegularFile
from repro.vfs.content import FileContent


class RebuildError(Exception):
    pass


def _command_digest(argv: List[str], cwd: str) -> str:
    return command_digest(argv, cwd)


def rebuild_in_container(
    engine,
    container: Container,
    models: ProcessModels,
    sources: Dict[str, FileContent],
    adapter: SystemAdapter,
    options: RebuildOptions,
    previous: Optional[Tuple[Dict[str, str], Dict[str, FileContent]]] = None,
    journal=None,
    fallback_fs=None,
    jobs: int = 1,
    artifact_cache: Optional[RebuildArtifactCache] = None,
    speculate: bool = True,
    max_worker_failures: int = 3,
    deadline: Optional[float] = None,
    incremental: bool = True,
    prev_fingerprints: Optional[Dict[str, str]] = None,
) -> Tuple[dict, Dict[str, FileContent], Dict[str, int], Dict[str, FileContent],
           ScheduleReport]:
    """Execute the transformed build; returns
    ``(meta, files, modes, node_files, schedule)``.

    *previous* is a prior rebuild's (node command digests, node outputs):
    nodes whose transformed command is unchanged reuse their previous
    output instead of re-executing — rebuilds "can be performed many
    times during the image's lifetime" (§4.1) without paying full cost.

    *prev_fingerprints* (with *incremental*, the default) enables the
    plan-level short-circuit on top of that per-node reuse: the new plan
    is fingerprinted (:mod:`repro.perf.incremental`) and diffed against
    the previous run's persisted fingerprints, and every clean command
    group is pruned before wavefront computation — its outputs replay
    from the previous rebuild layer and it never enters the scheduler or
    the worker fleet.  A warm identical re-adaptation executes zero nodes
    and schedules zero waves.

    *journal* is an optional :class:`repro.resilience.RebuildJournal`:
    each successful command's outputs are checkpointed into the layout,
    and an interrupted rebuild resumes by restoring journaled nodes whose
    transformed command digest still matches, instead of recompiling.

    *fallback_fs* (the extended image's filesystem) enables per-node
    graceful degradation: a node that keeps failing is skipped (its
    dependents are poisoned, its wavefront peers are not) and its dist
    artifact falls back to the generic build from the cache layer.
    Without it (the default) any node failure raises — strict behaviour.

    *jobs* is the simulated worker count: it only changes the charged
    makespan and the schedule report, never the execution order or the
    produced bytes.  *artifact_cache* serves content-addressed compile
    results from earlier rebuilds; hits execute nothing.

    *speculate* enables duplicate execution of detected stragglers on the
    worker fleet (first completion wins); *max_worker_failures* is the
    flaky-strike budget before a worker is blacklisted.  Both shape only
    the simulated timeline.  When injected worker faults kill or
    blacklist every worker, :class:`FleetExhaustedError` is raised after
    journaling leases for the unfinished groups.

    *deadline* is a simulated-seconds budget for this rebuild, checked
    against the fleet clock between wavefronts: a blown budget raises
    :class:`repro.resilience.DeadlineExceededError` after the completed
    wave's checkpoints landed, so a journaled rebuild resumes from where
    the deadline cut it off.
    """
    models = models.clone()   # adapters operate on independent copies (§4.2)
    fs = container.fs
    pool = engine.repository_pool_for(container)
    apt = AptFacade(fs, pool)
    rctx = getattr(engine, "resilience", None)
    injector = getattr(engine, "fault_injector", None)
    tele = engine.telemetry
    jobs = max(1, int(jobs))

    # 1. Package replacement plan + environment preparation.
    plan = adapter.plan_replacements(models.image, pool)
    install_runtime(apt, models.image.packages, plan)
    links = apply_replacements(fs, apt, plan)

    # 2. Materialize the cached sources at their original build paths.
    for path, content in sources.items():
        fs.write_file(path, content, create_parents=True)

    # PGO profile *data* is a build input: salt the command digests with
    # its content so new profile bytes at the same path invalidate reuse.
    profile_salt = ""
    if options.pgo == "use" and options.pgo_profile_path:
        profile_node = fs.try_get_node(options.pgo_profile_path)
        if isinstance(profile_node, RegularFile):
            profile_salt = profile_node.content.digest

    def source_size(path: str) -> int:
        node = fs.try_get_node(path)
        return node.content.size if isinstance(node, RegularFile) else 0

    # 3. Plan: dedup commands into groups (one command can produce several
    # nodes — multi-source compiles; LTO scope is command-granular), layer
    # the group DAG into dependency wavefronts, cost each group.
    build_plan = plan_command_groups(
        models.graph, adapter, options,
        profile_salt=profile_salt, source_size=source_size,
    )

    executed: List[str] = []
    reused: List[str] = []
    restored: List[str] = []
    failed_nodes: List[str] = []
    cache_hits: List[str] = []
    reused_set: set = set()
    node_commands: Dict[str, str] = {}
    prev_commands, prev_outputs = previous if previous is not None else ({}, {})
    failed_keys: set = set()   # command keys that failed (poison dependents)
    report = ScheduleReport(
        jobs=jobs,
        critical_path_seconds=build_plan.critical_path_seconds,
        groups_total=len(build_plan.groups),
    )

    # Plan-level short-circuit: fingerprint the plan (command digest folded
    # over transitive input digests, node-order independent) and prune every
    # group the previous run already produced from identical inputs.  Pruned
    # groups replay their outputs here and never enter the scheduler; the
    # fingerprints always land in meta so the *next* run can diff against
    # them.  Fingerprints and pruning decisions are jobs-independent.
    fingerprints = compute_plan_fingerprints(build_plan, models.graph, fs)
    pruned_nodes: List[str] = []
    waves_to_run = build_plan.waves
    if incremental and prev_fingerprints:
        plan_diff = diff_plan(
            build_plan, fingerprints, prev_fingerprints, prev_outputs
        )
        for group in plan_diff.pruned:
            for node_id in group.node_ids:
                node_commands[node_id] = group.digest
            for n in group.nodes:
                fs.write_file(n.path, prev_outputs[n.path],
                              mode=0o755, create_parents=True)
            reused.extend(group.node_ids)
            reused_set.update(group.node_ids)
            pruned_nodes.extend(group.node_ids)
        if plan_diff.pruned:
            waves_to_run = plan_diff.waves
            report.groups_pruned = len(plan_diff.pruned)
            if tele.enabled:
                m = tele.metrics
                m.counter("rebuild_groups_pruned_total").inc(
                    len(plan_diff.pruned))
                m.counter("rebuild_nodes_pruned_total").inc(len(pruned_nodes))
                tele.event(
                    "rebuild.plan_pruned",
                    groups=len(plan_diff.pruned), nodes=len(pruned_nodes),
                    dirty=len(plan_diff.dirty),
                )

    def group_cache_key(group) -> Optional[str]:
        """Content address: transformed digest + every input's bytes."""
        dep_digests = []
        for dep in group.dep_ids:
            dep_node = models.graph.try_get(dep)
            if dep_node is None:
                continue
            dep_file = fs.try_get_node(dep_node.path)
            if not isinstance(dep_file, RegularFile):
                return None   # an input is missing; the cache can't vouch
            dep_digests.append((dep_node.path, dep_file.content.digest))
        return cache_key(group.digest, dep_digests)

    def checkpoint(group, digest: str) -> None:
        for n in group.nodes:
            out = fs.try_get_node(n.path)
            if isinstance(out, RegularFile):
                journal.record(n.id, digest, n.path, out.content, out.mode)
        journal.flush()

    exec_keys: Dict[tuple, Optional[str]] = {}   # group key -> cache key

    def resolve_group(group) -> bool:
        """Decide one command group's fate; returns ``True`` when it must
        actually execute (else it was reused/restored/cached/poisoned).

        The resolution order — poison check, journal restore, previous
        reuse, artifact cache, execute — is deterministic and identical
        for every ``jobs`` value and every worker fault pattern.
        """
        digest = group.digest
        for node_id in group.node_ids:
            node_commands[node_id] = digest
        # A failed command poisons its dependents: their inputs will never
        # exist, so they fail without execution (and without consuming the
        # wavefront's retry budget).  Peers in the same wavefront are
        # untouched.  failed_keys is only populated under --fallback.
        if any(dep_key in failed_keys for dep_key in group.dep_groups):
            failed_nodes.extend(group.node_ids)
            failed_keys.add(group.key)
            return False
        # Reusable only when the transformed command is unchanged AND every
        # produced dependency was itself reused — an unchanged `ar` command
        # over re-compiled objects must re-run (its inputs differ).
        deps_unchanged = all(
            (dep_node := models.graph.try_get(dep)) is None
            or not dep_node.is_produced
            or dep in reused_set
            for dep in group.dep_ids
        )
        # Checkpointed by an interrupted previous run?  Restore from the
        # journal instead of recompiling — but only when the transformed
        # command digest still matches (options/adapter/profile identical).
        if (
            journal is not None
            and deps_unchanged
            and all(journal.digest_of(n.id) == digest for n in group.nodes)
        ):
            for n in group.nodes:
                content, mode = journal.output_for(n.id)
                fs.write_file(n.path, content, mode=mode, create_parents=True)
            restored.extend(group.node_ids)
            reused_set.update(group.node_ids)
            return False
        first = group.nodes[0]
        if (
            deps_unchanged
            and prev_commands.get(first.id) == digest
            and first.path in prev_outputs
        ):
            for n in group.nodes:
                if n.path in prev_outputs:
                    fs.write_file(n.path, prev_outputs[n.path],
                                  mode=0o755, create_parents=True)
            reused.extend(group.node_ids)
            reused_set.update(group.node_ids)
            return False
        key = None
        if artifact_cache is not None:
            key = group_cache_key(group)
            hit = artifact_cache.lookup(key) if key is not None else None
            if hit is not None:
                for _, path, content, mode in hit:
                    fs.write_file(path, content, mode=mode, create_parents=True)
                cache_hits.extend(group.node_ids)
                if journal is not None:
                    checkpoint(group, digest)
                return False
        exec_keys[group.key] = key
        return True

    def execute_group(group) -> None:
        """Really run one command group the fleet simulation completed."""
        digest = group.digest
        first = group.nodes[0]
        step = group.step
        fs.makedirs(step.cwd)
        env = container.environment()
        env.update(step.env)

        def run_once():
            if injector is not None:
                injector.arm("rebuild.node", first.id)
            result = engine.exec_in(container, step.argv, env=env, cwd=step.cwd)
            if not result.ok:
                raise RebuildError(
                    f"rebuild of {first.id} failed: "
                    f"{result.stderr or result.stdout}"
                )

        def run_node():
            if rctx is not None:
                rctx.retry(run_once, site="rebuild.node")
            else:
                run_once()

        try:
            if tele.enabled:
                # One span per executed compile command; `nodes` names
                # every sibling output of a multi-source compile.  The
                # phase attribute steers the cost profiler: archive and
                # driver-link commands are link time, `-c` compiles are
                # compile time.
                if step.is_archiver or "-c" not in step.argv:
                    phase = "link"
                else:
                    phase = "compile"
                with tele.span(
                    "rebuild.node",
                    node=first.id,
                    nodes=group.node_ids,
                    command=step.argv[0] if step.argv else "",
                    phase=phase,
                ):
                    run_node()
            else:
                run_node()
        except Exception:
            if fallback_fs is None:
                raise
            failed_nodes.extend(group.node_ids)
            failed_keys.add(group.key)
            return
        executed.extend(group.node_ids)
        if journal is not None:
            checkpoint(group, digest)
        key = exec_keys.get(group.key)
        if artifact_cache is not None and key is not None:
            outputs = [
                (n.id, n.path, out.content, out.mode)
                for n in group.nodes
                if isinstance(out := fs.try_get_node(n.path), RegularFile)
            ]
            if outputs:
                artifact_cache.store(key, outputs)

    # 4. Dispatch wavefront by wavefront onto the worker fleet.  Per wave:
    # resolve (deterministic order), simulate (the fleet decides which
    # groups complete and what the wave costs under injected worker
    # faults), execute (each completed group, once, in wavefront order).
    fleet = WorkerFleet(
        jobs=jobs, injector=injector, telemetry=tele, speculate=speculate,
        max_worker_failures=max_worker_failures,
    )
    report.fleet = fleet.stats
    if journal is not None:
        stale = journal.leases()
        if stale:
            # A previous rebuild died mid-wavefront with these groups in
            # flight.  Their outputs were never checkpointed, so they
            # simply re-execute below; surface and clear the evidence.
            report.stale_leases = len(stale)
            if tele.enabled:
                tele.event("fleet.stale_leases", count=len(stale))
            journal.clear_leases()

    def dispatch_wave(wave_index: int, wave) -> Tuple[float, int, float]:
        pending = [group for group in wave if resolve_group(group)]
        outcome = fleet.run_wave(
            wave_index, [(g.digest, g.cost) for g in pending]
        )
        if journal is not None and pending:
            # Leases go durable before any group of the wave executes, so
            # a crash mid-wavefront leaves exact in-flight evidence; each
            # group's own checkpoint clears its lease again.
            for g in pending:
                journal.record_lease(
                    g.digest, outcome.owners.get(g.digest, ""), wave_index,
                    nodes=g.node_ids, expires=fleet.clock.now,
                )
            journal.flush()
        completed = 0
        busy = 0.0
        for g in pending:
            if g.digest in outcome.completed:
                if journal is not None:
                    journal.clear_lease(g.digest)
                execute_group(g)
                completed += 1
                busy += g.cost
        if outcome.exhausted:
            raise FleetExhaustedError(wave_index, outcome.pending, fleet.stats)
        return outcome.makespan, completed, busy

    try:
        for wave_index, wave in enumerate(waves_to_run):
            if deadline is not None and fleet.clock.now >= deadline:
                # Cancelled cleanly between wavefronts: every completed
                # group is checkpointed (journal resumable), no group of
                # this wave has started.
                from repro.resilience.deadline import DeadlineExceededError

                if tele.enabled:
                    tele.event("rebuild.deadline_exceeded",
                               wave=wave_index, spent=fleet.clock.now,
                               budget=deadline)
                    tele.metrics.counter(
                        "rebuild_deadline_exceeded_total").inc()
                if journal is not None:
                    journal.flush()
                raise DeadlineExceededError(
                    spent=fleet.clock.now, budget=deadline,
                    site="rebuild.wave", wave_index=wave_index,
                )
            if tele.enabled:
                with tele.span(
                    "rebuild.wavefront", index=wave_index, width=len(wave)
                ) as wave_span:
                    makespan, completed, busy = dispatch_wave(wave_index, wave)
                    if makespan > 0.0:
                        tele.charge(makespan)
                    wave_span.set("executed", completed)
                    wave_span.set("makespan_seconds", makespan)
                    tele.metrics.histogram("rebuild_wavefront_width").observe(
                        len(wave)
                    )
                    if tele.controlplane is not None:
                        # The fleet already advanced the sampler by this
                        # wave's makespan; the scheduler just flushes any
                        # overdue samples so per-wave counter updates are
                        # observed at wavefront granularity.
                        tele.controlplane.poll()
            else:
                makespan, completed, busy = dispatch_wave(wave_index, wave)
            report.waves.append(WaveStats(
                index=wave_index,
                width=len(wave),
                executed=completed,
                makespan=makespan,
                busy=busy,
            ))
            report.makespan_seconds += makespan
            report.serial_seconds += busy
    finally:
        # Fleet accounting must survive exhaustion: the degradation
        # ladder reads it off the engine to populate the resilience
        # report's worker stats (accumulating across the ladder's
        # attempts — adapt_with_resilience resets it first).
        stats = fleet.stats
        prior = getattr(engine, "fleet_stats", None)
        engine.fleet_stats = stats if prior is None else prior.merge(stats)
        if tele.enabled:
            # Crashes, workers-alive and blacklist gauges are recorded
            # per wave by WorkerFleet.run_wave (the control plane's
            # series need them mid-run); only the whole-run counters
            # land here.
            m = tele.metrics
            m.counter("fleet_reassignments_total").inc(stats.reassignments)
            m.counter("fleet_straggles_detected_total").inc(stats.straggles)
            m.counter("fleet_lease_expirations_total").inc(
                stats.lease_expirations
            )
            m.counter("fleet_speculative_launches_total").inc(
                stats.speculative_launches
            )
            m.counter("fleet_speculative_wins_total").inc(
                stats.speculative_wins
            )
    report.groups_executed = sum(w.executed for w in report.waves)

    # 5. Collect rebuilt artifacts for every BUILD file of the dist image.
    files: Dict[str, FileContent] = {}
    modes: Dict[str, int] = {}
    fallback_paths: List[str] = []
    for dist_path, node_id in models.image.build_outputs().items():
        node = models.graph.try_get(node_id)
        if node is None:
            continue
        rebuilt = fs.try_get_node(node.path)
        if not isinstance(rebuilt, RegularFile):
            # Per-node degradation: serve the generic artifact from the
            # extended image for anything the rebuild could not produce.
            if fallback_fs is not None:
                generic = fallback_fs.try_get_node(dist_path)
                if isinstance(generic, RegularFile):
                    files[dist_path] = generic.content
                    modes[dist_path] = generic.mode
                    fallback_paths.append(dist_path)
                    continue
            raise RebuildError(f"rebuilt artifact missing: {node.path}")
        files[dist_path] = rebuilt.content
        modes[dist_path] = rebuilt.mode

    # Every produced node's output, for incremental future rebuilds.
    node_files: Dict[str, FileContent] = {}
    for node in models.graph:
        if node.step is None:
            continue
        produced = fs.try_get_node(node.path)
        if isinstance(produced, RegularFile):
            node_files[node.path] = produced.content

    if tele.enabled:
        m = tele.metrics
        m.counter("rebuild_nodes_executed_total").inc(len(executed))
        m.counter("rebuild_nodes_reused_total").inc(len(reused))
        m.counter("rebuild_nodes_restored_total").inc(len(restored))
        m.counter("rebuild_nodes_failed_total").inc(len(failed_nodes))
        m.counter("rebuild_nodes_cache_hits_total").inc(len(cache_hits))
        m.gauge("rebuild_schedule_jobs").set(jobs)
        m.gauge("rebuild_schedule_wavefronts").set(len(report.waves))
        m.gauge("rebuild_schedule_max_width").set(report.max_width)
        m.gauge("rebuild_schedule_makespan_seconds").set(report.makespan_seconds)
        m.gauge("rebuild_schedule_serial_seconds").set(report.serial_seconds)
        m.gauge("rebuild_schedule_critical_path_seconds").set(
            report.critical_path_seconds
        )
        m.gauge("rebuild_schedule_speedup").set(report.speedup)
        m.gauge("rebuild_worker_utilization").set(report.utilization)
        for node_id in reused:
            tele.event("rebuild.node_reused", node=node_id)
        for node_id in restored:
            tele.event("rebuild.node_restored", node=node_id)
        for node_id in cache_hits:
            tele.event("rebuild.node_cache_hit", node=node_id)

    # The schedule report stays OUT of meta: meta bytes feed the rebuild
    # layer digest, which must be identical for every --jobs value.  The
    # lists below are resolution-ordered, which is jobs-independent.
    meta = {
        "adapter": adapter.name,
        "system": adapter.system.key,
        "options": options.to_json(),
        "replacements": [r.to_json() for r in plan],
        "compat_links": links,
        "runtime_packages": list(models.image.packages),
        "entrypoint": list(models.image.entrypoint),
        "executed_nodes": executed,
        "reused_nodes": reused,
        "node_commands": node_commands,
        "node_fingerprints": fingerprints,
        "pruned_nodes": pruned_nodes,
        "failed_nodes": failed_nodes,
        "fallback_paths": fallback_paths,
        "journal_restored": restored,
        "cache_hits": cache_hits,
    }
    return meta, files, modes, node_files, report


def comtainer_rebuild_entry(ctx) -> int:
    """The ``coMtainer-rebuild`` program (runs in the rebuild container)."""
    from repro.core.adapters.builtin import get_adapter
    from repro.core.frontend.build import IO_MOUNT
    from repro.sysmodel import system_for_arch

    layout = ctx.container.mount_at(IO_MOUNT)
    if not isinstance(layout, OCILayout):
        raise ProgramError(f"coMtainer-rebuild: no OCI layout mounted at {IO_MOUNT}")

    options, adapter_name, flags = _parse_args(ctx.argv[1:])
    system = system_for_arch(ctx.container.arch)
    adapter = get_adapter(adapter_name, system)

    try:
        dist_tag = find_dist_tag(layout)
    except CacheError as exc:
        raise ProgramError(f"coMtainer-rebuild: {exc}")
    try:
        models, sources, resolved = decode_cache(layout, dist_tag)
    except IntegrityError:
        # A corrupt cache blob must stay *typed* all the way out of
        # engine.run: ProgramError would be flattened into RunResult
        # stderr, severing the chain the repair engine keys on.
        raise
    except Exception as exc:
        raise ProgramError(f"coMtainer-rebuild: {exc}")
    journal = None
    if flags["journal"]:
        from repro.resilience.journal import RebuildJournal

        journal = RebuildJournal(layout, dist_tag)
    # The extended image carries the generic dist content, so it doubles
    # as the per-node fallback source under --fallback.
    fallback_fs = resolved.filesystem() if flags["fallback"] else None
    artifact_cache = (
        RebuildArtifactCache(layout, dist_tag, telemetry=ctx.engine.telemetry)
        if flags["cache"] else None
    )
    prev_commands, prev_outputs, prev_fingerprints = decode_rebuild_plan(
        layout, dist_tag
    )
    try:
        meta, files, modes, node_files, schedule = rebuild_in_container(
            ctx.engine, ctx.container, models, sources, adapter, options,
            previous=(prev_commands, prev_outputs), journal=journal,
            fallback_fs=fallback_fs,
            jobs=flags["jobs"], artifact_cache=artifact_cache,
            speculate=flags["speculate"],
            max_worker_failures=flags["max_worker_failures"],
            deadline=flags["deadline"],
            incremental=flags["incremental"],
            prev_fingerprints=prev_fingerprints,
        )
    except RebuildError as exc:
        raise ProgramError(f"coMtainer-rebuild: {exc}")
    layer = encode_rebuild_layer(meta, files, modes, node_files=node_files)
    tag = add_rebuild_manifest(layout, dist_tag, layer)
    if artifact_cache is not None:
        # Persisted only after a *successful* rebuild: an aborted run must
        # leave the layout exactly as the journal/fault machinery expects.
        artifact_cache.flush()
    if journal is not None:
        # A completed rebuild supersedes its checkpoints; from here the
        # +coMre node outputs are the incremental-reuse source.
        journal.clear()
    ctx.writeline(
        f"coMtainer-rebuild: rebuilt {len(meta['executed_nodes'])} nodes "
        f"({len(meta['reused_nodes'])} reused) "
        f"with adapter {adapter.name!r}, tagged {tag}"
    )
    ctx.writeline(f"coMtainer-rebuild: {schedule.summary_line()}")
    if schedule.groups_pruned:
        ctx.writeline(
            f"coMtainer-rebuild: incremental plan diff pruned "
            f"{schedule.groups_pruned} unchanged command groups "
            f"({len(meta['pruned_nodes'])} nodes) before scheduling"
        )
    # The fleet line is separate from the schedule line so `speedup=...x`
    # stays the schedule line's tail (stdout consumers parse it).
    if schedule.fleet is not None and schedule.fleet.any_faults:
        ctx.writeline(f"coMtainer-rebuild: {schedule.fleet.summary_line()}")
    if schedule.stale_leases:
        ctx.writeline(
            f"coMtainer-rebuild: cleared {schedule.stale_leases} stale "
            "worker leases (previous rebuild died mid-wavefront)"
        )
    if meta["cache_hits"]:
        ctx.writeline(
            f"coMtainer-rebuild: {len(meta['cache_hits'])} nodes served "
            "from the artifact cache"
        )
    if meta["journal_restored"]:
        ctx.writeline(
            f"coMtainer-rebuild: resumed {len(meta['journal_restored'])} "
            "nodes from the checkpoint journal"
        )
    if meta["failed_nodes"]:
        ctx.writeline(
            f"coMtainer-rebuild: {len(meta['failed_nodes'])} nodes failed; "
            f"{len(meta['fallback_paths'])} artifacts fell back to generic"
        )
    for replacement in meta["replacements"]:
        ctx.writeline(
            f"coMtainer-rebuild: replaced {replacement['generic']} "
            f"-> {replacement['optimized']}"
        )
    return 0


def _parse_args(args: List[str]) -> Tuple[RebuildOptions, str, Dict[str, object]]:
    options = RebuildOptions()
    adapter_name = "vendor"
    flags: Dict[str, object] = {
        "journal": False, "fallback": False, "cache": True, "jobs": 1,
        "speculate": True, "max_worker_failures": 3, "deadline": None,
        "incremental": True,
    }
    i = 0
    while i < len(args):
        arg = args[i]
        if arg == "--lto":
            options.lto = True
        elif arg == "--incremental":
            flags["incremental"] = True
        elif arg == "--no-incremental":
            flags["incremental"] = False
        elif arg == "--journal":
            flags["journal"] = True
        elif arg == "--fallback":
            flags["fallback"] = True
        elif arg == "--no-cache":
            flags["cache"] = False
        elif arg == "--speculate":
            flags["speculate"] = True
        elif arg == "--no-speculate":
            flags["speculate"] = False
        elif arg.startswith("--max-worker-failures="):
            value = arg.split("=", 1)[1]
            try:
                flags["max_worker_failures"] = int(value)
            except ValueError:
                raise ProgramError(
                    f"coMtainer-rebuild: bad --max-worker-failures value {value!r}"
                )
            if flags["max_worker_failures"] < 1:
                raise ProgramError(
                    f"coMtainer-rebuild: bad --max-worker-failures value {value!r}"
                )
        elif arg.startswith("--jobs="):
            value = arg.split("=", 1)[1]
            try:
                flags["jobs"] = int(value)
            except ValueError:
                raise ProgramError(
                    f"coMtainer-rebuild: bad --jobs value {value!r}"
                )
            if flags["jobs"] < 1:
                raise ProgramError(
                    f"coMtainer-rebuild: bad --jobs value {value!r}"
                )
        elif arg.startswith("--deadline="):
            value = arg.split("=", 1)[1]
            try:
                flags["deadline"] = float(value)
            except ValueError:
                raise ProgramError(
                    f"coMtainer-rebuild: bad --deadline value {value!r}"
                )
            if flags["deadline"] <= 0:
                raise ProgramError(
                    f"coMtainer-rebuild: bad --deadline value {value!r}"
                )
        elif arg.startswith("--lto-scope="):
            options.lto = True
            options.lto_scope = [s for s in arg.split("=", 1)[1].split(",") if s]
        elif arg.startswith("--pgo="):
            options.pgo = arg.split("=", 1)[1]
        elif arg.startswith("--pgo-profile="):
            options.pgo_profile_path = arg.split("=", 1)[1]
        elif arg == "--relax-isa":
            options.relax_isa = True
        elif arg.startswith("--adapter="):
            adapter_name = arg.split("=", 1)[1]
        else:
            raise ProgramError(f"coMtainer-rebuild: unknown option {arg!r}")
        i += 1
    if options.pgo not in ("off", "instrument", "use"):
        raise ProgramError(f"coMtainer-rebuild: bad --pgo value {options.pgo!r}")
    return options, adapter_name, flags
