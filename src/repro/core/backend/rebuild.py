"""``coMtainer-rebuild``: system-side rebuilding (Figure 5, right).

Runs in a rebuild container created from the Sysenv image, with the
extended image's layout mounted.  Decodes the cache, plans package
replacement, prepares the environment, re-executes the (transformed)
build graph with the system's native toolchain, and appends the rebuild
layer as the ``<tag>+coMre`` manifest.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.containers.container import Container, ProgramError
from repro.integrity import IntegrityError
from repro.core.adapters.base import RebuildOptions, SystemAdapter
from repro.core.backend.replacement import apply_replacements, install_runtime
from repro.core.cache.storage import (
    CacheError,
    add_rebuild_manifest,
    decode_cache,
    decode_rebuild,
    decode_rebuild_nodes,
    encode_rebuild_layer,
    find_dist_tag,
)
from repro.core.models.process import ProcessModels
from repro.oci.layout import OCILayout
from repro.pkg.apt import AptFacade
from repro.vfs import RegularFile
from repro.vfs.content import FileContent


class RebuildError(Exception):
    pass


def _command_digest(argv: List[str], cwd: str) -> str:
    import hashlib
    import json as _json

    return hashlib.sha256(
        _json.dumps([argv, cwd], sort_keys=True).encode()
    ).hexdigest()[:24]


def rebuild_in_container(
    engine,
    container: Container,
    models: ProcessModels,
    sources: Dict[str, FileContent],
    adapter: SystemAdapter,
    options: RebuildOptions,
    previous: Optional[Tuple[Dict[str, str], Dict[str, FileContent]]] = None,
    journal=None,
    fallback_fs=None,
) -> Tuple[dict, Dict[str, FileContent], Dict[str, int], Dict[str, FileContent]]:
    """Execute the transformed build; returns (meta, files, modes, node_files).

    *previous* is a prior rebuild's (node command digests, node outputs):
    nodes whose transformed command is unchanged reuse their previous
    output instead of re-executing — rebuilds "can be performed many
    times during the image's lifetime" (§4.1) without paying full cost.

    *journal* is an optional :class:`repro.resilience.RebuildJournal`:
    each successful command's outputs are checkpointed into the layout,
    and an interrupted rebuild resumes by restoring journaled nodes whose
    transformed command digest still matches, instead of recompiling.

    *fallback_fs* (the extended image's filesystem) enables per-node
    graceful degradation: a node that keeps failing is skipped and its
    dist artifact falls back to the generic build from the cache layer.
    Without it (the default) any node failure raises — strict behaviour.
    """
    models = models.clone()   # adapters operate on independent copies (§4.2)
    fs = container.fs
    pool = engine.repository_pool_for(container)
    apt = AptFacade(fs, pool)
    rctx = getattr(engine, "resilience", None)
    injector = getattr(engine, "fault_injector", None)
    tele = engine.telemetry

    # 1. Package replacement plan + environment preparation.
    plan = adapter.plan_replacements(models.image, pool)
    install_runtime(apt, models.image.packages, plan)
    links = apply_replacements(fs, apt, plan)

    # 2. Materialize the cached sources at their original build paths.
    for path, content in sources.items():
        fs.write_file(path, content, create_parents=True)

    # 3. Re-execute the build graph, dependencies first, transformed.
    # One command can produce several nodes (multi-source compiles), so
    # commands are deduplicated; LTO scope is command-granular — a command
    # is in scope when any of its output nodes is.
    executed: List[str] = []
    reused: List[str] = []
    restored: List[str] = []
    failed_nodes: List[str] = []
    reused_set: set = set()
    node_commands: Dict[str, str] = {}
    prev_commands, prev_outputs = previous if previous is not None else ({}, {})
    # Original command identity ->
    # ("executed"|"reused"|"restored"|"failed", transformed digest).
    command_status: Dict[tuple, Tuple[str, str]] = {}
    scope = set(options.lto_scope or [])

    # All output nodes of each command, so journal checkpoints cover every
    # sibling of a multi-source compile.
    siblings: Dict[tuple, List] = {}
    for n in models.graph:
        if n.step is not None:
            siblings.setdefault((tuple(n.step.argv), n.step.cwd), []).append(n)

    # PGO profile *data* is a build input: salt the command digests with
    # its content so new profile bytes at the same path invalidate reuse.
    profile_salt = ""
    if options.pgo == "use" and options.pgo_profile_path:
        profile_node = fs.try_get_node(options.pgo_profile_path)
        if isinstance(profile_node, RegularFile):
            profile_salt = profile_node.content.digest

    def restore_output(node_path: str) -> None:
        fs.write_file(node_path, prev_outputs[node_path],
                      mode=0o755, create_parents=True)

    for node in models.graph.topo_order():
        if node.step is None:
            continue
        key = (tuple(node.step.argv), node.step.cwd)
        if key in command_status:
            # A sibling output of an already-handled multi-source command.
            status, digest = command_status[key]
            node_commands[node.id] = digest
            if status == "reused" and node.path in prev_outputs:
                restore_output(node.path)
            if status == "reused":
                reused.append(node.id)
                reused_set.add(node.id)
            elif status == "restored":
                restored.append(node.id)
                reused_set.add(node.id)
            elif status == "failed":
                failed_nodes.append(node.id)
            else:
                executed.append(node.id)
            continue
        scope_id = node.id
        if scope and node.id not in scope:
            for sibling in models.graph:
                if sibling.step is not None and (
                    tuple(sibling.step.argv), sibling.step.cwd
                ) == key and sibling.id in scope:
                    scope_id = sibling.id
                    break
        step = adapter.transform_step(node.step, options, node_id=scope_id)
        digest = _command_digest(
            step.argv + ([profile_salt] if profile_salt else []), step.cwd
        )
        node_commands[node.id] = digest
        # Reusable only when the transformed command is unchanged AND every
        # produced dependency was itself reused — an unchanged `ar` command
        # over re-compiled objects must re-run (its inputs differ).
        deps_unchanged = all(
            (dep_node := models.graph.try_get(dep)) is None
            or not dep_node.is_produced
            or dep in reused_set
            for dep in node.deps
        )
        # Checkpointed by an interrupted previous run?  Restore from the
        # journal instead of recompiling — but only when the transformed
        # command digest still matches (options/adapter/profile identical).
        if (
            journal is not None
            and deps_unchanged
            and all(journal.digest_of(s.id) == digest for s in siblings[key])
        ):
            for s in siblings[key]:
                content, mode = journal.output_for(s.id)
                fs.write_file(s.path, content, mode=mode, create_parents=True)
            restored.append(node.id)
            reused_set.add(node.id)
            command_status[key] = ("restored", digest)
            continue
        if (
            deps_unchanged
            and prev_commands.get(node.id) == digest
            and node.path in prev_outputs
        ):
            restore_output(node.path)
            reused.append(node.id)
            reused_set.add(node.id)
            command_status[key] = ("reused", digest)
            continue
        fs.makedirs(step.cwd)
        env = container.environment()
        env.update(step.env)

        def run_once(step=step, node=node, env=env):
            if injector is not None:
                injector.arm("rebuild.node", node.id)
            result = engine.exec_in(container, step.argv, env=env, cwd=step.cwd)
            if not result.ok:
                raise RebuildError(
                    f"rebuild of {node.id} failed: {result.stderr or result.stdout}"
                )

        def run_node():
            if rctx is not None:
                rctx.retry(run_once, site="rebuild.node")
            else:
                run_once()

        try:
            if tele.enabled:
                # One span per executed compile command; `nodes` names
                # every sibling output of a multi-source compile.
                with tele.span(
                    "rebuild.node",
                    node=node.id,
                    nodes=[s.id for s in siblings[key]],
                    command=step.argv[0] if step.argv else "",
                ):
                    run_node()
            else:
                run_node()
        except Exception:
            if fallback_fs is None:
                raise
            failed_nodes.append(node.id)
            command_status[key] = ("failed", digest)
            continue
        executed.append(node.id)
        command_status[key] = ("executed", digest)
        if journal is not None:
            for s in siblings[key]:
                out = fs.try_get_node(s.path)
                if isinstance(out, RegularFile):
                    journal.record(s.id, digest, s.path, out.content, out.mode)
            journal.flush()

    # 4. Collect rebuilt artifacts for every BUILD file of the dist image.
    files: Dict[str, FileContent] = {}
    modes: Dict[str, int] = {}
    fallback_paths: List[str] = []
    for dist_path, node_id in models.image.build_outputs().items():
        node = models.graph.try_get(node_id)
        if node is None:
            continue
        rebuilt = fs.try_get_node(node.path)
        if not isinstance(rebuilt, RegularFile):
            # Per-node degradation: serve the generic artifact from the
            # extended image for anything the rebuild could not produce.
            if fallback_fs is not None:
                generic = fallback_fs.try_get_node(dist_path)
                if isinstance(generic, RegularFile):
                    files[dist_path] = generic.content
                    modes[dist_path] = generic.mode
                    fallback_paths.append(dist_path)
                    continue
            raise RebuildError(f"rebuilt artifact missing: {node.path}")
        files[dist_path] = rebuilt.content
        modes[dist_path] = rebuilt.mode

    # Every produced node's output, for incremental future rebuilds.
    node_files: Dict[str, FileContent] = {}
    for node in models.graph:
        if node.step is None:
            continue
        produced = fs.try_get_node(node.path)
        if isinstance(produced, RegularFile):
            node_files[node.path] = produced.content

    if tele.enabled:
        m = tele.metrics
        m.counter("rebuild_nodes_executed_total").inc(len(executed))
        m.counter("rebuild_nodes_reused_total").inc(len(reused))
        m.counter("rebuild_nodes_restored_total").inc(len(restored))
        m.counter("rebuild_nodes_failed_total").inc(len(failed_nodes))
        for node_id in reused:
            tele.event("rebuild.node_reused", node=node_id)
        for node_id in restored:
            tele.event("rebuild.node_restored", node=node_id)

    meta = {
        "adapter": adapter.name,
        "system": adapter.system.key,
        "options": options.to_json(),
        "replacements": [r.to_json() for r in plan],
        "compat_links": links,
        "runtime_packages": list(models.image.packages),
        "entrypoint": list(models.image.entrypoint),
        "executed_nodes": executed,
        "reused_nodes": reused,
        "node_commands": node_commands,
        "failed_nodes": failed_nodes,
        "fallback_paths": fallback_paths,
        "journal_restored": restored,
    }
    return meta, files, modes, node_files


def comtainer_rebuild_entry(ctx) -> int:
    """The ``coMtainer-rebuild`` program (runs in the rebuild container)."""
    from repro.core.adapters.builtin import get_adapter
    from repro.core.frontend.build import IO_MOUNT
    from repro.sysmodel import system_for_arch

    layout = ctx.container.mount_at(IO_MOUNT)
    if not isinstance(layout, OCILayout):
        raise ProgramError(f"coMtainer-rebuild: no OCI layout mounted at {IO_MOUNT}")

    options, adapter_name, flags = _parse_args(ctx.argv[1:])
    system = system_for_arch(ctx.container.arch)
    adapter = get_adapter(adapter_name, system)

    try:
        dist_tag = find_dist_tag(layout)
    except CacheError as exc:
        raise ProgramError(f"coMtainer-rebuild: {exc}")
    try:
        models, sources, resolved = decode_cache(layout, dist_tag)
    except IntegrityError:
        # A corrupt cache blob must stay *typed* all the way out of
        # engine.run: ProgramError would be flattened into RunResult
        # stderr, severing the chain the repair engine keys on.
        raise
    except Exception as exc:
        raise ProgramError(f"coMtainer-rebuild: {exc}")
    journal = None
    if flags["journal"]:
        from repro.resilience.journal import RebuildJournal

        journal = RebuildJournal(layout, dist_tag)
    # The extended image carries the generic dist content, so it doubles
    # as the per-node fallback source under --fallback.
    fallback_fs = resolved.filesystem() if flags["fallback"] else None
    previous = decode_rebuild_nodes(layout, dist_tag)
    try:
        meta, files, modes, node_files = rebuild_in_container(
            ctx.engine, ctx.container, models, sources, adapter, options,
            previous=previous, journal=journal, fallback_fs=fallback_fs,
        )
    except RebuildError as exc:
        raise ProgramError(f"coMtainer-rebuild: {exc}")
    layer = encode_rebuild_layer(meta, files, modes, node_files=node_files)
    tag = add_rebuild_manifest(layout, dist_tag, layer)
    if journal is not None:
        # A completed rebuild supersedes its checkpoints; from here the
        # +coMre node outputs are the incremental-reuse source.
        journal.clear()
    ctx.writeline(
        f"coMtainer-rebuild: rebuilt {len(meta['executed_nodes'])} nodes "
        f"({len(meta['reused_nodes'])} reused) "
        f"with adapter {adapter.name!r}, tagged {tag}"
    )
    if meta["journal_restored"]:
        ctx.writeline(
            f"coMtainer-rebuild: resumed {len(meta['journal_restored'])} "
            "nodes from the checkpoint journal"
        )
    if meta["failed_nodes"]:
        ctx.writeline(
            f"coMtainer-rebuild: {len(meta['failed_nodes'])} nodes failed; "
            f"{len(meta['fallback_paths'])} artifacts fell back to generic"
        )
    for replacement in meta["replacements"]:
        ctx.writeline(
            f"coMtainer-rebuild: replaced {replacement['generic']} "
            f"-> {replacement['optimized']}"
        )
    return 0


def _parse_args(args: List[str]) -> Tuple[RebuildOptions, str, Dict[str, bool]]:
    options = RebuildOptions()
    adapter_name = "vendor"
    flags = {"journal": False, "fallback": False}
    i = 0
    while i < len(args):
        arg = args[i]
        if arg == "--lto":
            options.lto = True
        elif arg == "--journal":
            flags["journal"] = True
        elif arg == "--fallback":
            flags["fallback"] = True
        elif arg.startswith("--lto-scope="):
            options.lto = True
            options.lto_scope = [s for s in arg.split("=", 1)[1].split(",") if s]
        elif arg.startswith("--pgo="):
            options.pgo = arg.split("=", 1)[1]
        elif arg.startswith("--pgo-profile="):
            options.pgo_profile_path = arg.split("=", 1)[1]
        elif arg == "--relax-isa":
            options.relax_isa = True
        elif arg.startswith("--adapter="):
            adapter_name = arg.split("=", 1)[1]
        else:
            raise ProgramError(f"coMtainer-rebuild: unknown option {arg!r}")
        i += 1
    if options.pgo not in ("off", "instrument", "use"):
        raise ProgramError(f"coMtainer-rebuild: bad --pgo value {options.pgo!r}")
    return options, adapter_name, flags
