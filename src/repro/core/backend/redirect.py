"""``coMtainer-redirect``: assembling the final optimized image.

Runs in an empty redirect container created from the Rebase image.  "The
backend sets up the redirect container by installing the runtime
dependencies and extracting files from the rebuild cache.  The cached
files are placed at the same path as the original image, and the
container's final state is committed as the optimized image." (§4.5)
"""

from __future__ import annotations

from typing import Dict

from repro.containers.container import Container, ProgramError
from repro.core.adapters.base import LibraryReplacement
from repro.core.backend.replacement import apply_replacements, install_runtime
from repro.core.cache.storage import (
    CacheError,
    decode_cache,
    decode_rebuild,
    find_dist_tag,
)
from repro.core.models.image_model import FileOrigin
from repro.oci.layout import OCILayout
from repro.pkg.apt import AptFacade


def redirect_in_container(
    engine, container: Container, layout: OCILayout, dist_tag: str
) -> dict:
    """Populate the redirect container; returns the rebuild meta."""
    meta, files, modes, _rebuilt = decode_rebuild(layout, dist_tag)
    models, _sources, resolved = decode_cache(layout, dist_tag)
    fs = container.fs

    # 1. Runtime dependencies (optimized packages replace generic ones).
    plan = [LibraryReplacement.from_json(r) for r in meta.get("replacements", [])]
    apt = AptFacade(fs, engine.repository_pool_for(container))
    install_runtime(apt, meta.get("runtime_packages", []), plan)
    apply_replacements(fs, apt, plan)

    # 2. Application data files, carried over from the original image.
    dist_fs = resolved.filesystem()
    copied_data = 0
    for record in models.image.files.values():
        if record.origin in (FileOrigin.DATA, FileOrigin.UNKNOWN):
            if dist_fs.is_file(record.path) and not fs.lexists(record.path):
                node = dist_fs.get_node(record.path)
                fs.write_file(
                    record.path, node.content, mode=node.mode, create_parents=True
                )
                copied_data += 1

    # 3. Rebuilt artifacts at their original paths.
    for path, content in files.items():
        fs.write_file(path, content, mode=modes.get(path, 0o755), create_parents=True)

    # 4. Runtime configuration from the original image.
    container.config.entrypoint = list(resolved.config.entrypoint)
    container.config.cmd = list(resolved.config.cmd)
    container.config.env = list(resolved.config.env)
    container.config.working_dir = resolved.config.working_dir
    container.config.labels.update(resolved.config.labels)
    container.config.labels["io.comtainer.adapted"] = meta.get("adapter", "")

    meta["copied_data_files"] = copied_data
    return meta


def comtainer_redirect_entry(ctx) -> int:
    """The ``coMtainer-redirect`` program (runs in the redirect container)."""
    from repro.core.frontend.build import IO_MOUNT

    layout = ctx.container.mount_at(IO_MOUNT)
    if not isinstance(layout, OCILayout):
        raise ProgramError(f"coMtainer-redirect: no OCI layout mounted at {IO_MOUNT}")
    try:
        dist_tag = find_dist_tag(layout)
    except CacheError as exc:
        raise ProgramError(f"coMtainer-redirect: {exc}")
    try:
        meta = redirect_in_container(ctx.engine, ctx.container, layout, dist_tag)
    except Exception as exc:
        if isinstance(exc, ProgramError):
            raise
        raise ProgramError(f"coMtainer-redirect: {exc}")
    ctx.writeline(
        f"coMtainer-redirect: placed {len(meta.get('executed_nodes', []))} rebuilt "
        f"node outputs, {meta['copied_data_files']} data files"
    )
    return 0
