"""System-side back-end: rebuild and redirect."""

from repro.core.backend.rebuild import RebuildError, rebuild_in_container
from repro.core.backend.redirect import redirect_in_container
from repro.core.backend.replacement import apply_replacements, install_runtime
from repro.core.backend.scheduler import (
    CommandGroup,
    RebuildPlan,
    ScheduleReport,
    WaveStats,
    compute_wavefronts,
    lpt_schedule,
    plan_command_groups,
)
from repro.core.backend.verify import VerificationReport, verify_redirected_image

__all__ = [
    "CommandGroup",
    "RebuildError",
    "RebuildPlan",
    "ScheduleReport",
    "VerificationReport",
    "WaveStats",
    "apply_replacements",
    "compute_wavefronts",
    "install_runtime",
    "lpt_schedule",
    "plan_command_groups",
    "rebuild_in_container",
    "redirect_in_container",
    "verify_redirected_image",
]
