"""Post-redirect verification.

The artifact description's analysis step states: "The final redirected
image should have a file system layout compatible with the original
image, and the application inside can be used likewise."  This module
performs that check programmatically: every application path of the
original image must resolve in the redirected image, the runtime
configuration must match, rebuilt binaries must carry the expected
provenance, and every replaced library path must re-resolve to its
optimized implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.cache.storage import decode_cache, decode_rebuild
from repro.core.models.image_model import FileOrigin
from repro.oci.layout import OCILayout
from repro.toolchain.artifacts import ExecutableArtifact, try_read_artifact
from repro.vfs import VirtualFilesystem


@dataclass
class VerificationReport:
    """Outcome of verifying a redirected image against its origin."""

    ok: bool = True
    missing_paths: List[str] = field(default_factory=list)
    entrypoint_matches: bool = True
    wrong_toolchain: List[str] = field(default_factory=list)
    unresolved_links: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def fail(self, note: str) -> None:
        self.ok = False
        self.notes.append(note)


def verify_redirected_image(
    layout: OCILayout,
    dist_tag: str,
    redirected_fs: VirtualFilesystem,
    redirected_entrypoint: List[str],
) -> VerificationReport:
    """Check a redirected image against the cache + rebuild metadata."""
    report = VerificationReport()
    models, _sources, resolved = decode_cache(layout, dist_tag)
    meta, files, _modes, _ = decode_rebuild(layout, dist_tag)
    original_fs = resolved.filesystem()

    # 1. Filesystem compatibility: app paths of the original still resolve.
    for record in models.image.files.values():
        if record.origin in (FileOrigin.BUILD, FileOrigin.DATA):
            if not redirected_fs.exists(record.path):
                report.missing_paths.append(record.path)
    if report.missing_paths:
        report.fail(f"{len(report.missing_paths)} application paths missing")

    # 2. Runtime configuration preserved.
    if list(redirected_entrypoint) != list(resolved.config.entrypoint):
        report.entrypoint_matches = False
        report.fail("entrypoint differs from the original image")

    # 3. Rebuilt binaries carry the system toolchain.
    expected_toolchain = None
    for path in files:
        data = redirected_fs.read_file(path) if redirected_fs.exists(path) else b""
        artifact = try_read_artifact(data)
        if isinstance(artifact, ExecutableArtifact):
            if expected_toolchain is None:
                expected_toolchain = artifact.toolchain
            original = try_read_artifact(
                original_fs.read_file(path) if original_fs.exists(path) else b""
            )
            if (
                isinstance(original, ExecutableArtifact)
                and artifact.toolchain == original.toolchain
                and meta.get("adapter") != "gnu-native"
            ):
                report.wrong_toolchain.append(path)
    if report.wrong_toolchain:
        report.fail("some binaries were not actually rebuilt")

    # 4. Replaced library paths re-resolve to optimized implementations.
    for replacement in meta.get("replacements", []):
        for generic_path in replacement.get("link_map", {}):
            if not redirected_fs.lexists(generic_path):
                report.unresolved_links.append(generic_path)
                continue
            try:
                redirected_fs.resolve_path(generic_path)
            except Exception:
                report.unresolved_links.append(generic_path)
    if report.unresolved_links:
        report.fail("replaced library paths no longer resolve")

    return report
