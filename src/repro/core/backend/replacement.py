"""Package replacement mechanics (the `libo` effect of Figure 3).

Replacement keeps the image's *paths* stable: the generic package is
removed and every library path it used to provide becomes a symlink to
the optimized package's library.  Binaries that recorded the generic
path keep resolving — now to the optimized code.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.core.adapters.base import LibraryReplacement
from repro.pkg.apt import AptFacade
from repro.pkg.repository import RepositoryPool
from repro.vfs import VirtualFilesystem
from repro.vfs import paths as vpath


def install_runtime(
    apt: AptFacade,
    packages: Iterable[str],
    replacements: List[LibraryReplacement],
) -> List[str]:
    """Install an image's runtime packages, swapping in replacements.

    Generic packages with a planned replacement are *not* installed; the
    optimized packages are.  Returns the names actually installed.
    """
    replaced = {r.generic for r in replacements}
    to_install = [name for name in packages if name not in replaced]
    to_install += [r.optimized for r in replacements]
    installed: List[str] = []
    for name in to_install:
        if not apt.is_installed(name):
            for pkg in apt.install([name]):
                installed.append(pkg.name)
    return installed


def apply_replacements(
    fs: VirtualFilesystem,
    apt: AptFacade,
    replacements: List[LibraryReplacement],
) -> Dict[str, str]:
    """Enact a replacement plan on a filesystem.

    Ensures optimized packages are present, removes the generic ones, and
    lays the compat symlinks.  Returns the symlink map actually created.
    """
    created: Dict[str, str] = {}
    for replacement in replacements:
        if not apt.is_installed(replacement.optimized):
            apt.install([replacement.optimized])
        if apt.is_installed(replacement.generic):
            apt.remove(replacement.generic)
        for generic_path, optimized_path in sorted(replacement.link_map.items()):
            if not fs.lexists(optimized_path):
                continue
            if fs.lexists(generic_path):
                fs.remove(generic_path, recursive=False, missing_ok=True)
            fs.symlink(optimized_path, generic_path, create_parents=True)
            created[generic_path] = optimized_path
    return created


def replacements_for_packages(
    package_names: Iterable[str], pool: RepositoryPool
) -> List[LibraryReplacement]:
    """Plan replacements directly from package metadata (no image model).

    Used by native builds on the system side, where no coMtainer cache
    exists: each generic package's own library file list provides the
    compat-link paths.
    """
    plan: List[LibraryReplacement] = []
    for name in package_names:
        candidates = pool.optimized_equivalents(name)
        if not candidates:
            continue
        best = candidates[0]
        generic = pool.latest(name)
        link_map: Dict[str, str] = {}
        optimized_libs = [f.path for f in best.files if f.kind == "library"]
        if generic is not None and optimized_libs:
            for pfile in generic.files:
                if pfile.kind == "library":
                    link_map[pfile.path] = optimized_libs[0]
        plan.append(
            LibraryReplacement(
                generic=name, optimized=best.name,
                quality=best.quality, link_map=link_map,
            )
        )
    return plan
