"""``coMtainer-build``: the user-side analysis step (Figure 5, left).

Runs inside the build container after the two-stage build finished, with
the dist image's OCI layout mounted at ``/.coMtainer/io``.  Reads the
hijacker trace, constructs the process models, collects the sources the
build consumed, and appends the cache layer to the layout as the
``<tag>+coM`` extended image.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.containers.container import ProcessContext, ProgramError
from repro.containers.hijack import read_trace
from repro.core.cache.storage import (
    CacheError,
    add_cache_manifest,
    encode_cache_layer,
    find_dist_tag,
)
from repro.core.frontend.parser import graph_from_trace
from repro.core.models.image_model import classify_image
from repro.core.models.process import ProcessModels
from repro.oci.apply import flatten_layers
from repro.oci.layout import OCILayout
from repro.vfs import RegularFile, VirtualFilesystem
from repro.vfs.content import FileContent

IO_MOUNT = "/.coMtainer/io"


def analyze_build_container(
    build_fs: VirtualFilesystem,
    layout: OCILayout,
    dist_tag: str,
    obfuscate: bool = False,
) -> Tuple[ProcessModels, Dict[str, FileContent]]:
    """Produce process models + source map from a completed build.

    With *obfuscate*, sources are stored scrambled (IP protection, §4.6);
    the ISA-construct scan is recorded in the model metadata first so the
    cross-ISA analysis keeps working on obfuscated caches.
    """
    records = read_trace(build_fs)
    graph = graph_from_trace(records)

    resolved = layout.resolve(dist_tag)
    dist_fs = resolved.filesystem()

    # The dist stage's own changes are its last layer; everything below is
    # the base image the user chose (coMtainer's Base, standard-compatible).
    base_fs = flatten_layers(resolved.layers[:-1]) if len(resolved.layers) > 1 \
        else VirtualFilesystem()
    base_paths: Set[str] = {
        path for path, node in base_fs.iter_entries("/")
        if isinstance(node, RegularFile)
    }
    from repro.pkg.rpm import read_package_database

    base_packages = set(read_package_database(base_fs).names())

    # Content-digest index of everything the build produced, so BUILD files
    # are recognized in the dist image no matter where COPY placed them.
    digest_index: Dict[str, str] = {}
    for node in graph:
        if not node.is_produced:
            continue
        file_node = build_fs.try_get_node(node.path)
        if isinstance(file_node, RegularFile):
            digest_index[file_node.content.digest] = node.id

    image_model = classify_image(
        dist_fs,
        base_paths=base_paths,
        base_packages=base_packages,
        build_digest_index=digest_index,
        entrypoint=resolved.config.entrypoint,
        architecture=resolved.config.architecture,
    )

    toolchains = sorted(
        {n.step.toolchain for n in graph if n.step is not None and n.step.toolchain}
    )
    models = ProcessModels(
        image=image_model,
        graph=graph,
        metadata={
            "dist_tag": dist_tag,
            "architecture": resolved.config.architecture,
            "build_toolchains": toolchains,
            "trace_records": len(records),
        },
    )

    sources: Dict[str, FileContent] = {}
    for path in graph.source_paths():
        node = build_fs.try_get_node(path)
        if isinstance(node, RegularFile):
            sources[path] = node.content

    # The ISA-construct scan is performed on the *clear* sources and kept
    # in the models, so obfuscation does not blind the cross-ISA study.
    from repro.core.crossisa.analysis import scan_sources_for_isa

    models.metadata["isa_scan"] = scan_sources_for_isa(sources)
    if obfuscate:
        from repro.core.cache.obfuscate import obfuscate_sources

        sources = obfuscate_sources(sources)
        models.metadata["sources_obfuscated"] = True
    return models, sources


def comtainer_build_entry(ctx: ProcessContext) -> int:
    """The ``coMtainer-build`` program (runs in the build container)."""
    layout = ctx.container.mount_at(IO_MOUNT)
    if not isinstance(layout, OCILayout):
        raise ProgramError(
            f"coMtainer-build: no OCI layout mounted at {IO_MOUNT}"
        )
    try:
        dist_tag = find_dist_tag(layout)
    except CacheError as exc:
        raise ProgramError(f"coMtainer-build: {exc}")
    obfuscate = "--obfuscate" in ctx.argv[1:]
    models, sources = analyze_build_container(
        ctx.fs, layout, dist_tag, obfuscate=obfuscate
    )
    layer = encode_cache_layer(models, sources)
    tag = add_cache_manifest(layout, dist_tag, layer)
    summary = models.summary()
    ctx.writeline(f"coMtainer-build: analyzed {summary['nodes']} build nodes, "
                  f"{summary['sources']} sources")
    ctx.writeline(f"coMtainer-build: cache layer {layer.digest[:19]} "
                  f"({layer.payload_size} bytes), tagged {tag}")
    return 0


# Re-export under the name the package __init__ expects.
comtainer_build = comtainer_build_entry
