"""User-side front-end: raw build process -> process models."""

from repro.core.frontend.parser import FrontendError, graph_from_trace
from repro.core.frontend.build import comtainer_build, analyze_build_container

__all__ = [
    "FrontendError",
    "analyze_build_container",
    "comtainer_build",
    "graph_from_trace",
]
