"""Parsing the raw build process into the build graph model.

"coMtainer's front end generates build process models by parsing the raw
build process, which is the recorded history of executed command lines
during the building process" (§4.5).  Each trace record (captured by the
command hijacker) becomes zero or more build-graph nodes: compile
commands produce object nodes, archive commands produce archive nodes,
link commands produce shared-object/executable nodes.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.core.models.build_graph import (
    BuildGraph,
    BuildNode,
    KIND_ARCHIVE,
    KIND_EXECUTABLE,
    KIND_OBJECT,
    KIND_SHARED,
    kind_for_path,
)
from repro.core.models.compilation import CompilationStep
from repro.toolchain import cli
from repro.vfs import paths as vpath


class FrontendError(Exception):
    pass


def _step_from_record(record: Dict[str, Any]) -> CompilationStep:
    return CompilationStep(
        argv=list(record.get("argv", [])),
        cwd=record.get("cwd", "/"),
        env=dict(record.get("env", {})),
        tool=record.get("program", "compiler-driver"),
        meta=dict(record.get("meta", {})),
    )


def _add_compile_nodes(graph: BuildGraph, step: CompilationStep) -> None:
    inv = step.invocation()
    cwd = step.cwd

    def resolve(path: str) -> str:
        return vpath.join(cwd, path)

    if inv.mode in (cli.MODE_INFO, cli.MODE_PREPROCESS, cli.MODE_ASSEMBLE):
        return

    if inv.mode == cli.MODE_COMPILE:
        for source in inv.sources:
            source_node = graph.ensure(resolve(source))
            if inv.output:
                out = resolve(inv.output)
            else:
                out = resolve(source.rsplit("/", 1)[-1].rsplit(".", 1)[0] + ".o")
            graph.add(
                BuildNode(
                    id=out, kind=KIND_OBJECT, path=out,
                    deps=[source_node.id], step=step,
                )
            )
        return

    # Link.
    deps: List[str] = []
    for path in inv.sources + inv.objects + inv.archives + inv.shared_inputs:
        deps.append(graph.ensure(resolve(path)).id)
    out = resolve(inv.effective_output())
    kind = KIND_SHARED if inv.shared else KIND_EXECUTABLE
    graph.add(
        BuildNode(
            id=out, kind=kind, path=out, deps=deps, step=step,
            metadata={
                "libs": list(inv.libs) + (["mpi"] if step.mpi_wrapper else []),
                "lib_dirs": list(inv.lib_dirs),
            },
        )
    )


def _add_archive_node(graph: BuildGraph, step: CompilationStep) -> None:
    argv = step.argv
    if len(argv) < 3:
        return
    ops = argv[1].lstrip("-")
    if not ("r" in ops or "q" in ops):
        return  # listing/extracting does not create nodes
    archive = vpath.join(step.cwd, argv[2])
    deps = [graph.ensure(vpath.join(step.cwd, m)).id for m in argv[3:]]
    existing = graph.try_get(archive)
    if existing is not None and existing.kind == KIND_ARCHIVE:
        merged = list(dict.fromkeys(existing.deps + deps))
        existing.deps = merged
        existing.step = step
        return
    graph.add(
        BuildNode(id=archive, kind=KIND_ARCHIVE, path=archive, deps=deps, step=step)
    )


def graph_from_trace(records: List[Dict[str, Any]]) -> BuildGraph:
    """Build the graph model from hijacker trace records."""
    graph = BuildGraph()
    for record in records:
        step = _step_from_record(record)
        if step.is_archiver:
            _add_archive_node(graph, step)
        elif step.is_compiler:
            try:
                _add_compile_nodes(graph, step)
            except ValueError as exc:
                raise FrontendError(f"unparseable command {step.argv!r}: {exc}")
        # ranlib/strip/other tools create no nodes.
    graph.validate()
    return graph
