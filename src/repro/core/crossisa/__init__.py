"""Cross-ISA image transformation (paper §5.5, Figure 11)."""

from repro.core.crossisa.analysis import (
    CrossIsaReport,
    IsaIssue,
    analyze_cross_isa,
    xbuild_line_changes,
)

__all__ = [
    "CrossIsaReport",
    "IsaIssue",
    "analyze_cross_isa",
    "xbuild_line_changes",
]
