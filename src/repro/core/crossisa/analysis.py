"""Cross-ISA analysis of extended images.

"If all the sources involved in building a container image are
ISA-agnostic, and the application's direct dependencies have
implementations across different ISAs, then coMtainer should be able to
leverage the data in the cache layer to rebuild and redirect a container
image from one ISA to another." (§5.5)

This module analyzes a cache's process models + sources for a *different*
target ISA: which build commands carry foreign machine flags (fixable by
a one-line edit each), which sources contain inline assembly (portable
when guarded with a fallback, blocking when not), and how many build
script line changes coMtainer needs versus a conventional
cross-compilation port (Figure 11's added/deleted bars).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.models.process import ProcessModels
from repro.toolchain.options import is_isa_specific
from repro.vfs.content import FileContent, InlineContent

#: Fixed cost (lines) of a conventional cross-compilation port:
#: cross-toolchain install (~14), sysroot/include/lib path plumbing (~9),
#: dist-stage/base-image rework for the foreign arch (~8), emulation and
#: smoke-test hooks (~8) — added; plus the removed original toolchain
#: setup (~9).
XBUILD_FIXED_ADDED = 39
XBUILD_FIXED_DELETED = 9


@dataclass(frozen=True)
class IsaIssue:
    kind: str          # "flag" | "inline-asm"
    location: str      # node id or source path
    detail: str
    blocking: bool


@dataclass
class CrossIsaReport:
    app: str
    source_isa: str
    target_isa: str
    issues: List[IsaIssue] = field(default_factory=list)
    flag_lines: int = 0
    asm_guarded: int = 0
    asm_unguarded: int = 0
    command_count: int = 0

    @property
    def can_cross(self) -> bool:
        """Crossable with minor build-script modifications (§5.5)."""
        return self.asm_unguarded == 0

    @property
    def comtainer_changes(self) -> Tuple[int, int]:
        """(added, deleted) build-script lines for the coMtainer port.

        Each foreign-flag command is a one-line edit (1 add + 1 del);
        each guarded asm source needs its guard audited (1-line edit);
        plus one added line retargeting the base image reference.
        """
        edits = self.flag_lines + self.asm_guarded
        return (edits + 1, edits)

    @property
    def comtainer_total(self) -> int:
        """Figure 11's "lines changed": modified lines count once."""
        return max(self.comtainer_changes)

    @property
    def xbuild_total(self) -> int:
        return max(self.xbuild_changes)

    @property
    def xbuild_changes(self) -> Tuple[int, int]:
        """(added, deleted) lines for a conventional cross-build port.

        Fixed toolchain/sysroot scaffolding plus a triplet-prefix edit on
        every build command, a flag edit per foreign-flag line, and a
        guard/port per assembly source.
        """
        added = (
            XBUILD_FIXED_ADDED
            + self.command_count
            + self.flag_lines
            + 2 * (self.asm_guarded + self.asm_unguarded)
        )
        deleted = (
            XBUILD_FIXED_DELETED
            + self.command_count
            + self.flag_lines
            + (self.asm_guarded + self.asm_unguarded)
        )
        return (added, deleted)


def scan_sources_for_isa(
    sources: Dict[str, FileContent]
) -> Dict[str, Dict[str, int]]:
    """Per-source ISA-construct scan, suitable for model metadata.

    Run by the front-end on clear sources; only non-trivial results are
    recorded.
    """
    out: Dict[str, Dict[str, int]] = {}
    for path in sorted(sources):
        guarded, unguarded = _scan_source(path, sources[path])
        if guarded or unguarded:
            out[path] = {"guarded": guarded, "unguarded": unguarded}
    return out


def _scan_source(path: str, content: FileContent) -> Tuple[int, int]:
    """(guarded, unguarded) inline-assembly occurrences in a source file.

    Only materialized (inline) sources are scanned; bulk synthetic
    sources carry no constructs by definition.
    """
    if not isinstance(content, InlineContent):
        return (0, 0)
    try:
        text = content.read().decode("utf-8")
    except UnicodeDecodeError:
        return (0, 0)
    if "__asm__" not in text and "asm volatile" not in text:
        return (0, 0)
    # A fallback branch (#else) next to the asm marks it portable.
    return (1, 0) if "#else" in text else (0, 1)


def analyze_cross_isa(
    models: ProcessModels,
    sources: Dict[str, FileContent],
    target_isa: str,
    app: str = "",
) -> CrossIsaReport:
    """Analyze an extended image's cache for rebuilding on *target_isa*.

    Prefers the front-end's recorded ISA scan (model metadata) over
    scanning source bytes — required when the cache is obfuscated.
    """
    source_isa = "x86-64" if target_isa == "aarch64" else "aarch64"
    report = CrossIsaReport(app=app, source_isa=source_isa, target_isa=target_isa)

    seen_steps = set()
    for node in models.graph:
        step = node.step
        if step is None:
            continue
        # One command may produce several nodes (multi-source compiles)
        # and survives serialization as per-node copies: dedup by content.
        key = (tuple(step.argv), step.cwd)
        if key in seen_steps:
            continue
        seen_steps.add(key)
        report.command_count += 1
        foreign = [
            arg for arg in step.argv
            if (pinned := is_isa_specific(arg)) is not None and pinned != target_isa
        ]
        if foreign:
            report.flag_lines += 1
            report.issues.append(
                IsaIssue(
                    kind="flag",
                    location=node.id,
                    detail=" ".join(foreign),
                    blocking=False,
                )
            )

    recorded_scan = models.metadata.get("isa_scan")
    if recorded_scan is not None:
        scan_items = [
            (path, entry.get("guarded", 0), entry.get("unguarded", 0))
            for path, entry in sorted(recorded_scan.items())
        ]
    else:
        scan_items = [
            (path, *_scan_source(path, sources[path])) for path in sorted(sources)
        ]
    for path, guarded, unguarded in scan_items:
        report.asm_guarded += guarded
        report.asm_unguarded += unguarded
        if guarded or unguarded:
            report.issues.append(
                IsaIssue(
                    kind="inline-asm",
                    location=path,
                    detail="guarded (portable fallback)" if guarded else "unguarded",
                    blocking=bool(unguarded),
                )
            )
    return report


def xbuild_line_changes(report: CrossIsaReport) -> Tuple[int, int]:
    return report.xbuild_changes
