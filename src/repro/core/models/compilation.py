"""Compilation models: structured representations of build commands.

"Compilation models are specialized sub-models that capture the
generation process of individual nodes" (§4.3).  A
:class:`CompilationStep` records one traced tool invocation — argv, cwd,
environment subset, and the real tool it forwarded to — and exposes the
parsed structural view (:class:`~repro.toolchain.cli.CompilerInvocation`)
for compiler commands.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.toolchain.cli import CompilerInvocation, parse_command_line


@dataclass
class CompilationStep:
    """One node-producing command from the raw build process."""

    argv: List[str]
    cwd: str = "/"
    env: Dict[str, str] = field(default_factory=dict)
    tool: str = "compiler-driver"         # forwarded simulated program
    meta: Dict[str, Any] = field(default_factory=dict)  # toolchain/role/...

    @property
    def is_compiler(self) -> bool:
        return self.tool in ("compiler-driver", "ld")

    @property
    def is_archiver(self) -> bool:
        return self.tool == "ar"

    @property
    def toolchain(self) -> Optional[str]:
        return self.meta.get("toolchain")

    @property
    def role(self) -> Optional[str]:
        return self.meta.get("role")

    @property
    def mpi_wrapper(self) -> bool:
        return bool(self.meta.get("mpi_wrapper"))

    def invocation(self) -> CompilerInvocation:
        """Parsed structural view (compiler commands only)."""
        if not self.is_compiler:
            raise ValueError(f"not a compiler command: {self.argv[:1]}")
        return parse_command_line(self.argv)

    def with_argv(self, argv: List[str], **meta_updates: Any) -> "CompilationStep":
        meta = dict(self.meta)
        meta.update(meta_updates)
        return CompilationStep(
            argv=list(argv), cwd=self.cwd, env=dict(self.env),
            tool=self.tool, meta=meta,
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "argv": list(self.argv),
            "cwd": self.cwd,
            "env": dict(self.env),
            "tool": self.tool,
            "meta": dict(self.meta),
        }

    @staticmethod
    def from_json(obj: Dict[str, Any]) -> "CompilationStep":
        return CompilationStep(
            argv=list(obj["argv"]),
            cwd=obj.get("cwd", "/"),
            env=dict(obj.get("env", {})),
            tool=obj.get("tool", "compiler-driver"),
            meta=dict(obj.get("meta", {})),
        )
