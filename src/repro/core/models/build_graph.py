"""The build graph model: a typed DAG of data transformations (§4.3).

Nodes are data (files); each node tracks its dependencies (incoming
edges) and the command that produced it.  "Its structured nodes resemble
syntax tree nodes in compilers rather than homogeneous nodes in graph
databases."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Set

from repro.core.models.compilation import CompilationStep

# Node kinds mirroring the paper: "our build graph currently models source
# files, .a/.o/.so files during compilation, together with other node types."
KIND_SOURCE = "source"
KIND_OBJECT = "object"
KIND_ARCHIVE = "archive"
KIND_SHARED = "shared"
KIND_EXECUTABLE = "executable"
KIND_FILE = "file"

NODE_KINDS = (
    KIND_SOURCE, KIND_OBJECT, KIND_ARCHIVE, KIND_SHARED, KIND_EXECUTABLE, KIND_FILE,
)


class GraphError(Exception):
    pass


def kind_for_path(path: str, produced: bool) -> str:
    name = path.rsplit("/", 1)[-1]
    if name.endswith(".o"):
        return KIND_OBJECT
    if name.endswith(".a"):
        return KIND_ARCHIVE
    if ".so" in name:
        return KIND_SHARED
    from repro.toolchain.cli import classify_source

    if classify_source(name) is not None:
        return KIND_SOURCE
    return KIND_EXECUTABLE if produced else KIND_FILE


@dataclass
class BuildNode:
    """One file in the build, with provenance."""

    id: str                       # canonical path (unique within a build)
    kind: str
    path: str
    deps: List[str] = field(default_factory=list)
    step: Optional[CompilationStep] = None      # producing command
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def is_produced(self) -> bool:
        return self.step is not None

    def to_json(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "kind": self.kind,
            "path": self.path,
            "deps": list(self.deps),
            "step": self.step.to_json() if self.step else None,
            "metadata": dict(self.metadata),
        }

    @staticmethod
    def from_json(obj: Dict[str, Any]) -> "BuildNode":
        step = obj.get("step")
        return BuildNode(
            id=obj["id"],
            kind=obj["kind"],
            path=obj["path"],
            deps=list(obj.get("deps", [])),
            step=CompilationStep.from_json(step) if step else None,
            metadata=dict(obj.get("metadata", {})),
        )


class BuildGraph:
    """A DAG of :class:`BuildNode`."""

    def __init__(self) -> None:
        self._nodes: Dict[str, BuildNode] = {}

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def __iter__(self) -> Iterator[BuildNode]:
        return iter(self._nodes.values())

    def get(self, node_id: str) -> BuildNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise GraphError(f"no such node: {node_id!r}") from None

    def try_get(self, node_id: str) -> Optional[BuildNode]:
        return self._nodes.get(node_id)

    def add(self, node: BuildNode) -> BuildNode:
        self._nodes[node.id] = node
        return node

    def ensure(self, path: str, kind: Optional[str] = None) -> BuildNode:
        """Get or create a leaf node for *path*."""
        existing = self._nodes.get(path)
        if existing is not None:
            return existing
        return self.add(
            BuildNode(id=path, kind=kind or kind_for_path(path, produced=False),
                      path=path)
        )

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------

    def nodes(self, kind: Optional[str] = None) -> List[BuildNode]:
        out = list(self._nodes.values())
        if kind is not None:
            out = [n for n in out if n.kind == kind]
        return out

    def roots(self) -> List[BuildNode]:
        """Nodes with no dependencies (sources, prebuilt inputs)."""
        return [n for n in self._nodes.values() if not n.deps]

    def sinks(self) -> List[BuildNode]:
        """Nodes nothing depends on (final artifacts)."""
        depended: Set[str] = set()
        for node in self._nodes.values():
            depended.update(node.deps)
        return [n for n in self._nodes.values() if n.id not in depended]

    def dependents(self, node_id: str) -> List[BuildNode]:
        return [n for n in self._nodes.values() if node_id in n.deps]

    def ancestors(self, node_id: str) -> Set[str]:
        """Transitive dependencies of a node."""
        seen: Set[str] = set()
        stack = list(self.get(node_id).deps)
        while stack:
            dep = stack.pop()
            if dep in seen:
                continue
            seen.add(dep)
            node = self._nodes.get(dep)
            if node is not None:
                stack.extend(node.deps)
        return seen

    def source_paths(self) -> List[str]:
        return sorted(n.path for n in self.nodes(KIND_SOURCE))

    # ------------------------------------------------------------------
    # validation & ordering
    # ------------------------------------------------------------------

    def topo_order(self) -> List[BuildNode]:
        """Dependencies-first ordering; raises :class:`GraphError` on cycles.

        Iterative depth-first search with an explicit frame stack — a
        dependency chain as deep as the graph must not hit Python's
        recursion limit (deep single-chain graphs are legal builds).
        """
        state: Dict[str, int] = {}       # 0=unvisited 1=visiting 2=done
        order: List[BuildNode] = []
        for root_id in sorted(self._nodes):
            if state.get(root_id, 0) == 2:
                continue
            # Each frame is (node_id, iterator over remaining deps);
            # the ids on the stack are the current visiting chain.
            stack: List[list] = [[root_id, None]]
            while stack:
                frame = stack[-1]
                node_id, deps_iter = frame
                if deps_iter is None:
                    if state.get(node_id, 0) == 2:
                        stack.pop()
                        continue
                    state[node_id] = 1
                    node = self._nodes.get(node_id)
                    deps_iter = iter(node.deps) if node is not None else iter(())
                    frame[1] = deps_iter
                descended = False
                for dep in deps_iter:
                    mark = state.get(dep, 0)
                    if mark == 2:
                        continue
                    if mark == 1:
                        chain = [frame_id for frame_id, _ in stack]
                        raise GraphError(f"cycle involving {dep!r}: {chain}")
                    stack.append([dep, None])
                    descended = True
                    break
                if descended:
                    continue
                node = self._nodes.get(node_id)
                if node is not None:
                    order.append(node)
                state[node_id] = 2
                stack.pop()
        return order

    def validate(self) -> None:
        """Check acyclicity and that all dep references resolve."""
        self.topo_order()
        for node in self._nodes.values():
            for dep in node.deps:
                if dep not in self._nodes:
                    raise GraphError(f"{node.id!r} depends on unknown {dep!r}")

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        return {"nodes": [self._nodes[k].to_json() for k in sorted(self._nodes)]}

    @staticmethod
    def from_json(obj: Dict[str, Any]) -> "BuildGraph":
        graph = BuildGraph()
        for node_obj in obj.get("nodes", []):
            graph.add(BuildNode.from_json(node_obj))
        return graph
