"""The combined process models bundle carried by the cache layer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.core.models.build_graph import BuildGraph
from repro.core.models.image_model import ImageModel


@dataclass
class ProcessModels:
    """Image model + build graph (+ metadata) — the coMtainer IR."""

    image: ImageModel = field(default_factory=ImageModel)
    graph: BuildGraph = field(default_factory=BuildGraph)
    metadata: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {
            "image": self.image.to_json(),
            "graph": self.graph.to_json(),
            "metadata": dict(self.metadata),
        }

    @staticmethod
    def from_json(obj: Dict[str, Any]) -> "ProcessModels":
        return ProcessModels(
            image=ImageModel.from_json(obj.get("image", {})),
            graph=BuildGraph.from_json(obj.get("graph", {})),
            metadata=dict(obj.get("metadata", {})),
        )

    def clone(self) -> "ProcessModels":
        """Independent copy (adapters operate on copies, §4.2)."""
        return ProcessModels.from_json(self.to_json())

    def summary(self) -> Dict[str, Any]:
        return {
            "files": len(self.image.files),
            "origins": self.image.origin_histogram(),
            "nodes": len(self.graph),
            "sources": len(self.graph.source_paths()),
            "sinks": [n.path for n in self.graph.sinks()],
        }
