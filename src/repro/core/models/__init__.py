"""The process models (paper §4.3, Figure 8)."""

from repro.core.models.build_graph import BuildGraph, BuildNode, GraphError
from repro.core.models.compilation import CompilationStep
from repro.core.models.image_model import FileOrigin, FileRecord, ImageModel
from repro.core.models.process import ProcessModels

__all__ = [
    "BuildGraph",
    "BuildNode",
    "CompilationStep",
    "FileOrigin",
    "FileRecord",
    "GraphError",
    "ImageModel",
    "ProcessModels",
]
