"""The coMtainer image set: Env, Base, Sysenv, Rebase (Figure 5).

* **Env** (user side, build stage): the distro base + build toolchain,
  with the command-line hijacker installed over the tool binaries and the
  ``coMtainer-build`` entry point.  Compatible with standard base images.
* **Base** (user side, dist stage): the distro base + a marker; dist
  images built on it stay standard-compatible.
* **Sysenv** (system side, rebuild): base + toolchains (distro GNU and —
  per flavor — the vendor compilers or LLVM) + the optimized vendor
  packages + ``coMtainer-rebuild``.
* **Rebase** (system side, redirect): base + ``coMtainer-redirect`` with
  both repositories enabled.
"""

from __future__ import annotations

from typing import Optional

from repro import simbin
from repro.containers.engine import ContainerEngine
from repro.containers.hijack import install_hijackers
from repro.images import UBUNTU_REF, install_ubuntu_base
from repro.oci.diff import diff_filesystems
from repro.oci.image import ImageConfig
from repro.pkg import catalog
from repro.pkg.apt import AptFacade
from repro.pkg.repository import RepositoryPool
from repro.sysmodel import SystemModel

# Import registers the coMtainer-* programs in the userland registry.
from repro.core import entrypoints as _entrypoints  # noqa: F401


def env_ref(arch: str) -> str:
    return f"comt:{arch}.env"


def base_ref(arch: str) -> str:
    return f"comt:{arch}.base"


def sysenv_ref(system_key: str, flavor: str = "vendor") -> str:
    suffix = "" if flavor == "vendor" else f".{flavor}"
    return f"comt:{system_key}.sysenv{suffix}"


def rebase_ref(system_key: str) -> str:
    return f"comt:{system_key}.rebase"


def _derive_image(
    engine: ContainerEngine,
    base: str,
    ref: str,
    mutate,
    comment: str,
) -> str:
    """Build a derived image by mutating the base filesystem directly."""
    stored = engine.image(base)
    fs = engine.image_filesystem(base)
    before = fs.clone()
    config = stored.config.clone()
    mutate(fs, config)
    layer = diff_filesystems(before, fs, comment=comment)
    layers = list(stored.layers)
    if len(layer):
        layers.append(layer)
        config.diff_ids.append(layer.digest)
        config.add_history(comment)
    engine.add_image(ref, config, layers)
    return ref


def install_user_side_images(engine: ContainerEngine) -> None:
    """Install ubuntu base + coMtainer Env/Base on a user-side engine."""
    if not engine.has_image(UBUNTU_REF):
        install_ubuntu_base(engine)
    arch = engine.arch
    pool = RepositoryPool([engine.repos["ubuntu-generic"]])

    def make_base(fs, config: ImageConfig) -> None:
        fs.write_file(
            "/.coMtainer/release", "coMtainer base 1.0\n", create_parents=True
        )

    def make_env(fs, config: ImageConfig) -> None:
        apt = AptFacade(fs, pool)
        apt.install(catalog.default_devel_install())
        fs.write_file(
            "/usr/bin/coMtainer-build",
            simbin.program_marker("coMtainer-build"),
            mode=0o755,
            create_parents=True,
        )
        fs.write_file(
            "/.coMtainer/release", "coMtainer env 1.0\n", create_parents=True
        )
        install_hijackers(fs)

    _derive_image(engine, UBUNTU_REF, base_ref(arch), make_base, "coMtainer Base image")
    _derive_image(engine, UBUNTU_REF, env_ref(arch), make_env, "coMtainer Env image")


def install_system_side_images(
    engine: ContainerEngine, system: SystemModel, flavor: str = "vendor"
) -> None:
    """Install Sysenv/Rebase (+ repos) on a system-side engine."""
    if not engine.has_image(UBUNTU_REF):
        install_ubuntu_base(engine)
    arch = engine.arch
    assert arch == system.arch, (arch, system.arch)

    vendor_repo = catalog.build_vendor_repository(arch)
    engine.register_repository(vendor_repo)
    llvm_repo = catalog.build_llvm_repository(arch)
    engine.register_repository(llvm_repo)
    sources = (
        f"repo ubuntu-generic\nrepo {vendor_repo.name}\nrepo {llvm_repo.name}\n"
    )
    pool = RepositoryPool([engine.repos["ubuntu-generic"], vendor_repo, llvm_repo])

    def make_sysenv(fs, config: ImageConfig) -> None:
        fs.write_file("/etc/apt/sources.list", sources, create_parents=True)
        apt = AptFacade(fs, pool)
        apt.install(catalog.default_devel_install())
        if flavor == "vendor":
            apt.install([pkg.name for pkg in _vendor_package_names(vendor_repo)])
        elif flavor == "llvm":
            apt.install(["clang-17", "llvm-17-linker-tools"])
            # Optimized libraries are still the system's vendor ones.
            apt.install([
                pkg.name for pkg in _vendor_package_names(vendor_repo)
                if "toolchain" not in pkg.tags
            ])
        fs.write_file(
            "/usr/bin/coMtainer-rebuild",
            simbin.program_marker("coMtainer-rebuild"),
            mode=0o755,
            create_parents=True,
        )
        env_path = config.env_dict().get("PATH", "")
        extra = "/opt/intel/bin:/opt/phytium/bin"
        config.env = [e for e in config.env if not e.startswith("PATH=")]
        config.env.append(f"PATH={env_path}:{extra}" if env_path else f"PATH={extra}")

    def make_rebase(fs, config: ImageConfig) -> None:
        fs.write_file("/etc/apt/sources.list", sources, create_parents=True)
        fs.write_file(
            "/usr/bin/coMtainer-redirect",
            simbin.program_marker("coMtainer-redirect"),
            mode=0o755,
            create_parents=True,
        )

    _derive_image(
        engine, UBUNTU_REF, sysenv_ref(system.key, flavor), make_sysenv,
        f"coMtainer Sysenv image ({flavor})",
    )
    _derive_image(
        engine, UBUNTU_REF, rebase_ref(system.key), make_rebase,
        "coMtainer Rebase image",
    )


def _vendor_package_names(repo) -> list:
    return [repo.latest(name) for name in repo.names()]
