"""Registration of the coMtainer toolset entry points.

The toolset "is implemented as a set of Python scripts embedded within
the Env, Sysenv, and Rebase images" (§4.2); here the three commands are
simulated programs dispatched when a container executes
``coMtainer-build`` / ``coMtainer-rebuild`` / ``coMtainer-redirect``.
"""

from __future__ import annotations

from repro.containers.programs import register_program


def _build(ctx):
    from repro.core.frontend.build import comtainer_build_entry

    return comtainer_build_entry(ctx)


def _rebuild(ctx):
    from repro.core.backend.rebuild import comtainer_rebuild_entry

    return comtainer_rebuild_entry(ctx)


def _redirect(ctx):
    from repro.core.backend.redirect import comtainer_redirect_entry

    return comtainer_redirect_entry(ctx)


register_program("coMtainer-build", _build)
register_program("coMtainer-rebuild", _rebuild)
register_program("coMtainer-redirect", _redirect)
