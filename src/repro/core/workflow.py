"""End-to-end orchestration of the coMtainer workflow (Figure 5).

User side: two-stage build on the Env/Base images, push the dist image to
an OCI layout, run ``coMtainer-build`` in the build container to create
the extended image.  Distribution: the extended image travels through a
registry.  System side: ``coMtainer-rebuild`` in a Sysenv container (with
an optional automated PGO feedback loop), ``coMtainer-redirect`` in a
Rebase container, commit -> the optimized image.

:class:`ComtainerSession` wires a user engine, a registry and a system
engine together and memoizes per-app artifacts so the evaluation harness
can measure all four schemes of §5.1.3 for every workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.apps import app_containerfile, build_context, get_app
from repro.apps.specs import AppSpec
from repro.containers.container import ProgramError
from repro.containers.engine import ContainerEngine
from repro.core.backend.replacement import (
    apply_replacements,
    install_runtime,
    replacements_for_packages,
)
from repro.core.cache.artifacts import (
    attach_artifact_cache,
    publish_artifact_cache,
)
from repro.core.cache.storage import extended_tag, find_dist_tag
from repro.core.frontend.build import IO_MOUNT
from repro.core.images import (
    base_ref,
    env_ref,
    install_system_side_images,
    install_user_side_images,
    rebase_ref,
    sysenv_ref,
)
from repro.integrity.repair import RepairEngine
from repro.oci.layout import OCILayout
from repro.oci.registry import ImageRegistry
from repro.perf.runtime import ExecutionReport, PerfRecorder, attach_perf
from repro.pkg import catalog
from repro.pkg.apt import AptFacade
from repro.resilience.degrade import (
    ResilienceContext,
    ResiliencePolicy,
    ResilienceReport,
    adapt_with_resilience,
    install_resilience,
    resilient_transfer,
)
from repro.sysmodel import SystemModel, X86_CLUSTER
from repro.telemetry import NULL_TELEMETRY, install_telemetry
from repro.toolchain.cli import parse_command_line


class WorkflowError(Exception):
    pass


# ---------------------------------------------------------------------------
# user side
# ---------------------------------------------------------------------------

def build_extended_image(
    engine: ContainerEngine, spec: AppSpec, obfuscate: bool = False
) -> Tuple[OCILayout, str]:
    """Build app images on the coMtainer Env/Base and run coMtainer-build.

    Returns the OCI layout holding ``<app>.dist`` and ``<app>.dist+coM``.
    With *obfuscate*, cached sources are scrambled for IP protection
    (§4.6) — adaptation still works.
    """
    with engine.telemetry.span("build", app=spec.name, arch=engine.arch):
        install_user_side_images(engine)
        arch = engine.arch
        containerfile = app_containerfile(
            spec, build_base=env_ref(arch), dist_base=base_ref(arch)
        )
        context = build_context(spec, arch)
        refs = engine.build_stages(containerfile, context=context)
        build_ref, dist_ref = refs["build"], refs["dist"]

        dist_tag = f"{spec.name}.dist"
        layout = OCILayout()
        engine.push_to_layout(dist_ref, layout, tag=dist_tag)

        build_ctr = engine.from_image(
            build_ref, name=f"{spec.name}.build", mounts={IO_MOUNT: layout}
        )
        try:
            argv = ["coMtainer-build"] + (["--obfuscate"] if obfuscate else [])
            engine.run(build_ctr, argv).check()
        finally:
            engine.remove_container(build_ctr.name)
        return layout, dist_tag


def build_original_image(
    engine: ContainerEngine, spec: AppSpec, tag: Optional[str] = None
) -> str:
    """The conventional generic image (the `original` scheme)."""
    from repro.images import UBUNTU_REF, install_ubuntu_base

    if not engine.has_image(UBUNTU_REF):
        install_ubuntu_base(engine)
    containerfile = app_containerfile(spec)   # plain ubuntu bases
    context = build_context(spec, engine.arch)
    return engine.build(
        containerfile, context=context, target="dist",
        tag=tag or f"{spec.name}:original",
    )


# ---------------------------------------------------------------------------
# system side
# ---------------------------------------------------------------------------

def _run_rebuild(
    engine: ContainerEngine,
    layout: OCILayout,
    system: SystemModel,
    flavor: str,
    args: List[str],
    profile_bytes: Optional[bytes] = None,
    extra_args: Optional[List[str]] = None,
    jobs: int = 1,
    speculate: bool = True,
    max_worker_failures: int = 3,
    deadline: Optional[float] = None,
    incremental: bool = True,
) -> None:
    if extra_args:
        args = args + list(extra_args)
    if jobs != 1:
        args = args + [f"--jobs={jobs}"]
    if not speculate:
        args = args + ["--no-speculate"]
    if max_worker_failures != 3:
        args = args + [f"--max-worker-failures={max_worker_failures}"]
    if deadline is not None:
        args = args + [f"--deadline={deadline}"]
    if not incremental:
        args = args + ["--no-incremental"]
    with engine.telemetry.span("rebuild", system=system.key, flavor=flavor):
        ctr = engine.from_image(
            sysenv_ref(system.key, flavor), name="comt-rebuild",
            mounts={IO_MOUNT: layout},
        )
        try:
            if profile_bytes is not None:
                ctr.fs.write_file(
                    "/profiles/app.gcda", profile_bytes, create_parents=True
                )
                args = args + ["--pgo=use", "--pgo-profile=/profiles/app.gcda"]
            engine.run(ctr, ["coMtainer-rebuild"] + args).check()
        finally:
            engine.remove_container(ctr.name)


def _run_redirect(
    engine: ContainerEngine,
    layout: OCILayout,
    system: SystemModel,
    ref: str,
) -> str:
    with engine.telemetry.span("redirect", system=system.key, ref=ref):
        ctr = engine.from_image(
            rebase_ref(system.key), name="comt-redirect", mounts={IO_MOUNT: layout}
        )
        try:
            engine.run(ctr, ["coMtainer-redirect"]).check()
            engine.commit(ctr, ref=ref, comment="coMtainer redirected image")
        finally:
            engine.remove_container(ctr.name)
        return ref


_VENDOR_MPIRUN_PATHS = ("/opt/intel/bin/mpirun", "/opt/phytium/bin/mpirun")

#: Launcher probe results by image layer identity.  The probe walks the
#: image filesystem; the PGO loop alone repeats it twice per adaptation,
#: and layer digests fully determine the answer.
_mpirun_memo: Dict[tuple, str] = {}


def _vendor_mpirun(engine: ContainerEngine, image_ref: str) -> str:
    """The vendor ``mpirun`` path inside *image_ref* (or plain ``mpirun``)."""
    key = engine.image(image_ref).layer_key()
    hit = _mpirun_memo.get(key)
    if hit is not None:
        return hit
    fs = engine.image_filesystem(image_ref)
    launcher = "mpirun"
    for candidate in _VENDOR_MPIRUN_PATHS:
        if fs.exists(candidate):
            launcher = candidate
            break
    _mpirun_memo[key] = launcher
    return launcher


def run_workload(
    engine: ContainerEngine,
    image_ref: str,
    workload_name: str,
    recorder: PerfRecorder,
    nodes: int = 16,
    vendor_mpirun: bool = False,
) -> ExecutionReport:
    """Launch a workload in an image and return its execution report."""
    app_name, _, input_name = workload_name.partition(".")
    spec = get_app(app_name)
    binary = f"/app/{spec.binary_name}"
    argv: List[str] = []
    if input_name:
        argv = ["-in", f"/app/share/in.{input_name}"]
    launcher = _vendor_mpirun(engine, image_ref) if vendor_mpirun else "mpirun"
    tele = engine.telemetry
    with tele.span("workload", workload=workload_name, image=image_ref,
                   nodes=nodes) as span:
        ctr = engine.from_image(image_ref, name=f"run-{workload_name}")
        try:
            before = len(recorder.reports)
            result = engine.run(
                ctr,
                [launcher, "-np", str(nodes), binary] + argv,
                env={"SIM_WORKLOAD": workload_name},
            )
            if not result.ok:
                raise WorkflowError(
                    f"workload {workload_name} failed in {image_ref}: {result.stderr}"
                )
            if len(recorder.reports) == before:
                raise WorkflowError(
                    f"workload {workload_name} produced no execution report"
                )
            report = recorder.reports[-1]
            span.set("seconds", report.seconds)
            tele.charge(report.seconds)
            return report
        finally:
            engine.remove_container(ctr.name)


def system_side_adapt(
    engine: ContainerEngine,
    layout: OCILayout,
    system: SystemModel,
    recorder: Optional[PerfRecorder] = None,
    lto: bool = False,
    pgo_workload: Optional[str] = None,
    flavor: str = "vendor",
    ref: Optional[str] = None,
    nodes: int = 16,
    extra_rebuild_args: Optional[List[str]] = None,
    jobs: int = 1,
    speculate: bool = True,
    max_worker_failures: int = 3,
    deadline: Optional[float] = None,
    incremental: bool = True,
) -> str:
    """Rebuild + redirect an extended image for *system*.

    With *pgo_workload*, runs the paper's automated PGO feedback loop:
    instrumented rebuild -> redirect -> profiling run -> final rebuild
    with the gathered profile.  *extra_rebuild_args* are appended to
    every ``coMtainer-rebuild`` invocation (the resilience layer passes
    ``--journal`` / ``--fallback`` through here).  *jobs* is the rebuild
    worker count (``coMtainer-rebuild --jobs``); it changes simulated
    rebuild time, never the produced image.  *speculate* /
    *max_worker_failures* tune the rebuild worker fleet (straggler
    speculation and the flaky-worker blacklist threshold) — like *jobs*,
    simulated time only.  *deadline* is a simulated-seconds budget per
    rebuild phase; a blown budget raises the typed
    :class:`repro.resilience.DeadlineExceededError` with the journal
    left resumable.
    """
    install_system_side_images(engine, system, flavor)
    dist_tag = find_dist_tag(layout)
    ref = ref or f"{dist_tag}:adapted"
    base_args = ["--lto"] if lto else []
    base_args += [f"--adapter={flavor}"]

    if pgo_workload is not None:
        if recorder is None:
            raise WorkflowError("PGO loop needs a perf recorder on the engine")
        _run_rebuild(engine, layout, system, flavor,
                     base_args + ["--pgo=instrument"],
                     extra_args=extra_rebuild_args, jobs=jobs,
                     speculate=speculate,
                     max_worker_failures=max_worker_failures,
                     deadline=deadline, incremental=incremental)
        instr_ref = _run_redirect(engine, layout, system, ref=f"{ref}.instrumented")
        # Profiling run: execute the instrumented binary on the system.
        app_name, _, input_name = pgo_workload.partition(".")
        spec = get_app(app_name)
        launcher = _vendor_mpirun(engine, instr_ref)
        instr_ctr = engine.from_image(instr_ref, name="pgo-profile-run")
        try:
            argv = ["-in", f"/app/share/in.{input_name}"] if input_name else []
            result = engine.run(
                instr_ctr,
                [launcher, "-np", str(nodes), f"/app/{spec.binary_name}"] + argv,
                env={"SIM_WORKLOAD": pgo_workload},
            )
            if not result.ok:
                raise WorkflowError(f"PGO profiling run failed: {result.stderr}")
            if not instr_ctr.fs.exists("/default.gcda"):
                raise WorkflowError("instrumented run produced no profile data")
            profile_bytes = instr_ctr.fs.read_file("/default.gcda")
        finally:
            engine.remove_container(instr_ctr.name)
        _run_rebuild(engine, layout, system, flavor, base_args,
                     profile_bytes=profile_bytes, extra_args=extra_rebuild_args,
                     jobs=jobs, speculate=speculate,
                     max_worker_failures=max_worker_failures,
                     deadline=deadline, incremental=incremental)
    else:
        _run_rebuild(engine, layout, system, flavor, base_args,
                     extra_args=extra_rebuild_args, jobs=jobs,
                     speculate=speculate,
                     max_worker_failures=max_worker_failures,
                     deadline=deadline, incremental=incremental)

    return _run_redirect(engine, layout, system, ref=ref)


def library_only_adapt(
    engine: ContainerEngine,
    original_ref: str,
    system: SystemModel,
    flavor: str = "vendor",
    ref: Optional[str] = None,
) -> str:
    """The `libo` step of Figure 3: replace libraries, keep the binaries.

    Demonstrates that replacement affects *existing* binaries: their
    recorded library paths re-resolve through the compat symlinks to the
    optimized code, with no recompilation involved.
    """
    install_system_side_images(engine, system, flavor)
    ctr = engine.from_image(original_ref, name="libo-adapt")
    try:
        # The *system's* apt configuration applies here, not the image's:
        # the HPC site exposes its vendor repository to the adaptation.
        ctr.fs.write_file(
            "/etc/apt/sources.list",
            f"repo ubuntu-generic\nrepo {system.vendor_repo}\n",
            create_parents=True,
        )
        pool = engine.repository_pool_for(ctr)
        apt = AptFacade(ctr.fs, pool)
        replaceable = list(apt.installed())
        plan = replacements_for_packages(replaceable, pool)
        apply_replacements(ctr.fs, apt, plan)
        target = ref or f"{original_ref}.libo"
        engine.commit(ctr, ref=target, comment="library-only adaptation")
        return target
    finally:
        engine.remove_container(ctr.name)


# ---------------------------------------------------------------------------
# native builds (the `native` scheme)
# ---------------------------------------------------------------------------

_ROLE_OF_DRIVER = {
    "gcc": "cc", "mpicc": "cc", "g++": "cxx", "mpicxx": "cxx",
    "gfortran": "fc", "mpif90": "fc",
}

NATIVE_TUNED_FLAGS = ["-march=native", "-funroll-loops", "-ffast-math"]


def _native_script(spec: AppSpec, system: SystemModel, adapter) -> str:
    """Hand-tuned native build script (vendor compiler + tuned flags)."""
    from repro.apps.generate import build_script

    lines = []
    for line in build_script(spec, system.isa).splitlines():
        head = line.split(" ", 1)[0] if line else ""
        role = _ROLE_OF_DRIVER.get(head)
        if role is None:
            lines.append(line)
            continue
        inv = parse_command_line(line.split())
        inv.program = adapter.native_compiler(role)
        for flag in NATIVE_TUNED_FLAGS:
            if flag.startswith("-march="):
                inv.set_mflag("arch", flag.split("=", 1)[1])
            else:
                inv.set_fflag(flag[2:], True)
        # Strip user-side ISA flags; native tuning supersedes them.
        for arg in list(inv.mflags):
            if arg not in ("arch",):
                inv.mflags.pop(arg, None)
        if head.startswith("mpi") and inv.mode == "link" and "mpi" not in inv.libs:
            inv.libs.append("mpi")
        lines.append(" ".join(inv.render()))
    return "\n".join(lines) + "\n"


def build_native(
    engine: ContainerEngine,
    spec: AppSpec,
    system: SystemModel,
    flavor: str = "vendor",
    tag: Optional[str] = None,
) -> str:
    """Build the app natively on the system (hand-tuned, vendor stack)."""
    from repro.core.adapters.builtin import get_adapter

    install_system_side_images(engine, system, flavor)
    adapter = get_adapter(flavor, system)
    ctr = engine.from_image(sysenv_ref(system.key, flavor), name=f"native-{spec.name}")
    try:
        context = build_context(spec, system.arch)
        ctr.fs.copy_tree("/src", "/src", source_fs=context)
        ctr.fs.copy_tree("/data", "/app/share", source_fs=context)

        runtime = catalog.default_runtime_install() + list(spec.runtime_packages)
        pool = engine.repository_pool_for(ctr)
        apt = AptFacade(ctr.fs, pool)
        plan = replacements_for_packages(runtime, pool)
        install_runtime(apt, runtime, plan)
        apply_replacements(ctr.fs, apt, plan)

        ctr.fs.write_file(
            "/src/build-native.sh", _native_script(spec, system, adapter),
            create_parents=True,
        )
        result = engine.run(ctr, ["sh", "/src/build-native.sh"], cwd="/src")
        if not result.ok:
            raise WorkflowError(f"native build of {spec.name} failed: {result.stderr}")
        ref = tag or f"{spec.name}:native"
        engine.commit(ctr, ref=ref, comment=f"native build of {spec.name}")
        return ref
    finally:
        engine.remove_container(ctr.name)


# ---------------------------------------------------------------------------
# the evaluation session
# ---------------------------------------------------------------------------

@dataclass
class ComtainerSession:
    """User engine + registry + system engine, with memoized artifacts."""

    system: SystemModel = X86_CLUSTER
    flavor: str = "vendor"
    nodes: int = 16
    #: Simulated rebuild worker count, threaded into every
    #: ``coMtainer-rebuild --jobs``.  Changes makespan, never bytes.
    jobs: int = 1
    #: Speculatively re-execute detected straggler groups on the rebuild
    #: worker fleet (first completion wins).  Simulated time only.
    speculate: bool = True
    #: Flaky-attempt strikes before a rebuild worker is blacklisted.
    max_worker_failures: int = 3
    #: Plan-level incremental short-circuit (``coMtainer-rebuild``'s
    #: default): repeat adaptations prune unchanged command groups
    #: before scheduling.  Disable to force full re-execution.
    incremental: bool = True
    #: Share the rebuild artifact cache through the registry: publish it
    #: after each adaptation and attach any published cache before a
    #: rebuild — same-adapter rebuilds on other sessions/nodes hit warm
    #: compiles.  Off by default (sharing is a policy decision).
    share_cache: bool = False
    user_engine: ContainerEngine = None
    system_engine: ContainerEngine = None
    registry: ImageRegistry = None
    recorder: PerfRecorder = None
    #: Optional resilience policy; the default (None / strict) keeps the
    #: original fail-loud behaviour with zero instrumentation installed.
    resilience: Optional[ResiliencePolicy] = None
    resilience_reports: List[ResilienceReport] = field(default_factory=list)
    #: Telemetry recorder (:class:`repro.telemetry.Telemetry`); the
    #: default no-op sink records nothing and adds no overhead.
    telemetry: object = None
    _original: Dict[str, str] = field(default_factory=dict)
    _layouts: Dict[str, Tuple[OCILayout, str]] = field(default_factory=dict)
    _user_layouts: Dict[str, OCILayout] = field(default_factory=dict)
    _repairers: Dict[str, RepairEngine] = field(default_factory=dict)
    _adapted: Dict[str, str] = field(default_factory=dict)
    _optimized: Dict[str, str] = field(default_factory=dict)
    _native: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.user_engine is None:
            self.user_engine = ContainerEngine(arch=self.system.arch)
        if self.system_engine is None:
            self.system_engine = ContainerEngine(arch=self.system.arch)
        if self.registry is None:
            self.registry = ImageRegistry()
        install_user_side_images(self.user_engine)
        install_system_side_images(self.system_engine, self.system, self.flavor)
        if self.recorder is None:
            self.recorder = attach_perf(self.system_engine, self.system)
        self._resilience_ctx: Optional[ResilienceContext] = None
        if self.resilience is not None and not self.resilience.strict:
            self._resilience_ctx = install_resilience(
                self.resilience,
                registry=self.registry,
                engines=[self.system_engine],
            )
        if self.telemetry is None:
            self.telemetry = NULL_TELEMETRY
        install_telemetry(
            self.telemetry,
            registry=self.registry,
            engines=[self.user_engine, self.system_engine],
        )
        if self._resilience_ctx is not None:
            self._resilience_ctx.telemetry = self.telemetry

    # -- artifact builders (memoized per app/workload) ----------------------

    def original_image(self, app: str) -> str:
        if app not in self._original:
            ref = build_original_image(self.user_engine, get_app(app))
            self.user_engine.push_to_registry(
                ref, self.registry, f"repro/{app}:original"
            )
            self._original[app] = self.system_engine.load_from_registry(
                self.registry, f"repro/{app}:original"
            )
        return self._original[app]

    def extended_layout(self, app: str) -> Tuple[OCILayout, str]:
        """The extended image layout, transferred to the system side."""
        if app not in self._layouts:
            layout, dist_tag = build_extended_image(self.user_engine, get_app(app))
            # The user-side layout is never touched by the (system-side)
            # fault injector, so it doubles as a pristine repair replica.
            self._user_layouts[app] = layout
            # Distribute via the registry (both manifests of the layout),
            # retrying transient transfer faults under a permissive policy.
            with self.telemetry.span("transfer", app=app):
                remote = resilient_transfer(
                    self.registry, layout, f"repro/{app}",
                    (dist_tag, extended_tag(dist_tag)), ctx=self._resilience_ctx,
                )
            if self.share_cache:
                # Warm this layout from any cache a previous session (or
                # another cluster node) published for the same app.
                attach_artifact_cache(
                    remote, self.registry, f"repro/{app}", dist_tag
                )
            self._layouts[app] = (remote, dist_tag)
        return self._layouts[app]

    def _publish_cache(self, app: str, layout: OCILayout, dist_tag: str) -> None:
        if self.share_cache:
            publish_artifact_cache(
                self.registry, f"repro/{app}", layout, dist_tag
            )

    def repairer(self, app: str) -> RepairEngine:
        """Repair sources for *app*, best first: registry replica, the
        pristine user-side layout, then full regeneration via the
        process-model build path."""
        if app not in self._repairers:
            engine = RepairEngine(telemetry=self.telemetry)
            engine.add_registry(self.registry, label="registry")
            user_layout = self._user_layouts.get(app)
            if user_layout is not None:
                engine.add_layout(user_layout, label="user-layout")
            engine.add_regenerator(
                lambda app=app: build_extended_image(
                    self.user_engine, get_app(app)
                )[0],
                label="regenerate",
            )
            self._repairers[app] = engine
        return self._repairers[app]

    def adapt(self, app: str, workload: Optional[str] = None) -> str:
        """One traced end-to-end adaptation of *app*.

        Opens the root ``adapt`` span covering build -> transfer ->
        rebuild (every compile node) -> redirect -> commit; with
        *workload*, runs the full optimized pipeline (LTO + PGO loop)
        instead of the plain adaptation.  Returns the adapted image ref.
        """
        with self.telemetry.span("adapt", app=app,
                                 system=self.system.key) as span:
            if workload is not None:
                ref = self.optimized_image(workload)
            else:
                ref = self.adapted_image(app)
            span.set("ref", ref)
            return ref

    def adapted_image(self, app: str) -> str:
        if app not in self._adapted:
            if self._resilience_ctx is not None:
                # Permissive session: route through the degradation
                # ladder + repair engine so a corrupt cache blob is
                # repaired (digest-identical image) or the session
                # degrades with the IntegrityError on record — it never
                # adapts silently wrong bytes.
                report = self.resilient_adapt(app, ref=f"{app}:adapted")
                self._adapted[app] = report.ref
            else:
                layout, dist_tag = self.extended_layout(app)
                self._adapted[app] = system_side_adapt(
                    self.system_engine, layout, self.system,
                    recorder=self.recorder, flavor=self.flavor,
                    ref=f"{app}:adapted", nodes=self.nodes, jobs=self.jobs,
                    speculate=self.speculate,
                    max_worker_failures=self.max_worker_failures,
                    incremental=self.incremental,
                )
                self._publish_cache(app, layout, dist_tag)
        return self._adapted[app]

    def optimized_image(self, workload: str) -> str:
        if workload not in self._optimized:
            app = workload.partition(".")[0]
            layout, dist_tag = self.extended_layout(app)
            self._optimized[workload] = system_side_adapt(
                self.system_engine, layout, self.system,
                recorder=self.recorder, lto=True, pgo_workload=workload,
                flavor=self.flavor, ref=f"{workload}:optimized", nodes=self.nodes,
                jobs=self.jobs, speculate=self.speculate,
                max_worker_failures=self.max_worker_failures,
                incremental=self.incremental,
            )
            self._publish_cache(app, layout, dist_tag)
        return self._optimized[workload]

    def resilient_adapt(
        self,
        app: str,
        lto: bool = False,
        pgo_workload: Optional[str] = None,
        ref: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> ResilienceReport:
        """Adapt an app down the degradation ladder; returns the report.

        With a strict (or no) session policy this is a plain
        :func:`system_side_adapt` reported at the ``full`` rung.
        """
        layout, dist_tag = self.extended_layout(app)
        report = adapt_with_resilience(
            self.system_engine, layout, self.system,
            ctx=self._resilience_ctx, recorder=self.recorder,
            lto=lto, pgo_workload=pgo_workload, flavor=self.flavor,
            ref=ref or f"{app}:resilient", nodes=self.nodes,
            repair=self.repairer(app), jobs=self.jobs,
            speculate=self.speculate,
            max_worker_failures=self.max_worker_failures,
            deadline=deadline, incremental=self.incremental,
        )
        self._publish_cache(app, layout, dist_tag)
        self.resilience_reports.append(report)
        return report

    def native_image(self, app: str) -> str:
        if app not in self._native:
            self._native[app] = build_native(
                self.system_engine, get_app(app), self.system, flavor=self.flavor
            )
        return self._native[app]

    # -- measurement ---------------------------------------------------------

    def run_scheme(self, workload: str, scheme: str, nodes: Optional[int] = None) -> float:
        app = workload.partition(".")[0]
        nodes = nodes if nodes is not None else self.nodes
        if scheme == "original":
            ref, vendor = self.original_image(app), False
        elif scheme == "native":
            ref, vendor = self.native_image(app), True
        elif scheme == "adapted":
            ref, vendor = self.adapted_image(app), True
        elif scheme == "optimized":
            ref, vendor = self.optimized_image(workload), True
        else:
            raise WorkflowError(f"unknown scheme {scheme!r}")
        report = run_workload(
            self.system_engine, ref, workload, self.recorder,
            nodes=nodes, vendor_mpirun=vendor,
        )
        return report.seconds


def measure_schemes(
    session: ComtainerSession,
    workload: str,
    schemes: Tuple[str, ...] = ("original", "native", "adapted", "optimized"),
    nodes: Optional[int] = None,
) -> Dict[str, float]:
    """Execution time of *workload* under each scheme (Figure 9 rows)."""
    return {scheme: session.run_scheme(workload, scheme, nodes=nodes)
            for scheme in schemes}
