"""Fault-tolerant rebuild worker fleet: crashes, stragglers, leases.

PR 4's wavefront scheduler charged each wavefront's makespan to
``--jobs`` anonymous worker *slots* that could never fail.  On the
shared HPC nodes coMtainer targets, rebuild workers die mid-compile,
hang for minutes, and flake — and the system-side service must absorb
all of it "without any user involvement".  This module gives the slots
an identity and a failure model:

* **Worker faults** come from the injector's worker fault family
  (``worker.crash`` / ``worker.straggle`` / ``worker.flaky``), consulted
  once per *(worker, group, attempt)* with keys like ``w3/<digest>#1``
  so chaos scripts can target one worker, one command group, or one
  specific retry.
* **Heartbeat leases**: a worker owns a group through a lease on the
  simulated clock (:class:`HeartbeatMonitor`).  A crashed worker stops
  heartbeating; after ``heartbeat_interval * misses_allowed`` seconds
  the lease expires and the group is *deterministically reassigned* to
  the surviving worker that frees up first (ties break on worker
  index).  The detection lag is charged to the wave makespan — crash
  recovery is not free.
* **Speculative re-execution**: a group still running past
  ``straggle_threshold`` times its cost estimate gets a duplicate
  launched on the least-loaded other worker; first completion wins and
  the loser is cancelled.  Execution is pure and idempotent, so running
  a group twice is always safe.
* **Blacklisting**: a worker whose attempts keep failing
  (``max_worker_failures`` strikes) is excluded from further
  assignment.  When every worker is dead or blacklisted the wave cannot
  finish and :class:`FleetExhaustedError` surfaces — the degradation
  ladder's ``fleet-exhausted`` rung retries the rebuild serially on a
  fresh single-worker fleet.

The fleet is a **pure timeline simulation**.  :meth:`WorkerFleet.run_wave`
decides *which* groups complete and *what simulated time* the wave costs;
the caller (``rebuild_in_container``) then performs the real execution of
each completed group exactly once, in deterministic wavefront order.
That split is what keeps the hard invariant of the parallel-rebuild work
intact under chaos: rebuilt-layer bytes depend only on the resolution
order, never on which simulated worker ran what, so digests stay
byte-identical under any seeded fault pattern and any ``--jobs`` value.
With no injector (or none of the worker sites firing), a wave's makespan
equals :func:`repro.core.backend.scheduler.lpt_schedule` exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.resilience.retry import SimulatedClock
from repro.telemetry import NULL_TELEMETRY

#: Default lease parameters: a heartbeat every 5 simulated seconds and
#: three missed beats before the monitor declares the worker dead.
HEARTBEAT_INTERVAL = 5.0
MISSES_ALLOWED = 3

#: A group is a straggler once it runs past ``threshold * cost`` without
#: completing; an undetected straggler finishes at ``factor * cost``.
STRAGGLE_THRESHOLD = 2.0
STRAGGLE_FACTOR = 4.0

#: Fraction of a group's cost a crashing worker burns before dying.
CRASH_FRACTION = 0.5


class FleetExhaustedError(Exception):
    """Every rebuild worker is dead or blacklisted; the wave cannot finish.

    Non-transient by design: retrying the same fleet reproduces the same
    corpses.  Recovery belongs to the degradation ladder, which re-runs
    the rebuild on a fresh serial fleet (the ``fleet-exhausted`` rung).
    """

    transient = False

    def __init__(self, wave_index: int, pending: Sequence[str], stats) -> None:
        super().__init__(
            f"worker fleet exhausted in wavefront {wave_index}: "
            f"{len(pending)} groups unassignable "
            f"({stats.crashes} crashes, {len(stats.blacklisted)} blacklisted)"
        )
        self.wave_index = wave_index
        self.pending = list(pending)
        self.stats = stats


def find_fleet_exhausted(exc: BaseException) -> Optional[FleetExhaustedError]:
    """The :class:`FleetExhaustedError` behind *exc*, walking cause chains.

    Exhaustion typically surfaces wrapped (engine ``run`` -> workflow ->
    retry layers); the ladder keys its serial-fleet rung on the typed
    error, same idiom as ``repro.integrity.find_integrity_error``.
    """
    seen: Set[int] = set()
    node: Optional[BaseException] = exc
    while node is not None and id(node) not in seen:
        seen.add(id(node))
        if isinstance(node, FleetExhaustedError):
            return node
        node = node.__cause__ or node.__context__
    return None


@dataclass
class FleetWorker:
    """One simulated rebuild worker and its lifetime bookkeeping."""

    wid: str
    index: int
    alive: bool = True
    blacklisted: bool = False
    strikes: int = 0               # flaky failures accumulated
    groups_completed: int = 0
    busy_seconds: float = 0.0

    @property
    def active(self) -> bool:
        return self.alive and not self.blacklisted


@dataclass
class Lease:
    """Ownership of one command group by one worker, on the clock."""

    group: str                     # transformed-command digest
    worker: str
    wave: int
    issued_at: float
    deadline: float                # last heartbeat + lease timeout


class HeartbeatMonitor:
    """Lease-based group ownership over the simulated clock.

    A worker holding a group renews its lease every ``heartbeat_interval``
    simulated seconds; ``misses_allowed`` consecutive missed beats forfeit
    it.  Detection of a crash therefore lags the death by exactly
    :attr:`lease_timeout` — the reassignment latency the wave makespan is
    charged for.
    """

    def __init__(
        self,
        clock: Optional[SimulatedClock] = None,
        heartbeat_interval: float = HEARTBEAT_INTERVAL,
        misses_allowed: int = MISSES_ALLOWED,
    ) -> None:
        self.clock = clock or SimulatedClock()
        self.heartbeat_interval = heartbeat_interval
        self.misses_allowed = max(1, int(misses_allowed))
        self.active: Dict[str, Lease] = {}
        self.expired: List[Lease] = []

    @property
    def lease_timeout(self) -> float:
        return self.heartbeat_interval * self.misses_allowed

    def grant(self, group: str, worker: str, now: float, wave: int) -> Lease:
        lease = Lease(group=group, worker=worker, wave=wave,
                      issued_at=now, deadline=now + self.lease_timeout)
        self.active[group] = lease
        return lease

    def expire(self, group: str) -> Optional[Lease]:
        """The owner stopped heartbeating; forfeit the lease."""
        lease = self.active.pop(group, None)
        if lease is not None:
            self.expired.append(lease)
        return lease

    def release(self, group: str) -> None:
        """The group completed (or was abandoned); drop its lease."""
        self.active.pop(group, None)


@dataclass
class FleetStats:
    """Aggregate fleet accounting, for reports/telemetry — never meta."""

    jobs: int = 0
    workers_alive: int = 0
    crashes: int = 0
    straggles: int = 0
    flaky_failures: int = 0
    reassignments: int = 0
    lease_expirations: int = 0
    speculative_launches: int = 0
    speculative_wins: int = 0
    blacklisted: List[str] = field(default_factory=list)
    exhausted_waves: int = 0

    @property
    def any_faults(self) -> bool:
        return bool(self.crashes or self.straggles or self.flaky_failures)

    def to_json(self) -> dict:
        return {
            "jobs": self.jobs,
            "workers_alive": self.workers_alive,
            "crashes": self.crashes,
            "straggles": self.straggles,
            "flaky_failures": self.flaky_failures,
            "reassignments": self.reassignments,
            "lease_expirations": self.lease_expirations,
            "speculative_launches": self.speculative_launches,
            "speculative_wins": self.speculative_wins,
            "blacklisted": list(self.blacklisted),
            "exhausted_waves": self.exhausted_waves,
        }

    def merge(self, other: "FleetStats") -> "FleetStats":
        """Accumulate *other* (a later rebuild's stats) into a new total."""
        merged = FleetStats(
            jobs=max(self.jobs, other.jobs),
            workers_alive=other.workers_alive,
            crashes=self.crashes + other.crashes,
            straggles=self.straggles + other.straggles,
            flaky_failures=self.flaky_failures + other.flaky_failures,
            reassignments=self.reassignments + other.reassignments,
            lease_expirations=self.lease_expirations + other.lease_expirations,
            speculative_launches=(
                self.speculative_launches + other.speculative_launches
            ),
            speculative_wins=self.speculative_wins + other.speculative_wins,
            exhausted_waves=self.exhausted_waves + other.exhausted_waves,
        )
        merged.blacklisted = list(self.blacklisted)
        for wid in other.blacklisted:
            if wid not in merged.blacklisted:
                merged.blacklisted.append(wid)
        return merged

    def summary_line(self) -> str:
        return (
            f"fleet jobs={self.jobs} alive={self.workers_alive} "
            f"crashes={self.crashes} straggles={self.straggles} "
            f"reassignments={self.reassignments} "
            f"speculative-wins={self.speculative_wins}/"
            f"{self.speculative_launches} "
            f"blacklisted={len(self.blacklisted)}"
        )


@dataclass
class WaveOutcome:
    """What one simulated wave dispatch produced."""

    index: int
    makespan: float = 0.0
    #: group digest -> simulated completion offset within the wave.
    completed: Dict[str, float] = field(default_factory=dict)
    #: group digest -> first worker the group was leased to.
    owners: Dict[str, str] = field(default_factory=dict)
    #: group digests left unfinished when the fleet was exhausted.
    pending: List[str] = field(default_factory=list)
    exhausted: bool = False


@dataclass
class _Attempt:
    digest: str
    cost: float
    not_before: float = 0.0        # reassignments wait for lease expiry
    excluded: Set[str] = field(default_factory=set)
    attempt: int = 0


class WorkerFleet:
    """The fleet: ``jobs`` simulated workers consuming command groups.

    Deterministic by construction: groups are assigned in LPT rank order
    (longest cost first, submission index breaking ties) to the worker
    that frees up first (worker index breaking ties), and every injector
    consultation happens in that assignment order.  A fault-free wave is
    therefore *exactly* :func:`repro.core.backend.scheduler.lpt_schedule`;
    a faulty one replays identically for the same seed.
    """

    def __init__(
        self,
        jobs: int = 1,
        injector=None,
        clock: Optional[SimulatedClock] = None,
        telemetry=None,
        speculate: bool = True,
        max_worker_failures: int = 3,
        straggle_threshold: float = STRAGGLE_THRESHOLD,
        straggle_factor: float = STRAGGLE_FACTOR,
        crash_fraction: float = CRASH_FRACTION,
        heartbeat_interval: float = HEARTBEAT_INTERVAL,
        misses_allowed: int = MISSES_ALLOWED,
    ) -> None:
        jobs = max(1, int(jobs))
        self.workers = [FleetWorker(wid=f"w{i}", index=i) for i in range(jobs)]
        self.injector = injector
        self.clock = clock or SimulatedClock()
        self.telemetry = telemetry or NULL_TELEMETRY
        self.monitor = HeartbeatMonitor(
            clock=self.clock,
            heartbeat_interval=heartbeat_interval,
            misses_allowed=misses_allowed,
        )
        self.speculate = speculate
        self.max_worker_failures = max(1, int(max_worker_failures))
        self.straggle_threshold = straggle_threshold
        self.straggle_factor = straggle_factor
        self.crash_fraction = crash_fraction
        self.stats = FleetStats(jobs=jobs, workers_alive=jobs)

    # ------------------------------------------------------------------

    def active_workers(self) -> List[FleetWorker]:
        return [w for w in self.workers if w.active]

    def _event(self, name: str, **attrs) -> None:
        if self.telemetry.enabled:
            self.telemetry.event(name, **attrs)

    def _consult(self, site: str, worker: FleetWorker, item: _Attempt) -> bool:
        if self.injector is None:
            return False
        key = f"{worker.wid}/{item.digest}"
        if item.attempt:
            key = f"{key}#{item.attempt}"
        return self.injector.worker_event(site, key)

    def _blacklist_check(self, worker: FleetWorker, wave: int) -> None:
        if worker.strikes >= self.max_worker_failures and not worker.blacklisted:
            worker.blacklisted = True
            self.stats.blacklisted.append(worker.wid)
            self._event("fleet.worker_blacklisted", worker=worker.wid,
                        wave=wave, strikes=worker.strikes)

    # ------------------------------------------------------------------

    def run_wave(
        self, index: int, entries: Sequence[Tuple[str, float]]
    ) -> WaveOutcome:
        """Simulate dispatching *entries* (``(digest, cost)`` pairs, in
        submission order) onto the surviving workers.

        Returns which groups completed and the wave makespan.  The caller
        performs the real execution of each completed group exactly once,
        in its own deterministic order — the fleet never touches the
        filesystem or the engine, so faults can reshape *time*, not
        *bytes*.  On exhaustion the outcome carries the unfinished
        digests; the caller raises :class:`FleetExhaustedError`.
        """
        outcome = WaveOutcome(index=index)
        crashes_before = self.stats.crashes
        free: Dict[str, float] = {w.wid: 0.0 for w in self.workers}
        wave_busy: Dict[str, float] = {w.wid: 0.0 for w in self.workers}
        # LPT rank order; requeued attempts join the back of the queue.
        ranked = sorted(
            range(len(entries)), key=lambda i: (-entries[i][1], i)
        )
        queue: List[_Attempt] = [
            _Attempt(digest=entries[i][0], cost=entries[i][1]) for i in ranked
        ]
        cursor = 0
        while cursor < len(queue):
            item = queue[cursor]
            cursor += 1
            active = self.active_workers()
            if not active:
                outcome.exhausted = True
                seen: Set[str] = set(outcome.completed)
                for leftover in [item] + queue[cursor:]:
                    if leftover.digest not in seen:
                        seen.add(leftover.digest)
                        outcome.pending.append(leftover.digest)
                break
            candidates = [w for w in active if w.wid not in item.excluded]
            if not candidates:
                # Every survivor already failed this group; relax the
                # exclusion rather than deadlocking — a retry on a
                # previously-failing worker may still succeed.
                candidates = active
            worker = min(candidates, key=lambda w: (free[w.wid], w.index))
            start = max(free[worker.wid], item.not_before)
            self.monitor.grant(item.digest, worker.wid,
                               self.clock.now + start, index)
            outcome.owners.setdefault(item.digest, worker.wid)

            if self._consult("worker.crash", worker, item):
                # The worker dies partway through; its heartbeat stops
                # and the lease expires a full timeout later — only then
                # does the group become eligible for reassignment.
                died_at = start + self.crash_fraction * item.cost
                worker.busy_seconds += died_at - start
                wave_busy[worker.wid] += died_at - start
                free[worker.wid] = died_at
                worker.alive = False
                self.monitor.expire(item.digest)
                detect = died_at + self.monitor.lease_timeout
                self.stats.crashes += 1
                self.stats.lease_expirations += 1
                self.stats.reassignments += 1
                self._event("fleet.worker_crashed", worker=worker.wid,
                            group=item.digest, wave=index)
                self._event("fleet.lease_expired", worker=worker.wid,
                            group=item.digest, wave=index)
                self._event("fleet.reassigned", group=item.digest,
                            wave=index, attempt=item.attempt + 1)
                queue.append(_Attempt(
                    digest=item.digest, cost=item.cost, not_before=detect,
                    excluded=item.excluded | {worker.wid},
                    attempt=item.attempt + 1,
                ))
                continue

            if self._consult("worker.flaky", worker, item):
                # The attempt burns the full cost, then fails; the worker
                # survives but earns a strike.
                end = start + item.cost
                worker.busy_seconds += item.cost
                wave_busy[worker.wid] += item.cost
                free[worker.wid] = end
                worker.strikes += 1
                self.monitor.release(item.digest)
                self.stats.flaky_failures += 1
                self.stats.reassignments += 1
                self._event("fleet.worker_flaky", worker=worker.wid,
                            group=item.digest, wave=index,
                            strikes=worker.strikes)
                self._blacklist_check(worker, index)
                self._event("fleet.reassigned", group=item.digest,
                            wave=index, attempt=item.attempt + 1)
                queue.append(_Attempt(
                    digest=item.digest, cost=item.cost, not_before=end,
                    excluded=item.excluded | {worker.wid},
                    attempt=item.attempt + 1,
                ))
                continue

            finish = start + item.cost
            if self._consult("worker.straggle", worker, item):
                self.stats.straggles += 1
                slow_finish = start + self.straggle_factor * item.cost
                detect = start + self.straggle_threshold * item.cost
                self._event("fleet.straggler_detected", worker=worker.wid,
                            group=item.digest, wave=index)
                finish = slow_finish
                if self.speculate:
                    others = [
                        w for w in self.active_workers()
                        if w.index != worker.index
                        and w.wid not in item.excluded
                    ]
                    if others:
                        dup = min(others,
                                  key=lambda w: (free[w.wid], w.index))
                        dup_start = max(free[dup.wid], detect)
                        dup_finish = dup_start + item.cost
                        if dup_finish < slow_finish:
                            # First completion wins; the loser is
                            # cancelled at the winner's finish time.
                            self.stats.speculative_launches += 1
                            self.stats.speculative_wins += 1
                            self._event("fleet.speculation",
                                        group=item.digest, wave=index,
                                        worker=dup.wid, won=True)
                            dup.busy_seconds += dup_finish - dup_start
                            wave_busy[dup.wid] += dup_finish - dup_start
                            free[dup.wid] = dup_finish
                            dup.groups_completed += 1
                            finish = dup_finish
                            worker.busy_seconds += finish - start
                            wave_busy[worker.wid] += finish - start
                            free[worker.wid] = finish
                            self.monitor.release(item.digest)
                            outcome.completed[item.digest] = finish
                            continue
                        elif dup_start < slow_finish:
                            # Launched but the straggler beat it anyway.
                            self.stats.speculative_launches += 1
                            self._event("fleet.speculation",
                                        group=item.digest, wave=index,
                                        worker=dup.wid, won=False)
                            dup.busy_seconds += slow_finish - dup_start
                            wave_busy[dup.wid] += slow_finish - dup_start
                            free[dup.wid] = slow_finish

            worker.busy_seconds += finish - start
            wave_busy[worker.wid] += finish - start
            free[worker.wid] = finish
            worker.groups_completed += 1
            self.monitor.release(item.digest)
            outcome.completed[item.digest] = finish

        outcome.makespan = max(free.values(), default=0.0)
        if outcome.exhausted:
            self.stats.exhausted_waves += 1
        self.stats.workers_alive = len(self.active_workers())
        if self.telemetry.enabled and entries:
            for w in self.workers:
                if wave_busy[w.wid] > 0.0:
                    with self.telemetry.span(
                        "fleet.worker", worker=w.wid, wave=index,
                        busy_seconds=wave_busy[w.wid], alive=w.alive,
                    ):
                        pass
            # Per-wave accounting so the control plane's series see
            # crashes and fleet shrinkage as they happen, not only at
            # end-of-rebuild.
            m = self.telemetry.metrics
            wave_crashes = self.stats.crashes - crashes_before
            if wave_crashes:
                m.counter("fleet_worker_crashes_total").inc(wave_crashes)
            m.gauge("fleet_workers_alive").set(self.stats.workers_alive)
            m.gauge("fleet_blacklisted_workers").set(
                len(self.stats.blacklisted)
            )
            if outcome.makespan > 0.0:
                # Per-wave utilization: crash lease-timeouts and
                # straggler drag show up here wave by wave, which is
                # what the control plane's fleet-utilization series
                # (and its SLO rule) watch.
                self.telemetry.metrics.gauge("fleet_wave_utilization").set(
                    sum(wave_busy.values())
                    / (outcome.makespan * len(self.workers))
                )
        # Advance the fleet clock so later waves' leases carry absolute
        # simulated times.
        if outcome.makespan > 0.0:
            self.clock.sleep(outcome.makespan)
            controlplane = self.telemetry.controlplane
            if controlplane is not None:
                # The heartbeat/lease timeline is the fleet's notion of
                # wall progress; feed it to the sampler so series advance
                # with simulated time, never wall time.
                controlplane.advance(outcome.makespan)
        return outcome

    def summary_line(self) -> str:
        return self.stats.summary_line()
