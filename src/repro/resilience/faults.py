"""Deterministic fault injection for the system-side pipeline.

A :class:`FaultInjector` is consulted ("armed") at well-known sites of the
rebuild pipeline:

====================  =====================================================
site                  armed by
====================  =====================================================
``registry.push``     :meth:`repro.oci.registry.ImageRegistry.push`
``registry.pull``     :meth:`repro.oci.registry.ImageRegistry.pull`
``blob.read``         :meth:`repro.oci.blobs.BlobStore.get`
``blob.write``        :meth:`repro.oci.blobs.BlobStore.put`
``container.run``     :meth:`repro.containers.engine.ContainerEngine.run`
``rebuild.node``      each compile-node execution in ``coMtainer-rebuild``
``mirror.sync``       :meth:`repro.federation.sync.SyncEngine.sync` (per
                      mirror-sync attempt)
``transfer.chunk``    each chunk of a resumable mirror blob transfer
====================  =====================================================

Faults come in two kinds.  **Transient** faults model network hiccups and
scheduler blips: a key faults for a bounded burst (at most ``max_burst``
consecutive arms) and then succeeds, so any retry policy with more than
``max_burst`` attempts is guaranteed to make progress.  **Persistent**
faults model a genuinely broken compile node or container entrypoint: once
a key turns persistent it fails on every subsequent arm, and recovery must
come from the degradation ladder, not from retrying.

Transfer sites (``registry.*``/``blob.*``) only ever produce transient
faults — a registry that has permanently lost the extended image leaves no
image at all to degrade to, which is outside the paper's fault model (the
extended image *by construction* carries a runnable generic dist image).

A third family models *data* faults rather than operation failures:
**corruption** faults mutate payload bytes flowing through a persistence
site instead of raising.  They are consulted through
:meth:`FaultInjector.corrupt` at four sites —

====================  =====================================================
site                  consulted by
====================  =====================================================
``blob.store``        :meth:`repro.oci.blobs.BlobStore.put`
``registry.transfer`` :meth:`repro.oci.registry.ImageRegistry.push`
``layout.save``       :meth:`repro.oci.layout.OCILayout.save` (per file)
``journal.append``    :meth:`repro.resilience.journal.RebuildJournal.flush`
====================  =====================================================

— in three modes: ``bitflip`` (one flipped bit), ``truncate`` (content
strictly shorter than declared) and ``torn`` (an interrupted write: the
prefix lands, the tail is garbage of the original length).  Corruption is
silent by design; detection is the job of the verified-read layer
(:mod:`repro.integrity`), which re-hashes content against its declared
digest and raises a typed ``IntegrityError``.

A fourth family models *worker* faults: the simulated rebuild fleet
(:mod:`repro.resilience.fleet`) consults :meth:`FaultInjector.worker_event`
once per (worker, group, attempt) at three sites —

====================  =====================================================
site                  meaning
====================  =====================================================
``worker.crash``      the worker dies mid-group; its lease expires
``worker.straggle``   the attempt runs ``straggle_factor`` times too long
``worker.flaky``      the attempt burns its cost, then fails (a strike)
====================  =====================================================

— with keys like ``w3/<group digest>#<attempt>``.  Worker events never
raise: the fleet owns the recovery semantics (reassignment, speculation,
blacklisting), so the injector only answers "does this attempt misbehave?".
Scripted :class:`FaultSpec` entries are checked first (``kind`` is ignored
for worker sites; ``times < 0`` fires forever), then the seeded per-site
rates (``worker_crash_rate`` etc.).  When every worker rate is zero and no
worker specs exist, a consultation costs no random draw — so existing
seeded sweeps replay identically with the fleet in place.

A fifth family models *staleness* probes for the federated registry tier
(:mod:`repro.federation`): :meth:`FaultInjector.probe` answers boolean
questions that never raise, currently only at ``mirror.stale`` — "must
this failover candidate be treated as stale?".  Scripted specs fire
first (``kind`` ignored, ``times < 0`` forever), then the seeded
``mirror_stale_rate``; an inert site consumes no random draw.

Everything is derived from a single integer seed through one private
``random.Random`` stream, so a chaos sweep replays identically run to run
as long as the (single-threaded, simulated) pipeline arms the same sites
in the same order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set, Tuple

from repro.oci.registry import TransientTransferError
from repro.telemetry import NULL_TELEMETRY

#: Sites that model data transfer; faults here are always transient.
#: ``mirror.sync`` is armed once per mirror-sync attempt and
#: ``transfer.chunk`` once per chunk of a resumable blob transfer
#: (:mod:`repro.federation.sync`), so a fault there models a replication
#: link dropping mid-stream.
TRANSFER_SITES = frozenset({
    "registry.push", "registry.pull", "blob.read", "blob.write",
    "mirror.sync", "transfer.chunk",
})

#: Sites that model execution; faults here may be persistent.
EXEC_SITES = frozenset({"container.run", "rebuild.node"})

ALL_SITES = TRANSFER_SITES | EXEC_SITES

#: Sites where payload bytes can be silently corrupted in flight/at rest.
#: ``transfer.chunk`` corruption mutates one chunk of a resumable mirror
#: sync in flight — the verify-then-promote pass catches it in staging.
CORRUPTION_SITES = frozenset(
    {"blob.store", "registry.transfer", "layout.save", "journal.append",
     "transfer.chunk"}
)

#: The corruption fault family, in seeded-pick order.
CORRUPTION_MODES = ("bitflip", "truncate", "torn")

#: Worker fault family, consulted by the rebuild fleet (never raises).
WORKER_SITES = frozenset({"worker.crash", "worker.straggle", "worker.flaky"})

#: Probe fault family: boolean consultations that never raise.  The
#: federated pull ladder asks ``mirror.stale`` per (mirror, reference)
#: when considering a failover candidate; a fired probe means the mirror
#: must be treated as stale and skipped.
PROBE_SITES = frozenset({"mirror.stale"})


class InjectedFault(Exception):
    """Base class for all injector-raised faults."""

    transient = False

    def __init__(self, site: str, key: str, kind: str) -> None:
        super().__init__(f"injected {kind} fault at {site} ({key or '<any>'})")
        self.site = site
        self.key = key
        self.kind = kind


class TransientFault(InjectedFault):
    """A fault that goes away if the operation is retried."""

    transient = True

    def __init__(self, site: str, key: str) -> None:
        super().__init__(site, key, "transient")


class PersistentFault(InjectedFault):
    """A fault that will recur on every retry of the same operation."""

    def __init__(self, site: str, key: str) -> None:
        super().__init__(site, key, "persistent")


class InjectedTransferFault(TransientFault, TransientTransferError):
    """A transient fault at a transfer site, typed so the retry layer can
    classify it through the :class:`RegistryError` hierarchy."""


@dataclass
class FaultSpec:
    """A scripted fault: fire at *site* whenever *match* occurs in the key.

    ``times`` bounds how often a transient spec fires; persistent specs
    fire forever.  Scripted specs are checked before the seeded random
    stream, so tests can target one specific node or reference.
    """

    site: str
    kind: str = "transient"
    match: str = ""
    times: int = 1


@dataclass
class CorruptionSpec:
    """A scripted corruption: mutate bytes at *site* whenever *match*
    occurs in the key.

    ``mode`` is one of :data:`CORRUPTION_MODES`; ``times`` bounds how
    often the spec fires (negative means forever).  Scripted corruptions
    are checked before the seeded random stream, so tests can target one
    specific blob digest or file path.
    """

    site: str
    mode: str = "bitflip"
    match: str = ""
    times: int = 1


@dataclass
class FaultRecord:
    """One fired fault, for post-hoc inspection."""

    site: str
    key: str
    kind: str


def corrupt_payload(data: bytes, mode: str, rng: random.Random) -> bytes:
    """Apply one corruption *mode* to *data*; always returns different bytes.

    ``bitflip`` flips a single seeded bit, ``truncate`` drops a seeded
    number of trailing bytes (strictly shorter, possibly empty), and
    ``torn`` models an interrupted write: the seeded prefix survives, the
    tail of the original length is filler (so declared sizes still match
    but content does not).
    """
    if not data:
        return data
    if mode == "bitflip":
        i = rng.randrange(len(data))
        return data[:i] + bytes([data[i] ^ (1 << rng.randrange(8))]) + data[i + 1:]
    if mode == "truncate":
        return data[: rng.randrange(len(data))]
    if mode == "torn":
        cut = rng.randrange(1, len(data)) if len(data) > 1 else 0
        mutated = data[:cut] + b"\x00" * (len(data) - cut)
        if mutated == data:   # the original tail was already zeros
            mutated = data[:cut] + b"\xff" * (len(data) - cut)
        return mutated
    raise ValueError(f"unknown corruption mode {mode!r}")


class FaultInjector:
    """Seedable, deterministic fault source for the arm sites above."""

    def __init__(
        self,
        seed: int = 0,
        rate: float = 0.0,
        persistent_rate: float = 0.25,
        sites: frozenset = ALL_SITES,
        max_burst: int = 2,
        specs: Optional[List[FaultSpec]] = None,
        corruption_rate: float = 0.0,
        corruption_sites: frozenset = CORRUPTION_SITES,
        corruptions: Optional[List[CorruptionSpec]] = None,
        worker_crash_rate: float = 0.0,
        worker_straggle_rate: float = 0.0,
        worker_flaky_rate: float = 0.0,
        mirror_stale_rate: float = 0.0,
    ) -> None:
        self.seed = seed
        self.rate = rate
        self.persistent_rate = persistent_rate
        self.sites = frozenset(sites)
        self.max_burst = max_burst
        self.specs: List[FaultSpec] = list(specs or [])
        self.corruption_rate = corruption_rate
        self.corruption_sites = frozenset(corruption_sites)
        self.corruptions: List[CorruptionSpec] = list(corruptions or [])
        self.worker_crash_rate = worker_crash_rate
        self.worker_straggle_rate = worker_straggle_rate
        self.worker_flaky_rate = worker_flaky_rate
        self.mirror_stale_rate = mirror_stale_rate
        self.enabled = True
        self.log: List[FaultRecord] = []
        #: Telemetry recorder; fired faults land a ``fault.fired`` event
        #: on whatever span armed the site.
        self.telemetry = NULL_TELEMETRY
        self._rng = random.Random(f"comtainer-faults:{seed}")
        #: (site, key) -> remaining transient failures; 0 means immune.
        self._bursts: Dict[Tuple[str, str], int] = {}
        self._persistent: Set[Tuple[str, str]] = set()
        self._disarmed: Set[str] = set()
        # Snapshots so reset() can restore scripted specs whose remaining
        # `times` counters were consumed by a previous sweep iteration,
        # and the constructed rates for any reset() argument left unset.
        self._initial_specs = [replace(s) for s in self.specs]
        self._initial_corruptions = [replace(c) for c in self.corruptions]
        self._initial_rates = {
            "seed": seed,
            "rate": rate,
            "persistent_rate": persistent_rate,
            "corruption_rate": corruption_rate,
            "worker_crash_rate": worker_crash_rate,
            "worker_straggle_rate": worker_straggle_rate,
            "worker_flaky_rate": worker_flaky_rate,
            "mirror_stale_rate": mirror_stale_rate,
        }

    # ------------------------------------------------------------------

    def _worker_rate(self, site: str) -> float:
        if site == "worker.crash":
            return self.worker_crash_rate
        if site == "worker.straggle":
            return self.worker_straggle_rate
        return self.worker_flaky_rate

    def _fire(self, site: str, key: str, kind: str) -> None:
        self.log.append(FaultRecord(site=site, key=key, kind=kind))
        if self.telemetry.enabled:
            self.telemetry.event("fault.fired", site=site, key=key, kind=kind)
            self.telemetry.metrics.counter("resilience_faults_fired_total").inc()
        if kind == "persistent":
            raise PersistentFault(site, key)
        if site in TRANSFER_SITES:
            raise InjectedTransferFault(site, key)
        raise TransientFault(site, key)

    def arm(self, site: str, key: str = "") -> None:
        """Raise an :class:`InjectedFault` if this operation should fail."""
        if not self.enabled or site in self._disarmed:
            return
        if self.telemetry.enabled:
            self.telemetry.event("fault.armed", site=site, key=key)
        for spec in self.specs:
            if spec.site != site or spec.match not in key:
                continue
            if spec.kind == "persistent":
                self._fire(site, key, "persistent")
            if spec.times > 0:
                spec.times -= 1
                self._fire(site, key, "transient")

        ident = (site, key)
        if ident in self._persistent:
            self._fire(site, key, "persistent")
        if ident in self._bursts:
            left = self._bursts[ident]
            if left <= 0:
                return   # burst exhausted: this key is now immune
            self._bursts[ident] = left - 1
            self._fire(site, key, "transient")
        if site not in self.sites or self.rate <= 0.0:
            return
        if self._rng.random() >= self.rate:
            # Sticky: a key that passed its roll stays healthy forever.
            # This bounds the total transient failures of any composite
            # operation (a push touches many blobs) by max_burst * keys,
            # so a sufficiently-provisioned retry policy always finishes.
            self._bursts[ident] = 0
            return
        if site in EXEC_SITES and self._rng.random() < self.persistent_rate:
            self._persistent.add(ident)
            self._fire(site, key, "persistent")
        # Total consecutive transient failures for a key never exceeds
        # max_burst, so retry policies with max_attempts > max_burst always
        # get through eventually.
        self._bursts[ident] = self._rng.randint(1, self.max_burst) - 1
        self._fire(site, key, "transient")

    # ------------------------------------------------------------------
    # worker faults (consulted by the rebuild fleet; never raise)
    # ------------------------------------------------------------------

    def worker_event(self, site: str, key: str = "") -> bool:
        """Should this (worker, group, attempt) misbehave at *site*?

        Unlike :meth:`arm` this never raises — the fleet owns recovery
        (reassignment, speculation, blacklisting); the injector only
        decides.  Scripted specs fire first (their ``kind`` is ignored;
        negative ``times`` fires forever), then the seeded per-site rate.
        An inert site (zero rate, no matching specs) consumes no random
        draw, so pre-fleet seeded sweeps replay identically.
        """
        if site not in WORKER_SITES:
            raise ValueError(f"not a worker fault site: {site!r}")
        if not self.enabled or site in self._disarmed:
            return False
        fired = False
        for spec in self.specs:
            if spec.site != site or spec.match not in key or spec.times == 0:
                continue
            if spec.times > 0:
                spec.times -= 1
            fired = True
            break
        if not fired:
            rate = self._worker_rate(site)
            if rate <= 0.0 or self._rng.random() >= rate:
                return False
        self.log.append(FaultRecord(site=site, key=key, kind="worker"))
        if self.telemetry.enabled:
            self.telemetry.event("fault.worker", site=site, key=key)
            self.telemetry.metrics.counter(
                "resilience_worker_faults_total").inc()
        return True

    # ------------------------------------------------------------------
    # probe faults (boolean consultations; never raise)
    # ------------------------------------------------------------------

    def probe(self, site: str, key: str = "") -> bool:
        """Should this consultation at *site* report a degraded answer?

        Used by the federated pull ladder (``mirror.stale``): a fired
        probe marks the keyed failover candidate stale, so the pull
        skips it instead of serving outdated bytes.  Never raises —
        staleness is a policy answer, not an operation failure.
        Scripted specs fire first (``kind`` ignored; negative ``times``
        fires forever), then the seeded ``mirror_stale_rate``.  An inert
        site (zero rate, no matching specs) consumes no random draw.
        """
        if site not in PROBE_SITES:
            raise ValueError(f"not a probe fault site: {site!r}")
        if not self.enabled or site in self._disarmed:
            return False
        fired = False
        for spec in self.specs:
            if spec.site != site or spec.match not in key or spec.times == 0:
                continue
            if spec.times > 0:
                spec.times -= 1
            fired = True
            break
        if not fired:
            if self.mirror_stale_rate <= 0.0:
                return False
            if self._rng.random() >= self.mirror_stale_rate:
                return False
        self.log.append(FaultRecord(site=site, key=key, kind="probe"))
        if self.telemetry.enabled:
            self.telemetry.event("fault.probe", site=site, key=key)
            self.telemetry.metrics.counter(
                "resilience_probe_faults_total").inc()
        return True

    # ------------------------------------------------------------------
    # corruption faults (silent data mutation; see repro.integrity)
    # ------------------------------------------------------------------

    def corrupting(self, site: str) -> bool:
        """Cheap precheck: could :meth:`corrupt` ever mutate at *site*?

        Persistence paths call this before serializing payloads, so an
        injector armed only for operation faults costs nothing extra.
        """
        if not self.enabled or site in self._disarmed:
            return False
        if any(spec.site == site and spec.times != 0 for spec in self.corruptions):
            return True
        return self.corruption_rate > 0.0 and site in self.corruption_sites

    def corrupt(self, site: str, key: str, data: bytes) -> bytes:
        """Maybe corrupt payload bytes flowing through *site*.

        Returns *data* itself (same object) when nothing fires, so callers
        can use an identity check to skip re-wrapping.  Fired corruptions
        are recorded in the log as ``corrupt-<mode>`` and never raise —
        silent wrongness is the whole point of the fault family.
        """
        if not self.enabled or not data or site in self._disarmed:
            return data
        mode: Optional[str] = None
        for spec in self.corruptions:
            if spec.site != site or spec.match not in key or spec.times == 0:
                continue
            if spec.times > 0:
                spec.times -= 1
            mode = spec.mode
            break
        if mode is None:
            if (site in self.corruption_sites and self.corruption_rate > 0.0
                    and self._rng.random() < self.corruption_rate):
                mode = CORRUPTION_MODES[self._rng.randrange(len(CORRUPTION_MODES))]
            else:
                return data
        mutated = corrupt_payload(data, mode, self._rng)
        self.log.append(FaultRecord(site=site, key=key, kind=f"corrupt-{mode}"))
        if self.telemetry.enabled:
            self.telemetry.event("fault.corrupted", site=site, key=key, mode=mode)
            self.telemetry.metrics.counter(
                "resilience_corruptions_injected_total").inc()
        return mutated

    # ------------------------------------------------------------------
    # sweep controls
    # ------------------------------------------------------------------

    def disarm(self, site: str) -> None:
        """Make *site* inert: neither scripted nor seeded faults fire there.

        Chaos sweeps use this to silence one site mid-scenario (e.g. the
        final workload check after a faulty rebuild) without rebuilding
        the injector and without disturbing the seeded stream consumed by
        the still-armed sites.
        """
        self._disarmed.add(site)

    def rearm(self, site: str) -> None:
        """Undo a previous :meth:`disarm`."""
        self._disarmed.discard(site)

    def reset(
        self,
        seed: Optional[int] = None,
        rate: Optional[float] = None,
        persistent_rate: Optional[float] = None,
        corruption_rate: Optional[float] = None,
        worker_crash_rate: Optional[float] = None,
        worker_straggle_rate: Optional[float] = None,
        worker_flaky_rate: Optional[float] = None,
        mirror_stale_rate: Optional[float] = None,
    ) -> "FaultInjector":
        """Return the injector to its constructed state, optionally with
        new rates or a new seed.

        Any rate (or the seed) left unset reverts to its constructed
        value — a shared sweep injector cannot leak one iteration's rates
        into the next.  Restores the scripted spec snapshots (including
        consumed ``times`` counters), reseeds the random stream, and
        clears burst/persistent memory, the fired-fault log, and every
        :meth:`disarm`.  Chaos sweeps call this between iterations
        instead of constructing a fresh injector per (seed, rate) point.
        Returns ``self`` so sweep loops can write
        ``run(injector.reset(seed=s, rate=r))``.
        """
        initial = self._initial_rates
        self.seed = initial["seed"] if seed is None else seed
        self.rate = initial["rate"] if rate is None else rate
        self.persistent_rate = (
            initial["persistent_rate"] if persistent_rate is None
            else persistent_rate
        )
        self.corruption_rate = (
            initial["corruption_rate"] if corruption_rate is None
            else corruption_rate
        )
        self.worker_crash_rate = (
            initial["worker_crash_rate"] if worker_crash_rate is None
            else worker_crash_rate
        )
        self.worker_straggle_rate = (
            initial["worker_straggle_rate"] if worker_straggle_rate is None
            else worker_straggle_rate
        )
        self.worker_flaky_rate = (
            initial["worker_flaky_rate"] if worker_flaky_rate is None
            else worker_flaky_rate
        )
        self.mirror_stale_rate = (
            initial["mirror_stale_rate"] if mirror_stale_rate is None
            else mirror_stale_rate
        )
        self.specs = [replace(s) for s in self._initial_specs]
        self.corruptions = [replace(c) for c in self._initial_corruptions]
        self.enabled = True
        self.log = []
        self._rng = random.Random(f"comtainer-faults:{self.seed}")
        self._bursts = {}
        self._persistent = set()
        self._disarmed = set()
        return self

    # ------------------------------------------------------------------

    def fired(self, site: Optional[str] = None) -> List[FaultRecord]:
        if site is None:
            return list(self.log)
        return [r for r in self.log if r.site == site]

    def summary(self) -> Dict[str, int]:
        """Fired-fault counts per ``site/kind``."""
        out: Dict[str, int] = {}
        for record in self.log:
            label = f"{record.site}/{record.kind}"
            out[label] = out.get(label, 0) + 1
        return out
