"""Per-request deadlines on the simulated clock.

A deadline is a *simulated-time* budget: the adaptation service (and
``coMtainer adapt --deadline``) bounds how much simulated work a request
may consume, not how much wall time the reproduction burns.  The rebuild
wave loop checks its fleet clock against the budget between wavefronts;
a blown deadline raises the typed :class:`DeadlineExceededError` *after*
the completed groups were checkpointed, so the journal stays resumable —
cancellation reshapes time, never bytes.

The error is deliberately **not** transient: retry layers propagate it
immediately and the degradation ladder treats it as terminal (descending
to a cheaper rung would spend even more of a budget that is already
gone).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

from repro.resilience.retry import SimulatedClock


class DeadlineExceededError(Exception):
    """The simulated-time budget for a request ran out.

    Carries how much was spent against what budget and where the work
    stopped, so reports can render a ``deadline_exceeded`` row and the
    caller knows the journal holds everything completed so far.
    """

    def __init__(
        self,
        spent: float,
        budget: float,
        site: str = "rebuild.wave",
        wave_index: Optional[int] = None,
    ) -> None:
        self.spent = float(spent)
        self.budget = float(budget)
        self.site = site
        self.wave_index = wave_index
        detail = (
            f"deadline exceeded at {site}: {self.spent:.3f}s simulated "
            f"of a {self.budget:.3f}s budget"
        )
        if wave_index is not None:
            detail += f" (stopped before wave {wave_index})"
        super().__init__(detail)


def find_deadline_exceeded(
    exc: BaseException,
) -> Optional[DeadlineExceededError]:
    """The :class:`DeadlineExceededError` behind *exc*, walking cause
    chains — same idiom as :func:`repro.resilience.find_fleet_exhausted`."""
    seen: Set[int] = set()
    node: Optional[BaseException] = exc
    while node is not None and id(node) not in seen:
        seen.add(id(node))
        if isinstance(node, DeadlineExceededError):
            return node
        node = node.__cause__ or node.__context__
    return None


@dataclass
class Deadline:
    """An absolute deadline against one :class:`SimulatedClock`.

    The service stamps each admitted request with one; ``remaining()``
    is what gets threaded into the rebuild layer as its relative budget.
    """

    at: float
    clock: SimulatedClock

    def remaining(self) -> float:
        return self.at - self.clock.now

    @property
    def expired(self) -> bool:
        return self.clock.now >= self.at

    def check(self, site: str = "op") -> None:
        """Raise the typed error if the deadline has passed."""
        if self.expired:
            raise DeadlineExceededError(
                spent=self.clock.now, budget=self.at, site=site
            )


__all__ = [
    "Deadline",
    "DeadlineExceededError",
    "find_deadline_exceeded",
]
