"""Resilient rebuild pipeline: fault injection, retry, journal, ladder.

See ``docs/RESILIENCE.md`` for the fault model, retry semantics, the
journal format and the graceful-degradation ladder.
"""

from repro.resilience.degrade import (
    RUNG_FULL,
    RUNG_GENERIC,
    RUNG_ORDER,
    PERMISSIVE_RETRY,
    RUNG_PARTIAL,
    RUNG_REDIRECT_ONLY,
    ResilienceContext,
    ResiliencePolicy,
    ResilienceReport,
    adapt_with_resilience,
    install_resilience,
    resilient_transfer,
    uninstall_resilience,
)
from repro.resilience.faults import (
    ALL_SITES,
    CORRUPTION_MODES,
    CORRUPTION_SITES,
    EXEC_SITES,
    TRANSFER_SITES,
    CorruptionSpec,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    PersistentFault,
    TransientFault,
    corrupt_payload,
)
from repro.resilience.journal import RebuildJournal, has_journal
from repro.resilience.retry import (
    RetryBudgetExhausted,
    RetryPolicy,
    RetryStats,
    SimulatedClock,
    is_transient,
    retry_call,
)

__all__ = [
    "ALL_SITES",
    "CORRUPTION_MODES",
    "CORRUPTION_SITES",
    "EXEC_SITES",
    "TRANSFER_SITES",
    "CorruptionSpec",
    "corrupt_payload",
    "RUNG_FULL",
    "RUNG_GENERIC",
    "RUNG_ORDER",
    "PERMISSIVE_RETRY",
    "RUNG_PARTIAL",
    "RUNG_REDIRECT_ONLY",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "PersistentFault",
    "TransientFault",
    "RebuildJournal",
    "has_journal",
    "ResilienceContext",
    "ResiliencePolicy",
    "ResilienceReport",
    "RetryBudgetExhausted",
    "RetryPolicy",
    "RetryStats",
    "SimulatedClock",
    "adapt_with_resilience",
    "install_resilience",
    "is_transient",
    "resilient_transfer",
    "retry_call",
    "uninstall_resilience",
]
