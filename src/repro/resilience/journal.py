"""Per-node checkpoint journal for interrupted rebuilds.

``coMtainer-rebuild`` re-executes the transformed build graph in
topological order.  When a rebuild dies mid-graph (node fault, container
crash, operator interrupt) everything it already compiled is lost unless
it was checkpointed somewhere that outlives the rebuild container — and
the only thing that outlives the container is the mounted OCI layout.

The journal is therefore persisted *in the layout*, alongside the cache
layer: a single JSON blob in the layout's blob store, registered in the
index through a descriptor that carries the
``io.comtainer.journal=<dist-tag>`` annotation but **no**
``org.opencontainers.image.ref.name`` — so it is invisible to
``layout.tags()``, ``find_dist_tag`` and registry pushes, yet survives
``layout.save()``/``load()`` round trips.

Journal blob format (``application/vnd.comtainer.rebuild-journal.v1+json``)::

    {
      "version": 1,
      "dist_tag": "<app>.dist",
      "nodes": {
        "<node-id>": {
          "digest":  "<transformed-command digest>",
          "path":    "/src/main.o",
          "mode":    493,
          "content": {"kind": "padded", "payload": "<base64>", "pad": 81920}
        },
        ...
      }
    }

Content is serialized *structurally* — a compiler artifact is a small JSON
payload plus a declared whitespace pad, and synthetic bulk content is just
a seed and a size, so the journal never materializes (or base64s) the
megabytes of padding.  That keeps the per-command-group ``flush`` cheap
enough to run on the happy path (see ``bench_resilience_overhead``); the
reconstructed content has the exact digest of the original.

A journal entry is only reused when the node's *transformed* command
digest matches the recorded one (the digest already encodes adapter,
options and PGO profile salt), so a resume with different rebuild options
recompiles instead of resurrecting stale outputs.  On a fully successful
rebuild the journal is cleared — the ``+coMre`` manifest's node outputs
take over as the incremental-reuse source.
"""

from __future__ import annotations

import base64
import json
from typing import Dict, List, Optional, Tuple

from repro.oci import mediatypes
from repro.oci.image import Descriptor
from repro.oci.layout import OCILayout
from repro.toolchain.artifacts import PaddedContent
from repro.vfs.content import FileContent, InlineContent, SyntheticContent

JOURNAL_VERSION = 1


def _encode_content(content: FileContent) -> dict:
    if isinstance(content, PaddedContent):
        return {
            "kind": "padded",
            "payload": base64.b64encode(content.payload).decode("ascii"),
            "pad": content.pad,
        }
    if isinstance(content, SyntheticContent):
        return {"kind": "synthetic", "seed": content.seed,
                "size": content.declared_size}
    return {"kind": "inline",
            "data": base64.b64encode(content.read()).decode("ascii")}


def _decode_content(entry: dict) -> FileContent:
    if entry["kind"] == "padded":
        return PaddedContent(base64.b64decode(entry["payload"]), entry["pad"])
    if entry["kind"] == "synthetic":
        return SyntheticContent(entry["seed"], entry["size"])
    return InlineContent(base64.b64decode(entry["data"]))


def _find_descriptor(layout: OCILayout, dist_tag: str) -> Optional[Descriptor]:
    for desc in layout.index:
        if desc.annotations.get(mediatypes.ANNOTATION_COMTAINER_JOURNAL) == dist_tag:
            return desc
    return None


def _drop_descriptor(layout: OCILayout, desc: Descriptor) -> None:
    layout.index = [d for d in layout.index if d is not desc]
    still_referenced = any(d.digest == desc.digest for d in layout.index)
    if not still_referenced:
        layout.blobs.remove(desc.digest)


class RebuildJournal:
    """Checkpoint journal bound to one layout and dist tag."""

    def __init__(self, layout: OCILayout, dist_tag: str) -> None:
        self.layout = layout
        self.dist_tag = dist_tag
        self._nodes: Dict[str, dict] = {}
        desc = _find_descriptor(layout, dist_tag)
        if desc is not None:
            blob = layout.blobs.try_get(desc.digest)
            if blob is not None:
                payload = json.loads(blob.as_bytes().decode("utf-8"))
                if payload.get("version") == JOURNAL_VERSION:
                    self._nodes = dict(payload.get("nodes", {}))

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def node_ids(self) -> List[str]:
        return sorted(self._nodes)

    def digest_of(self, node_id: str) -> Optional[str]:
        entry = self._nodes.get(node_id)
        return entry["digest"] if entry else None

    def output_for(self, node_id: str) -> Tuple[FileContent, int]:
        entry = self._nodes[node_id]
        return _decode_content(entry["content"]), entry["mode"]

    # -- mutation ----------------------------------------------------------

    def record(
        self, node_id: str, digest: str, path: str, content: FileContent, mode: int
    ) -> None:
        self._nodes[node_id] = {
            "digest": digest,
            "path": path,
            "mode": mode,
            "content": _encode_content(content),
        }

    def flush(self) -> None:
        """Persist the journal into the layout (replacing any previous blob)."""
        old = _find_descriptor(self.layout, self.dist_tag)
        if old is not None:
            _drop_descriptor(self.layout, old)
        payload = {
            "version": JOURNAL_VERSION,
            "dist_tag": self.dist_tag,
            "nodes": self._nodes,
        }
        data = json.dumps(payload, sort_keys=True).encode("utf-8")
        desc = self.layout.blobs.put_bytes(data, mediatypes.REBUILD_JOURNAL)
        self.layout.index.append(
            Descriptor(
                media_type=desc.media_type,
                digest=desc.digest,
                size=desc.size,
                annotations={
                    mediatypes.ANNOTATION_COMTAINER_JOURNAL: self.dist_tag
                },
            )
        )

    def clear(self) -> None:
        """Drop the journal from the layout (a rebuild completed cleanly)."""
        desc = _find_descriptor(self.layout, self.dist_tag)
        if desc is not None:
            _drop_descriptor(self.layout, desc)
        self._nodes = {}


def has_journal(layout: OCILayout, dist_tag: str) -> bool:
    return _find_descriptor(layout, dist_tag) is not None
