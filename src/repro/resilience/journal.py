"""Per-node checkpoint journal for interrupted rebuilds.

``coMtainer-rebuild`` re-executes the transformed build graph in
topological order.  When a rebuild dies mid-graph (node fault, container
crash, operator interrupt) everything it already compiled is lost unless
it was checkpointed somewhere that outlives the rebuild container — and
the only thing that outlives the container is the mounted OCI layout.

The journal is therefore persisted *in the layout*, alongside the cache
layer: a single JSON blob in the layout's blob store, registered in the
index through a descriptor that carries the
``io.comtainer.journal=<dist-tag>`` annotation but **no**
``org.opencontainers.image.ref.name`` — so it is invisible to
``layout.tags()``, ``find_dist_tag`` and registry pushes, yet survives
``layout.save()``/``load()`` round trips.

Journal blob format (``application/vnd.comtainer.rebuild-journal.v1+json``)
is **JSONL** — one header line plus one self-contained line per node::

    {"dist_tag": "<app>.dist", "version": 2}
    {"node": "<id>", "digest": "...", "path": "/src/main.o", "mode": 493,
     "content": {"kind": "padded", "payload": "<base64>", "pad": 81920},
     "content_digest": "sha256:..."}
    ...

The line-oriented format exists for crash consistency: a torn or
bit-flipped journal write damages *lines*, not the whole document, so a
resume salvages every parseable entry instead of crashing on
``json.loads`` — unparseable or structurally invalid lines are counted
in :attr:`RebuildJournal.torn_entries_dropped` and recompiled.  Each
line also records its reconstructed content's digest: a flipped bit
inside a base64 payload can survive both the JSON parse and the
structural check, so an entry is only reused when its content hashes to
what was checkpointed.  Version-1 journals (one JSON dict) are still
read.  The mirror transfer ledger (:mod:`repro.federation.ledger`) and
the service write-ahead log (:mod:`repro.service.wal`) follow the same
salvage discipline, so every durability tier degrades line-by-line.

Content is serialized *structurally* — a compiler artifact is a small JSON
payload plus a declared whitespace pad, and synthetic bulk content is just
a seed and a size, so the journal never materializes (or base64s) the
megabytes of padding.  That keeps the per-command-group ``flush`` cheap
enough to run on the happy path (see ``bench_resilience_overhead``); the
reconstructed content has the exact digest of the original.

A journal entry is only reused when the node's *transformed* command
digest matches the recorded one (the digest already encodes adapter,
options and PGO profile salt), so a resume with different rebuild options
recompiles instead of resurrecting stale outputs.  On a fully successful
rebuild the journal is cleared — the ``+coMre`` manifest's node outputs
take over as the incremental-reuse source.

The journal also carries **lease lines** for the worker fleet
(:mod:`repro.resilience.fleet`)::

    {"lease": "<group digest>", "worker": "w2", "wave": 3,
     "nodes": ["obj1", "obj2"], "expires": 41.5}

A lease line is flushed *before* a wavefront's groups execute and removed
by the group's own checkpoint, so a rebuild that dies mid-wavefront (a
crashed worker exhausting the fleet, an operator interrupt) leaves
durable evidence of exactly which groups were in flight.  The next
``--journal`` resume surfaces and clears them; their outputs were never
checkpointed, so those groups — and only those — re-execute.
"""

from __future__ import annotations

import base64
import json
from typing import Dict, List, Optional, Tuple

from repro.oci import mediatypes
from repro.oci.image import Descriptor
from repro.oci.layout import OCILayout
from repro.toolchain.artifacts import PaddedContent
from repro.vfs.content import FileContent, InlineContent, SyntheticContent

JOURNAL_VERSION = 2

_ENTRY_KEYS = ("digest", "path", "mode", "content")
#: Persisted per entry; ``content_digest`` is optional for v1 compat.
_STORE_KEYS = _ENTRY_KEYS + ("content_digest",)
_CONTENT_KINDS = frozenset({"padded", "synthetic", "inline"})


def _valid_entry(entry: object) -> bool:
    """Structural check for one journal line before trusting it."""
    if not isinstance(entry, dict) or not isinstance(entry.get("node"), str):
        return False
    if not all(key in entry for key in _ENTRY_KEYS):
        return False
    if not isinstance(entry["digest"], str) or not isinstance(entry["path"], str):
        return False
    if not isinstance(entry["mode"], int):
        return False
    content = entry["content"]
    return isinstance(content, dict) and content.get("kind") in _CONTENT_KINDS


def _content_intact(entry: dict) -> bool:
    """Reconstruct the entry's content and check it against its recorded
    digest.

    A flipped bit inside a base64 payload survives the structural check —
    and may even still *decode* — so the line is only trusted when the
    rebuilt content hashes to what was recorded at checkpoint time.
    Entries without a recorded content digest (version-1 journals) only
    need to decode.
    """
    try:
        content = _decode_content(entry["content"])
    except Exception:
        return False
    expected = entry.get("content_digest")
    try:
        return expected is None or content.digest == expected
    except Exception:
        return False


def _valid_lease(entry: object) -> bool:
    """Structural check for one lease line before trusting it."""
    if not isinstance(entry, dict) or not isinstance(entry.get("lease"), str):
        return False
    return isinstance(entry.get("worker"), str) and isinstance(
        entry.get("wave"), int
    )


def _parse_journal(data: bytes) -> Tuple[Dict[str, dict], Dict[str, dict], int]:
    """Salvage (nodes, leases, dropped_line_count) from journal bytes.

    Tolerates torn/partial trailing entries and flipped bits: every line
    that fails to decode, parse, or validate is dropped (and counted) and
    the rest of the journal is still used.  Lease lines (in-flight group
    ownership from a rebuild that died mid-wavefront) are collected
    separately, keyed on group digest.
    """
    lines = data.split(b"\n")
    dropped = 0
    leases: Dict[str, dict] = {}
    head = lines[0] if lines else b""
    header = None
    if head.strip(b" \t\r\x00"):
        # Same discipline as the transfer ledger and the service WAL: a
        # write torn inside the header line costs one dropped line and
        # yields an empty-but-valid journal, never a raise.  Bytes
        # truncated down to nothing are simply an empty journal.
        try:
            header = json.loads(head.decode("utf-8"))
        except Exception:
            header = None
            dropped += 1
    if header is not None:
        if isinstance(header, dict) and header.get("version") == 1:
            # Version-1 journal: the whole payload is one dict.
            nodes = header.get("nodes", {})
            good = {
                nid: entry
                for nid, entry in nodes.items()
                if _valid_entry({"node": nid, **entry})
                and _content_intact(entry)
            } if isinstance(nodes, dict) else {}
            bad = len(nodes) - len(good) if isinstance(nodes, dict) else 1
            return good, {}, bad
    nodes: Dict[str, dict] = {}
    for raw in lines[1:]:
        if not raw.strip(b" \t\r\x00"):
            continue
        try:
            entry = json.loads(raw.decode("utf-8"))
            if isinstance(entry, dict) and "lease" in entry:
                if _valid_lease(entry):
                    leases[entry["lease"]] = entry
                else:
                    dropped += 1
                continue
            valid = _valid_entry(entry) and _content_intact(entry)
        except Exception:
            dropped += 1
            continue
        if not valid:
            dropped += 1
            continue
        nodes[entry["node"]] = {
            key: entry[key] for key in _STORE_KEYS if key in entry
        }
    return nodes, leases, dropped


def _encode_content(content: FileContent) -> dict:
    if isinstance(content, PaddedContent):
        return {
            "kind": "padded",
            "payload": base64.b64encode(content.payload).decode("ascii"),
            "pad": content.pad,
        }
    if isinstance(content, SyntheticContent):
        return {"kind": "synthetic", "seed": content.seed,
                "size": content.declared_size}
    return {"kind": "inline",
            "data": base64.b64encode(content.read()).decode("ascii")}


def _decode_content(entry: dict) -> FileContent:
    if entry["kind"] == "padded":
        return PaddedContent(base64.b64decode(entry["payload"]), entry["pad"])
    if entry["kind"] == "synthetic":
        return SyntheticContent(entry["seed"], entry["size"])
    return InlineContent(base64.b64decode(entry["data"]))


def _find_descriptor(layout: OCILayout, dist_tag: str) -> Optional[Descriptor]:
    for desc in layout.index:
        if desc.annotations.get(mediatypes.ANNOTATION_COMTAINER_JOURNAL) == dist_tag:
            return desc
    return None


def _drop_descriptor(layout: OCILayout, desc: Descriptor) -> None:
    layout.index = [d for d in layout.index if d is not desc]
    still_referenced = any(d.digest == desc.digest for d in layout.index)
    if not still_referenced:
        layout.blobs.remove(desc.digest)


class RebuildJournal:
    """Checkpoint journal bound to one layout and dist tag."""

    def __init__(self, layout: OCILayout, dist_tag: str) -> None:
        self.layout = layout
        self.dist_tag = dist_tag
        self._nodes: Dict[str, dict] = {}
        self._leases: Dict[str, dict] = {}
        #: Journal lines dropped during load because they were torn,
        #: bit-flipped, or structurally invalid; those nodes recompile.
        self.torn_entries_dropped = 0
        desc = _find_descriptor(layout, dist_tag)
        if desc is not None:
            blob = layout.blobs.try_get(desc.digest)
            if blob is not None:
                self._nodes, self._leases, self.torn_entries_dropped = (
                    _parse_journal(blob.as_bytes())
                )

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def node_ids(self) -> List[str]:
        return sorted(self._nodes)

    def digest_of(self, node_id: str) -> Optional[str]:
        entry = self._nodes.get(node_id)
        return entry["digest"] if entry else None

    def output_for(self, node_id: str) -> Tuple[FileContent, int]:
        entry = self._nodes[node_id]
        return _decode_content(entry["content"]), entry["mode"]

    def leases(self) -> Dict[str, dict]:
        """In-flight group leases, keyed on group digest.

        Non-empty only when a previous rebuild died mid-wavefront: those
        groups were dispatched but never checkpointed, so a resume must
        re-execute them (and only them).
        """
        return dict(self._leases)

    # -- mutation ----------------------------------------------------------

    def record_lease(
        self, digest: str, worker: str, wave: int,
        nodes: Optional[List[str]] = None, expires: float = 0.0,
    ) -> None:
        """Note that *worker* holds the group *digest* for *wave*.

        Durable only after the next :meth:`flush`; the fleet dispatch
        flushes leases before any group of the wave executes, so a crash
        mid-wavefront leaves exact in-flight evidence in the layout.
        """
        self._leases[digest] = {
            "lease": digest,
            "worker": worker,
            "wave": wave,
            "nodes": list(nodes or []),
            "expires": expires,
        }

    def clear_lease(self, digest: str) -> None:
        self._leases.pop(digest, None)

    def clear_leases(self) -> None:
        self._leases = {}

    def record(
        self, node_id: str, digest: str, path: str, content: FileContent, mode: int
    ) -> None:
        self._nodes[node_id] = {
            "digest": digest,
            "path": path,
            "mode": mode,
            "content": _encode_content(content),
            "content_digest": content.digest,
        }

    def flush(self) -> None:
        """Persist the journal into the layout (replacing any previous blob)."""
        old = _find_descriptor(self.layout, self.dist_tag)
        if old is not None:
            _drop_descriptor(self.layout, old)
        lines = [
            json.dumps(
                {"version": JOURNAL_VERSION, "dist_tag": self.dist_tag},
                sort_keys=True,
            )
        ]
        for digest in sorted(self._leases):
            lines.append(json.dumps(self._leases[digest], sort_keys=True))
        for node_id in sorted(self._nodes):
            lines.append(
                json.dumps({"node": node_id, **self._nodes[node_id]}, sort_keys=True)
            )
        data = ("\n".join(lines) + "\n").encode("utf-8")
        inj = self.layout.blobs.fault_injector
        if inj is not None and inj.corrupting("journal.append"):
            # The digest below is computed over whatever bytes actually
            # landed, so the blob store stays self-consistent; the damage
            # surfaces as dropped lines on the next resume.
            data = inj.corrupt("journal.append", self.dist_tag, data)
        desc = self.layout.blobs.put_bytes(data, mediatypes.REBUILD_JOURNAL)
        self.layout.index.append(
            Descriptor(
                media_type=desc.media_type,
                digest=desc.digest,
                size=desc.size,
                annotations={
                    mediatypes.ANNOTATION_COMTAINER_JOURNAL: self.dist_tag
                },
            )
        )

    def clear(self) -> None:
        """Drop the journal from the layout (a rebuild completed cleanly)."""
        desc = _find_descriptor(self.layout, self.dist_tag)
        if desc is not None:
            _drop_descriptor(self.layout, desc)
        self._nodes = {}
        self._leases = {}


def has_journal(layout: OCILayout, dist_tag: str) -> bool:
    return _find_descriptor(layout, dist_tag) is not None
