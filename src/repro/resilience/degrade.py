"""The graceful-degradation ladder and the resilience report.

coMtainer's promise is that the system side adapts images "without any
user involvement" — which must include the days when the vendor compiler
segfaults on one translation unit or the registry flakes mid-pull.  The
extended image by construction contains a runnable generic dist image, so
there is always *something* to serve; the ladder makes the fallback
explicit and reportable instead of an unhandled exception:

    rung 1  full            rebuild with every requested optimization
                            (native toolchain, LTO, PGO loop), redirect
    rung 2  partial         rebuild with per-node fallback to the generic
                            artifact and/or optimizations dropped, redirect
    rung 3  fleet-exhausted the parallel worker fleet died (every worker
                            crashed or was blacklisted); the rebuild was
                            re-run serially on a fresh single worker
    rung 4  redirect-only   no rebuild; generic binaries with the system's
                            optimized runtime libraries linked in via
                            compat symlinks (library-only adaptation)
    rung 5  generic         the untouched dist image from the layout

Every session ends on some rung with a runnable image and a
:class:`ResilienceReport` naming the rung and why each higher rung was
abandoned.  The default :class:`ResiliencePolicy` is ``strict``: no
retries, no fallback, no journal — exactly today's fail-loud behaviour.
"""

from __future__ import annotations

import logging
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.integrity import find_integrity_error
from repro.resilience.deadline import find_deadline_exceeded
from repro.resilience.faults import FaultInjector
from repro.resilience.fleet import find_fleet_exhausted
from repro.resilience.retry import (
    RetryPolicy,
    RetryStats,
    SimulatedClock,
    retry_call,
)
from repro.telemetry import NULL_TELEMETRY

logger = logging.getLogger("repro.resilience")

RUNG_FULL = "full"
RUNG_PARTIAL = "partial"
RUNG_FLEET_EXHAUSTED = "fleet-exhausted"
RUNG_REDIRECT_ONLY = "redirect-only"
RUNG_GENERIC = "generic"

#: Best to worst; every resilient session terminates on exactly one.
RUNG_ORDER = (RUNG_FULL, RUNG_PARTIAL, RUNG_FLEET_EXHAUSTED,
              RUNG_REDIRECT_ONLY, RUNG_GENERIC)

#: Terminal *cancellation* outcome, deliberately outside RUNG_ORDER: a
#: blown per-request deadline stops the ladder (descending would spend
#: more of a budget that is already gone).  The journal holds every
#: checkpointed group, so a later request resumes the rebuild.
RUNG_DEADLINE_EXCEEDED = "deadline-exceeded"

#: Default retry policy for permissive sessions.  Transient faults have
#: bounded per-key bursts, but a composite operation (one push touches
#: many blobs) can absorb up to max_burst faults *per key* — so the
#: attempt count must be provisioned for the whole composite, not a
#: single call.  Backoff runs on the simulated clock, so the generous
#: limits cost nothing on the happy path and guarantee that transfers
#: (whose faults are transient by the fault model) always complete.
PERMISSIVE_RETRY = RetryPolicy(max_attempts=128, budget_seconds=1e6)


@dataclass
class ResiliencePolicy:
    """How much autonomy the system side has when things go wrong.

    ``strict`` (the default) preserves the original fail-loud semantics;
    ``permissive`` enables retry/backoff, per-node fallback, checkpoint
    journaling and the degradation ladder.
    """

    mode: str = "strict"               # "strict" | "permissive"
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    injector: Optional[FaultInjector] = None
    journal: bool = True               # checkpoint rebuilds into the layout
    fallback: bool = True              # failed nodes fall back to generic
    seed: int = 0                      # jitter determinism

    @property
    def strict(self) -> bool:
        return self.mode != "permissive"

    @staticmethod
    def permissive(
        seed: int = 0,
        injector: Optional[FaultInjector] = None,
        retry: Optional[RetryPolicy] = None,
        journal: bool = True,
        fallback: bool = True,
    ) -> "ResiliencePolicy":
        return ResiliencePolicy(
            mode="permissive",
            retry=retry or PERMISSIVE_RETRY,
            injector=injector,
            journal=journal,
            fallback=fallback,
            seed=seed,
        )


@dataclass
class ResilienceContext:
    """Runtime state of one policy installation (clock, stats, rng)."""

    policy: ResiliencePolicy
    injector: Optional[FaultInjector] = None
    clock: SimulatedClock = field(default_factory=SimulatedClock)
    stats: RetryStats = field(default_factory=RetryStats)
    rng: random.Random = None
    #: Telemetry recorder retries/degradations report into; the no-op
    #: default keeps untraced sessions free of bookkeeping.
    telemetry: object = None

    def __post_init__(self) -> None:
        if self.injector is None:
            self.injector = self.policy.injector
        if self.rng is None:
            self.rng = random.Random(f"comtainer-retry-jitter:{self.policy.seed}")
        if self.telemetry is None:
            self.telemetry = NULL_TELEMETRY

    def retry(self, fn, site: str):
        """Run *fn* under this context's retry policy."""
        return retry_call(
            fn,
            policy=self.policy.retry,
            clock=self.clock,
            rng=self.rng,
            stats=self.stats,
            site=site,
            telemetry=self.telemetry if self.telemetry.enabled else None,
        )


@dataclass
class ResilienceReport:
    """What the session achieved and what it had to give up."""

    tag: str
    rung: str = RUNG_FULL
    ref: Optional[str] = None
    #: Why each abandoned higher rung failed, best rung first.
    reasons: List[str] = field(default_factory=list)
    retries: Dict[str, int] = field(default_factory=dict)
    #: Retry budgets burnt to the end, keyed on site (the report-table
    #: view of the per-site exhaustion histograms in the metrics
    #: registry, ``resilience_retry_exhaustion_attempts_<site>_<cause>``).
    retry_exhaustions: Dict[str, int] = field(default_factory=dict)
    #: Exhaustions keyed ``site/cause`` — whether the attempt cap or the
    #: simulated-time budget was the binding constraint.
    retry_exhaustion_causes: Dict[str, int] = field(default_factory=dict)
    failed_nodes: List[str] = field(default_factory=list)
    fallback_paths: List[str] = field(default_factory=list)
    restored_nodes: List[str] = field(default_factory=list)
    faults_seen: Dict[str, int] = field(default_factory=dict)
    simulated_seconds: float = 0.0
    #: Typed corruption detections hit during the session (str of each
    #: :class:`repro.integrity.IntegrityError`), best rung first.
    integrity_errors: List[str] = field(default_factory=list)
    #: Digests the repair engine restored to a verified state.
    repaired_digests: List[str] = field(default_factory=list)
    #: Digests left quarantined (corrupt, no source could repair them).
    quarantined_digests: List[str] = field(default_factory=list)
    #: Worker-fleet accounting accumulated over the session's rebuilds
    #: (:meth:`repro.resilience.fleet.FleetStats.to_json` shape): crashes,
    #: reassignments, speculative wins, blacklisted workers, ...
    worker_stats: Dict[str, object] = field(default_factory=dict)
    #: Set (to the typed error's message) when the session was cancelled
    #: on a blown per-request deadline; the rung is then
    #: :data:`RUNG_DEADLINE_EXCEEDED` and ``ref`` is None.
    deadline_exceeded: Optional[str] = None

    def to_json(self) -> dict:
        return {
            "tag": self.tag,
            "rung": self.rung,
            "ref": self.ref,
            "reasons": list(self.reasons),
            "retries": dict(self.retries),
            "retry_exhaustions": dict(self.retry_exhaustions),
            "retry_exhaustion_causes": dict(self.retry_exhaustion_causes),
            "failed_nodes": list(self.failed_nodes),
            "fallback_paths": list(self.fallback_paths),
            "restored_nodes": list(self.restored_nodes),
            "faults_seen": dict(self.faults_seen),
            "simulated_seconds": self.simulated_seconds,
            "integrity_errors": list(self.integrity_errors),
            "repaired_digests": list(self.repaired_digests),
            "quarantined_digests": list(self.quarantined_digests),
            "worker_stats": dict(self.worker_stats),
            "deadline_exceeded": self.deadline_exceeded,
        }

    def summary(self) -> str:
        bits = [f"{self.tag}: rung={self.rung} ref={self.ref}"]
        if self.deadline_exceeded:
            bits.append(self.deadline_exceeded)
        if self.fallback_paths:
            bits.append(f"{len(self.fallback_paths)} artifacts fell back to generic")
        if self.restored_nodes:
            bits.append(f"{len(self.restored_nodes)} nodes resumed from journal")
        if self.retries:
            bits.append(f"{sum(self.retries.values())} retries")
        if self.integrity_errors:
            bits.append(f"{len(self.integrity_errors)} corruptions detected")
        if self.repaired_digests:
            bits.append(f"{len(self.repaired_digests)} blobs repaired")
        if self.quarantined_digests:
            bits.append(f"{len(self.quarantined_digests)} blobs quarantined")
        ws = self.worker_stats
        if ws.get("crashes"):
            bits.append(f"{ws['crashes']} worker crashes")
        if ws.get("reassignments"):
            bits.append(f"{ws['reassignments']} group reassignments")
        if ws.get("speculative_wins"):
            bits.append(f"{ws['speculative_wins']} speculative wins")
        if ws.get("blacklisted"):
            bits.append(f"{len(ws['blacklisted'])} workers blacklisted")
        return "; ".join(bits)


def install_resilience(policy, registry=None, engines=()) -> ResilienceContext:
    """Wire a policy into a registry and one or more engines.

    Strict policies install nothing (behaviour stays byte-identical);
    permissive ones attach the fault injector to the registry (push/pull
    and its blob store) and to each engine (``container.run`` arming plus
    the in-rebuild retry/journal context).
    """
    ctx = ResilienceContext(policy=policy)
    if policy.strict:
        return ctx
    if registry is not None:
        registry.fault_injector = ctx.injector
        registry.blobs.fault_injector = ctx.injector
    for engine in engines:
        engine.fault_injector = ctx.injector
        engine.resilience = ctx
    return ctx


def uninstall_resilience(registry=None, engines=()) -> None:
    """Detach a previously installed policy (tests share long-lived engines)."""
    if registry is not None:
        registry.fault_injector = None
        registry.blobs.fault_injector = None
    for engine in engines:
        engine.fault_injector = None
        engine.resilience = None


def resilient_transfer(registry, layout, name, tags, ctx=None, repair=None):
    """Push *tags* of *layout* through *registry* and pull them back.

    This is the distribution step of Figure 5 (user side -> repository ->
    system side).  Under a permissive context every push and pull is
    retried on transient transfer errors; under a strict (or absent)
    context the behaviour is the plain one-shot transfer.

    A pull that fails on a typed ``IntegrityError`` (the transfer
    corrupted a blob in the registry) is self-healing in permissive mode:
    the push *source* layout still holds the pristine bytes, so the
    corrupt registry blobs are repaired from it and the pull retried once.
    """
    from repro.oci.layout import OCILayout

    remote = OCILayout()
    for tag in tags:
        reference = f"{name}:{tag}"

        def push(tag=tag, reference=reference):
            return registry.push_layout(reference, layout, tag=tag)

        def pull(reference=reference):
            return registry.pull(reference)

        if ctx is None or ctx.policy.strict:
            push()
            resolved = pull()
        else:
            ctx.retry(push, site="registry.push")
            try:
                resolved = ctx.retry(pull, site="registry.pull")
            except Exception as exc:
                if find_integrity_error(exc) is None:
                    raise
                from repro.integrity.repair import RepairEngine

                engine = repair or RepairEngine().add_layout(
                    layout, label="push-source"
                )
                outcomes = [
                    engine.repair_blob(registry.blobs, finding.digest, ctx=ctx)
                    for finding in registry.blobs.verify_integrity()
                ]
                if not any(o.repaired for o in outcomes):
                    raise
                logger.warning(
                    "transfer of %s corrupted %d registry blobs; repaired "
                    "from push source", reference, len(outcomes),
                )
                resolved = ctx.retry(pull, site="registry.pull")
        remote.add_manifest(resolved.manifest, resolved.config, resolved.layers, tag=tag)
    return remote


# ---------------------------------------------------------------------------
# the ladder
# ---------------------------------------------------------------------------

def _redirect_only(engine, layout, dist_tag, system, flavor, ref, ctx) -> str:
    """Rung 3: generic binaries + the system's optimized runtime libraries.

    Mirrors the paper's library-only adaptation (Figure 3 ``libo``): the
    recorded library paths of the *unmodified* binaries re-resolve through
    compat symlinks to the vendor-optimized code.  No rebuild container,
    no compile nodes — only filesystem surgery, so persistent
    ``container.run`` faults cannot reach this rung.
    """
    from repro.core.backend.replacement import (
        apply_replacements,
        replacements_for_packages,
    )
    from repro.core.images import install_system_side_images
    from repro.oci import mediatypes
    from repro.pkg.apt import AptFacade

    install_system_side_images(engine, system, flavor)
    base = ctx.retry(
        lambda: engine.load_from_layout(layout, dist_tag, ref=f"{ref}.generic-base"),
        site="layout.load",
    )
    ctr = engine.from_image(base, name=f"resil-redirect-{dist_tag}")
    try:
        ctr.fs.write_file(
            "/etc/apt/sources.list",
            f"repo ubuntu-generic\nrepo {system.vendor_repo}\n",
            create_parents=True,
        )
        pool = engine.repository_pool_for(ctr)
        apt = AptFacade(ctr.fs, pool)
        plan = replacements_for_packages(list(apt.installed()), pool)
        apply_replacements(ctr.fs, apt, plan)
        ctr.config.labels[mediatypes.ANNOTATION_COMTAINER_RUNG] = RUNG_REDIRECT_ONLY
        engine.commit(ctr, ref=ref, comment="coMtainer redirect-only (degraded)")
        return ref
    finally:
        engine.remove_container(ctr.name)


def redirect_only_adapt(engine, layout, dist_tag, system, flavor, ref, ctx) -> str:
    """Public entry to the redirect-only rung.

    The adaptation service's load-shedding ladder enters the degradation
    ladder *here* directly (skipping the rebuild rungs on purpose) when
    shedding a low-priority request under queue pressure.
    """
    return _redirect_only(engine, layout, dist_tag, system, flavor, ref, ctx)


def _note_integrity(report, exc, layout, repair, ctx, tele) -> bool:
    """Record a typed corruption behind *exc*; attempt repair if possible.

    Returns True when the repair engine restored at least one blob (the
    caller should retry the failed rung once — the data fault is gone).
    """
    ierr = find_integrity_error(exc)
    if ierr is None:
        return False
    report.integrity_errors.append(str(ierr))
    tele.event("integrity.detected", site=ierr.site, digest=ierr.digest,
               detail=ierr.detail)
    if tele.enabled:
        tele.metrics.counter("resilience_integrity_errors_total").inc()
    if repair is None:
        return False
    outcomes = repair.repair_layout(layout, ctx=ctx)
    fixed = [o.digest for o in outcomes
             if o.repaired and o.detail != "already intact"]
    report.repaired_digests.extend(fixed)
    report.quarantined_digests = [
        f.digest for f in layout.blobs.quarantined()
    ]
    if fixed:
        logger.warning("repaired %d corrupt blobs after %s", len(fixed), ierr)
    return bool(fixed)


def adapt_with_resilience(
    engine,
    layout,
    system,
    ctx: Optional[ResilienceContext] = None,
    recorder=None,
    lto: bool = False,
    pgo_workload: Optional[str] = None,
    flavor: str = "vendor",
    ref: Optional[str] = None,
    nodes: int = 16,
    repair=None,
    jobs: int = 1,
    speculate: bool = True,
    max_worker_failures: int = 3,
    deadline: Optional[float] = None,
    incremental: bool = True,
) -> ResilienceReport:
    """System-side adaptation that always terminates with a runnable image.

    With a strict (or absent) context this is exactly
    :func:`repro.core.workflow.system_side_adapt` — errors propagate.
    With a permissive context the ladder walks rungs until one holds.
    When a :class:`repro.integrity.repair.RepairEngine` is supplied, a
    rung that fails on a typed ``IntegrityError`` gets one repair pass
    over the layout and one retry before the ladder descends.  A parallel
    rebuild (``jobs > 1``) whose worker fleet is exhausted by injected
    worker faults gets exactly one serial retry on a fresh single-worker
    fleet before optimizations are dropped; success through that retry
    lands on the ``fleet-exhausted`` rung.

    *deadline* (simulated seconds per rebuild phase) makes a blown
    budget *terminal*: the ladder stops with
    ``rung == RUNG_DEADLINE_EXCEEDED``, ``ref`` None, and the journal
    resumable — it never descends, because every lower rung would spend
    more of a budget that is already gone.
    """
    from repro.core import workflow as wf
    from repro.core.cache.storage import decode_rebuild, find_dist_tag

    dist_tag = find_dist_tag(layout)
    ref = ref or f"{dist_tag}:adapted"
    report = ResilienceReport(tag=dist_tag)
    tele = getattr(engine, "telemetry", NULL_TELEMETRY)

    if ctx is None or ctx.policy.strict:
        report.ref = wf.system_side_adapt(
            engine, layout, system, recorder=recorder, lto=lto,
            pgo_workload=pgo_workload, flavor=flavor, ref=ref, nodes=nodes,
            jobs=jobs, speculate=speculate,
            max_worker_failures=max_worker_failures, deadline=deadline,
            incremental=incremental,
        )
        report.rung = RUNG_FULL
        return report

    extra_args: List[str] = []
    if ctx.policy.journal:
        extra_args.append("--journal")
    if ctx.policy.fallback:
        extra_args.append("--fallback")

    # Fleet accounting accumulates across every rebuild the ladder runs
    # (see rebuild_in_container's merge); start the session from zero.
    engine.fleet_stats = None

    # Rungs 1-3: rebuild + redirect.  First with the requested
    # optimizations, then — if a parallel worker fleet died — once more
    # serially, then (if the optimizations were the problem) plain.
    attempts = [(lto, pgo_workload, "optimized rebuild", jobs)]
    if lto or pgo_workload is not None:
        attempts.append((False, None, "plain rebuild", jobs))
    adapted_ref = None
    degraded_options = False
    serial_fleet_added = False
    used_serial_fleet = False
    index = 0
    while index < len(attempts):
        attempt_lto, attempt_pgo, label, attempt_jobs = attempts[index]
        index += 1

        def run_attempt(a_lto=attempt_lto, a_pgo=attempt_pgo,
                        a_jobs=attempt_jobs):
            return wf.system_side_adapt(
                engine, layout, system, recorder=recorder, lto=a_lto,
                pgo_workload=a_pgo, flavor=flavor, ref=ref, nodes=nodes,
                extra_rebuild_args=extra_args, jobs=a_jobs,
                speculate=speculate, max_worker_failures=max_worker_failures,
                deadline=deadline, incremental=incremental,
            )

        for repair_round in range(2):
            try:
                adapted_ref = ctx.retry(run_attempt, site="adapt")
                degraded_options = (attempt_lto, attempt_pgo) != (lto, pgo_workload)
                used_serial_fleet = attempt_jobs == 1 and attempt_jobs != jobs
                break
            except Exception as exc:
                blown = find_deadline_exceeded(exc)
                if blown is not None:
                    # Terminal cancellation, not degradation: stop the
                    # ladder with the journal resumable.
                    report.deadline_exceeded = str(blown)
                    report.rung = RUNG_DEADLINE_EXCEEDED
                    report.reasons.append(f"{label} cancelled: {blown}")
                    tele.event("degradation.deadline_exceeded",
                               tag=dist_tag, label=label,
                               spent=blown.spent, budget=blown.budget)
                    logger.warning("%s of %s cancelled on deadline: %s",
                                   label, dist_tag, blown)
                    index = len(attempts)
                    break
                fixed = _note_integrity(
                    report, exc, layout,
                    repair if repair_round == 0 else None, ctx, tele,
                )
                if fixed:
                    report.reasons.append(
                        f"{label} hit corruption, repaired and retrying: {exc}"
                    )
                    continue
                exhausted = find_fleet_exhausted(exc)
                if (exhausted is not None and attempt_jobs > 1
                        and not serial_fleet_added):
                    # The parallel fleet died; a fresh serial fleet can
                    # still finish the same rebuild (resuming from the
                    # journal), so try that before dropping optimizations.
                    serial_fleet_added = True
                    attempts.insert(
                        index, (attempt_lto, attempt_pgo,
                                "serial-fleet rebuild", 1)
                    )
                    report.reasons.append(
                        f"{label} exhausted the worker fleet, retrying "
                        f"serially: {exc}"
                    )
                    tele.event("degradation.fleet_exhausted", tag=dist_tag,
                               wave=exhausted.wave_index,
                               pending=len(exhausted.pending))
                    logger.warning(
                        "%s of %s exhausted the worker fleet, retrying "
                        "serially: %s", label, dist_tag, exc)
                    break
                report.reasons.append(f"{label} failed: {exc}")
                tele.event("degradation.attempt_failed", tag=dist_tag,
                           label=label, error=str(exc))
                logger.warning("%s of %s failed, degrading: %s",
                               label, dist_tag, exc)
                break
        if adapted_ref is not None:
            break

    if adapted_ref is not None:
        meta = decode_rebuild(layout, dist_tag)[0]
        report.ref = adapted_ref
        report.failed_nodes = list(meta.get("failed_nodes", []))
        report.fallback_paths = list(meta.get("fallback_paths", []))
        report.restored_nodes = list(meta.get("journal_restored", []))
        degraded = bool(report.failed_nodes or report.fallback_paths) or degraded_options
        if used_serial_fleet:
            report.rung = RUNG_FLEET_EXHAUSTED
        else:
            report.rung = RUNG_PARTIAL if degraded else RUNG_FULL
    elif report.deadline_exceeded is None:
        # Rung 3: redirect-only (library-only adaptation, no rebuild).
        try:
            report.ref = _redirect_only(
                engine, layout, dist_tag, system, flavor, ref, ctx
            )
            report.rung = RUNG_REDIRECT_ONLY
        except Exception as exc:
            _note_integrity(report, exc, layout, repair, ctx, tele)
            report.reasons.append(f"redirect-only failed: {exc}")
            tele.event("degradation.attempt_failed", tag=dist_tag,
                       label="redirect-only", error=str(exc))
            logger.warning("redirect-only of %s failed, serving generic: %s",
                           dist_tag, exc)
            # Rung 4: the untouched generic dist image.  Loads straight
            # from the already-transferred layout, so nothing can stop it.
            report.ref = ctx.retry(
                lambda: engine.load_from_layout(layout, dist_tag, ref=ref),
                site="layout.load",
            )
            report.rung = RUNG_GENERIC

    # Abandoned recovery attempts must not strand partial state.
    layout.gc()
    report.retries = dict(ctx.stats.retries)
    report.retry_exhaustions = ctx.stats.exhausted_by_site()
    report.retry_exhaustion_causes = ctx.stats.exhausted_by_cause()
    fleet_stats = getattr(engine, "fleet_stats", None)
    if fleet_stats is not None:
        report.worker_stats = fleet_stats.to_json()
    if ctx.injector is not None:
        report.faults_seen = ctx.injector.summary()
    report.simulated_seconds = ctx.clock.now
    tele.event("degradation.rung", tag=dist_tag, rung=report.rung,
               ref=report.ref or "", reasons=len(report.reasons))
    if tele.enabled:
        tele.metrics.counter(
            f"resilience_rung_{report.rung.replace('-', '_')}_total").inc()
    if report.rung != RUNG_FULL:
        logger.warning("adaptation of %s degraded to rung %r",
                       dist_tag, report.rung)
    return report
